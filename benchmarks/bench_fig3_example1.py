"""Figure 3 + Example 1: the Academic 3D model and its phase portrait.

Reproduces (a) the Example 1 synthesis — a real degree-2 barrier
certificate after a couple of CEGIS iterations (the paper's eq. (19) took
2) — and (b) the Figure 3 data: a trajectory bundle from Theta that never
meets the unsafe cube, the zero level set of B separating them, and worst
counterexample points extracted from a deliberately false candidate
(Figure 3a shows two such points).

Run:  pytest benchmarks/bench_fig3_example1.py --benchmark-only
"""

import numpy as np
import pytest

from table1_common import prepared

from repro.analysis import phase_portrait
from repro.cegis import CounterexampleGenerator, SNBC
from repro.poly import Polynomial

_STATE = {}


def _synthesize():
    spec, problem, controller = prepared("example1")
    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("paper"),
    )
    return snbc.run()


def test_example1_synthesis(benchmark):
    result = benchmark.pedantic(_synthesize, rounds=1, iterations=1)
    _STATE["result"] = result
    assert result.success, "Example 1 must synthesize a real BC"
    # paper: success within a couple of iterations, degree-2 certificate
    assert result.barrier.degree == 2
    assert result.iterations <= 6
    benchmark.extra_info.update(
        {
            "iterations": result.iterations,
            "T_e": round(result.timings.total, 3),
            "n_terms": len(result.barrier.coeffs),
        }
    )


def test_fig3b_level_set_separates(benchmark):
    """Figure 3(b): zero level set of B separates Xi from the trajectories."""
    if "result" not in _STATE:
        _STATE["result"] = _synthesize()
    result = _STATE["result"]
    spec, problem, controller = prepared("example1")

    data = benchmark.pedantic(
        phase_portrait,
        args=(problem, result.barrier),
        kwargs=dict(
            controller=controller,
            n_trajectories=12,
            t_final=8.0,
            rng=np.random.default_rng(0),
        ),
        rounds=1,
        iterations=1,
    )
    B = result.barrier
    # trajectories from Theta stay on the B >= 0 side and never reach Xi
    assert not data.any_trajectory_unsafe
    for traj in data.trajectories:
        assert np.all(B(traj) > -1e-6)
    # the unsafe cube lies strictly on the B < 0 side
    xi_pts = problem.xi.sample(2000, rng=np.random.default_rng(1))
    assert np.all(B(xi_pts) < 0)
    # and the level set actually sits between: B ~ 0 there
    assert len(data.level_set_points) > 0
    assert np.median(np.abs(B(data.level_set_points))) < 0.1
    benchmark.extra_info["level_points"] = len(data.level_set_points)


def test_fig3a_worst_counterexamples(benchmark):
    """Figure 3(a): a false candidate yields worst-violation points."""
    spec, problem, controller = prepared("example1")
    if "result" not in _STATE:
        _STATE["result"] = _synthesize()
    inclusion = _STATE["result"].inclusion

    # a deliberately false candidate: B = -1 - x1 (negative on most of Theta)
    false_B = Polynomial(3, {(0, 0, 0): -1.0, (1, 0, 0): -1.0})
    gen = CounterexampleGenerator(
        problem, inclusion.polynomials, inclusion.sigma_star
    )
    cexs = benchmark.pedantic(
        gen.generate,
        args=(false_B, Polynomial.zero(3), ["init", "lie"]),
        rounds=1,
        iterations=1,
    )
    assert len(cexs) >= 1  # Figure 3a shows the worst points of a false BC
    for cex in cexs:
        assert cex.worst_violation > 0
        assert cex.gamma >= 0
        assert len(cex.points) >= 1
    benchmark.extra_info["n_counterexamples"] = sum(len(c.points) for c in cexs)
