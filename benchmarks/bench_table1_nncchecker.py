"""Table 1, NNCChecker columns: SOS candidate + dReal-style verification.

Paper shape: NNCChecker certifies 9 of 14 systems (through C9) and marks
x beyond n_x = 6 — candidate synthesis plus interval verification both
degrade with dimension.  Budgets are laptop-scaled.

Run:  pytest benchmarks/bench_table1_nncchecker.py --benchmark-only
"""

import pytest

from table1_common import bench_scale, prepared, prepared_inclusion, systems_for_scale

from repro.baselines import BaselineStatus, NNCCheckerBaseline, NNCCheckerConfig

_RESULTS = {}


def _budget() -> NNCCheckerConfig:
    if bench_scale() == "paper":
        return NNCCheckerConfig(
            max_refinements=4,
            delta=2e-2,
            max_boxes_per_check=120_000,
            time_limit=300.0,
            seed=0,
        )
    return NNCCheckerConfig(
        max_refinements=2,
        delta=2e-2,
        max_boxes_per_check=40_000,
        time_limit=60.0,
        seed=0,
    )


def _run(name: str):
    spec, problem, controller = prepared(name)
    inclusion = prepared_inclusion(name)
    baseline = NNCCheckerBaseline(
        problem,
        controller=controller,
        controller_polys=inclusion.polynomials,
        config=_budget(),
    )
    return baseline.run()


@pytest.mark.parametrize("name", systems_for_scale())
def test_nncchecker_table1_row(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info.update(
        {
            "status": result.status.value,
            "I_n": result.iterations,
            "T_l": round(result.learn_seconds, 3),
            "T_v": round(result.verify_seconds, 3),
            "T_e": round(result.total_seconds, 3),
        }
    )
    spec, _, _ = prepared(name)
    if spec.n_x >= 6:
        # Table 1: NNCChecker marks x from C10 on
        assert result.status is not BaselineStatus.SUCCESS, (
            f"{name} (n_x={spec.n_x}) unexpectedly succeeded"
        )


def test_nncchecker_table1_print(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if not _RESULTS:
        pytest.skip("row benches did not run")
    from repro.analysis import Table, format_table

    table = Table(
        columns=["Ex.", "status", "I_n", "T_l", "T_v", "T_e"],
        title=f"Table 1 / NNCChecker columns (scale={bench_scale()}, budgets shrunk)",
    )
    for name, res in _RESULTS.items():
        table.add_row(
            **{
                "Ex.": name,
                "status": res.status.value,
                "I_n": res.iterations,
                "T_l": res.learn_seconds,
                "T_v": res.verify_seconds,
                "T_e": res.total_seconds,
            }
        )
    with capsys.disabled():
        print()
        print(format_table(table))
