"""Table 1, FOSSIL columns: CEGIS with an SMT-style verifier.

The shape to reproduce: FOSSIL-style verification succeeds on the low-
dimensional rows (the paper certifies C1-C8) and hits its time/box budget
("OT") from n_x = 5 upward, because branch-and-prune cost is exponential
in dimension.  Budgets are scaled down from the paper's 7200 s so the
sweep completes on a laptop; the success/OT *pattern* is the result.

Run:  pytest benchmarks/bench_table1_fossil.py --benchmark-only
"""

import pytest

from table1_common import (
    SMT_FEASIBLE_SYSTEMS,
    bench_scale,
    prepared,
    systems_for_scale,
)

from repro.baselines import BaselineStatus, FossilBaseline, FossilConfig

_RESULTS = {}


def _budget() -> FossilConfig:
    if bench_scale() == "paper":
        return FossilConfig(
            max_iterations=10,
            delta=2e-2,
            max_boxes_per_check=120_000,
            time_limit=300.0,
            seed=0,
        )
    return FossilConfig(
        max_iterations=6,
        n_samples=300,
        delta=2e-2,
        max_boxes_per_check=40_000,
        time_limit=60.0,
        seed=0,
    )


def _run(name: str):
    spec, problem, controller = prepared(name)
    baseline = FossilBaseline(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=_budget(),
    )
    return baseline.run()


@pytest.mark.parametrize("name", systems_for_scale())
def test_fossil_table1_row(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info.update(
        {
            "status": result.status.value,
            "I_f": result.iterations,
            "T_l": round(result.learn_seconds, 3),
            "T_v": round(result.verify_seconds, 3),
            "T_e": round(result.total_seconds, 3),
        }
    )
    spec, _, _ = prepared(name)
    if spec.n_x >= 5:
        # Table 1: FOSSIL rows C9..C14 are OT
        assert result.status in (BaselineStatus.TIMEOUT, BaselineStatus.FAILED), (
            f"{name} (n_x={spec.n_x}) unexpectedly finished: {result.status}"
        )
    else:
        assert result.status in (
            BaselineStatus.SUCCESS,
            BaselineStatus.TIMEOUT,
            BaselineStatus.FAILED,
        )


def test_fossil_table1_print(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if not _RESULTS:
        pytest.skip("row benches did not run")
    from repro.analysis import Table, format_table

    table = Table(
        columns=["Ex.", "status", "I_f", "T_l", "T_v", "T_e"],
        title=f"Table 1 / FOSSIL columns (scale={bench_scale()}, budgets shrunk)",
    )
    for name, res in _RESULTS.items():
        table.add_row(
            **{
                "Ex.": name,
                "status": res.status.value,
                "I_f": res.iterations,
                "T_l": res.learn_seconds,
                "T_v": res.verify_seconds,
                "T_e": res.total_seconds,
            }
        )
    with capsys.disabled():
        print()
        print(format_table(table))
    # paper shape: every success lies in the SMT-feasible (low-dim) band
    for name, res in _RESULTS.items():
        if res.status is BaselineStatus.SUCCESS:
            assert name in SMT_FEASIBLE_SYSTEMS
