"""Ablation: cross-product (quadratic) network vs Square-activation network.

Section 4.1 motivates the cross-product activation: at equal output degree
the Square network's hidden units are nonnegative, which restricts the
function class.  Two measurements:

1. regression: fitting a sign-indefinite quadratic form (``x1 * x2``) —
   the cross-product net should reach much lower MSE at one hidden layer;
2. synthesis: running the SNBC Learner with each architecture on the same
   benchmark and comparing CEGIS iterations / success.

Run:  pytest benchmarks/bench_ablation_quadratic_net.py --benchmark-only
"""

import numpy as np
import pytest

from table1_common import prepared

from repro.autodiff import Tensor
from repro.cegis import SNBC
from repro.learner import LearnerConfig
from repro.nn import Adam, QuadraticNetwork, SquareNetwork


def _fit(net, X, y, steps=400, lr=0.02, seed=0):
    opt = Adam(net.parameters(), lr=lr)
    for _ in range(steps):
        opt.zero_grad()
        err = net(Tensor(X)) - Tensor(y)
        ((err * err).mean()).backward()
        opt.step()
    return float(((net.predict(X).reshape(-1) - y) ** 2).mean())


_MSES = {}


@pytest.mark.parametrize("arch", ["quadratic", "square"])
def test_indefinite_fit(benchmark, arch):
    rng = np.random.default_rng(3)
    X = rng.uniform(-1, 1, size=(512, 2))
    y = X[:, 0] * X[:, 1]
    cls = QuadraticNetwork if arch == "quadratic" else SquareNetwork
    net = cls([2, 4], output_bias=False, rng=np.random.default_rng(11))
    mse = benchmark.pedantic(_fit, args=(net, X, y), rounds=1, iterations=1)
    _MSES[arch] = mse
    benchmark.extra_info["mse"] = mse


def test_quadratic_beats_square_on_indefinite_target(benchmark):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if len(_MSES) < 2:
        pytest.skip("fit benches did not run")
    # the square net CAN express x1*x2 via differences of squares in its
    # output layer, but optimizes far less reliably; require a clear gap
    assert _MSES["quadratic"] < 1e-3
    assert _MSES["quadratic"] <= _MSES["square"]


@pytest.mark.parametrize("arch", ["quadratic", "square"])
def test_synthesis_with_architecture(benchmark, arch):
    spec, problem, controller = prepared("C3")
    cfg = LearnerConfig(
        b_hidden=spec.b_hidden,
        lambda_hidden=spec.lambda_hidden,
        epochs=spec.learner_epochs,
        b_architecture=arch,
        seed=0,
    )
    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=cfg,
        config=spec.snbc_config("smoke"),
    )
    result = benchmark.pedantic(snbc.run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"success": result.success, "iterations": result.iterations}
    )
    if arch == "quadratic":
        assert result.success  # the paper's architecture must work here
