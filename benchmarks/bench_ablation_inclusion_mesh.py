"""Ablation: Theorem 2's mesh-spacing trade-off for the controller inclusion.

Sweeps the mesh spacing ``s`` of the Chebyshev-approximation LP and checks
the paper's Remark 1 empirically: the verified error bound
``sigma* = sigma~ + sL/2`` tightens monotonically as ``s`` shrinks (at the
cost of a larger LP), and the sampled true error always lies inside the
``[sigma~, sigma*]`` sandwich.

Run:  pytest benchmarks/bench_ablation_inclusion_mesh.py --benchmark-only
"""

import numpy as np
import pytest

from table1_common import bench_scale

from repro.controllers import NNController, polynomial_inclusion
from repro.sets import Box

# the 0.05 mesh (40k LP rows) is worth the wait only at paper scale
SPACINGS = (0.8, 0.4, 0.2, 0.1, 0.05) if bench_scale() == "paper" else (
    0.8, 0.4, 0.2, 0.1,
)


@pytest.fixture(scope="module")
def controller_and_domain():
    rng = np.random.default_rng(7)
    domain = Box.cube(2, -2.0, 2.0)
    controller = NNController(2, 1, hidden=(10,), rng=rng)
    test_pts = domain.sample(20_000, rng=rng)
    return controller, domain, test_pts


@pytest.mark.parametrize("spacing", SPACINGS)
def test_mesh_spacing_sweep(benchmark, controller_and_domain, spacing):
    controller, domain, test_pts = controller_and_domain
    inc = benchmark.pedantic(
        polynomial_inclusion,
        args=(controller, domain),
        kwargs=dict(degree=2, spacing=spacing),
        rounds=1,
        iterations=1,
    )
    true_err = float(
        np.max(np.abs(controller(test_pts)[:, 0] - inc.polynomials[0](test_pts)))
    )
    benchmark.extra_info.update(
        {
            "spacing": inc.spacing,
            "mesh_points": inc.n_mesh_points,
            "sigma_tilde": round(inc.sigma_tilde[0], 5),
            "sigma_star": round(inc.sigma_star[0], 5),
            "true_err_sampled": round(true_err, 5),
        }
    )
    # Theorem 2 sandwich on sampled truth
    assert true_err <= inc.sigma_star[0] + 1e-9
    _RESULTS[spacing] = inc.sigma_star[0]


_RESULTS = {}


def test_sigma_star_monotone_in_spacing(benchmark):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if len(_RESULTS) < len(SPACINGS):
        pytest.skip("sweep benches did not run")
    stars = [_RESULTS[s] for s in SPACINGS]
    # finer mesh (later entries) -> tighter verified bound
    for coarse, fine in zip(stars, stars[1:]):
        assert fine <= coarse + 1e-9
