"""Shared helpers for the Table 1 reproduction harness.

Scale control: set ``REPRO_BENCH_SCALE=paper`` for the full protocol
(all 14 systems, paper-size budgets) or leave the default ``smoke`` for a
laptop-/CI-friendly subset with reduced budgets.  Every bench prints the
rows it reproduces so the output can be compared against the paper's
table by eye.
"""

from __future__ import annotations

import dataclasses
import os
import time
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.benchmarks import BenchmarkSpec, get_benchmark
from repro.cegis import SNBC, SNBCResult
from repro.controllers import NNController, PolynomialInclusion, polynomial_inclusion
from repro.diagnostics import (
    audit_certificate,
    bench_entry,
    result_outcome,
    write_audit,
    write_bench,
)
from repro.telemetry import session as telemetry_session
from repro.telemetry.context import TraceContext
from repro.telemetry.profiler import (
    SamplingProfiler,
    reset_active_profiler,
    set_active_profiler,
)

#: every Table-1 run emits its trace + manifest here (overwritten per run)
TELEMETRY_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "results", "telemetry"
)
RESULTS_DIR = os.path.normpath(os.path.join(TELEMETRY_DIR, os.pardir))

#: trace byte bound per run so long sweeps cannot fill the disk silently;
#: override with REPRO_TRACE_MAX_BYTES (0 disables the bound)
DEFAULT_TRACE_MAX_BYTES = 64 * 1024 * 1024


def trace_max_bytes() -> Optional[int]:
    raw = os.environ.get("REPRO_TRACE_MAX_BYTES")
    if raw is None:
        return DEFAULT_TRACE_MAX_BYTES
    value = int(raw)
    return value if value > 0 else None

#: bench rows accumulated by :func:`run_snbc` this process, keyed by system
BENCH_ROWS: Dict[str, dict] = {}


def bench_scale() -> str:
    """Current harness scale: ``smoke`` (default) or ``paper``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if scale not in ("smoke", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke|paper, got {scale!r}")
    return scale


#: Table 1 rows exercised per scale.  The smoke subset spans every
#: dimension class (2, 3, 4, 5, 6, 7, 9, 12) while staying CI-friendly.
SMOKE_SYSTEMS = ["C1", "C3", "C6", "C7", "C8", "C9", "C10", "C12"]
PAPER_SYSTEMS = [f"C{i}" for i in range(1, 15)]


def systems_for_scale(scale: Optional[str] = None) -> List[str]:
    scale = scale or bench_scale()
    return PAPER_SYSTEMS if scale == "paper" else SMOKE_SYSTEMS


#: systems where interval/SMT-style verification is expected to blow up
#: (the paper's OT rows for FOSSIL start at n_x = 5)
SMT_FEASIBLE_SYSTEMS = {"C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8"}


@lru_cache(maxsize=None)
def prepared(name: str) -> Tuple[BenchmarkSpec, object, NNController]:
    """Cache (spec, problem, trained controller) per system so the four
    per-tool benches attack identical instances."""
    spec = get_benchmark(name)
    problem = spec.make_problem()
    controller = spec.make_controller()
    return spec, problem, controller


@lru_cache(maxsize=None)
def prepared_inclusion(name: str) -> PolynomialInclusion:
    """Degree-2 polynomial inclusion shared by NNCChecker/SOSTOOLS benches."""
    spec, problem, controller = prepared(name)
    return polynomial_inclusion(
        controller,
        problem.psi,
        degree=spec.inclusion_degree,
        spacing=spec.inclusion_spacing,
        max_mesh_points=10_000,
        error_mode=spec.inclusion_error_mode,
    )


def run_snbc(
    name: str,
    scale: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    time_budget_s: Optional[float] = None,
    profile: bool = False,
    trace_ctx: Optional[TraceContext] = None,
    parallel_verify: Optional[bool] = None,
) -> SNBCResult:
    """One SNBC run with the spec's Table 1 configuration.

    Telemetry is on for every harness run: a JSONL span trace plus a run
    manifest land in ``results/telemetry/<name>-<scale>.jsonl`` /
    ``....manifest.json``, and a certificate audit artifact in
    ``....audit.json``; render all three with
    ``python -m repro.diagnostics.report results/telemetry/<name>-<scale>``.
    The run's BENCH row is accumulated in :data:`BENCH_ROWS` for
    :func:`emit_bench_document`.

    ``checkpoint_path``/``resume_from`` thread through to
    :meth:`SNBC.run` (see ``docs/robustness.md``); ``time_budget_s``
    arms the per-run deadline, so an overrun lands as a clean
    ``timeout`` row instead of an open-ended run.  ``profile=True``
    attaches the sampling profiler for the duration of the run and
    writes ``<base>.stacks.txt`` / ``<base>.profile.json`` next to the
    trace; the profiler is also registered as the context-active one, so
    samples from verifier pool workers fold into the same profile.

    ``trace_ctx`` (a parent process's
    :class:`~repro.telemetry.context.TraceContext`) makes this run a
    shard of the parent's trace: the session inherits the parent's
    ``trace_id`` and the parent merges this trace after the row
    completes.  ``parallel_verify`` (when not ``None``) overrides the
    spec's ``SNBCConfig.parallel_verify``.
    """
    scale = scale or bench_scale()
    spec, problem, controller = prepared(name)
    snbc_config = spec.snbc_config(scale)
    if checkpoint_path or time_budget_s:
        snbc_config = dataclasses.replace(
            snbc_config,
            checkpoint_path=checkpoint_path or snbc_config.checkpoint_path,
            time_budget_s=time_budget_s or snbc_config.time_budget_s,
        )
    if parallel_verify is not None:
        snbc_config = dataclasses.replace(
            snbc_config, parallel_verify=bool(parallel_verify)
        )
    learner_config = spec.learner_config()
    trace_path = os.path.join(
        os.path.normpath(TELEMETRY_DIR), f"{name}-{scale}.jsonl"
    )
    profiler = SamplingProfiler() if profile else None
    profiler_token = None
    try:
        if profiler is not None:
            profiler.start()
            profiler_token = set_active_profiler(profiler)
        with telemetry_session(
            trace_path,
            name=f"table1/{name}",
            config={
                "scale": scale,
                "snbc": snbc_config,
                "learner": learner_config,
            },
            seed=snbc_config.seed,
            max_bytes=trace_max_bytes(),
            trace_context=trace_ctx,
        ) as tel:
            snbc = SNBC(
                problem,
                controller=controller,
                learner_config=learner_config,
                config=snbc_config,
            )
            result = snbc.run(resume_from=resume_from)
            tel.manifest.finish(
                result_outcome(result),
                iterations=result.iterations,
                timings={
                    "inclusion": result.timings.inclusion,
                    "learning": result.timings.learning,
                    "counterexample": result.timings.counterexample,
                    "verification": result.timings.verification,
                    "total": result.timings.total,
                },
            )
    finally:
        if profiler_token is not None:
            reset_active_profiler(profiler_token)
        if profiler is not None:
            profiler.stop()
            paths = profiler.write(trace_path)
            print(f"[{name}] profile: {paths['stacks']} {paths['profile']}")
    # timeout/error runs may end before any candidate exists
    audit = (
        audit_certificate(result, problem)
        if result.barrier is not None
        else None
    )
    if audit is not None:
        write_audit(trace_path[: -len(".jsonl")] + ".audit.json", audit)
    BENCH_ROWS[name] = bench_entry(result, audit=audit)
    return result


def run_snbc_row(
    name: str,
    scale: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    time_budget_s: Optional[float] = None,
    profile: bool = False,
    trace_ctx: Optional[TraceContext] = None,
    submitted_at: Optional[float] = None,
    parallel_verify: Optional[bool] = None,
) -> Tuple[dict, bool, int, float]:
    """Process-pool entry point for parallel Table-1 rows: run one system
    and return its BENCH row plus the printable summary fields (the
    worker's module-global :data:`BENCH_ROWS` is not shared with the
    parent, so the row travels back in the return value).

    ``submitted_at`` (parent wall-clock at submit) yields the row's
    ``queue_wait_s`` — how long the row sat in the pool queue before a
    worker picked it up.  Keeping it separate stops queue wait from
    being conflated with run time in fleet throughput numbers; the
    regression gate ignores it (only the ``T_*`` timing keys gate).
    """
    queue_wait_s = (
        max(0.0, time.time() - submitted_at) if submitted_at is not None
        else None
    )
    result = run_snbc(
        name,
        scale,
        checkpoint_path=checkpoint_path,
        resume_from=resume_from,
        time_budget_s=time_budget_s,
        profile=profile,
        trace_ctx=trace_ctx,
        parallel_verify=parallel_verify,
    )
    row = BENCH_ROWS[name]
    if queue_wait_s is not None:
        row["queue_wait_s"] = round(queue_wait_s, 6)
    return (
        row,
        bool(result.success),
        int(result.iterations),
        float(result.timings.total),
    )


def emit_bench_document(out_path: Optional[str] = None,
                        scale: Optional[str] = None) -> str:
    """Write the accumulated :data:`BENCH_ROWS` as ``BENCH_table1.json``.

    The document is the regression gate's input — compare two with
    ``python -m repro.diagnostics.regress OLD.json NEW.json``.
    """
    out_path = out_path or os.path.join(RESULTS_DIR, "BENCH_table1.json")
    write_bench(out_path, BENCH_ROWS, scale or bench_scale())
    return out_path
