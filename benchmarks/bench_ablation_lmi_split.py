"""Ablation: candidate-then-check LMI split vs one-shot SOS synthesis.

Section 4.2's core design choice: because ``B`` is known after learning,
verification collapses into three small convex LMIs instead of one large
coupled SOS program with an unknown ``B``.  This bench measures both on
the same systems: ``verify(B)`` with the learned candidate versus the
direct SOSTOOLS-style synthesis, across dimensions.  The expected shape is
the paper's crossover — the split's advantage grows with ``n_x``.

Run:  pytest benchmarks/bench_ablation_lmi_split.py --benchmark-only
"""

import pytest

from table1_common import bench_scale, prepared, prepared_inclusion, run_snbc

from repro.baselines import SOSToolsBaseline, SOSToolsConfig
from repro.verifier import SOSVerifier

SYSTEMS = ["C1", "C6", "C9", "C10"] if bench_scale() == "smoke" else [
    "C1", "C3", "C6", "C8", "C9", "C10", "C12",
]

_SPLIT = {}
_JOINT = {}


@pytest.fixture(scope="module")
def certified():
    """Synthesize once per system so both arms verify the same candidate."""
    out = {}
    for name in SYSTEMS:
        result = run_snbc(name)
        assert result.success, f"setup failed on {name}"
        out[name] = result
    return out


@pytest.mark.parametrize("name", SYSTEMS)
def test_split_lmi_verification(benchmark, certified, name):
    """Arm A: the paper's three-LMI check of a known candidate."""
    spec, problem, controller = prepared(name)
    result = certified[name]
    verifier = SOSVerifier(
        problem, result.inclusion.polynomials, result.inclusion.sigma_star
    )
    outcome = benchmark.pedantic(
        verifier.verify, args=(result.barrier,), rounds=1, iterations=1
    )
    assert outcome.ok
    _SPLIT[name] = outcome.elapsed_seconds
    benchmark.extra_info["elapsed"] = round(outcome.elapsed_seconds, 4)


@pytest.mark.parametrize("name", SYSTEMS)
def test_joint_sos_synthesis(benchmark, name):
    """Arm B: one-shot SOS with unknown B (BMI side-stepped by fixed lambda)."""
    _, problem, _ = prepared(name)
    inclusion = prepared_inclusion(name)
    baseline = SOSToolsBaseline(
        problem,
        controller_polys=inclusion.polynomials,
        config=SOSToolsConfig(degrees=(2,), n_random_multipliers=2, time_limit=120.0),
    )
    result = benchmark.pedantic(baseline.run, rounds=1, iterations=1)
    _JOINT[name] = result.total_seconds
    benchmark.extra_info.update(
        {"status": result.status.value, "elapsed": round(result.total_seconds, 4)}
    )


def test_split_advantage_grows_with_dimension(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    common = [n for n in SYSTEMS if n in _SPLIT and n in _JOINT]
    if len(common) < 2:
        pytest.skip("arms did not both run")
    from repro.analysis import Table, format_table
    from repro.benchmarks import get_benchmark

    table = Table(
        columns=["Ex.", "n_x", "split verify (s)", "joint synth (s)", "ratio"],
        title="LMI split vs one-shot SOS",
    )
    ratios = []
    for name in common:
        n_x = get_benchmark(name).n_x
        ratio = _JOINT[name] / max(_SPLIT[name], 1e-9)
        ratios.append((n_x, ratio))
        table.add_row(
            **{
                "Ex.": name,
                "n_x": n_x,
                "split verify (s)": _SPLIT[name],
                "joint synth (s)": _JOINT[name],
                "ratio": ratio,
            }
        )
    with capsys.disabled():
        print()
        print(format_table(table))
    # the highest-dimension system should show a larger advantage than the
    # lowest-dimension one (the paper's crossover around n_x = 4)
    ratios.sort()
    assert ratios[-1][1] >= ratios[0][1] * 0.5  # allow noise, forbid inversion
