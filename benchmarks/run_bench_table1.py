"""Standalone Table-1 harness driver (no pytest-benchmark needed).

    python benchmarks/run_bench_table1.py --systems C1
    python benchmarks/run_bench_table1.py --out results/BENCH_table1.json
    python benchmarks/run_bench_table1.py --jobs 4
    python benchmarks/run_bench_table1.py --checkpoint-dir results/ckpt --resume
    python benchmarks/run_bench_table1.py --time-budget 600
    python benchmarks/run_bench_table1.py --profile
    REPRO_BENCH_SCALE=paper python benchmarks/run_bench_table1.py

Runs SNBC on the selected Table-1 systems with full telemetry (trace +
manifest + audit artifact per run under ``results/telemetry/``) and
writes the aggregate ``BENCH_table1.json`` for the regression gate
(``python -m repro.diagnostics.regress``).

One bad row never loses the table: a system that raises is recorded with
``outcome: "error"`` (exception class included) and the remaining rows
still run; deadline overruns (``--time-budget``) land as ``timeout``
rows (the paper's OOT).  In ``--jobs`` mode a dead worker is classified
as a ``WorkerCrash`` and the row is redelivered to a serial retry loop
governed by the same :class:`repro.resilience.RetryPolicy` the
certification service uses — transient kinds (``WorkerCrash``,
``SolverNumericalError``) retry with exponential backoff up to the
policy's attempt bound, terminal kinds fail fast — and every row
records ``retries`` (extra attempts consumed) and ``redelivered``
(whether it was pulled back from a dead worker).
``--checkpoint-dir``/``--resume`` continue interrupted runs
bit-identically (see ``docs/robustness.md``).  Exits nonzero when any
selected system fails to produce a certificate, so CI fails fast even
before the gate compares timings.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import table1_common
from table1_common import (
    bench_scale,
    emit_bench_document,
    run_snbc,
    run_snbc_row,
    systems_for_scale,
    trace_max_bytes,
)
from repro.diagnostics import error_entry, result_outcome
from repro.resilience import RetryPolicy, WorkerCrash
from repro.resilience.faults import fault_point
from repro.telemetry import session as telemetry_session
from repro.telemetry.context import capture as capture_trace_context, merge_shard


def _checkpoint_path(directory, name, scale):
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"{name}-{scale}.ckpt.json")


def _resume_path(directory, name, scale, resume):
    path = _checkpoint_path(directory, name, scale)
    if resume and path and os.path.exists(path):
        return path
    return None


def _parallel_verify_arg(args):
    """None unless --parallel-verify was given (None = keep the spec's
    default, so the flag's absence cannot flip a spec that enables it)."""
    return True if getattr(args, "parallel_verify", False) else None


def _run_one_serial(name, scale, args, failures):
    """Run one system in-process; any raise becomes an ``error`` row."""
    print(f"[{scale}] {name}: running SNBC ...", flush=True)
    try:
        result = run_snbc(
            name,
            scale,
            checkpoint_path=_checkpoint_path(args.checkpoint_dir, name, scale),
            resume_from=_resume_path(
                args.checkpoint_dir, name, scale, args.resume
            ),
            time_budget_s=args.time_budget,
            profile=getattr(args, "profile", False),
            parallel_verify=_parallel_verify_arg(args),
        )
    except Exception as exc:
        table1_common.BENCH_ROWS[name] = error_entry(exc)
        print(
            f"[{scale}] {name}: ERROR ({type(exc).__name__}: {exc})",
            flush=True,
        )
        failures.append(name)
        return
    outcome = result_outcome(result)
    status = "ok" if outcome == "success" else outcome.upper()
    print(
        f"[{scale}] {name}: {status}  iterations={result.iterations}  "
        f"T_e={result.timings.total:.3f}s",
        flush=True,
    )
    if outcome != "success":
        failures.append(name)


def _run_trace_path(name, scale):
    return os.path.join(
        os.path.normpath(table1_common.TELEMETRY_DIR), f"{name}-{scale}.jsonl"
    )


#: the same policy the certification service applies to its workers —
#: WorkerCrash/SolverNumericalError retry with backoff, everything else
#: fails fast; bench rows are cheap enough for short backoff floors
BENCH_RETRY_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.1,
                                 max_delay_s=2.0)


def _annotate_row(name, retries, redelivered):
    """Record retry accounting on a completed BENCH row."""
    row = table1_common.BENCH_ROWS.get(name)
    if isinstance(row, dict):
        row["retries"] = int(retries)
        row["redelivered"] = bool(redelivered)


def _run_serial_with_retry(name, scale, args, failures,
                           policy=BENCH_RETRY_POLICY, redelivered=False):
    """Serial execution of one row under the shared retry policy.

    Each attempt that ends in an ``error`` row whose kind the policy
    classifies transient is retried after the policy's backoff delay;
    terminal kinds (and plain unsuccessful outcomes, which are results,
    not failures) are recorded as-is.
    """
    attempt = 0
    while True:
        attempt += 1
        attempt_failures = []
        _run_one_serial(name, scale, args, attempt_failures)
        row = table1_common.BENCH_ROWS.get(name) or {}
        error = row.get("error") if isinstance(row, dict) else None
        kind = error.get("kind") if isinstance(error, dict) else None
        if (
            not attempt_failures
            or kind is None
            or not policy.should_retry_kind(kind, attempt)
        ):
            _annotate_row(name, attempt - 1, redelivered)
            if attempt_failures:
                failures.append(name)
            return
        delay = policy.delay_s(attempt, token=name)
        print(
            f"[{scale}] {name}: transient {kind} on attempt {attempt}; "
            f"retrying in {delay:.2f}s "
            f"({attempt}/{policy.max_attempts})",
            flush=True,
        )
        time.sleep(delay)


def _run_parallel(names, scale, args) -> list:
    """Run Table-1 rows in a process pool; returns failed system names.

    Each system is an independent SNBC run (separate telemetry files,
    deterministic seeds), so rows are embarrassingly parallel; the
    workers' BENCH rows are merged back into this process before the
    document is emitted.  A future whose worker died is recorded as a
    ``WorkerCrash`` and redelivered to the shared-policy serial retry
    loop (:data:`BENCH_RETRY_POLICY`); other per-row raises become
    ``error`` rows.  Raises only when the pool cannot start at all —
    the caller then falls back to the serial loop.

    The driver itself runs a telemetry session
    (``results/telemetry/bench-<scale>.jsonl``, manifest role
    ``bench_parent``): every submission happens under a ``bench.row``
    span whose :class:`TraceContext` travels to the worker, and each
    completed row's trace is merged back as a shard — one unified trace
    across the whole fleet, plus a live ``bench-<scale>.status.json``
    heartbeat with per-row worker liveness for
    ``python -m repro.telemetry.tail``.
    """
    import concurrent.futures
    from concurrent.futures.process import BrokenProcessPool

    failures = []
    retry_serially = []
    bench_trace = _run_trace_path("bench", scale)
    with telemetry_session(
        bench_trace,
        name=f"table1-bench/{scale}",
        config={"scale": scale, "jobs": args.jobs, "systems": list(names)},
        max_bytes=trace_max_bytes(),
        role="bench_parent",
    ) as tel:
        tel.status_update(
            force=True, phase="bench", total_rows=len(names), completed_rows=0
        )
        completed = 0
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=args.jobs
        ) as pool:
            futures = {}
            for i, name in enumerate(names):
                with tel.span("bench.row", system=name, shard=i):
                    ctx = capture_trace_context(shard_index=i)
                    fut = pool.submit(
                        run_snbc_row,
                        name,
                        scale,
                        checkpoint_path=_checkpoint_path(
                            args.checkpoint_dir, name, scale
                        ),
                        resume_from=_resume_path(
                            args.checkpoint_dir, name, scale, args.resume
                        ),
                        time_budget_s=args.time_budget,
                        profile=getattr(args, "profile", False),
                        trace_ctx=ctx,
                        submitted_at=time.time(),
                        parallel_verify=_parallel_verify_arg(args),
                    )
                futures[fut] = name
                tel.status_worker(name, state="submitted", shard_index=i)
            for fut in concurrent.futures.as_completed(futures):
                name = futures[fut]
                try:
                    fault_point("bench.pool")
                    row, success, iterations, total = fut.result()
                except BrokenProcessPool as exc:
                    # the worker died (OOM kill, segfault): classify the
                    # row and redeliver it to the shared-policy serial
                    # retry loop in this process
                    crash = WorkerCrash(
                        f"pool worker died while running {name}: {exc}",
                        cause=exc,
                        system=name,
                    )
                    table1_common.BENCH_ROWS[name] = error_entry(crash)
                    print(
                        f"[{scale}] {name}: WORKER CRASH ({exc}); "
                        "redelivering to serial retry",
                        flush=True,
                    )
                    retry_serially.append(name)
                    tel.status_worker(name, state="crashed")
                    continue
                except Exception as exc:
                    table1_common.BENCH_ROWS[name] = error_entry(exc)
                    print(
                        f"[{scale}] {name}: ERROR "
                        f"({type(exc).__name__}: {exc})",
                        flush=True,
                    )
                    failures.append(name)
                    tel.status_worker(name, state="error")
                    _annotate_row(name, 0, False)
                    continue
                finally:
                    completed += 1
                    tel.status_update(completed_rows=completed)
                table1_common.BENCH_ROWS[name] = row
                _annotate_row(name, 0, False)
                # fold the worker run's trace into the bench trace (the
                # run's own artifacts stay on disk untouched)
                merge_shard(tel, _run_trace_path(name, scale), keep=True)
                outcome = row.get(
                    "outcome", "success" if success else "failure"
                )
                status = "ok" if outcome == "success" else outcome.upper()
                tel.status_worker(
                    name,
                    state="done",
                    outcome=outcome,
                    queue_wait_s=row.get("queue_wait_s"),
                )
                print(
                    f"[{scale}] {name}: {status}  iterations={iterations}  "
                    f"T_e={total:.3f}s",
                    flush=True,
                )
                if outcome != "success":
                    failures.append(name)
        for name in retry_serially:
            # overwrites the WorkerCrash row when a retry completes;
            # backoff/attempt bounds come from the shared policy
            _run_serial_with_retry(
                name, scale, args, failures, redelivered=True
            )
        tel.manifest.finish(
            "success" if not failures else "failure",
            failed_systems=list(failures),
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--systems", default=None,
                        help="comma-separated subset (default: all for the "
                             "current REPRO_BENCH_SCALE)")
    parser.add_argument("--out", default=None,
                        help="BENCH document path "
                             "(default results/BENCH_table1.json)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run systems in a process pool of this size "
                             "(default 1: serial)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="write per-system CEGIS checkpoints under this "
                             "directory (<name>-<scale>.ckpt.json)")
    parser.add_argument("--resume", action="store_true",
                        help="resume each system from its checkpoint in "
                             "--checkpoint-dir when one exists")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="per-system wall-clock budget in seconds; "
                             "overruns are recorded as 'timeout' rows")
    parser.add_argument("--profile", action="store_true",
                        help="attach the sampling profiler to each run and "
                             "write <base>.stacks.txt / <base>.profile.json "
                             "next to its trace.  The profiler samples one "
                             "process: with --jobs each row is profiled "
                             "inside its worker and the driver process "
                             "itself is not sampled; verifier-pool worker "
                             "samples are folded into the owning run's "
                             "profile via the trace-context merge")
    parser.add_argument("--parallel-verify", action="store_true",
                        help="override each spec to solve the verifier's "
                             "condition SDPs in a process pool "
                             "(SNBCConfig.parallel_verify=True); worker "
                             "spans/metrics merge into the run trace")
    args = parser.parse_args(argv)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    if args.profile and (args.jobs > 1 or args.parallel_verify):
        print(
            "warning: --profile samples one process at a time — the driver "
            "is not profiled under --jobs; pool-worker samples are merged "
            "into each run's profile by the trace-context layer",
            file=sys.stderr,
        )

    scale = bench_scale()
    names = (
        [s.strip() for s in args.systems.split(",") if s.strip()]
        if args.systems
        else systems_for_scale(scale)
    )
    failures = None
    if args.jobs > 1 and len(names) > 1:
        try:
            failures = _run_parallel(names, scale, args)
        except Exception as exc:  # pool unavailable -> serial fallback
            print(f"process pool failed ({exc}); running serially", flush=True)
            failures = None
    if failures is None:
        failures = []
        for name in names:
            _run_one_serial(name, scale, args, failures)

    out = emit_bench_document(args.out, scale)
    print(f"BENCH document written to {out}")
    if failures:
        print(f"FAILED systems: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
