"""Standalone Table-1 harness driver (no pytest-benchmark needed).

    python benchmarks/run_bench_table1.py --systems C1
    python benchmarks/run_bench_table1.py --out results/BENCH_table1.json
    REPRO_BENCH_SCALE=paper python benchmarks/run_bench_table1.py

Runs SNBC on the selected Table-1 systems with full telemetry (trace +
manifest + audit artifact per run under ``results/telemetry/``) and
writes the aggregate ``BENCH_table1.json`` for the regression gate
(``python -m repro.diagnostics.regress``).  Exits nonzero when any
selected system fails to synthesize a certificate, so CI fails fast even
before the gate compares timings.
"""

from __future__ import annotations

import argparse
import sys

from table1_common import (
    bench_scale,
    emit_bench_document,
    run_snbc,
    systems_for_scale,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--systems", default=None,
                        help="comma-separated subset (default: all for the "
                             "current REPRO_BENCH_SCALE)")
    parser.add_argument("--out", default=None,
                        help="BENCH document path "
                             "(default results/BENCH_table1.json)")
    args = parser.parse_args(argv)

    scale = bench_scale()
    names = (
        [s.strip() for s in args.systems.split(",") if s.strip()]
        if args.systems
        else systems_for_scale(scale)
    )
    failures = []
    for name in names:
        print(f"[{scale}] {name}: running SNBC ...", flush=True)
        result = run_snbc(name, scale)
        status = "ok" if result.success else "FAILED"
        print(
            f"[{scale}] {name}: {status}  iterations={result.iterations}  "
            f"T_e={result.timings.total:.3f}s",
            flush=True,
        )
        if not result.success:
            failures.append(name)

    out = emit_bench_document(args.out, scale)
    print(f"BENCH document written to {out}")
    if failures:
        print(f"FAILED systems: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
