"""Standalone Table-1 harness driver (no pytest-benchmark needed).

    python benchmarks/run_bench_table1.py --systems C1
    python benchmarks/run_bench_table1.py --out results/BENCH_table1.json
    python benchmarks/run_bench_table1.py --jobs 4
    REPRO_BENCH_SCALE=paper python benchmarks/run_bench_table1.py

Runs SNBC on the selected Table-1 systems with full telemetry (trace +
manifest + audit artifact per run under ``results/telemetry/``) and
writes the aggregate ``BENCH_table1.json`` for the regression gate
(``python -m repro.diagnostics.regress``).  Exits nonzero when any
selected system fails to synthesize a certificate, so CI fails fast even
before the gate compares timings.
"""

from __future__ import annotations

import argparse
import sys

import table1_common
from table1_common import (
    bench_scale,
    emit_bench_document,
    run_snbc,
    run_snbc_row,
    systems_for_scale,
)


def _run_parallel(names, scale, jobs) -> list:
    """Run Table-1 rows in a process pool; returns failed system names.

    Each system is an independent SNBC run (separate telemetry files,
    deterministic seeds), so rows are embarrassingly parallel; the
    workers' BENCH rows are merged back into this process before the
    document is emitted.  Raises on pool failure — the caller falls back
    to the serial loop.
    """
    import concurrent.futures

    failures = []
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(run_snbc_row, name, scale): name for name in names
        }
        for fut in concurrent.futures.as_completed(futures):
            name = futures[fut]
            row, success, iterations, total = fut.result()
            table1_common.BENCH_ROWS[name] = row
            status = "ok" if success else "FAILED"
            print(
                f"[{scale}] {name}: {status}  iterations={iterations}  "
                f"T_e={total:.3f}s",
                flush=True,
            )
            if not success:
                failures.append(name)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--systems", default=None,
                        help="comma-separated subset (default: all for the "
                             "current REPRO_BENCH_SCALE)")
    parser.add_argument("--out", default=None,
                        help="BENCH document path "
                             "(default results/BENCH_table1.json)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="run systems in a process pool of this size "
                             "(default 1: serial)")
    args = parser.parse_args(argv)

    scale = bench_scale()
    names = (
        [s.strip() for s in args.systems.split(",") if s.strip()]
        if args.systems
        else systems_for_scale(scale)
    )
    failures = None
    if args.jobs > 1 and len(names) > 1:
        try:
            failures = _run_parallel(names, scale, args.jobs)
        except Exception as exc:  # pool unavailable -> serial fallback
            print(f"process pool failed ({exc}); running serially", flush=True)
            failures = None
    if failures is None:
        failures = []
        for name in names:
            print(f"[{scale}] {name}: running SNBC ...", flush=True)
            result = run_snbc(name, scale)
            status = "ok" if result.success else "FAILED"
            print(
                f"[{scale}] {name}: {status}  iterations={result.iterations}  "
                f"T_e={result.timings.total:.3f}s",
                flush=True,
            )
            if not result.success:
                failures.append(name)

    out = emit_bench_document(args.out, scale)
    print(f"BENCH document written to {out}")
    if failures:
        print(f"FAILED systems: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
