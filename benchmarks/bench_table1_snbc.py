"""Table 1, SNBC columns: d_B, I_s, T_l, T_c, T_v, T_e per benchmark.

Reproduces the paper's headline rows: SNBC synthesizes a degree-2 neural
barrier certificate for every system, including the n_x >= 5 instances the
SMT-based tools cannot handle.  Absolute times differ from the paper
(different hardware and a pure-Python SDP solver); the shape to check is
success across all rows with verification dominated by small convex LMIs.

Run:  pytest benchmarks/bench_table1_snbc.py --benchmark-only
      REPRO_BENCH_SCALE=paper pytest benchmarks/bench_table1_snbc.py --benchmark-only
"""

import pytest

from table1_common import (
    bench_scale,
    emit_bench_document,
    run_snbc,
    systems_for_scale,
)

_RESULTS = {}


@pytest.mark.parametrize("name", systems_for_scale())
def test_snbc_table1_row(benchmark, name):
    result = benchmark.pedantic(run_snbc, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info.update(
        {
            "d_B": result.barrier.degree if result.success else None,
            "I_s": result.iterations,
            "T_l": round(result.timings.learning, 3),
            "T_c": round(result.timings.counterexample, 3),
            "T_v": round(result.timings.verification, 3),
            "T_e": round(result.timings.total, 3),
            "success": result.success,
        }
    )
    assert result.success, (
        f"SNBC failed on {name}: {result.verification.failed_conditions() if result.verification else '?'}"
    )
    assert result.barrier.degree == 2  # Table 1: d_B = 2 on every row


def test_snbc_table1_print(benchmark, capsys):
    """Render the collected rows in Table 1's layout."""
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if not _RESULTS:
        pytest.skip("row benches did not run")
    from repro.analysis import Table, format_table
    from repro.benchmarks import get_benchmark

    table = Table(
        columns=["Ex.", "n_x", "d_f", "NN_B", "NN_lambda", "d_B", "I_s",
                 "T_l", "T_c", "T_v", "T_e"],
        title=f"Table 1 / SNBC columns (scale={bench_scale()})",
    )
    for name, res in _RESULTS.items():
        meta = get_benchmark(name).table_row()
        table.add_row(
            **{
                "Ex.": name,
                "n_x": meta["n_x"],
                "d_f": meta["d_f"],
                "NN_B": meta["NN_B"],
                "NN_lambda": meta["NN_lambda"],
                "d_B": res.barrier.degree if res.success else None,
                "I_s": res.iterations,
                "T_l": res.timings.learning,
                "T_c": res.timings.counterexample,
                "T_v": res.timings.verification,
                "T_e": res.timings.total,
            }
        )
    with capsys.disabled():
        print()
        print(format_table(table))
        print(f"BENCH document written to {emit_bench_document()}")
