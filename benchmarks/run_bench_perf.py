"""Hot-path microbenchmark driver.

    python benchmarks/run_bench_perf.py
    python benchmarks/run_bench_perf.py --out results/BENCH_perf.json
    python benchmarks/run_bench_perf.py --baseline   # refresh the committed baseline
    python benchmarks/run_bench_perf.py --profile    # collapsed stacks for the suite

Runs the :mod:`repro.diagnostics.perfbench` suite — each bench times one
pipeline hot path with the performance layer on and off and checks the
two paths produce identical results — and writes a ``BENCH_perf.json``
document.  Gate a run against the committed baseline with::

    python -m repro.diagnostics.regress results/BENCH_perf_baseline.json \
        results/BENCH_perf.json --max-slowdown 3.0

Exits nonzero when any bench's optimized path diverged from its
reference path, so CI fails even before the regress gate runs.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.diagnostics.perfbench import run_suite, write_perf

RESULTS_DIR = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "results")
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--out", default=None,
                        help="output path (default results/BENCH_perf.json)")
    parser.add_argument("--baseline", action="store_true",
                        help="write results/BENCH_perf_baseline.json instead")
    parser.add_argument("--profile", action="store_true",
                        help="attach the sampling profiler to the suite and "
                             "write perf-suite.stacks.txt / .profile.json "
                             "under results/telemetry/.  Samples this "
                             "(parent) process only — stacks inside any "
                             "process-pool workers a bench spawns are "
                             "merged only if that path uses the telemetry "
                             "trace-context layer")
    args = parser.parse_args(argv)

    out = args.out or os.path.join(
        RESULTS_DIR,
        "BENCH_perf_baseline.json" if args.baseline else "BENCH_perf.json",
    )
    if args.profile:
        from repro.telemetry.profiler import (
            SamplingProfiler,
            reset_active_profiler,
            set_active_profiler,
        )

        print(
            "warning: --profile samples the parent process only; "
            "pool-worker stacks merge in only via the trace-context layer",
            file=sys.stderr,
        )
        profile_base = os.path.join(RESULTS_DIR, "telemetry", "perf-suite")
        os.makedirs(os.path.dirname(profile_base), exist_ok=True)
        with SamplingProfiler() as profiler:
            # register as the context-active profiler so any traced pool
            # fan-out inside the suite folds its worker samples in
            token = set_active_profiler(profiler)
            try:
                doc = run_suite()
            finally:
                reset_active_profiler(token)
        paths = profiler.write(profile_base)
        print(f"profile: {paths['stacks']} {paths['profile']}")
    else:
        doc = run_suite()
    write_perf(out, doc)

    divergent = []
    for name, row in sorted(doc["benches"].items()):
        flag = "ok" if row["identical"] else "DIVERGED"
        print(
            f"{name:<18} optimized={row['seconds']:.3f}s "
            f"reference={row['reference_seconds']:.3f}s "
            f"speedup={row['speedup']}x  {flag}",
            flush=True,
        )
        if not row["identical"]:
            divergent.append(name)
    print(f"BENCH_perf document written to {out}")
    if divergent:
        print(f"DIVERGED benches: {', '.join(divergent)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
