"""Table 1 aggregate claims: coverage and relative speed of the four tools.

The paper's summary statements:

* SNBC handles all 14 systems; FOSSIL finds 8, NNCChecker 9, SOSTOOLS 10;
* on the jointly-solved systems SNBC is orders of magnitude faster than
  FOSSIL and much faster than NNCChecker;
* SOSTOOLS beats SNBC for n_x <= 3 but loses from n_x >= 4.

This bench runs all four tools on a common subset and prints the merged
table plus the measured ratios.  With scaled-down budgets the *ordering*
is the reproduction target, not the paper's exact multipliers.

Run:  pytest benchmarks/bench_table1_summary.py --benchmark-only
"""

import pytest

from table1_common import bench_scale, prepared, prepared_inclusion, systems_for_scale

from repro.baselines import (
    BaselineStatus,
    FossilBaseline,
    FossilConfig,
    NNCCheckerBaseline,
    NNCCheckerConfig,
    SOSToolsBaseline,
    SOSToolsConfig,
)
from repro.cegis import SNBC


def _subset():
    names = systems_for_scale()
    if bench_scale() == "smoke":
        # one low-dim (SMT-feasible) and one mid-dim system keep this cheap
        return [n for n in names if n in ("C1", "C3", "C6", "C9")]
    return names


def _run_all(name):
    spec, problem, controller = prepared(name)
    inclusion = prepared_inclusion(name)
    out = {}
    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config(bench_scale()),
    ).run()
    out["snbc"] = ("ok" if snbc.success else "fail", snbc.timings.total)
    fossil = FossilBaseline(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=FossilConfig(delta=2e-2, max_boxes_per_check=40_000, time_limit=60.0, seed=0),
    ).run()
    out["fossil"] = (fossil.status.value, fossil.total_seconds)
    nnc = NNCCheckerBaseline(
        problem,
        controller=controller,
        controller_polys=inclusion.polynomials,
        config=NNCCheckerConfig(delta=2e-2, max_boxes_per_check=40_000, time_limit=60.0, seed=0),
    ).run()
    out["nncchecker"] = (nnc.status.value, nnc.total_seconds)
    sos = SOSToolsBaseline(
        problem,
        controller_polys=inclusion.polynomials,
        config=SOSToolsConfig(degrees=(2,), n_random_multipliers=3, time_limit=120.0, seed=0),
    ).run()
    out["sostools"] = (sos.status.value, sos.total_seconds)
    return out


_ROWS = {}


@pytest.mark.parametrize("name", _subset())
def test_summary_row(benchmark, name):
    row = benchmark.pedantic(_run_all, args=(name,), rounds=1, iterations=1)
    _ROWS[name] = row
    benchmark.extra_info.update({k: v[0] for k, v in row.items()})
    # SNBC must solve every row it is given (the paper's 14/14 claim)
    assert row["snbc"][0] == "ok"


def test_summary_print_and_claims(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if not _ROWS:
        pytest.skip("row benches did not run")
    from repro.analysis import Table, format_table

    table = Table(
        columns=["Ex.", "SNBC", "T(SNBC)", "FOSSIL", "T(F)", "NNCChecker", "T(N)",
                 "SOSTOOLS", "T(S)"],
        title=f"Table 1 merged summary (scale={bench_scale()})",
    )
    for name, row in _ROWS.items():
        table.add_row(
            **{
                "Ex.": name,
                "SNBC": row["snbc"][0],
                "T(SNBC)": row["snbc"][1],
                "FOSSIL": row["fossil"][0],
                "T(F)": row["fossil"][1],
                "NNCChecker": row["nncchecker"][0],
                "T(N)": row["nncchecker"][1],
                "SOSTOOLS": row["sostools"][0],
                "T(S)": row["sostools"][1],
            }
        )
    lines = [format_table(table)]

    # coverage claim: SNBC solves at least as many rows as any baseline
    solved = {
        tool: sum(1 for r in _ROWS.values() if r[tool][0] in ("ok", "success"))
        for tool in ("snbc", "fossil", "nncchecker", "sostools")
    }
    lines.append(f"\nsolved: {solved}")
    assert solved["snbc"] >= max(solved["fossil"], solved["nncchecker"], solved["sostools"])

    # speed claim on jointly solved systems (paper: 922x vs FOSSIL, 25.6x vs
    # NNCChecker on its testbed; here the ordering is the target)
    joint_f = [
        (r["snbc"][1], r["fossil"][1])
        for r in _ROWS.values()
        if r["snbc"][0] == "ok" and r["fossil"][0] == "success"
    ]
    if joint_f:
        ratio = sum(f for _, f in joint_f) / max(sum(s for s, _ in joint_f), 1e-9)
        lines.append(f"FOSSIL/SNBC mean time ratio on jointly solved rows: {ratio:.1f}x")
        assert ratio > 1.0, "SNBC should be faster than FOSSIL-style CEGIS"
    with capsys.disabled():
        print()
        print("\n".join(lines))
