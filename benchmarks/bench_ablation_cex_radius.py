"""Ablation: gamma-ball counterexample sets vs single worst points.

Section 4.3 argues that sampling a maximal ball around the worst
counterexample "effectively reduces the number of guided iterations".
This bench runs the same CEGIS instance with (a) the full gamma-ball
generator and (b) a crippled generator that returns only the single worst
point, and compares iterations to success.

Run:  pytest benchmarks/bench_ablation_cex_radius.py --benchmark-only
"""

import pytest

from table1_common import prepared

from repro.cegis import CexConfig, SNBC
from repro.learner import LearnerConfig

#: a harder instance (random init, no warm start, short training, sparse
#: samples) so CEGIS actually iterates and the cex strategy matters
def _make_snbc(name, cex_config, seed=5):
    from repro.cegis import SNBCConfig

    spec, problem, controller = prepared(name)
    return SNBC(
        problem,
        controller=controller,
        learner_config=LearnerConfig(
            b_hidden=spec.b_hidden,
            lambda_hidden=spec.lambda_hidden,
            epochs=60,
            warm_start=False,
            seed=seed,
        ),
        cex_config=cex_config,
        config=SNBCConfig(max_iterations=10, n_samples=150, seed=seed),
    )


_ITER = {}


@pytest.mark.parametrize("mode", ["ball", "single"])
def test_cex_mode(benchmark, mode):
    if mode == "ball":
        cex_cfg = CexConfig(n_points=40, gamma_max=1.0, seed=0)
    else:
        # single worst point: zero radius, one point per violation
        cex_cfg = CexConfig(n_points=1, gamma_max=1e-9, seed=0)
    snbc = _make_snbc("C7", cex_cfg)
    result = benchmark.pedantic(snbc.run, rounds=1, iterations=1)
    _ITER[mode] = (result.success, result.iterations, sum(r.n_counterexamples for r in result.history))
    benchmark.extra_info.update(
        {
            "success": result.success,
            "iterations": result.iterations,
            "total_cex_points": _ITER[mode][2],
        }
    )


def test_ball_mode_needs_no_more_iterations(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if len(_ITER) < 2:
        pytest.skip("mode benches did not run")
    ball_ok, ball_iters, ball_pts = _ITER["ball"]
    single_ok, single_iters, single_pts = _ITER["single"]
    with capsys.disabled():
        print(
            f"\ncex ablation: ball -> success={ball_ok} iters={ball_iters} "
            f"({ball_pts} points); single -> success={single_ok} "
            f"iters={single_iters} ({single_pts} points)"
        )
    # the gamma-ball variant must not be worse, and when both succeed it
    # should use no more CEGIS rounds (the paper's claim)
    if single_ok:
        assert ball_ok
        assert ball_iters <= single_iters
    else:
        assert ball_ok or ball_iters >= single_iters
