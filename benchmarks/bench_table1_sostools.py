"""Table 1, SOSTOOLS column: direct one-shot SOS synthesis.

Paper shape: direct synthesis succeeds on 10/14 rows but is *faster* than
SNBC for n_x <= 3 and sharply *slower* from n_x >= 4 onward (the one big
LMI couples B with every multiplier; SNBC's candidate-then-check splits it
into small per-condition problems).  The crossover is the result to watch.

Run:  pytest benchmarks/bench_table1_sostools.py --benchmark-only
"""

import pytest

from table1_common import bench_scale, prepared, prepared_inclusion, systems_for_scale

from repro.baselines import BaselineStatus, SOSToolsBaseline, SOSToolsConfig

_RESULTS = {}


def _budget() -> SOSToolsConfig:
    if bench_scale() == "paper":
        return SOSToolsConfig(
            degrees=(2, 4), n_random_multipliers=3, time_limit=600.0, seed=0
        )
    return SOSToolsConfig(
        degrees=(2,), n_random_multipliers=3, time_limit=120.0, seed=0
    )


def _run(name: str):
    _, problem, _ = prepared(name)
    inclusion = prepared_inclusion(name)
    return SOSToolsBaseline(
        problem, controller_polys=inclusion.polynomials, config=_budget()
    ).run()


@pytest.mark.parametrize("name", systems_for_scale())
def test_sostools_table1_row(benchmark, name):
    result = benchmark.pedantic(_run, args=(name,), rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info.update(
        {
            "status": result.status.value,
            "attempts": result.iterations,
            "T_e": round(result.total_seconds, 3),
            "d_B": result.degree,
        }
    )
    # any status is a legal Table 1 cell (ok / x / OT); record only
    assert result.status in tuple(BaselineStatus)


def test_sostools_table1_print(benchmark, capsys):
    benchmark(lambda: None)  # aggregate check; keep visible under --benchmark-only
    if not _RESULTS:
        pytest.skip("row benches did not run")
    from repro.analysis import Table, format_table

    table = Table(
        columns=["Ex.", "status", "d_B", "attempts", "T_e"],
        title=f"Table 1 / SOSTOOLS column (scale={bench_scale()})",
    )
    for name, res in _RESULTS.items():
        table.add_row(
            **{
                "Ex.": name,
                "status": res.status.value,
                "d_B": res.degree,
                "attempts": res.iterations,
                "T_e": res.total_seconds,
            }
        )
    with capsys.disabled():
        print()
        print(format_table(table))
