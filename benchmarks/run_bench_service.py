#!/usr/bin/env python
"""Service load generator + chaos bench: emit ``BENCH_service.json``.

Drives one :class:`repro.service.CertificationService` batch of cheap
deterministic verify jobs (real SOS certificates, exact recheck) and
records what the fault-tolerance machinery did::

    python benchmarks/run_bench_service.py --jobs 20 --workers 2 \
        --kill-worker 2 --corrupt-cache --out results/BENCH_service.json

* ``--kill-worker K`` arms ``service.worker_kill_mid_job`` on worker
  slot 0's K-th job (the supervisor must redeliver + respawn);
* ``--corrupt-cache`` pre-seeds one job's cache entry with a corrupted
  certificate (inflated margin claim, recomputed digest) — the read-
  time exact recheck must evict it and the job recompute;
* ``--serial-check`` also runs the same batch serially, fault-free, in
  a fresh root and asserts every successful payload is **bitwise
  identical** (sha256 over canonical JSON) to the serial result;
* ``--repeat`` re-submits the identical batch against the same root
  afterwards and records the cache hit rate (100% expected).

The emitted document is gated by ``python -m repro.diagnostics.regress``
(kind auto-detected): hard on invariants — every job terminal, zero
corrupt entries served, serial identity — soft on chaos counters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.diagnostics.servicebench import service_doc, write_service_bench
from repro.service import (
    CertificateCache,
    CertificationService,
    ServiceConfig,
    make_verify_request,
    run_service,
)
from repro.service.cache import payload_digest
from repro.soundness import bundle_from_dict, bundle_to_dict


def corrupt_cache_entry(root: str, request) -> str:
    """Plant a *self-consistent* corrupted entry for ``request``: the
    certificate's first margin claim is inflated and the payload digest
    recomputed, so only the exact recheck can reject it."""
    seed_root = root + ".seed"
    run_service(seed_root, [request], ServiceConfig(workers=0))
    donor = CertificateCache(seed_root + "/cache", verify_on_read=False)
    payload = donor.get(request)
    assert payload and payload.get("bundle"), "seed run produced no bundle"
    bundle = bundle_from_dict(payload["bundle"])
    bundle.conditions[0].margin = float(bundle.conditions[0].margin) + 10.0
    payload["bundle"] = bundle_to_dict(bundle)
    target = CertificateCache(os.path.join(root, "cache"),
                              verify_on_read=False)
    return target.put(request, payload)


def payload_hash(payload) -> str:
    return payload_digest(payload) if payload is not None else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=20)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-worker", type=int, metavar="K", default=0,
                        help="kill worker slot 0 on its K-th job (0=off)")
    parser.add_argument("--corrupt-cache", action="store_true",
                        help="pre-seed one corrupted cache entry")
    parser.add_argument("--serial-check", action="store_true",
                        help="compare payloads against a fault-free "
                             "serial run (bitwise, via canonical sha256)")
    parser.add_argument("--repeat", action="store_true",
                        help="re-run the identical batch and record the "
                             "cache hit rate")
    parser.add_argument("--root", default="results/service_bench",
                        help="service root directory")
    parser.add_argument("--out", default="results/BENCH_service.json")
    parser.add_argument("--max-redeliveries", type=int, default=2)
    args = parser.parse_args(argv)

    requests = [make_verify_request(seed=i) for i in range(args.jobs)]

    corrupted_key = None
    if args.corrupt_cache:
        corrupted_key = corrupt_cache_entry(args.root, requests[0])
        print(f"planted corrupted cache entry {corrupted_key[:16]}")

    worker_faults = ()
    if args.kill_worker:
        worker_faults = (
            {"site": "service.worker_kill_mid_job",
             "at_call": args.kill_worker},
        )
    config = ServiceConfig(
        workers=args.workers,
        max_redeliveries=args.max_redeliveries,
        worker_faults=worker_faults,
    )
    results = run_service(args.root, requests, config)
    counts = results["counts"]
    evictions = results["cache_evictions"]
    print(f"batch done: {counts}")

    # collect per-job rows + payload hashes from the (verified) cache
    cache = CertificateCache(os.path.join(args.root, "cache"))
    jobs = {}
    hashes = {}
    for request in requests:
        key = request.key()
        row = dict(results["jobs"][key])
        payload = cache.get(request)
        row["payload_sha256"] = payload_hash(payload)
        row["serial_match"] = None
        jobs[key] = row
        hashes[key] = row["payload_sha256"]

    # invariant: the corrupted entry was evicted, never served
    no_corrupt_served = True
    if corrupted_key is not None:
        evicted = any(e["key"] == corrupted_key for e in evictions)
        recomputed = jobs[corrupted_key]["status"] == "success"
        no_corrupt_served = evicted and recomputed
        print(f"corrupted entry evicted={evicted} recomputed={recomputed}")

    serial_identical = None
    if args.serial_check:
        serial_root = args.root + ".serial"
        serial_results = run_service(
            serial_root, requests, ServiceConfig(workers=0)
        )
        serial_cache = CertificateCache(
            os.path.join(serial_root, "cache")
        )
        serial_identical = True
        for request in requests:
            key = request.key()
            if jobs[key]["status"] != "success":
                continue  # dead-letters have no payload to compare
            serial_hash = payload_hash(serial_cache.get(request))
            match = hashes[key] is not None and hashes[key] == serial_hash
            jobs[key]["serial_match"] = match
            serial_identical = serial_identical and match
        print(f"serial identity: {serial_identical}")

    hit_rate = None
    if args.repeat:
        repeat_results = run_service(args.root, requests, config)
        repeat_rows = repeat_results["jobs"]
        from_cache = sum(
            1 for row in repeat_rows.values() if row["from_cache"]
        )
        hit_rate = from_cache / max(1, len(repeat_rows))
        print(f"repeat batch cache hit rate: {hit_rate:.2%}")

    scale = (
        "chaos" if (args.kill_worker or args.corrupt_cache) else "clean"
    )
    doc = service_doc(
        scale=scale,
        config={
            "jobs": args.jobs,
            "workers": args.workers,
            "max_redeliveries": args.max_redeliveries,
            "faults": list(worker_faults)
            + (["cache_corrupt_entry"] if args.corrupt_cache else []),
        },
        jobs=jobs,
        counts=counts,
        cache={
            "hit_rate": hit_rate if hit_rate is not None else 0.0,
            "evictions": len(evictions),
        },
        invariants={
            "all_terminal": bool(results["all_terminal"]),
            "no_corrupt_served": bool(no_corrupt_served),
            "serial_identical": serial_identical,
        },
    )
    write_service_bench(args.out, doc)
    print(f"wrote {args.out}")

    ok = (
        results["all_terminal"]
        and no_corrupt_served
        and serial_identical in (None, True)
        and (hit_rate is None or hit_rate >= 1.0)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
