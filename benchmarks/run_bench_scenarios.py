#!/usr/bin/env python
"""Obstacle-workload sweep: emit ``BENCH_scenarios.json``.

Mints a seeded batch of ``repro.soundness.scenarios`` workloads
(floor-minus-obstacles workspaces, union-of-obstacles unsafe sets),
verifies each one's closed-form barrier per decomposed cell with the
SOS verifier, re-proves every accepted certificate over the rationals,
and records outcomes + per-cell timings::

    python benchmarks/run_bench_scenarios.py --seed 0 --count 120 \
        --out results/BENCH_scenarios.json

The base seed is printed on stdout so any CI failure is replayable with
one flag.  The emitted document is gated by
``python -m repro.diagnostics.regress`` (kind auto-detected): hard on
invariants — every outcome terminal, zero rational-recheck failures,
minted expectations met — and on per-seed outcome / cell decomposition
/ region-spec hash stability; verify timings only report.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.diagnostics.scenariobench import (
    scenario_doc,
    write_scenario_bench,
)
from repro.soundness.scenarios import batch_invariants, run_batch


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed (scenarios use seed..seed+count-1)")
    parser.add_argument("--count", type=int, default=120,
                        help="number of scenarios to mint (default 120)")
    parser.add_argument("--time-budget", type=float, default=30.0,
                        help="per-scenario verify wall-clock budget "
                             "in seconds (default 30)")
    parser.add_argument("--scale", default="sweep",
                        choices=("sweep", "smoke"),
                        help="document scale label (default sweep)")
    parser.add_argument("--out", default="results/BENCH_scenarios.json")
    args = parser.parse_args(argv)

    print(
        f"scenario sweep: base seed {args.seed}, {args.count} scenarios "
        f"(replay with --seed {args.seed} --count {args.count})"
    )
    rows = run_batch(args.seed, args.count, time_budget_s=args.time_budget)
    invariants = batch_invariants(rows)
    doc = scenario_doc(
        scale=args.scale,
        config={
            "base_seed": int(args.seed),
            "count": int(args.count),
            "time_budget_s": float(args.time_budget),
        },
        rows=rows,
        invariants=invariants,
    )
    write_scenario_bench(args.out, doc)

    counts = doc["counts"]
    print(
        f"wrote {args.out}: "
        + ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    )
    print(f"invariants: {invariants}")
    for row in rows:
        if row.get("outcome") == "error":
            err = row.get("error", {})
            print(
                f"  ERROR seed {row['seed']}: {err.get('kind')}: "
                f"{err.get('message')}",
                file=sys.stderr,
            )
    return 0 if all(invariants.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
