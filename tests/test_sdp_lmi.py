"""Tests for the inequality-form LMI interface and LipSDP bounds."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.nn.lipschitz import (
    empirical_lipschitz_lower_bound,
    lipsdp_lipschitz_bound,
    spectral_lipschitz_bound,
)
from repro.sdp import solve_lmi


# ----------------------------------------------------------------------
# solve_lmi
# ----------------------------------------------------------------------
def test_lmi_max_eigenvalue():
    # lambda_max(A) = min t s.t. t I - A PSD
    rng = np.random.default_rng(0)
    A = rng.normal(size=(5, 5))
    A = 0.5 * (A + A.T)
    res = solve_lmi(-A, [np.eye(5)], [1.0])
    assert res.ok
    lam_max = np.linalg.eigvalsh(A)[-1]
    assert res.objective == pytest.approx(lam_max, abs=1e-5)
    assert res.slack_eigenvalue >= -1e-6


def test_lmi_feasibility_point():
    # find y with [[1, y], [y, 1]] PSD -> any |y| <= 1; c = 0
    F0 = np.eye(2)
    F1 = np.array([[0.0, 1.0], [1.0, 0.0]])
    res = solve_lmi(F0, [F1], [0.0])
    assert res.ok
    assert abs(res.y[0]) <= 1.0 + 1e-6


def test_lmi_bounded_minimization():
    # min y s.t. [[1+y, 0], [0, 1-y]] PSD -> y = -1
    F0 = np.eye(2)
    F1 = np.diag([1.0, -1.0])
    res = solve_lmi(F0, [F1], [1.0])
    assert res.ok
    assert res.objective == pytest.approx(-1.0, abs=1e-5)


def test_lmi_validation():
    with pytest.raises(ValueError):
        solve_lmi(np.zeros((2, 3)), [], [])
    with pytest.raises(ValueError):
        solve_lmi(np.eye(2), [np.eye(3)], [1.0])
    with pytest.raises(ValueError):
        solve_lmi(np.eye(2), [np.eye(2)], [1.0, 2.0])


# ----------------------------------------------------------------------
# LipSDP
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_lipsdp_sandwich(seed):
    net = MLP([2, 8, 1], rng=np.random.default_rng(seed))
    lower = empirical_lipschitz_lower_bound(
        net, [-2, -2], [2, 2], rng=np.random.default_rng(100 + seed)
    )
    sdp = lipsdp_lipschitz_bound(net)
    spectral = spectral_lipschitz_bound(net)
    assert lower <= sdp * (1 + 1e-6)
    assert sdp <= spectral * (1 + 1e-6)  # LipSDP is never looser


def test_lipsdp_linear_in_output_scale():
    net1 = MLP([2, 6, 1], rng=np.random.default_rng(3))
    net2 = MLP([2, 6, 1], output_scale=2.0, rng=np.random.default_rng(3))
    assert lipsdp_lipschitz_bound(net2) == pytest.approx(
        2.0 * lipsdp_lipschitz_bound(net1), rel=1e-4
    )


def test_lipsdp_exact_for_linear_activation_regime():
    """For a 'network' whose hidden layer barely saturates, the true
    Lipschitz constant approaches ||W1 W0||; LipSDP must stay above it."""
    rng = np.random.default_rng(4)
    net = MLP([3, 5, 2], rng=rng)
    # shrink weights so tanh operates in its linear regime
    for mod in net.net.modules:
        if hasattr(mod, "W"):
            mod.W.data = 0.05 * mod.W.data
    W0 = net.net.modules[0].W.data
    W1 = net.net.modules[2].W.data
    linear_gain = np.linalg.norm(W0 @ W1, 2)
    bound = lipsdp_lipschitz_bound(net)
    assert bound >= linear_gain * (1 - 1e-6)
    assert bound <= linear_gain * 1.5  # and not wildly loose


def test_lipsdp_multi_output():
    net = MLP([2, 6, 3], rng=np.random.default_rng(5))
    bound = lipsdp_lipschitz_bound(net)
    lower = empirical_lipschitz_lower_bound(
        net, [-1, -1], [1, 1], rng=np.random.default_rng(6)
    )
    assert 0 < lower <= bound * (1 + 1e-6)


def test_lipsdp_rejects_deep_networks():
    net = MLP([2, 4, 4, 1], rng=np.random.default_rng(7))
    with pytest.raises(ValueError):
        lipsdp_lipschitz_bound(net)
    with pytest.raises(TypeError):
        lipsdp_lipschitz_bound("not a net")


def test_controller_lipschitz_method_selection():
    from repro.controllers import NNController

    k = NNController(2, 1, hidden=(8,), rng=np.random.default_rng(8))
    auto = k.lipschitz_bound()
    spectral = k.lipschitz_bound(method="spectral")
    sdp = k.lipschitz_bound(method="lipsdp")
    assert auto == pytest.approx(min(spectral, sdp), rel=1e-9)
    with pytest.raises(ValueError):
        k.lipschitz_bound(method="magic")
    # deep controller: auto falls back to spectral
    deep = NNController(2, 1, hidden=(6, 6), rng=np.random.default_rng(9))
    assert deep.lipschitz_bound() == pytest.approx(
        deep.lipschitz_bound(method="spectral")
    )
