"""Tests for compiled polynomial evaluation."""

import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.poly.fast_eval import CompiledPolynomial, compile_field
from repro.poly.monomials import monomials_upto


def test_matches_direct_evaluation():
    rng = np.random.default_rng(0)
    p = Polynomial(3, {(2, 0, 1): 1.5, (0, 1, 0): -2.0, (0, 0, 0): 0.25})
    cp = CompiledPolynomial(p)
    pts = rng.uniform(-2, 2, size=(100, 3))
    np.testing.assert_allclose(cp(pts), p(pts), atol=1e-12)


def test_single_point_and_scalar_return():
    p = Polynomial(2, {(1, 0): 2.0})
    cp = CompiledPolynomial(p)
    assert cp(np.array([3.0, 0.0])) == pytest.approx(6.0)


def test_field_compilation():
    rng = np.random.default_rng(1)
    x, y = Polynomial.variables(2)
    field = [y, -1.0 * x + 0.3 * x ** 3]
    cf = compile_field(field)
    pts = rng.uniform(-1, 1, size=(50, 2))
    expected = np.stack([f(pts) for f in field], axis=1)
    np.testing.assert_allclose(cf(pts), expected, atol=1e-12)
    single = cf(pts[0])
    np.testing.assert_allclose(single, expected[0], atol=1e-12)


def test_zero_polynomial():
    cp = CompiledPolynomial(Polynomial.zero(2))
    np.testing.assert_allclose(cp(np.zeros((5, 2))), np.zeros(5))


def test_validation():
    with pytest.raises(ValueError):
        CompiledPolynomial([])
    with pytest.raises(ValueError):
        CompiledPolynomial([Polynomial.one(2), Polynomial.one(3)])
    cp = CompiledPolynomial(Polynomial.one(2))
    with pytest.raises(ValueError):
        cp(np.zeros((3, 4)))


def test_faster_on_vector_fields():
    """The point of compiling: a k-component field shares the monomial
    work, beating k independent sparse evaluations."""
    rng = np.random.default_rng(2)
    basis = monomials_upto(6, 3)
    field = [
        Polynomial(6, {a: float(rng.normal()) for a in basis}) for _ in range(6)
    ]
    cf = compile_field(field)
    pts = rng.uniform(-1, 1, size=(5000, 6))
    cf(pts)  # warm up
    t0 = time.perf_counter()
    for _ in range(5):
        cf(pts)
    fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(5):
        np.stack([f(pts) for f in field], axis=1)
    slow = time.perf_counter() - t0
    assert fast < slow * 1.1  # compiled wins (small slack for timer noise)


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(list(monomials_upto(2, 4))),
        st.floats(-5, 5, allow_nan=False),
        max_size=8,
    )
)
def test_agreement_property(coeffs):
    p = Polynomial(2, coeffs)
    cp = CompiledPolynomial(p)
    pts = np.random.default_rng(9).uniform(-1.5, 1.5, size=(60, 2))
    np.testing.assert_allclose(cp(pts), p(pts), atol=1e-9)
