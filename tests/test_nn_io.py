"""Tests for network serialization (save/load round trips)."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    ConstantMultiplier,
    LinearMultiplier,
    QuadraticNetwork,
    SquareNetwork,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


@pytest.mark.parametrize(
    "factory",
    [
        lambda rng: MLP([2, 8, 1], rng=rng),
        lambda rng: MLP([3, 6, 2], activation="relu", output_scale=2.5, rng=rng),
        lambda rng: QuadraticNetwork([2, 5], rng=rng),
        lambda rng: QuadraticNetwork([3, 4, 2], output_bias=False, rng=rng),
        lambda rng: SquareNetwork([2, 4], rng=rng),
        lambda rng: LinearMultiplier([3, 5, 1], rng=rng),
    ],
)
def test_roundtrip_preserves_function(factory, tmp_path):
    rng = np.random.default_rng(0)
    net = factory(rng)
    path = tmp_path / "net.json"
    save_network(net, str(path))
    loaded = load_network(str(path))
    pts = rng.uniform(-1, 1, size=(50, net.layer_sizes[0]))
    np.testing.assert_allclose(loaded.predict(pts), net.predict(pts), atol=1e-12)


def test_constant_multiplier_roundtrip():
    net = ConstantMultiplier(4, init=-0.25)
    loaded = network_from_dict(network_to_dict(net))
    assert loaded.to_polynomial().coeff((0, 0, 0, 0)) == -0.25


def test_quadratic_roundtrip_preserves_polynomial():
    rng = np.random.default_rng(1)
    net = QuadraticNetwork([2, 4], rng=rng)
    loaded = network_from_dict(network_to_dict(net))
    assert loaded.to_polynomial().is_close(net.to_polynomial(), tol=1e-12)


def test_malformed_payloads():
    with pytest.raises(ValueError):
        network_from_dict({})
    with pytest.raises(ValueError):
        network_from_dict({"architecture": {"kind": "transformer"}, "parameters": []})
    with pytest.raises(TypeError):
        network_to_dict(object())


def test_controller_archival_workflow(tmp_path):
    """Train -> save -> load -> identical polynomial inclusion."""
    from repro.controllers import NNController, polynomial_inclusion
    from repro.sets import Box

    rng = np.random.default_rng(2)
    ctrl = NNController(2, 1, hidden=(6,), rng=rng)
    box = Box.cube(2, -1.0, 1.0)
    path = tmp_path / "controller.json"
    save_network(ctrl.net, str(path))

    restored = NNController(2, 1, hidden=(6,))
    restored.net = load_network(str(path))
    inc_a = polynomial_inclusion(ctrl, box, degree=2, spacing=0.25)
    inc_b = polynomial_inclusion(restored, box, degree=2, spacing=0.25)
    assert inc_a.polynomials[0].is_close(inc_b.polynomials[0], tol=1e-9)
    assert inc_a.sigma_star[0] == pytest.approx(inc_b.sigma_star[0], abs=1e-9)
