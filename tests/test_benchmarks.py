"""Tests for the benchmark registry (Table 1 metadata fidelity)."""

import numpy as np
import pytest

from repro.benchmarks import BENCHMARKS, get_benchmark, list_benchmarks
from repro.controllers import lqr_gain
from repro.sets import Box

# (n_x, d_f) per Table 1 row
TABLE1_SHAPE = {
    "C1": (2, 3),
    "C2": (2, 3),
    "C3": (2, 2),
    "C4": (2, 2),
    "C5": (2, 3),
    "C6": (3, 3),
    "C7": (3, 2),
    "C8": (4, 3),
    "C9": (5, 2),
    "C10": (6, 2),
    "C11": (6, 3),
    "C12": (7, 1),
    "C13": (9, 1),
    "C14": (12, 1),
}

TABLE1_NN_B = {
    "C1": "2-10-1",
    "C2": "2-10-1",
    "C3": "2-5-1",
    "C4": "2-20-1",
    "C5": "2-5-1",
    "C6": "3-5-1",
    "C7": "3-5-1",
    "C8": "4-5-1",
    "C9": "5-10-1",
    "C10": "6-15-1",
    "C11": "6-20-1",
    "C12": "7-20-1",
    "C13": "9-15-1",
    "C14": "12-20-1",
}


def test_registry_contains_all_rows():
    names = list_benchmarks()
    assert "example1" in names
    for i in range(1, 15):
        assert f"C{i}" in names
    # Q1: the obstacle-rich region-algebra workload (docs/scenarios.md)
    assert "Q1" in names
    assert len(names) == 16


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError, match="available"):
        get_benchmark("C99")


@pytest.mark.parametrize("name", sorted(TABLE1_SHAPE))
def test_dimensions_and_degrees_match_table1(name):
    spec = get_benchmark(name)
    n_x, d_f = TABLE1_SHAPE[name]
    assert spec.n_x == n_x
    assert spec.d_f == d_f
    problem = spec.make_problem()
    assert problem.n_vars == n_x
    assert problem.system.degree() == d_f


@pytest.mark.parametrize("name", sorted(TABLE1_NN_B))
def test_network_shapes_match_table1(name):
    spec = get_benchmark(name)
    row = spec.table_row()
    assert row["NN_B"] == TABLE1_NN_B[name]


def test_constant_multiplier_rows():
    # Table 1 marks lambda = c for C10, C11, C13, C14
    for name in ("C10", "C11", "C13", "C14"):
        assert get_benchmark(name).lambda_hidden is None
        assert get_benchmark(name).table_row()["NN_lambda"] == "c"
    for name in ("C1", "C9", "C12"):
        assert get_benchmark(name).lambda_hidden is not None


def test_example1_matches_paper():
    spec = get_benchmark("example1")
    prob = spec.make_problem()
    # eq. (18): xdot = z + 8y
    f1 = prob.system.f0[0]
    assert f1.coeff((0, 1, 0)) == 8.0
    assert f1.coeff((0, 0, 1)) == 1.0
    # zdot contains -x^2 and +u on the third row
    assert prob.system.f0[2].coeff((2, 0, 0)) == -1.0
    assert prob.system.G[2][0].coeff((0, 0, 0)) == 1.0
    # sets from the paper
    assert isinstance(prob.psi, Box)
    np.testing.assert_allclose(prob.psi.lo, [-2.2] * 3)
    np.testing.assert_allclose(prob.theta.hi, [0.4] * 3)
    np.testing.assert_allclose(prob.xi.lo, [2.0] * 3)


@pytest.mark.parametrize("name", sorted(TABLE1_SHAPE))
def test_all_problems_well_formed(name):
    prob = get_benchmark(name).make_problem()
    rng = np.random.default_rng(0)
    # sets sample and are mutually consistent in dimension
    assert prob.theta.sample(5, rng=rng).shape == (5, prob.n_vars)
    assert prob.xi.sample(5, rng=rng).shape == (5, prob.n_vars)
    assert isinstance(prob.psi, Box)  # needed by the inclusion mesh
    # theta and xi disjoint (otherwise no barrier can exist)
    assert not np.any(prob.xi.contains(prob.theta.sample(200, rng=rng)))


@pytest.mark.parametrize("name", sorted(TABLE1_SHAPE))
def test_all_systems_lqr_stabilizable(name):
    prob = get_benchmark(name).make_problem()
    K = lqr_gain(prob.system)
    assert K.shape == (prob.system.n_inputs, prob.n_vars)
    assert np.all(np.isfinite(K))


def test_make_controller_produces_working_controller():
    spec = get_benchmark("C1")
    ctrl = spec.make_controller()
    u = ctrl(np.zeros((3, 2)))
    assert u.shape == (3, 1)
    assert ctrl.lipschitz_bound() < 50.0


def test_snbc_config_scales():
    spec = get_benchmark("C9")
    smoke = spec.snbc_config("smoke")
    paper = spec.snbc_config("paper")
    assert smoke.n_samples <= paper.n_samples
    assert smoke.max_iterations <= paper.max_iterations
    assert smoke.inclusion_error_mode == paper.inclusion_error_mode == "empirical"
