"""Tests for polynomial parsing and certificate serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.poly.monomials import monomials_upto
from repro.poly.parse import parse_polynomial
from repro.utils import (
    load_certificate,
    polynomial_from_dict,
    polynomial_to_dict,
    save_certificate,
)


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def test_parse_simple():
    p = parse_polynomial("2*x1^2 - 3*x1*x2 + 1")
    assert p.coeff((2, 0)) == 2.0
    assert p.coeff((1, 1)) == -3.0
    assert p.coeff((0, 0)) == 1.0


def test_parse_paper_certificate_eq19():
    """The paper's certificate (19) parses and evaluates."""
    text = (
        "0.159*x1^2 - 2.267*x1*x2 + 1.083*x1*x3 + 2.703*x1 - 0.366*x2^2 "
        "+ 0.126*x2*x3 + 2.825*x2 + 0.375*x3^2 + 5.469*x3 - 10.541"
    )
    B = parse_polynomial(text)
    assert B.n_vars == 3
    assert B.degree == 2
    assert B((0.0, 0.0, 0.0)) == pytest.approx(-10.541)
    # spot value: B(1,1,1)
    expected = (
        0.159 - 2.267 + 1.083 + 2.703 - 0.366 + 0.126 + 2.825 + 0.375 + 5.469 - 10.541
    )
    assert B((1.0, 1.0, 1.0)) == pytest.approx(expected, abs=1e-9)


def test_parse_bare_terms():
    p = parse_polynomial("x1 - x2")
    assert p.coeff((1, 0)) == 1.0
    assert p.coeff((0, 1)) == -1.0
    q = parse_polynomial("-x1^3")
    assert q.coeff((3,)) == -1.0


def test_parse_scientific_notation():
    p = parse_polynomial("1.5e-3*x1 + 2E2")
    assert p.coeff((1,)) == pytest.approx(1.5e-3)
    assert p.coeff((0,)) == pytest.approx(200.0)


def test_parse_double_star_power():
    p = parse_polynomial("x1**2 + 1")
    assert p.coeff((2,)) == 1.0


def test_parse_explicit_nvars():
    p = parse_polynomial("x1 + 1", n_vars=3)
    assert p.n_vars == 3
    with pytest.raises(ValueError):
        parse_polynomial("x3", n_vars=2)


def test_parse_errors():
    with pytest.raises(ValueError):
        parse_polynomial("")
    with pytest.raises(ValueError):
        parse_polynomial("x0 + 1")  # indices start at x1
    with pytest.raises(ValueError):
        parse_polynomial("2*?")


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(list(monomials_upto(2, 3))),
        st.floats(-10, 10, allow_nan=False).filter(lambda v: abs(v) > 1e-6),
        min_size=1,
        max_size=5,
    )
)
def test_parse_str_roundtrip(coeffs):
    p = Polynomial(2, coeffs)
    q = parse_polynomial(str(p), n_vars=2)
    assert q.is_close(p, tol=1e-5 * max(1.0, max(abs(c) for c in coeffs.values())))


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_polynomial_dict_roundtrip():
    p = Polynomial(3, {(2, 0, 1): -1.5, (0, 0, 0): 3.25})
    q = polynomial_from_dict(polynomial_to_dict(p))
    assert q == p


def test_polynomial_from_malformed_dict():
    with pytest.raises(ValueError):
        polynomial_from_dict({"n_vars": 2})


def test_certificate_roundtrip(tmp_path):
    from repro.cegis import SNBC, SNBCConfig
    from repro.dynamics import CCDS, ControlAffineSystem
    from repro.learner import LearnerConfig
    from repro.sets import Box

    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.autonomous([-1.0 * x])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]),
                name="decay1d")
    result = SNBC(
        prob,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=300, seed=0),
        config=SNBCConfig(max_iterations=4, n_samples=200, seed=0),
    ).run()
    assert result.success

    path = tmp_path / "cert.json"
    save_certificate(result, str(path))
    loaded = load_certificate(str(path))
    assert loaded["success"]
    assert loaded["problem"] == "decay1d"
    assert loaded["barrier"].is_close(result.barrier, tol=1e-12)

    # the archived certificate re-verifies from scratch
    from repro.verifier import SOSVerifier

    assert SOSVerifier(prob, []).verify(loaded["barrier"]).ok
