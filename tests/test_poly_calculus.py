"""Tests for gradients, Jacobians and Lie derivatives."""

import numpy as np
import pytest

from repro.poly import Polynomial, gradient, jacobian, lie_derivative


def test_gradient_of_quadratic_form():
    # p = x^2 + 2 y^2; grad = (2x, 4y)
    p = Polynomial(2, {(2, 0): 1.0, (0, 2): 2.0})
    g = gradient(p)
    assert g[0] == Polynomial(2, {(1, 0): 2.0})
    assert g[1] == Polynomial(2, {(0, 1): 4.0})


def test_jacobian_shape():
    x, y = Polynomial.variables(2)
    field = [x * y, x + y]
    jac = jacobian(field)
    assert len(jac) == 2 and len(jac[0]) == 2
    assert jac[0][0] == y
    assert jac[1][1] == Polynomial.one(2)


def test_jacobian_empty_field():
    with pytest.raises(ValueError):
        jacobian([])


def test_lie_derivative_linear_system():
    # xdot = -x, ydot = -y, V = x^2 + y^2 -> L_f V = -2x^2 - 2y^2
    x, y = Polynomial.variables(2)
    V = x * x + y * y
    lf = lie_derivative(V, [-1.0 * x, -1.0 * y])
    assert lf.is_close(-2.0 * V)


def test_lie_derivative_matches_finite_difference():
    rng = np.random.default_rng(1)
    x, y = Polynomial.variables(2)
    B = 2.0 * x * x - x * y + 3.0 * y + 1.0
    field = [y, -x + 0.5 * x * x]
    lf = lie_derivative(B, field)
    for _ in range(10):
        p0 = rng.uniform(-1, 1, size=2)
        dt = 1e-6
        f0 = np.array([field[0](p0), field[1](p0)])
        num = (B(p0 + dt * f0) - B(p0)) / dt
        assert lf(p0) == pytest.approx(num, abs=1e-4)


def test_lie_derivative_dimension_mismatch():
    x, y = Polynomial.variables(2)
    with pytest.raises(ValueError):
        lie_derivative(x + y, [x])
    with pytest.raises(ValueError):
        lie_derivative(x + y, [x, Polynomial.one(3)])
