"""Consistency tests between the registry and the paper's Table 1 data."""

import pytest

from repro.benchmarks import get_benchmark
from repro.benchmarks.paper_values import (
    PAPER_CLAIMS,
    PAPER_TABLE1,
    paper_verify_fraction,
    verification_dominates_high_dim,
)


def test_paper_table_complete():
    assert set(PAPER_TABLE1) == {f"C{i}" for i in range(1, 15)}


def test_registry_matches_paper_dimensions():
    for name, row in PAPER_TABLE1.items():
        spec = get_benchmark(name)
        assert spec.n_x == row.n_x, name
        assert spec.d_f == row.d_f, name


def test_paper_row_timings_consistent():
    """T_l + T_c + T_v == T_e for each SNBC row (as printed, small slack)."""
    for name, row in PAPER_TABLE1.items():
        total = row.snbc_t_learn + row.snbc_t_cex + row.snbc_t_verify
        assert total == pytest.approx(row.snbc_t_total, abs=0.02), name


def test_paper_solved_counts():
    fossil = sum(1 for r in PAPER_TABLE1.values() if r.fossil_t_total is not None)
    nnc = sum(1 for r in PAPER_TABLE1.values() if r.nnc_t_total is not None)
    sos = sum(1 for r in PAPER_TABLE1.values() if r.sos_t_total is not None)
    assert fossil == PAPER_CLAIMS["fossil_solved"]
    assert nnc == PAPER_CLAIMS["nncchecker_solved"]
    assert sos == PAPER_CLAIMS["sostools_solved"]


def test_paper_speedup_claims_recomputable():
    """The 922x / 25.6x claims follow from the 8 jointly-solved rows."""
    joint = [
        name for name, r in PAPER_TABLE1.items() if r.fossil_t_total is not None
    ]
    assert len(joint) == 8
    fossil_mean = sum(PAPER_TABLE1[n].fossil_t_total for n in joint) / len(joint)
    snbc_mean = sum(PAPER_TABLE1[n].snbc_t_total for n in joint) / len(joint)
    assert fossil_mean / snbc_mean == pytest.approx(
        PAPER_CLAIMS["fossil_speedup_vs_snbc"], rel=0.01
    )


def test_paper_sostools_crossover():
    """SOSTOOLS beats SNBC for n_x <= 3 and loses from n_x >= 4 (paper)."""
    for name, row in PAPER_TABLE1.items():
        if row.sos_t_total is None:
            continue
        if row.n_x <= 3:
            assert row.sos_t_total < row.snbc_t_total, name
        if row.n_x >= 4:
            assert row.sos_t_total > row.snbc_t_total, name


def test_verification_fraction_shape():
    assert verification_dominates_high_dim()
    assert paper_verify_fraction("C14") > 0.9  # 967.6 of 1002.8 s
