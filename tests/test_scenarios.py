"""Scenario factory + BENCH_scenarios conformance.

The factory is a pure function of the seed, so rows (minus wall-clock
fields) must be reproducible; the BENCH_scenarios document and its
regress gate must hold the batch invariants hard.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.diagnostics.scenariobench import (
    SCENARIO_KIND,
    compare_scenario_benches,
    load_scenario_bench,
    scenario_doc,
    write_scenario_bench,
)
from repro.soundness.scenarios import (
    INFEASIBLE_STRIDE,
    TERMINAL_OUTCOMES,
    batch_invariants,
    make_scenario,
    run_batch,
    run_scenario,
)


def _strip_timings(row: dict) -> dict:
    out = copy.deepcopy(row)
    out.pop("elapsed_seconds", None)
    for cond in out.get("conditions", []):
        cond.pop("elapsed_seconds", None)
    return out


class TestFactory:
    def test_scenario_is_pure_function_of_seed(self):
        a = make_scenario(17)
        b = make_scenario(17)
        assert a.params == b.params
        assert a.psi_spec == b.psi_spec
        assert a.barrier.coeffs == b.barrier.coeffs
        assert a.psi_spec.canonical_key() == b.psi_spec.canonical_key()

    def test_distinct_seeds_distinct_geometry(self):
        keys = {make_scenario(s).psi_spec.canonical_key() for s in range(20)}
        assert len(keys) == 20

    def test_infeasible_stride_marks_expectation(self):
        assert make_scenario(INFEASIBLE_STRIDE - 1).expected == "infeasible"
        assert make_scenario(INFEASIBLE_STRIDE).expected == "certifiable"

    def test_problem_shapes(self):
        scenario = make_scenario(3)
        problem = scenario.problem
        assert problem.n_vars == 2
        assert len(problem.xi.decompose()) == scenario.params["n_obstacles"]
        assert len(problem.psi.decompose()) >= 1
        # theta stays clear of every obstacle
        theta_pts = problem.theta.sample(100)
        assert not problem.xi.contains(theta_pts).any()

    def test_row_is_deterministic(self):
        row_a = _strip_timings(run_scenario(2))
        row_b = _strip_timings(run_scenario(2))
        assert row_a == row_b

    def test_certified_row_has_exact_recheck(self):
        row = run_scenario(0)
        assert row["outcome"] == "certified"
        assert row["soundness_ok"] is True
        assert row["n_exact_conditions"] == sum(row["cells"].values())

    def test_falsified_row(self):
        row = run_scenario(INFEASIBLE_STRIDE - 1)
        assert row["outcome"] == "falsified"
        assert row["soundness_ok"] is None

    def test_batch_invariants_hold(self):
        rows = run_batch(0, 12)
        inv = batch_invariants(rows)
        assert inv == {
            "all_terminal": True,
            "no_soundness_failures": True,
            "expectations_met": True,
        }
        assert all(r["outcome"] in TERMINAL_OUTCOMES for r in rows)

    def test_error_rows_fail_all_terminal(self):
        rows = [{"seed": 0, "outcome": "error", "expected": "certifiable"}]
        assert not batch_invariants(rows)["all_terminal"]

    def test_unsound_rows_fail_soundness_invariant(self):
        rows = [{"seed": 0, "outcome": "unsound", "expected": "certifiable"}]
        assert not batch_invariants(rows)["no_soundness_failures"]


class TestBenchDoc:
    def _doc(self, rows):
        return scenario_doc(
            scale="smoke",
            config={"base_seed": 0, "count": len(rows),
                    "time_budget_s": 30.0},
            rows=rows,
        )

    def test_doc_write_load_round_trip(self, tmp_path):
        rows = run_batch(0, 6)
        doc = self._doc(rows)
        path = tmp_path / "BENCH_scenarios.json"
        write_scenario_bench(str(path), doc)
        loaded = load_scenario_bench(str(path))
        assert loaded["kind"] == SCENARIO_KIND
        assert loaded["counts"]["total"] == 6
        assert loaded["scenarios"] == json.loads(
            json.dumps(doc["scenarios"])
        )

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"kind": "BENCH_table1"}')
        with pytest.raises(ValueError):
            load_scenario_bench(str(path))

    def test_identical_docs_pass_gate(self):
        rows = run_batch(0, 6)
        doc = self._doc(rows)
        outcome = compare_scenario_benches(doc, doc)
        assert outcome["regressions"] == []

    def test_outcome_flip_gates_hard(self):
        rows = run_batch(0, 6)
        old = self._doc(rows)
        new = copy.deepcopy(old)
        seed = next(iter(new["scenarios"]))
        new["scenarios"][seed]["outcome"] = "falsified"
        outcome = compare_scenario_benches(old, new)
        assert any("outcome flipped" in r for r in outcome["regressions"])

    def test_spec_hash_drift_gates_hard(self):
        rows = run_batch(0, 6)
        old = self._doc(rows)
        new = copy.deepcopy(old)
        seed = next(iter(new["scenarios"]))
        new["scenarios"][seed]["psi_spec_key"] = "0" * 16
        outcome = compare_scenario_benches(old, new)
        assert any("spec hash" in r for r in outcome["regressions"])

    def test_broken_invariant_gates_hard(self):
        rows = run_batch(0, 6)
        old = self._doc(rows)
        new = copy.deepcopy(old)
        new["invariants"]["no_soundness_failures"] = False
        outcome = compare_scenario_benches(old, new)
        assert any("rational recheck" in r for r in outcome["regressions"])

    def test_missing_seed_warns_when_allowed(self):
        rows = run_batch(0, 6)
        old = self._doc(rows)
        new = self._doc(rows[:-1])
        hard = compare_scenario_benches(old, new)
        soft = compare_scenario_benches(old, new, allow_missing=True)
        assert any("missing" in r for r in hard["regressions"])
        assert not soft["regressions"]
        assert any("missing" in w for w in soft["warnings"])

    def test_regress_cli_dispatch(self, tmp_path, capsys):
        from repro.diagnostics.regress import main

        rows = run_batch(0, 5)
        doc = self._doc(rows)
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        write_scenario_bench(str(old_path), doc)
        bad = copy.deepcopy(doc)
        seed = next(iter(bad["scenarios"]))
        bad["scenarios"][seed]["outcome"] = "error"
        bad["invariants"]["all_terminal"] = False
        write_scenario_bench(str(new_path), bad)

        assert main([str(old_path), str(old_path)]) == 0
        assert main([str(old_path), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "outcome flips: 1" in out
