"""Tests for IPM convergence tracing (repro.sdp.trace + ipm integration)."""

import json
import math

import numpy as np
import pytest

from repro.sdp import (
    InteriorPointOptions,
    IPMTrace,
    SDPProblem,
    SDPStatus,
    classify_convergence,
    solve_sdp,
)
from repro.sdp.trace import (
    CONVERGENCE_CLASSES,
    DEFAULT_TRACE_CAPACITY,
    make_record,
    summarize_trace,
)
from repro.telemetry import InMemorySink, Telemetry, configure, disable


def _min_trace_problem():
    # min tr(X) s.t. X_11 = 2, X 2x2 PSD  ->  X = diag(2, 0)
    E = np.zeros((2, 2))
    E[0, 0] = 1.0
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([E], 2.0)
    return prob


def _rec(iteration, mu, rel_gap=1.0, prim=1.0, dual=1.0, **overrides):
    rec = make_record(iteration, mu, rel_gap, prim, dual, 0.0, 0.0, t=0.0)
    rec.update(overrides)
    return rec


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------
def test_trace_ring_buffer_keeps_trailing_window():
    trace = IPMTrace(capacity=4)
    for i in range(10):
        trace.add(_rec(i + 1, mu=1.0 / (i + 1)))
    assert len(trace) == 4
    assert trace.total == 10
    assert trace.dropped == 6
    assert [r["iteration"] for r in trace.records()] == [7, 8, 9, 10]


def test_trace_capacity_floor_is_one():
    trace = IPMTrace(capacity=0)
    trace.add(_rec(1, 1.0))
    trace.add(_rec(2, 0.5))
    assert len(trace) == 1
    assert trace.records()[0]["iteration"] == 2


def test_make_record_defaults_mark_early_exit():
    rec = make_record(3, 0.1, 0.2, 0.3, 0.4, 1.5, 1.4, t=0.01)
    assert rec["iteration"] == 3
    assert math.isnan(rec["step_primal"])
    assert math.isnan(rec["sigma"])
    assert rec["z_cholesky_ok"] and rec["schur_cholesky_ok"]
    assert math.isnan(rec["schur_diag_ratio"])


def test_summarize_trace_handles_none():
    assert summarize_trace(None)["convergence"] == "unknown"
    trace = IPMTrace()
    trace.add(_rec(1, 1e-12, rel_gap=1e-12, prim=1e-12, dual=1e-12))
    summary = summarize_trace(trace)
    assert summary["convergence"] == "healthy"
    assert summary["n_records"] == 1


# ----------------------------------------------------------------------
# classifier on synthetic residual sequences
# ----------------------------------------------------------------------
def test_classifier_empty_is_unknown():
    assert classify_convergence([]) == "unknown"


def test_classifier_converged_is_healthy():
    records = [
        _rec(1, 1.0),
        _rec(2, 1e-4, rel_gap=1e-4, prim=1e-5, dual=1e-5),
        _rec(3, 1e-10, rel_gap=1e-10, prim=1e-10, dual=1e-10),
    ]
    assert classify_convergence(records, tolerance=1e-8) == "healthy"


def test_classifier_progress_without_convergence_is_healthy():
    # steadily shrinking mu, good steps, gap still above tolerance
    records = [
        _rec(i + 1, mu=10.0 ** -i, rel_gap=10.0 ** -i,
             step_primal=0.9, step_dual=0.9)
        for i in range(5)
    ]
    assert classify_convergence(records, tolerance=1e-12) == "healthy"


def test_classifier_cholesky_failure_is_ill_conditioned():
    records = [_rec(1, 1.0), _rec(2, 0.5, z_cholesky_ok=False)]
    assert classify_convergence(records) == "ill_conditioned"
    records = [_rec(1, 1.0), _rec(2, 0.5, schur_cholesky_ok=False)]
    assert classify_convergence(records) == "ill_conditioned"


def test_classifier_diag_ratio_is_ill_conditioned():
    records = [_rec(1, 1.0, schur_diag_ratio=1e15), _rec(2, 0.5)]
    assert classify_convergence(records) == "ill_conditioned"


def test_classifier_nonfinite_mu_is_ill_conditioned():
    assert classify_convergence([_rec(1, float("nan"))]) == "ill_conditioned"
    assert classify_convergence([_rec(1, float("inf"))]) == "ill_conditioned"
    assert classify_convergence([_rec(1, -1.0)]) == "ill_conditioned"


def test_classifier_mu_blowup_is_diverging():
    records = [
        _rec(1, 1.0, step_primal=0.9, step_dual=0.9),
        _rec(2, 0.5, step_primal=0.9, step_dual=0.9),
        _rec(3, 500.0, step_primal=0.9, step_dual=0.9),
    ]
    assert classify_convergence(records) == "diverging"


def test_classifier_collapsed_steps_are_stalling():
    records = [
        _rec(i + 1, mu=1.0, step_primal=1e-3, step_dual=1e-3)
        for i in range(4)
    ]
    assert classify_convergence(records) == "stalling"


def test_classifier_slow_mu_decay_is_stalling():
    # mu shrinking by 0.99/iter: far slower than the 0.85 stall threshold
    records = [
        _rec(i + 1, mu=0.99 ** i, step_primal=0.5, step_dual=0.5)
        for i in range(8)
    ]
    assert classify_convergence(records) == "stalling"


def test_classifier_severity_order_breakdown_beats_convergence():
    # a converged-looking final record still classifies as ill_conditioned
    # when a factorization failed along the way
    records = [
        _rec(1, 1.0, z_cholesky_ok=False),
        _rec(2, 1e-12, rel_gap=1e-12, prim=1e-12, dual=1e-12),
    ]
    assert classify_convergence(records) == "ill_conditioned"


def test_classifier_only_emits_known_classes():
    sequences = [
        [],
        [_rec(1, 1.0)],
        [_rec(1, float("inf"))],
        [_rec(i + 1, mu=1.0, step_primal=1e-4, step_dual=1e-4)
         for i in range(5)],
    ]
    for records in sequences:
        assert classify_convergence(records) in CONVERGENCE_CLASSES


# ----------------------------------------------------------------------
# solver integration
# ----------------------------------------------------------------------
def test_solve_sdp_attaches_trace_and_class():
    res = solve_sdp(_min_trace_problem())
    assert res.status == SDPStatus.OPTIMAL
    assert res.convergence_class == "healthy"
    assert res.recovery_rung == "base"
    assert res.ipm_trace_dropped == 0
    assert len(res.ipm_trace) == res.iterations
    for i, rec in enumerate(res.ipm_trace):
        assert rec["iteration"] == i + 1
        assert set(rec) == set(make_record(1, 0, 0, 0, 0, 0, 0, 0.0))
    # a completed iteration has its step lengths filled in
    assert math.isfinite(res.ipm_trace[0]["step_primal"])
    assert math.isfinite(res.ipm_trace[0]["schur_diag_ratio"])


def test_solve_sdp_trace_capacity_option():
    res = solve_sdp(
        _min_trace_problem(), InteriorPointOptions(trace_capacity=2)
    )
    assert len(res.ipm_trace) <= 2
    assert res.ipm_trace_dropped == max(0, res.iterations - 2)
    assert res.ipm_trace[-1]["iteration"] == res.iterations


def test_default_trace_capacity_covers_default_max_iterations():
    assert DEFAULT_TRACE_CAPACITY >= InteriorPointOptions().max_iterations


def test_trace_is_deterministic_modulo_wall_clock():
    def canon(res):
        # "t" and the "t_*" sub-phase timers are wall-clock (excluded);
        # everything else must match bitwise.  json.dumps also normalizes
        # NaN comparison (nan != nan in dicts).
        return json.dumps(
            [{k: v for k, v in rec.items() if not k.startswith("t")}
             for rec in res.ipm_trace],
            sort_keys=True,
        )

    a = solve_sdp(_min_trace_problem())
    b = solve_sdp(_min_trace_problem())
    assert canon(a) == canon(b)
    assert a.convergence_class == b.convergence_class


def test_rung_passthrough_stamps_result():
    res = solve_sdp(_min_trace_problem(), rung="jitter")
    assert res.recovery_rung == "jitter"


def test_solve_sdp_emits_ipm_trace_event():
    sink = InMemorySink()
    configure(sink)
    try:
        res = solve_sdp(_min_trace_problem())
    finally:
        disable()
    events = [e for e in sink.events if e.get("type") == "sdp.ipm_trace"]
    assert len(events) == 1
    ev = events[0]
    assert ev["convergence"] == "healthy"
    assert ev["rung"] == "base"
    assert ev["n_records"] == len(res.ipm_trace)
    assert ev["records"][-1]["iteration"] == res.iterations
    spans = sink.spans("sdp.solve")
    assert spans and spans[0]["attrs"]["convergence"] == "healthy"


def test_solve_sdp_counts_convergence_metric():
    sink = InMemorySink()
    tel = configure(sink)
    try:
        solve_sdp(_min_trace_problem())
        counters = tel.metrics.summary()["counters"]
    finally:
        disable()
    assert counters.get("sdp.convergence.healthy") == 1.0


def test_resilient_retry_stamps_strategy_rung():
    from repro.diagnostics import faultinject as fi
    from repro.resilience import solve_sdp_resilient

    # fail the base solve once so the ladder's first strategy runs
    with fi.inject(fi.solver_nonconvergence(at_call=1, times=1)):
        res = solve_sdp_resilient(_min_trace_problem())
    assert res.status == SDPStatus.OPTIMAL
    assert res.recovery_rung == "rescale"


def test_nan_mu_fault_classifies_ill_conditioned():
    from repro.diagnostics import faultinject as fi

    with fi.inject(fi.nan_mu(at_call=1, times=1)):
        res = solve_sdp(_min_trace_problem())
    assert res.status == SDPStatus.NUMERICAL_ERROR
    assert res.convergence_class == "ill_conditioned"
    assert res.ipm_trace  # the poisoned iteration still left a record
