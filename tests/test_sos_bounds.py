"""Tests for SOS optimization and certified polynomial bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.sets import Ball, Box
from repro.sos import SOSExpr, SOSProgram, sos_lower_bound, sos_range, sos_upper_bound


# ----------------------------------------------------------------------
# SOSProgram.solve(minimize=...)
# ----------------------------------------------------------------------
def test_minimize_gamma_unconstrained_quadratic():
    # max gamma s.t. (x-1)^2 + 2 - gamma in SOS  ->  gamma = 2
    x = Polynomial.variable(1, 0)
    p = (x - 1.0) ** 2 + 2.0
    prog = SOSProgram(1)
    gamma = prog.free_scalar()
    prog.require_sos(SOSExpr.from_polynomial(p) - gamma)
    sol = prog.solve(minimize=-1.0 * gamma)
    assert sol.feasible
    assert sol.value(gamma).coeff((0,)) == pytest.approx(2.0, abs=1e-4)


def test_minimize_rejects_nonscalar_objective():
    prog = SOSProgram(1)
    f = prog.free_poly(1)
    prog.require_sos(f - f)  # dummy
    with pytest.raises(ValueError, match="degree-0"):
        prog.solve(minimize=f)


def test_minimize_unbounded_free_direction_detected():
    # objective on a free variable no constraint touches
    prog = SOSProgram(1)
    c = prog.free_scalar()
    unused = prog.free_scalar()
    x = Polynomial.variable(1, 0)
    prog.require_sos(SOSExpr.from_polynomial(x * x) + c)
    with pytest.raises(ValueError, match="unbounded"):
        prog.solve(minimize=unused)


def test_minimize_gram_objective():
    # minimize sigma(0) for sigma SOS with sigma - 1 - x^2... use simple:
    # find sigma (deg 0 SOS = nonneg scalar) with x^2 + sigma - 2 in SOS;
    # minimizing sigma's constant gives sigma = 2.
    x = Polynomial.variable(1, 0)
    prog = SOSProgram(1)
    sigma = prog.sos_poly(0)
    prog.require_sos(SOSExpr.from_polynomial(x * x - 2.0) + sigma)
    sol = prog.solve(minimize=sigma)
    assert sol.feasible
    assert sol.value(sigma).coeff((0,)) == pytest.approx(2.0, abs=1e-4)


# ----------------------------------------------------------------------
# certified bounds
# ----------------------------------------------------------------------
def test_lower_bound_on_box():
    # min of (x - 0.3)^2 + 0.5 on [-1, 1] is 0.5
    x = Polynomial.variable(1, 0)
    p = (x - 0.3) ** 2 + 0.5
    box = Box([-1.0], [1.0])
    lb = sos_lower_bound(p, box)
    assert lb == pytest.approx(0.5, abs=1e-3)


def test_lower_bound_attained_at_boundary():
    # min of x on [-1, 1] is -1 (needs the box multiplier)
    x = Polynomial.variable(1, 0)
    box = Box([-1.0], [1.0])
    lb = sos_lower_bound(x, box, multiplier_degree=0)
    assert lb == pytest.approx(-1.0, abs=1e-3)


def test_upper_bound_and_range():
    x, y = Polynomial.variables(2)
    p = x * x + y * y
    ball = Ball([0.0, 0.0], 2.0)
    lo, hi = sos_range(p, ball)
    assert lo == pytest.approx(0.0, abs=1e-3)
    assert hi == pytest.approx(4.0, abs=1e-2)
    assert sos_upper_bound(p, ball) == pytest.approx(hi, abs=1e-6)


def test_bound_tighter_than_interval_arithmetic():
    # (x + y)^2 on [-1,1]^2: interval arithmetic cannot see the correlation
    from repro.poly.bounds import interval_eval

    x, y = Polynomial.variables(2)
    p = x * x - x * y + y * y  # PSD form; the cross term defeats intervals
    box = Box.cube(2, -1.0, 1.0)
    lb_sos = sos_lower_bound(p, box)
    lb_interval, _ = interval_eval(p, box.lo, box.hi)
    assert lb_sos >= lb_interval
    assert lb_sos == pytest.approx(0.0, abs=1e-3)
    assert lb_interval < -0.5  # interval arithmetic is much weaker here


def test_bound_dimension_mismatch():
    with pytest.raises(ValueError):
        sos_lower_bound(Polynomial.one(2), Box([-1.0], [1.0]))


@settings(max_examples=15, deadline=None)
@given(
    st.floats(-2, 2),
    st.floats(-1, 1),
    st.floats(0.1, 2),
)
def test_lower_bound_is_sound_property(a, b, c):
    """For random quadratics, the certified bound never exceeds sampled minima."""
    x = Polynomial.variable(1, 0)
    p = c * x * x + b * x + a
    box = Box([-1.5], [1.5])
    lb = sos_lower_bound(p, box, multiplier_degree=0)
    xs = np.linspace(-1.5, 1.5, 301)[:, None]
    assert lb <= float(np.min(p(xs))) + 1e-5
