"""Tests for the sparse polynomial class."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial, monomials_upto


def poly_xy():
    """p(x, y) = 2 x^2 + 3 x y - y + 5."""
    return Polynomial(
        2, {(2, 0): 2.0, (1, 1): 3.0, (0, 1): -1.0, (0, 0): 5.0}
    )


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def test_constant_and_zero():
    z = Polynomial.zero(3)
    assert z.is_zero and z.degree == 0
    c = Polynomial.constant(3, 4.5)
    assert c((1.0, 2.0, 3.0)) == 4.5


def test_variable():
    x2 = Polynomial.variable(3, 1)
    assert x2((7.0, 8.0, 9.0)) == 8.0
    with pytest.raises(ValueError):
        Polynomial.variable(3, 3)


def test_zero_coefficients_dropped():
    p = Polynomial(2, {(1, 0): 0.0, (0, 1): 1.0})
    assert (1, 0) not in p.coeffs


def test_exponent_length_checked():
    with pytest.raises(ValueError):
        Polynomial(2, {(1, 0, 0): 1.0})


def test_negative_exponent_rejected():
    with pytest.raises(ValueError):
        Polynomial(2, {(-1, 0): 1.0})


def test_from_coeff_vector_roundtrip():
    p = poly_xy()
    vec = p.coeff_vector(2)
    q = Polynomial.from_coeff_vector(2, 2, vec)
    assert p == q


def test_coeff_vector_too_small_degree():
    with pytest.raises(ValueError):
        poly_xy().coeff_vector(1)


# ----------------------------------------------------------------------
# arithmetic
# ----------------------------------------------------------------------
def test_add_sub_scalar():
    p = poly_xy()
    assert (p + 1.0)((0.0, 0.0)) == 6.0
    assert (1.0 + p)((0.0, 0.0)) == 6.0
    assert (p - 2.0)((0.0, 0.0)) == 3.0
    assert (2.0 - p)((0.0, 0.0)) == -3.0


def test_mul_matches_pointwise():
    rng = np.random.default_rng(0)
    p = poly_xy()
    q = Polynomial(2, {(1, 0): 1.0, (0, 2): -2.0})
    pts = rng.uniform(-2, 2, size=(50, 2))
    np.testing.assert_allclose((p * q)(pts), p(pts) * q(pts), rtol=1e-12)


def test_pow():
    x = Polynomial.variable(1, 0)
    p = (x + 1.0) ** 3
    np.testing.assert_allclose(p(np.array([[2.0]])), [27.0])
    assert (x ** 0) == Polynomial.one(1)
    with pytest.raises(ValueError):
        x ** -1


def test_division_by_scalar():
    p = poly_xy() / 2.0
    assert p.coeff((2, 0)) == 1.0


def test_incompatible_nvars():
    with pytest.raises(ValueError):
        poly_xy() + Polynomial.one(3)


# ----------------------------------------------------------------------
# calculus & substitution
# ----------------------------------------------------------------------
def test_diff():
    p = poly_xy()
    dp_dx = p.diff(0)  # 4x + 3y
    assert dp_dx == Polynomial(2, {(1, 0): 4.0, (0, 1): 3.0})
    dp_dy = p.diff(1)  # 3x - 1
    assert dp_dy == Polynomial(2, {(1, 0): 3.0, (0, 0): -1.0})


def test_grad_length():
    assert len(poly_xy().grad()) == 2


def test_substitute_affine():
    # p(x, y) with x := t, y := 2t gives 2t^2 + 6t^2 - 2t + 5
    p = poly_xy()
    t = Polynomial.variable(1, 0)
    q = p.substitute([t, 2.0 * t])
    expected = Polynomial(1, {(2,): 8.0, (1,): -2.0, (0,): 5.0})
    assert q.is_close(expected)


def test_substitute_wrong_count():
    with pytest.raises(ValueError):
        poly_xy().substitute([Polynomial.variable(1, 0)])


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def test_eval_single_and_batch():
    p = poly_xy()
    val = p((1.0, 2.0))  # 2 + 6 - 2 + 5 = 11
    assert val == pytest.approx(11.0)
    batch = p(np.array([[1.0, 2.0], [0.0, 0.0]]))
    np.testing.assert_allclose(batch, [11.0, 5.0])


def test_eval_shape_error():
    with pytest.raises(ValueError):
        poly_xy()(np.zeros((3, 3)))


def test_eval_zero_poly():
    z = Polynomial.zero(2)
    np.testing.assert_allclose(z(np.zeros((4, 2))), np.zeros(4))


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
def test_truncate():
    p = Polynomial(1, {(0,): 1e-12, (1,): 1.0})
    assert p.truncate(1e-9) == Polynomial.variable(1, 0)


def test_scale_variables():
    p = Polynomial(2, {(2, 1): 1.0})
    q = p.scale_variables([2.0, 3.0])
    assert q.coeff((2, 1)) == pytest.approx(12.0)


def test_str_repr_smoke():
    assert "x1" in str(poly_xy())
    assert "Polynomial" in repr(poly_xy())
    assert str(Polynomial.zero(2)) == "0"


def test_hash_consistent_with_eq():
    assert hash(poly_xy()) == hash(poly_xy())


# ----------------------------------------------------------------------
# property-based: ring axioms and eval homomorphism
# ----------------------------------------------------------------------
def small_polys(n_vars=2, max_deg=3):
    basis = list(monomials_upto(n_vars, max_deg))
    coeff = st.floats(-5, 5, allow_nan=False, allow_infinity=False)
    return st.dictionaries(st.sampled_from(basis), coeff, max_size=6).map(
        lambda d: Polynomial(n_vars, d)
    )


@settings(max_examples=50, deadline=None)
@given(small_polys(), small_polys(), small_polys())
def test_ring_axioms(p, q, r):
    assert (p + q).is_close(q + p, tol=1e-8)
    assert ((p + q) + r).is_close(p + (q + r), tol=1e-8)
    assert (p * q).is_close(q * p, tol=1e-6)
    assert (p * (q + r)).is_close(p * q + p * r, tol=1e-6)


@settings(max_examples=50, deadline=None)
@given(small_polys(), small_polys())
def test_eval_is_ring_homomorphism(p, q):
    pts = np.array([[0.3, -0.7], [1.1, 0.9], [-1.5, 0.2]])
    np.testing.assert_allclose((p + q)(pts), p(pts) + q(pts), atol=1e-8)
    np.testing.assert_allclose((p * q)(pts), p(pts) * q(pts), atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(small_polys())
def test_derivative_linearity_and_leibniz(p):
    q = Polynomial(2, {(1, 0): 1.0, (0, 2): 0.5})
    lhs = (p * q).diff(0)
    rhs = p.diff(0) * q + p * q.diff(0)
    assert lhs.is_close(rhs, tol=1e-6)
