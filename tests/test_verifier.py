"""Tests for the SOS/LMI verifier on certificates with known validity."""

import numpy as np
import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Ball, Box
from repro.verifier import SOSVerifier, VerifierConfig


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
    )


def radial_barrier(n, c=1.0, scale=0.5):
    """B = c - scale * |x|^2."""
    B = Polynomial.constant(n, c)
    for i in range(n):
        B = B - scale * Polynomial.variable(n, i) ** 2
    return B


def test_valid_certificate_accepted():
    prob = decay_problem()
    B = radial_barrier(2)  # >= 0.75 on Theta, <= -1.25 on Xi, L_fB = |x|^2
    verifier = SOSVerifier(prob, [])
    result = verifier.verify(B)
    assert result.ok
    assert result.failed_conditions() == []
    assert result.lambda_poly is not None
    names = [c.name for c in result.conditions]
    assert names == ["init", "unsafe", "lie"]


def test_invalid_on_init_rejected():
    prob = decay_problem()
    B = -1.0 * radial_barrier(2)  # negative on Theta
    result = SOSVerifier(prob, []).verify(B)
    assert not result.ok
    assert "init" in result.failed_conditions()
    # later conditions skipped
    assert any("skipped" in c.message for c in result.conditions)


def test_invalid_on_unsafe_rejected():
    prob = decay_problem()
    B = Polynomial.constant(2, 1.0)  # constant positive: fails (ii)
    result = SOSVerifier(prob, []).verify(B)
    assert not result.ok
    assert "unsafe" in result.failed_conditions()


def test_invalid_on_lie_rejected():
    # growing system: xdot = +x; B = 1 - 0.5|x|^2 gives L_fB = -|x|^2 < 0,
    # and no lambda rescues it at the Psi boundary where B << 0
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([1.0 * x for x in xs])
    prob = CCDS(
        sys2,
        theta=Box.cube(2, -0.5, 0.5),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, 1.5, 2.0),
    )
    B = radial_barrier(2)
    result = SOSVerifier(prob, []).verify(B)
    assert not result.ok
    assert any(name.startswith("lie") for name in result.failed_conditions())


def test_ball_sets_s_procedure():
    xs = Polynomial.variables(3)
    sys3 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    prob = CCDS(
        sys3,
        theta=Ball([0.0] * 3, 0.5, name="theta"),
        psi=Box.cube(3, -2.0, 2.0, name="psi"),
        xi=Ball([1.5, 1.5, 0.0], 0.3, name="xi"),
    )
    B = radial_barrier(3)
    result = SOSVerifier(prob, []).verify(B)
    assert result.ok


def test_controlled_system_with_inclusion_error():
    # xdot = -x + u, u = h(x) + w with h = 0 and |w| <= sigma.
    # For B = 1 - 0.5 x^2: L_fB = x^2 - x w; small sigma passes.
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([-1.0 * x], [1.0])
    prob = CCDS(
        sys1,
        theta=Box([-0.5], [0.5]),
        psi=Box([-2.0], [2.0]),
        xi=Box([1.5], [2.0]),
    )
    B = radial_barrier(1)
    h = [Polynomial.zero(1)]
    ok_result = SOSVerifier(prob, h, sigma_star=[0.05]).verify(B)
    assert ok_result.ok
    # two lie endpoints were checked
    lie_names = [c.name for c in ok_result.conditions if c.name.startswith("lie")]
    assert len(lie_names) == 2

    # huge inclusion error must break the certificate
    bad_result = SOSVerifier(prob, h, sigma_star=[50.0]).verify(B)
    assert not bad_result.ok


def test_zero_sigma_gives_single_lie_check():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([-1.0 * x], [1.0])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    result = SOSVerifier(prob, [Polynomial.zero(1)], sigma_star=[0.0]).verify(
        radial_barrier(1)
    )
    assert result.ok
    lie_names = [c.name for c in result.conditions if c.name.startswith("lie")]
    assert lie_names == ["lie"]


def test_verifier_validation_errors():
    prob = decay_problem()
    with pytest.raises(ValueError):
        SOSVerifier(prob, [Polynomial.zero(2)])  # autonomous: no polys allowed
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([-1.0 * x], [1.0])
    prob1 = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    with pytest.raises(ValueError):
        SOSVerifier(prob1, [])
    with pytest.raises(ValueError):
        SOSVerifier(prob1, [Polynomial.zero(1)], sigma_star=[0.1, 0.2])
    v = SOSVerifier(prob1, [Polynomial.zero(1)])
    with pytest.raises(ValueError):
        v.verify(radial_barrier(2))  # dimension mismatch


def test_condition_reports_have_timings():
    prob = decay_problem()
    result = SOSVerifier(prob, []).verify(radial_barrier(2))
    for c in result.conditions:
        assert c.elapsed_seconds >= 0
    assert result.elapsed_seconds > 0


def test_validation_can_be_disabled():
    prob = decay_problem()
    cfg = VerifierConfig(validate=False)
    result = SOSVerifier(prob, [], config=cfg).verify(radial_barrier(2))
    assert result.ok
    assert all("skipped" in c.message for c in result.conditions if c.feasible)


def test_multiplier_degree_floor():
    prob = decay_problem()
    cfg = VerifierConfig(multiplier_degree=2)
    result = SOSVerifier(prob, [], config=cfg).verify(radial_barrier(2))
    assert result.ok  # higher-degree multipliers still succeed
