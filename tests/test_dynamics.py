"""Tests for the control-affine system model."""

import numpy as np
import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def academic_3d():
    """The paper's Example 1 plant (18)."""
    x, y, z = Polynomial.variables(3)
    f0 = [z + 8.0 * y, -1.0 * y + z, -1.0 * z - x * x]
    return ControlAffineSystem.single_input(f0, [0.0, 0.0, 1.0])


def test_construction_and_degree():
    sys3 = academic_3d()
    assert sys3.n_vars == 3
    assert sys3.n_inputs == 1
    assert sys3.degree() == 2


def test_autonomous():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.autonomous([-1.0 * x])
    assert sys1.n_inputs == 0
    np.testing.assert_allclose(sys1.rhs(np.array([[2.0]])), [[-2.0]])


def test_validation():
    x, y = Polynomial.variables(2)
    with pytest.raises(ValueError):
        ControlAffineSystem([], [])
    with pytest.raises(ValueError):
        ControlAffineSystem([x, Polynomial.one(3)], [[1.0], [0.0]])
    with pytest.raises(ValueError):
        ControlAffineSystem([x, y], [[1.0]])  # wrong row count
    with pytest.raises(ValueError):
        ControlAffineSystem([x, y], [[1.0], [1.0, 2.0]])  # ragged
    with pytest.raises(ValueError):
        ControlAffineSystem([x, y], [[Polynomial.one(3)], [1.0]])


def test_closed_loop_polynomial():
    sys3 = academic_3d()
    x, y, z = Polynomial.variables(3)
    h = -2.0 * x - y  # polynomial controller
    field = sys3.closed_loop([h])
    # third component: -z - x^2 + h(x)
    expected = -1.0 * z - x * x + h
    assert field[2].is_close(expected)
    # first two unchanged
    assert field[0].is_close(z + 8.0 * y)


def test_closed_loop_with_error_offset():
    sys3 = academic_3d()
    h = Polynomial.zero(3)
    field_plus = sys3.closed_loop([h], error=[0.5])
    field_zero = sys3.closed_loop([h])
    diff = field_plus[2] - field_zero[2]
    assert diff.is_close(Polynomial.constant(3, 0.5))


def test_closed_loop_validation():
    sys3 = academic_3d()
    with pytest.raises(ValueError):
        sys3.closed_loop([])
    with pytest.raises(ValueError):
        sys3.closed_loop([Polynomial.zero(3)], error=[0.1, 0.2])


def test_rhs_matches_closed_loop():
    rng = np.random.default_rng(0)
    sys3 = academic_3d()
    x, y, z = Polynomial.variables(3)
    h = -1.5 * x + 0.3 * z
    field = sys3.closed_loop([h])
    pts = rng.uniform(-1, 1, size=(20, 3))
    u = h(pts)[:, None]
    numeric = sys3.rhs(pts, u)
    symbolic = np.stack([f(pts) for f in field], axis=1)
    np.testing.assert_allclose(numeric, symbolic, atol=1e-12)


def test_input_gain_polys():
    sys3 = academic_3d()
    B = Polynomial(3, {(0, 0, 1): 2.0})  # B = 2z
    gains = sys3.input_gain_polys(B.grad())
    # grad B = (0, 0, 2); G column = (0, 0, 1) => gain = 2
    assert gains[0].is_close(Polynomial.constant(3, 2.0))


def test_ccds_validation():
    sys3 = academic_3d()
    box3 = Box.cube(3, -1, 1)
    box2 = Box.cube(2, -1, 1)
    prob = CCDS(sys3, box3, box3, box3, name="demo")
    assert prob.n_vars == 3
    assert "demo" in repr(prob)
    with pytest.raises(ValueError):
        CCDS(sys3, box2, box3, box3)


def test_repr():
    assert "n_vars=3" in repr(academic_3d())
