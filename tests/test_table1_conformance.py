"""Conformance of the 14 benchmark specs against the paper's Table 1:
every C1-C14 instance must match its PAPER_TABLE1 row in state dimension,
dynamics degree, and controller arity, and must instantiate cleanly.

The Q1 obstacle benchmark (region-algebra workload registered alongside
C1-C14) gets its own conformance block: its composite regions must
decompose into a stable set of basic cells, and the whole geometry must
round-trip through ``RegionSpec`` serialization — including the service
request-manifest hash — without drifting."""

import numpy as np
import pytest

from repro.benchmarks.paper_values import PAPER_TABLE1
from repro.benchmarks.systems import BENCHMARKS, get_benchmark
from repro.controllers import NNController
from repro.sets import RegionSpec, region_spec_of

SYSTEM_NAMES = [f"C{i}" for i in range(1, 15)]


def test_table_covers_exactly_the_paper_systems():
    assert set(PAPER_TABLE1) == set(SYSTEM_NAMES)
    assert set(SYSTEM_NAMES) <= set(BENCHMARKS)


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_spec_matches_paper_row(name):
    spec = get_benchmark(name)
    row = PAPER_TABLE1[name]
    assert spec.name == name
    # dimension and dynamics degree straight off the paper row
    assert spec.n_x == row.n_x
    assert spec.d_f == row.d_f


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_problem_instantiates_to_spec(name):
    spec = get_benchmark(name)
    row = PAPER_TABLE1[name]
    prob = spec.make_problem()
    assert prob.n_vars == row.n_x
    assert prob.system.degree() == row.d_f
    # every Table 1 system is single-input NN-controlled
    assert prob.system.n_inputs == 1
    assert len(prob.system.f0) == row.n_x
    # regions live in the right dimension and the domain is bounded
    for region in (prob.theta, prob.psi, prob.xi):
        assert region.n_vars == row.n_x
        lo, hi = region.bounding_box
        assert len(lo) == len(hi) == row.n_x
        assert np.all(np.asarray(lo, float) < np.asarray(hi, float))


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_controller_arity_matches_system(name):
    spec = get_benchmark(name)
    prob = spec.make_problem()
    # construct the controller net directly (same architecture the spec
    # trains) to keep this conformance check cheap — behavior cloning is
    # exercised elsewhere
    controller = NNController(
        n_vars=spec.n_x,
        n_inputs=prob.system.n_inputs,
        hidden=spec.controller_hidden,
        rng=np.random.default_rng(0),
    )
    u = controller(np.zeros(spec.n_x))
    assert u.shape == (prob.system.n_inputs,)
    batch = controller(np.zeros((7, spec.n_x)))
    assert batch.shape == (7, prob.system.n_inputs)
    assert np.isfinite(controller.lipschitz_bound())


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_spec_budgets_are_sane(name):
    spec = get_benchmark(name)
    assert spec.max_iterations >= 1
    assert spec.n_samples > 0
    assert spec.learner_epochs > 0
    assert spec.inclusion_degree >= 1
    assert spec.source  # provenance recorded for every row


def test_initial_and_unsafe_sets_are_disjoint():
    rng = np.random.default_rng(0)
    for name in SYSTEM_NAMES:
        prob = get_benchmark(name).make_problem()
        pts = prob.theta.sample(200, rng=rng)
        assert not np.any(prob.xi.contains(pts, tol=0.0)), (
            f"{name}: initial and unsafe sets overlap"
        )


# ----------------------------------------------------------------------
# Q1: the obstacle-rich region-algebra benchmark
# ----------------------------------------------------------------------
class TestQ1Conformance:
    def _problem(self):
        return get_benchmark("Q1").make_problem()

    def test_registered_alongside_table1(self):
        assert "Q1" in BENCHMARKS
        spec = get_benchmark("Q1")
        assert spec.n_x == 2
        assert spec.source  # provenance recorded like every row

    def test_cell_decomposition_is_stable(self):
        prob = self._problem()
        # floor minus (box block + ball pillar): the box splits into 4
        # face cells, the ball folds into each as one extra constraint
        psi_cells = prob.psi.decompose()
        assert len(psi_cells) == 4
        assert [len(c.constraints) for c in psi_cells] == [4, 4, 4, 4]
        xi_cells = prob.xi.decompose()
        assert len(xi_cells) == 2
        assert len(prob.theta.decompose()) == 1

    def test_theta_clear_of_obstacles(self):
        prob = self._problem()
        pts = prob.theta.sample(200, rng=np.random.default_rng(0))
        assert not prob.xi.contains(pts).any()
        assert prob.psi.contains(pts).all()

    def test_region_specs_round_trip(self):
        prob = self._problem()
        for region in (prob.theta, prob.psi, prob.xi):
            spec = region_spec_of(region)
            again = RegionSpec.from_dict(spec.to_dict())
            assert again == spec
            assert again.canonical_key() == spec.canonical_key()
            rebuilt = region_spec_of(spec.build())
            assert rebuilt.canonical_key() == spec.canonical_key()

    def test_decomposition_stable_across_round_trip(self):
        prob = self._problem()
        for region in (prob.psi, prob.xi):
            spec = region_spec_of(region)
            rebuilt = RegionSpec.from_dict(spec.to_dict()).build()
            cells = region.decompose()
            cells_again = rebuilt.decompose()
            assert len(cells) == len(cells_again)
            assert [len(c.constraints) for c in cells] == [
                len(c.constraints) for c in cells_again
            ]
            # generators agree coefficient-for-coefficient
            for a, b in zip(cells, cells_again):
                for g, h in zip(a.constraints, b.constraints):
                    assert g.coeffs == h.coeffs

    def test_request_manifest_hash_is_stable(self):
        from repro.service.request import CertificationRequest, request_key

        prob = self._problem()
        config = {
            "psi": region_spec_of(prob.psi).to_dict(),
            "xi": region_spec_of(prob.xi).to_dict(),
            "theta": region_spec_of(prob.theta).to_dict(),
        }
        req = CertificationRequest(
            kind="verify", system="Q1-geometry", seed=0, config=config
        )
        key = request_key(req)
        # a fresh instantiation of the benchmark yields the same key
        prob2 = self._problem()
        req2 = CertificationRequest(
            kind="verify", system="Q1-geometry", seed=0,
            config={
                "psi": region_spec_of(prob2.psi).to_dict(),
                "xi": region_spec_of(prob2.xi).to_dict(),
                "theta": region_spec_of(prob2.theta).to_dict(),
            },
        )
        assert request_key(req2) == key
        # and so does the wire-format round trip
        assert request_key(req.to_dict()) == key
