"""Conformance of the 14 benchmark specs against the paper's Table 1:
every C1-C14 instance must match its PAPER_TABLE1 row in state dimension,
dynamics degree, and controller arity, and must instantiate cleanly."""

import numpy as np
import pytest

from repro.benchmarks.paper_values import PAPER_TABLE1
from repro.benchmarks.systems import BENCHMARKS, get_benchmark
from repro.controllers import NNController

SYSTEM_NAMES = [f"C{i}" for i in range(1, 15)]


def test_table_covers_exactly_the_paper_systems():
    assert set(PAPER_TABLE1) == set(SYSTEM_NAMES)
    assert set(SYSTEM_NAMES) <= set(BENCHMARKS)


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_spec_matches_paper_row(name):
    spec = get_benchmark(name)
    row = PAPER_TABLE1[name]
    assert spec.name == name
    # dimension and dynamics degree straight off the paper row
    assert spec.n_x == row.n_x
    assert spec.d_f == row.d_f


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_problem_instantiates_to_spec(name):
    spec = get_benchmark(name)
    row = PAPER_TABLE1[name]
    prob = spec.make_problem()
    assert prob.n_vars == row.n_x
    assert prob.system.degree() == row.d_f
    # every Table 1 system is single-input NN-controlled
    assert prob.system.n_inputs == 1
    assert len(prob.system.f0) == row.n_x
    # regions live in the right dimension and the domain is bounded
    for region in (prob.theta, prob.psi, prob.xi):
        assert region.n_vars == row.n_x
        lo, hi = region.bounding_box
        assert len(lo) == len(hi) == row.n_x
        assert np.all(np.asarray(lo, float) < np.asarray(hi, float))


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_controller_arity_matches_system(name):
    spec = get_benchmark(name)
    prob = spec.make_problem()
    # construct the controller net directly (same architecture the spec
    # trains) to keep this conformance check cheap — behavior cloning is
    # exercised elsewhere
    controller = NNController(
        n_vars=spec.n_x,
        n_inputs=prob.system.n_inputs,
        hidden=spec.controller_hidden,
        rng=np.random.default_rng(0),
    )
    u = controller(np.zeros(spec.n_x))
    assert u.shape == (prob.system.n_inputs,)
    batch = controller(np.zeros((7, spec.n_x)))
    assert batch.shape == (7, prob.system.n_inputs)
    assert np.isfinite(controller.lipschitz_bound())


@pytest.mark.parametrize("name", SYSTEM_NAMES)
def test_spec_budgets_are_sane(name):
    spec = get_benchmark(name)
    assert spec.max_iterations >= 1
    assert spec.n_samples > 0
    assert spec.learner_epochs > 0
    assert spec.inclusion_degree >= 1
    assert spec.source  # provenance recorded for every row


def test_initial_and_unsafe_sets_are_disjoint():
    rng = np.random.default_rng(0)
    for name in SYSTEM_NAMES:
        prob = get_benchmark(name).make_problem()
        pts = prob.theta.sample(200, rng=rng)
        assert not np.any(prob.xi.contains(pts, tol=0.0)), (
            f"{name}: initial and unsafe sets overlap"
        )
