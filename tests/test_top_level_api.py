"""Tests for the package-level convenience API."""

import numpy as np

import repro
from repro import synthesize_barrier
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def test_version():
    assert repro.__version__


def test_synthesize_barrier_autonomous():
    xs = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    problem = CCDS(
        system,
        theta=Box.cube(2, -0.5, 0.5),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, 1.5, 2.0),
        name="api-demo",
    )
    result = synthesize_barrier(problem, n_samples=300, seed=0)
    assert result.success
    assert result.barrier.degree == 2
    rng = np.random.default_rng(0)
    assert np.all(result.barrier(problem.theta.sample(500, rng=rng)) >= -1e-6)


def test_synthesize_barrier_constant_multiplier():
    xs = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    problem = CCDS(
        system,
        theta=Box.cube(2, -0.5, 0.5),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, 1.5, 2.0),
    )
    result = synthesize_barrier(problem, lambda_hidden=None, n_samples=300)
    assert result.success
