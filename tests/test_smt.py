"""Tests for interval arithmetic and the branch-and-prune engine."""

import numpy as np
import pytest

from repro.nn import MLP
from repro.poly import Polynomial
from repro.smt import (
    BranchAndPrune,
    CheckStatus,
    Interval,
    mlp_interval_forward,
    poly_enclosure,
)


# ----------------------------------------------------------------------
# Interval arithmetic
# ----------------------------------------------------------------------
def test_interval_basics():
    a = Interval(-1.0, 2.0)
    assert a.width == 3.0
    assert a.mid == 0.5
    assert a.contains(0.0) and not a.contains(3.0)
    with pytest.raises(ValueError):
        Interval(1.0, 0.0)


def test_interval_arithmetic():
    a = Interval(-1.0, 2.0)
    b = Interval(3.0, 4.0)
    assert (a + b) == Interval(2.0, 6.0)
    assert (a - b) == Interval(-5.0, -1.0)
    assert (a * b) == Interval(-4.0, 8.0)
    assert (-a) == Interval(-2.0, 1.0)
    assert (a + 1.0) == Interval(0.0, 3.0)
    assert (2.0 * a) == Interval(-2.0, 4.0)
    assert (1.0 - a) == Interval(-1.0, 2.0)


def test_interval_power():
    a = Interval(-2.0, 1.0)
    assert a ** 2 == Interval(0.0, 4.0)
    assert a ** 3 == Interval(-8.0, 1.0)
    assert a ** 0 == Interval(1.0, 1.0)
    with pytest.raises(ValueError):
        a ** -1


def test_interval_intersect():
    assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)


def test_poly_enclosure_sound():
    rng = np.random.default_rng(0)
    p = Polynomial(2, {(2, 0): 1.0, (1, 1): -2.0, (0, 0): 0.3})
    lo, hi = np.array([-1.0, 0.0]), np.array([0.5, 2.0])
    enc = poly_enclosure(p, lo, hi)
    pts = rng.uniform(lo, hi, size=(500, 2))
    vals = p(pts)
    assert np.all(vals >= enc.lo - 1e-9)
    assert np.all(vals <= enc.hi + 1e-9)


def test_mlp_interval_forward_sound():
    rng = np.random.default_rng(1)
    for scale in (None, 1.5):
        net = MLP([2, 8, 1], output_scale=scale, rng=rng)
        lo, hi = np.array([-1.0, -1.0]), np.array([1.0, 1.0])
        out_lo, out_hi = mlp_interval_forward(net, lo, hi)
        pts = rng.uniform(lo, hi, size=(500, 2))
        vals = net.predict(pts)
        assert np.all(vals >= out_lo - 1e-9)
        assert np.all(vals <= out_hi + 1e-9)


def test_mlp_interval_relu_variants():
    for act in ("relu", "leaky_relu", "sigmoid"):
        net = MLP([2, 6, 1], activation=act, rng=np.random.default_rng(2))
        lo, hi = np.array([-0.5, -0.5]), np.array([0.5, 0.5])
        out_lo, out_hi = mlp_interval_forward(net, lo, hi)
        pts = np.random.default_rng(3).uniform(lo, hi, size=(300, 2))
        vals = net.predict(pts)
        assert np.all(vals >= out_lo - 1e-9)
        assert np.all(vals <= out_hi + 1e-9)


# ----------------------------------------------------------------------
# Branch and prune
# ----------------------------------------------------------------------
def make_poly_check(p, lo, hi, **kwargs):
    engine = BranchAndPrune(**kwargs)
    return engine.check_forall(
        lambda a, b: poly_enclosure(p, a, b),
        lambda pts: p(pts),
        np.asarray(lo, dtype=float),
        np.asarray(hi, dtype=float),
    )


def test_proves_true_property():
    # x^2 + 1 >= 0 everywhere
    p = Polynomial(1, {(2,): 1.0, (0,): 1.0})
    out = make_poly_check(p, [-3], [3])
    assert out.status == CheckStatus.PROVED


def test_finds_violation():
    # x^2 - 1 >= 0 fails on (-1, 1)
    p = Polynomial(1, {(2,): 1.0, (0,): -1.0})
    out = make_poly_check(p, [-3], [3])
    assert out.status == CheckStatus.VIOLATED
    assert abs(out.witness[0]) < 1.0
    assert out.witness_value < 0


def test_tight_property_delta_sat_or_proved():
    # x^2 >= 0 touches zero: must not report a violation
    p = Polynomial(1, {(2,): 1.0})
    out = make_poly_check(p, [-1], [1], delta=1e-2)
    assert out.status in (CheckStatus.PROVED, CheckStatus.DELTA_SAT)


def test_budget_exhaustion_returns_unknown():
    # hard near-tie with a tiny budget
    p = Polynomial(2, {(2, 0): 1.0, (0, 2): 1.0, (0, 0): 1e-9})
    engine = BranchAndPrune(delta=1e-9, max_boxes=10)
    out = engine.check_forall(
        lambda a, b: poly_enclosure(p, a, b),
        lambda pts: p(pts),
        np.array([-1.0, -1.0]),
        np.array([1.0, 1.0]),
    )
    assert out.status in (CheckStatus.UNKNOWN, CheckStatus.PROVED, CheckStatus.DELTA_SAT)


def test_region_constraints_prune():
    # B(x) = x >= 0 required only on region x >= 0.5 inside box [-1, 1]
    x = Polynomial.variable(1, 0)
    g = x - 0.5  # region constraint
    engine = BranchAndPrune(delta=1e-3)
    out = engine.check_forall(
        lambda a, b: poly_enclosure(x, a, b),
        lambda pts: x(pts),
        np.array([-1.0]),
        np.array([1.0]),
        region_enclosures=[lambda a, b: poly_enclosure(g, a, b)],
        region_point=lambda pts: g(pts) >= 0,
    )
    assert out.status == CheckStatus.PROVED


def test_region_constraints_violation_inside_region():
    # x >= 0 on region x <= -0.5: false, witness must be in the region
    x = Polynomial.variable(1, 0)
    g = -1.0 * x - 0.5
    engine = BranchAndPrune(delta=1e-3)
    out = engine.check_forall(
        lambda a, b: poly_enclosure(x, a, b),
        lambda pts: x(pts),
        np.array([-1.0]),
        np.array([1.0]),
        region_enclosures=[lambda a, b: poly_enclosure(g, a, b)],
        region_point=lambda pts: g(pts) >= 0,
    )
    assert out.status == CheckStatus.VIOLATED
    assert out.witness[0] <= -0.5 + 1e-9


def test_time_limit():
    p = Polynomial(3, {(2, 0, 0): 1.0, (0, 2, 0): 1.0, (0, 0, 2): 1.0, (0, 0, 0): 1e-12})
    engine = BranchAndPrune(delta=1e-12, max_boxes=10**9, time_limit=0.05)
    out = engine.check_forall(
        lambda a, b: poly_enclosure(p, a, b),
        lambda pts: p(pts),
        -np.ones(3),
        np.ones(3),
    )
    assert out.elapsed_seconds < 5.0


def test_invalid_delta():
    with pytest.raises(ValueError):
        BranchAndPrune(delta=0.0)


def test_higher_dimension_cost_grows():
    """Boxes processed grow with dimension on a tight query (the Table 1
    blow-up mechanism for SMT-based verification)."""
    counts = []
    for n in (1, 2, 3):
        coeffs = {tuple(2 if i == j else 0 for i in range(n)): 1.0 for j in range(n)}
        coeffs[(0,) * n] = 1e-4
        p = Polynomial(n, coeffs)
        engine = BranchAndPrune(delta=0.05, max_boxes=100_000)
        out = engine.check_forall(
            lambda a, b: poly_enclosure(p, a, b),
            lambda pts: p(pts),
            -np.ones(n),
            np.ones(n),
        )
        counts.append(out.boxes_processed)
    assert counts[0] <= counts[1] <= counts[2]
