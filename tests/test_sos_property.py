"""Property-based tests for the SOS layer: completeness and soundness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.poly.monomials import add_exponents, monomials_upto
from repro.sos import SOSExpr, SOSProgram


def gram_to_poly(n_vars, basis, Q):
    coeffs = {}
    for i, bi in enumerate(basis):
        for j, bj in enumerate(basis):
            a = add_exponents(bi, bj)
            coeffs[a] = coeffs.get(a, 0.0) + Q[i, j]
    return Polynomial(n_vars, coeffs)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 2), st.integers(1, 2))
def test_true_sos_polynomials_accepted(seed, n_vars, half_deg):
    """Completeness: p = m^T Q m with random PSD Q is always certified."""
    rng = np.random.default_rng(seed)
    basis = monomials_upto(n_vars, half_deg)
    A = rng.normal(size=(len(basis), len(basis)))
    Q = A @ A.T + 1e-3 * np.eye(len(basis))  # strictly PD for robustness
    p = gram_to_poly(n_vars, basis, Q)
    prog = SOSProgram(n_vars)
    prog.require_sos(SOSExpr.from_polynomial(p))
    sol = prog.solve()
    assert sol.feasible, f"rejected a true SOS polynomial (seed {seed})"


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_negative_somewhere_rejected(seed):
    """Soundness: polynomials with a visibly negative value are rejected."""
    rng = np.random.default_rng(seed)
    # random quadratic forced negative at a random point by construction
    x0 = rng.uniform(-1, 1, size=2)
    basis = monomials_upto(2, 1)
    A = rng.normal(size=(3, 3))
    Q = A @ A.T
    p = gram_to_poly(2, basis, Q)
    p = p - (p(x0) + 0.5)  # now p(x0) = -0.5
    prog = SOSProgram(2)
    prog.require_sos(SOSExpr.from_polynomial(p))
    sol = prog.solve()
    if sol.feasible:
        # if the solver claims feasibility, the realized identity must
        # catch the inconsistency — check values directly
        realized = sol.slack_polynomial(prog._blocks[-1])
        assert realized(x0) >= -1e-6  # SOS is nonnegative...
        assert not np.isclose(realized(x0), p(x0), atol=0.25)  # ...so it can't match p
    else:
        assert not sol.feasible


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_extracted_multipliers_are_sos(seed):
    """Every SOS multiplier extracted from a feasible program evaluates
    nonnegatively (its Gram is PSD up to solver tolerance)."""
    rng = np.random.default_rng(seed)
    x = Polynomial.variable(1, 0)
    # (2 - x) - margin >= 0 on [-1, 1] iff margin <= 1; stay clearly below
    margin = float(rng.uniform(0.2, 0.9))
    prog = SOSProgram(1)
    sigma = prog.sos_poly(2)
    # certify (2 - x) - margin >= 0 on [-1, 1]
    expr = SOSExpr.from_polynomial(2.0 - x - margin) - sigma * (1.0 - x * x)
    prog.require_sos(expr)
    sol = prog.solve()
    assert sol.feasible
    sig_poly = sol.value(sigma)
    xs = np.linspace(-3, 3, 61)[:, None]
    assert np.all(sig_poly(xs) >= -1e-6)


@settings(max_examples=15, deadline=None)
@given(st.floats(0.1, 3.0), st.floats(-1.0, 1.0))
def test_putinar_bound_scales(c, shift):
    """Certifying p >= 0 on a box is invariant under positive scaling."""
    x = Polynomial.variable(1, 0)
    p = (x - shift) ** 2 + 0.1

    def feasible(poly):
        prog = SOSProgram(1)
        s = prog.sos_poly(0)
        prog.require_sos(SOSExpr.from_polynomial(poly) - s * (1.0 - x * x))
        return prog.solve().feasible

    assert feasible(p)
    assert feasible(p * c)
