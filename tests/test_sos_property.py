"""Property-based tests for the SOS layer (completeness and soundness),
driven by the shared seeded generator library."""

import random

import numpy as np

from repro.poly import Polynomial
from repro.sos import SOSExpr, SOSProgram
from repro.soundness import strategies as st

SEED = st.resolve_seed(0)


def test_true_sos_polynomials_accepted():
    """Completeness: p = m^T Q m with random strictly-PD Q is certified."""

    def prop(case):
        n_vars, half_deg, seed = case
        p = st.sos_polynomials(n_vars, half_deg).generate(random.Random(seed))
        prog = SOSProgram(n_vars)
        prog.require_sos(SOSExpr.from_polynomial(p))
        sol = prog.solve()
        assert sol.feasible, (
            f"rejected a true SOS polynomial (n={n_vars}, d={half_deg}, "
            f"seed {seed})"
        )

    st.run_property(
        "sos-true-accepted",
        st.tuples(st.integers(1, 2), st.integers(1, 2),
                  st.integers(0, 10_000)),
        prop,
        n_examples=st.fuzz_examples(25),
        seed=SEED,
    )


def test_negative_somewhere_rejected():
    """Soundness: polynomials with a visibly negative value are rejected."""

    def prop(seed):
        rng = np.random.default_rng(seed)
        x0 = rng.uniform(-1, 1, size=2)
        p = st.sos_polynomials(2, 1).generate(random.Random(seed))
        p = p - (p(x0) + 0.5)  # now p(x0) = -0.5
        prog = SOSProgram(2)
        prog.require_sos(SOSExpr.from_polynomial(p))
        sol = prog.solve()
        if sol.feasible:
            # if the solver claims feasibility, the realized identity must
            # catch the inconsistency — check values directly
            realized = sol.slack_polynomial(prog._blocks[-1])
            assert realized(x0) >= -1e-6  # SOS is nonnegative...
            assert not np.isclose(realized(x0), p(x0), atol=0.25)

    st.run_property(
        "sos-negative-rejected",
        st.integers(0, 10_000),
        prop,
        n_examples=st.fuzz_examples(25),
        seed=SEED,
    )


def test_extracted_multipliers_are_sos():
    """Every SOS multiplier extracted from a feasible program evaluates
    nonnegatively (its Gram is PSD up to solver tolerance)."""

    def prop(margin):
        x = Polynomial.variable(1, 0)
        prog = SOSProgram(1)
        sigma = prog.sos_poly(2)
        # certify (2 - x) - margin >= 0 on [-1, 1]
        expr = SOSExpr.from_polynomial(2.0 - x - margin) - sigma * (
            1.0 - x * x
        )
        prog.require_sos(expr)
        sol = prog.solve()
        assert sol.feasible
        sig_poly = sol.value(sigma)
        xs = np.linspace(-3, 3, 61)[:, None]
        assert np.all(sig_poly(xs) >= -1e-6)

    st.run_property(
        "sos-multipliers-sos",
        st.floats(0.2, 0.9),
        prop,
        n_examples=st.fuzz_examples(15),
        seed=SEED,
    )


def test_putinar_bound_scales():
    """Certifying p >= 0 on a box is invariant under positive scaling."""

    def prop(case):
        c, shift = case
        x = Polynomial.variable(1, 0)
        p = (x - shift) ** 2 + 0.1

        def feasible(poly):
            prog = SOSProgram(1)
            s = prog.sos_poly(0)
            prog.require_sos(
                SOSExpr.from_polynomial(poly) - s * (1.0 - x * x)
            )
            return prog.solve().feasible

        assert feasible(p)
        assert feasible(p * c)

    st.run_property(
        "sos-putinar-scales",
        st.tuples(st.floats(0.1, 3.0), st.floats(-1.0, 1.0)),
        prop,
        n_examples=st.fuzz_examples(15),
        seed=SEED,
    )
