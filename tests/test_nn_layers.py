"""Tests for NN layers, optimizers and the controller MLP."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import MLP, SGD, Adam, Dense, LeakyReLU, Sequential, Tanh
from repro.nn.layers import Parameter


def test_dense_shapes_and_params():
    rng = np.random.default_rng(0)
    layer = Dense(3, 5, rng=rng)
    out = layer(Tensor(np.zeros((7, 3))))
    assert out.shape == (7, 5)
    assert len(layer.parameters()) == 2
    assert layer.n_parameters() == 3 * 5 + 5


def test_dense_no_bias():
    layer = Dense(2, 2, bias=False)
    assert len(layer.parameters()) == 1


def test_sequential_composition():
    rng = np.random.default_rng(1)
    net = Sequential(Dense(2, 4, rng=rng), Tanh(), Dense(4, 1, rng=rng))
    out = net(Tensor(np.zeros((3, 2))))
    assert out.shape == (3, 1)
    assert len(net) == 3
    assert len(net.parameters()) == 4


def test_state_dict_roundtrip():
    rng = np.random.default_rng(2)
    net = Sequential(Dense(2, 3, rng=rng), Dense(3, 1, rng=rng))
    state = net.state_dict()
    x = np.ones((1, 2))
    y0 = net.predict(x)
    for p in net.parameters():
        p.data = p.data + 1.0
    assert not np.allclose(net.predict(x), y0)
    net.load_state_dict(state)
    np.testing.assert_allclose(net.predict(x), y0)
    with pytest.raises(ValueError):
        net.load_state_dict(state[:-1])


def test_mlp_shapes_and_repr():
    net = MLP([2, 8, 8, 1], rng=np.random.default_rng(3))
    out = net.predict(np.zeros((5, 2)))
    assert out.shape == (5, 1)
    assert "2-8-8-1" in repr(net)


def test_mlp_output_scale_saturates():
    net = MLP([1, 4, 1], output_scale=2.0, rng=np.random.default_rng(4))
    big = net.predict(np.array([[1e3]]))
    assert np.abs(big).max() <= 2.0 + 1e-9


def test_mlp_validation():
    with pytest.raises(ValueError):
        MLP([2])
    with pytest.raises(ValueError):
        MLP([2, 3, 1], activation="swish")


def test_optimizer_validation():
    p = Parameter(np.zeros(2))
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([p], lr=-1.0)
    with pytest.raises(ValueError):
        Adam([p], lr=0.0)


def test_sgd_minimizes_quadratic():
    p = Parameter(np.array([5.0]))
    opt = SGD([p], lr=0.1, momentum=0.5)
    for _ in range(200):
        opt.zero_grad()
        loss = (p * p).sum()
        loss.backward()
        opt.step()
    assert abs(p.data[0]) < 1e-3


def test_adam_fits_linear_regression():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(100, 3))
    w_true = np.array([[1.0], [-2.0], [0.5]])
    y = X @ w_true
    layer = Dense(3, 1, rng=rng)
    opt = Adam(layer.parameters(), lr=0.05)
    for _ in range(400):
        opt.zero_grad()
        pred = layer(Tensor(X))
        err = pred - Tensor(y)
        loss = (err * err).mean()
        loss.backward()
        opt.step()
    np.testing.assert_allclose(layer.W.data, w_true, atol=0.05)


def test_mlp_fits_nonlinear_function():
    rng = np.random.default_rng(6)
    X = rng.uniform(-1, 1, size=(256, 1))
    y = np.sin(2.0 * X)
    net = MLP([1, 16, 16, 1], rng=rng)
    opt = Adam(net.parameters(), lr=0.01)
    for _ in range(500):
        opt.zero_grad()
        err = net(Tensor(X)) - Tensor(y)
        loss = (err * err).mean()
        loss.backward()
        opt.step()
    final = float(((net.predict(X) - y) ** 2).mean())
    assert final < 0.01


def test_leaky_relu_module():
    x = Tensor(np.array([[-1.0, 2.0]]))
    out = LeakyReLU(0.1)(x)
    np.testing.assert_allclose(out.numpy(), [[-0.1, 2.0]])
