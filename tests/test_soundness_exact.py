"""The exact-arithmetic soundness gate: rational polynomial core, exact
LDL^T, certificate rechecking over Q, the SNBC success gate, and the
checkpoint-resume bit-identity of the resulting SoundnessReport."""

import dataclasses
from fractions import Fraction

import numpy as np
import pytest

from repro.cegis import SNBC, SNBCConfig
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.poly.monomials import monomials_upto
from repro.sets import Box
from repro.soundness import (
    DEFAULT_DELTA_LADDER,
    RationalPolynomial,
    SoundnessConfig,
    SoundnessError,
    SoundnessReport,
    barrier_fingerprint,
    basis_square_bound,
    check_verification,
    find_psd_shift,
    gram_polynomial,
    ldlt_psd,
    rational_closed_loop,
    rational_lie_derivative,
    rationalize_matrix,
)
from repro.verifier import SOSVerifier


def decay_problem():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-1.0 * x, -1.0 * y])
    return CCDS(
        system,
        theta=Box.cube(2, -0.3, 0.3, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box.cube(2, 1.5, 2.0, name="xi"),
        name="decay",
    )


def decay_barrier():
    x, y = Polynomial.variables(2)
    return Polynomial.constant(2, 1.0) - 0.5 * (x * x + y * y)


def verified_bundle(problem=None, B=None):
    problem = problem or decay_problem()
    verifier = SOSVerifier(problem, [])
    verification = verifier.verify(B or decay_barrier())
    assert verification.ok
    assert verification.certificate is not None
    return problem, verification


# ----------------------------------------------------------------------
# rational polynomial core
# ----------------------------------------------------------------------
def test_rational_round_trip_is_lossless_for_floats():
    x, y = Polynomial.variables(2)
    p = 0.1 * x * x - 3.7 * x * y + 1e-9 * y
    r = RationalPolynomial.from_polynomial(p)
    back = r.to_polynomial()
    # every IEEE double is a dyadic rational: the round trip is exact
    assert back.coeffs == p.coeffs


def test_rational_arithmetic_matches_float_eval():
    x, y = Polynomial.variables(2)
    p = 1.25 * x * x - 0.5 * y + 2.0
    q = 0.75 * x * y + 1.5
    rp, rq = (RationalPolynomial.from_polynomial(v) for v in (p, q))
    pts = np.random.default_rng(0).uniform(-1, 1, size=(32, 2))
    for rational, flt in (
        (rp + rq, p + q),
        (rp - rq, p - q),
        (rp * rq, p * q),
        (rp.diff(0), p.diff(0)),
    ):
        assert np.allclose(rational.to_polynomial()(pts), flt(pts))


def test_rational_quantization_bounds_denominators():
    x, = Polynomial.variables(1)
    p = (1.0 / 3.0) * x  # float 1/3 has a 2^52-scale denominator
    r = RationalPolynomial.from_polynomial(p, max_denominator=2**20)
    for c in r.coeffs.values():
        assert c.denominator <= 2**20


def test_rational_lie_derivative_matches_float():
    from repro.poly import lie_derivative

    x, y = Polynomial.variables(2)
    B = 1.0 - 0.5 * (x * x + y * y)
    field = [-1.0 * x + 0.25 * y * y, -1.0 * y]
    rB = RationalPolynomial.from_polynomial(B)
    rfield = [RationalPolynomial.from_polynomial(f) for f in field]
    got = rational_lie_derivative(rB, rfield).to_polynomial()
    want = lie_derivative(B, field)
    pts = np.random.default_rng(1).uniform(-2, 2, size=(32, 2))
    assert np.allclose(got(pts), want(pts))


def test_rational_closed_loop_injects_endpoint():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.single_input(
        [-1.0 * x, Polynomial.zero(2)], [0.0, 1.0]
    )
    h = [0.5 * x]
    field = rational_closed_loop(system, h, error=[0.25])
    # row 1: f0 + G * (h + w) = 0 + 1 * (0.5 x + 0.25)
    f1 = field[1].to_polynomial()
    pts = np.array([[1.0, 0.0], [-2.0, 3.0]])
    assert np.allclose(f1(pts), 0.5 * pts[:, 0] + 0.25)


# ----------------------------------------------------------------------
# exact PSD testing
# ----------------------------------------------------------------------
def test_ldlt_accepts_psd_and_rejects_indefinite():
    rng = np.random.default_rng(0)
    A = rng.normal(size=(4, 4))
    psd = rationalize_matrix(A @ A.T, None)
    assert ldlt_psd(psd)
    indef = rationalize_matrix(A @ A.T - 10.0 * np.eye(4), None)
    assert not ldlt_psd(indef)


def test_ldlt_zero_and_semidefinite_edges():
    assert ldlt_psd([[Fraction(0)]])
    # rank-1 PSD with an exact zero pivot left over
    one = Fraction(1)
    assert ldlt_psd([[one, one], [one, one]])
    # zero pivot but nonzero off-diagonal -> not PSD
    assert not ldlt_psd([[Fraction(0), one], [one, Fraction(0)]])


def test_find_psd_shift_zero_for_strictly_pd():
    Q = rationalize_matrix(2.0 * np.eye(3), None)
    assert find_psd_shift(Q, DEFAULT_DELTA_LADDER) == Fraction(0)


def test_find_psd_shift_picks_small_rung_for_tiny_negativity():
    Q = rationalize_matrix(np.eye(2) * 1e-14 - np.eye(2) * 2e-14, None)
    shift = find_psd_shift(Q, DEFAULT_DELTA_LADDER)
    assert shift is not None and Fraction(0) < shift <= Fraction(1, 2**30)


def test_find_psd_shift_gives_up_on_strong_indefiniteness():
    Q = rationalize_matrix(-np.eye(2), None)
    assert find_psd_shift(Q, DEFAULT_DELTA_LADDER) is None


def test_gram_polynomial_matches_float_expansion():
    basis = monomials_upto(2, 1)
    rng = np.random.default_rng(2)
    A = rng.normal(size=(len(basis), len(basis)))
    Qf = A @ A.T
    Q = rationalize_matrix(Qf, None)
    p = gram_polynomial(basis, Q, 2).to_polynomial()
    pts = rng.uniform(-1, 1, size=(16, 2))
    mono = np.stack([np.prod(pts ** np.array(b, float), axis=1) for b in basis])
    want = np.einsum("ik,ij,jk->k", mono, Qf, mono)
    assert np.allclose(p(pts), want)


def test_basis_square_bound_dominates_samples():
    basis = monomials_upto(2, 2)
    lo = [Fraction(-2), Fraction(-1)]
    hi = [Fraction(1), Fraction(3)]
    S = basis_square_bound(basis, lo, hi)
    rng = np.random.default_rng(3)
    pts = rng.uniform([-2.0, -1.0], [1.0, 3.0], size=(500, 2))
    sq = sum(
        np.prod(pts ** np.array(b, float), axis=1) ** 2 for b in basis
    )
    assert float(S) >= float(np.max(sq)) - 1e-9


# ----------------------------------------------------------------------
# certificate recheck over Q
# ----------------------------------------------------------------------
def test_exact_recheck_proves_decay_certificate():
    problem, verification = verified_bundle()
    report = check_verification(problem, verification)
    assert report is not None and report.ok
    assert len(report.conditions) == 3  # init, unsafe, one lie endpoint
    for cond in report.conditions:
        assert cond.identity_ok and cond.psd_ok and cond.ok
        assert Fraction(cond.certified_margin_exact) >= 0
        assert cond.certified_margin >= 0.0
    assert report.barrier_hash == barrier_fingerprint(
        verification.certificate.barrier
    )


def test_exact_recheck_rejects_tampered_margin():
    problem, verification = verified_bundle()
    bundle = verification.certificate
    # claim a huge strictness margin: the identity residual picks up a
    # -10 constant that absorption must push into the slack Gram, which
    # goes hard indefinite -> exact PSD check must reject
    tampered = dataclasses.replace(
        bundle,
        conditions=[
            dataclasses.replace(c, margin=c.margin + 10.0)
            if c.name == "init" else c
            for c in bundle.conditions
        ],
    )
    verification = dataclasses.replace(verification, certificate=tampered)
    report = check_verification(problem, verification)
    assert report is not None and not report.ok
    failed = report.failed_conditions()
    assert "init" in failed
    bad = next(c for c in report.conditions if c.name == "init")
    assert bad.message


def test_exact_recheck_rejects_wrong_barrier():
    problem, verification = verified_bundle()
    # B - 2 is negative on Theta: no nearby exact certificate exists
    wrong = dataclasses.replace(
        verification.certificate, barrier=decay_barrier() - 2.0
    )
    verification = dataclasses.replace(verification, certificate=wrong)
    report = check_verification(problem, verification)
    assert report is not None and not report.ok


def test_soundness_report_round_trip():
    problem, verification = verified_bundle()
    report = check_verification(problem, verification)
    doc = report.to_dict()
    back = SoundnessReport.from_dict(doc)
    assert back.to_dict() == doc
    summary = report.summary()
    assert summary["ok"] is True
    assert summary["min_certified_margin"] > 0.0


def test_check_verification_without_certificate_returns_none():
    problem, verification = verified_bundle()
    stripped = dataclasses.replace(verification, certificate=None)
    assert check_verification(problem, stripped) is None


def test_soundness_config_quantization_still_proves():
    problem, verification = verified_bundle()
    report = check_verification(
        problem, verification,
        config=SoundnessConfig(max_denominator=2**30),
    )
    assert report is not None and report.ok
    assert report.max_denominator == 2**30


# ----------------------------------------------------------------------
# the SNBC gate
# ----------------------------------------------------------------------
def snbc_for(problem, **cfg):
    defaults = dict(max_iterations=4, n_samples=150, seed=0)
    defaults.update(cfg)
    return SNBC(
        problem,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=200, seed=0),
        config=SNBCConfig(**defaults),
    )


def test_snbc_success_carries_proven_soundness_report():
    res = snbc_for(decay_problem()).run()
    assert res.success
    assert res.soundness is not None and res.soundness.ok
    assert res.soundness.barrier_hash


def test_snbc_gate_off_skips_recheck():
    res = snbc_for(decay_problem(), soundness_check=False).run()
    assert res.success
    assert res.soundness is None


def test_snbc_refuses_success_when_recheck_fails(monkeypatch):
    import repro.cegis.snbc as snbc_mod

    def failing_check(problem, verification, config=None):
        report = check_verification(problem, verification, config=config)
        if report is None:
            return None
        bad = dataclasses.replace(
            report.conditions[0], ok=False, psd_ok=False,
            message="injected failure",
        )
        return dataclasses.replace(
            report, ok=False, conditions=[bad, *report.conditions[1:]]
        )

    monkeypatch.setattr(snbc_mod, "check_verification", failing_check)
    res = snbc_for(decay_problem()).run()
    assert not res.success
    assert res.outcome == "error"
    assert res.error is not None and res.error["kind"] == "SoundnessError"
    assert "injected failure" in res.error["message"]
    # the failed report is still attached for diagnosis
    assert res.soundness is not None and not res.soundness.ok


def test_soundness_error_is_typed():
    exc = SoundnessError("bad", failed_conditions=["init"])
    assert exc.phase == "soundness"
    doc = exc.to_dict()
    assert doc["kind"] == "SoundnessError"
    # ReproError.to_dict stringifies non-primitive detail values
    assert "init" in doc["details"]["failed_conditions"]


# ----------------------------------------------------------------------
# checkpoint / resume: the report must be bit-identical
# ----------------------------------------------------------------------
def _report_key(report):
    """Everything except wall-clock times (elapsed fields are the only
    legitimately run-dependent values in a SoundnessReport)."""
    doc = report.to_dict()
    doc.pop("elapsed_seconds", None)
    for cond in doc["conditions"]:
        cond.pop("elapsed_seconds", None)
    return doc


def test_resume_re_emits_soundness_report_bit_identically(tmp_path):
    from repro.benchmarks.systems import get_benchmark

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    controller = spec.make_controller()
    ck = str(tmp_path / "c1.ck.json")
    cfg = dataclasses.replace(spec.snbc_config("smoke"), checkpoint_path=ck)

    full = SNBC(
        problem, controller=controller,
        learner_config=spec.learner_config(), config=cfg,
    ).run()
    assert full.success and full.iterations >= 2  # iteration 1 checkpointed
    assert full.soundness is not None and full.soundness.ok

    resumed = SNBC(
        problem, controller=controller,
        learner_config=spec.learner_config(), config=cfg,
    ).run(resume_from=ck)
    assert resumed.success
    assert resumed.soundness is not None and resumed.soundness.ok
    assert _report_key(resumed.soundness) == _report_key(full.soundness)
