"""Tests for live run-health streaming: status.json heartbeats
(repro.telemetry.status) and the tail CLI (repro.telemetry.tail),
plus crash durability of the line-flushed JSONL sink.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.telemetry import session
from repro.telemetry.status import StatusWriter, read_status
from repro.telemetry.tail import (
    _TraceFollower,
    classify,
    find_status_files,
    format_event,
    heartbeat_age,
    main as tail_main,
    render_fleet_board,
    render_status_line,
    resolve_run_status_path,
)


# ----------------------------------------------------------------------
# StatusWriter
# ----------------------------------------------------------------------
def test_status_writer_creates_file_immediately(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, name="table1/C1", trace_id="abc")
    status = read_status(path)
    assert status is not None
    assert status["name"] == "table1/C1"
    assert status["trace_id"] == "abc"
    assert status["pid"] == os.getpid()
    assert status["outcome"] is None
    assert isinstance(status["heartbeat_wall"], float)
    writer.finish("success")


def test_status_writer_throttles_but_never_drops(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, min_interval_s=3600.0)  # never due
    for i in range(20):
        writer.update(ipm_iteration=i)
    # throttled: the file still shows the initial write...
    assert "ipm_iteration" not in (read_status(path) or {})
    # ...but the state rode along and lands with the next forced write
    writer.update(force=True, cegis_iteration=1)
    status = read_status(path)
    assert status["ipm_iteration"] == 19
    assert status["cegis_iteration"] == 1


def test_status_writer_force_fields_bypass_throttle(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, min_interval_s=3600.0)
    writer.update(phase="learning")  # phase change forces a write
    assert read_status(path)["phase"] == "learning"
    writer.update(phase="learning", learner_epoch=5)  # unchanged: throttled
    assert "learner_epoch" not in read_status(path)
    writer.update(ipm_convergence="diverging")  # health transition forces
    assert read_status(path)["ipm_convergence"] == "diverging"


def test_status_writer_worker_lanes(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, min_interval_s=0.0)
    writer.worker_update(0, state="submitted", task="init")
    writer.worker_update(1, state="submitted", task="unsafe")
    writer.worker_update(0, state="done")
    lanes = read_status(path)["workers"]
    assert lanes["0"]["state"] == "done"
    assert lanes["1"]["state"] == "submitted"
    assert isinstance(lanes["0"]["heartbeat_wall"], float)


def test_status_writer_finish_is_terminal(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, min_interval_s=0.0)
    writer.finish("success", cegis_iteration=3)
    writer.update(force=True, phase="zombie")  # ignored after finish
    status = read_status(path)
    assert status["outcome"] == "success"
    assert status["cegis_iteration"] == 3
    assert status["phase"] is None


def test_status_writer_leaves_no_temp_files(tmp_path):
    path = str(tmp_path / "run.status.json")
    writer = StatusWriter(path, min_interval_s=0.0)
    for i in range(10):
        writer.update(force=True, i=i)
    writer.finish("success")
    assert sorted(os.listdir(tmp_path)) == ["run.status.json"]


def test_read_status_missing_and_malformed(tmp_path):
    assert read_status(str(tmp_path / "absent.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{torn")
    assert read_status(str(bad)) is None


def test_session_attaches_and_finishes_status(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    with session(trace, name="status-test") as tel:
        tel.status_update(phase="learning", cegis_iteration=2)
        mid = read_status(str(tmp_path / "run.status.json"))
        assert mid["phase"] == "learning"
        assert mid["outcome"] is None
        assert mid["trace_id"] == tel.trace_id
    done = read_status(str(tmp_path / "run.status.json"))
    assert done["outcome"] == "success"


# ----------------------------------------------------------------------
# liveness classification (pure functions)
# ----------------------------------------------------------------------
NOW = 1786150200.0


def test_classify_outcome_wins():
    assert classify({"outcome": "success", "heartbeat_wall": 0.0}, NOW) == "SUCCESS"
    assert classify({"outcome": "error", "heartbeat_wall": NOW}, NOW) == "ERROR"


def test_classify_by_heartbeat_age():
    assert classify({"heartbeat_wall": NOW - 1.0}, NOW) == "RUNNING"
    assert classify({"heartbeat_wall": NOW - 60.0}, NOW) == "STALLED"
    assert classify({"heartbeat_wall": NOW - 600.0}, NOW) == "DEAD"
    assert classify({}, NOW) == "DEAD"  # no heartbeat at all
    # thresholds are parameters
    assert classify({"heartbeat_wall": NOW - 60.0}, NOW,
                    stale_after=90.0, dead_after=120.0) == "RUNNING"


def test_heartbeat_age():
    assert heartbeat_age({"heartbeat_wall": NOW - 5.0}, NOW) == 5.0
    assert heartbeat_age({}, NOW) is None
    assert heartbeat_age({"heartbeat_wall": "?"}, NOW) is None


def test_render_status_line_contents():
    line = render_status_line({
        "name": "table1/C3", "phase": "verification",
        "heartbeat_wall": NOW - 2.0, "cegis_iteration": 4,
        "ipm_iteration": 17, "ipm_convergence": "healthy",
        "cex_total": 9, "recovery_rung": "jitter",
        "budget_remaining_s": 42.5,
        "workers": {"0": {"heartbeat_wall": NOW - 1.0},
                    "1": {"heartbeat_wall": NOW - 500.0}},
    }, NOW)
    assert "RUNNING" in line and "table1/C3" in line
    assert "it=4" in line and "ipm=17/healthy" in line
    assert "cex=9" in line and "rung=jitter" in line
    assert "workers=1/2" in line  # one lane's heartbeat went stale
    assert "budget=42s" in line and "beat=2s" in line


def test_render_fleet_board_orders_running_first():
    statuses = [
        ("a", {"name": "z-done", "outcome": "success",
               "heartbeat_wall": NOW - 900.0}),
        ("b", {"name": "m-stalled", "heartbeat_wall": NOW - 60.0}),
        ("c", {"name": "a-live", "heartbeat_wall": NOW - 1.0}),
    ]
    lines = render_fleet_board(statuses, NOW)
    assert [l.split()[1] for l in lines] == ["a-live", "m-stalled", "z-done"]


def test_render_fleet_board_empty():
    assert render_fleet_board([], NOW) == ["(no status.json heartbeats found)"]


# ----------------------------------------------------------------------
# overlapping in-process runs on one fleet board (acceptance)
# ----------------------------------------------------------------------
def test_fleet_board_shows_two_overlapping_runs(tmp_path):
    with session(str(tmp_path / "A-smoke.jsonl"), name="table1/A") as ta:
        ta.status_update(phase="learning", force=True)
        with session(str(tmp_path / "B-smoke.jsonl"), name="table1/B") as tb:
            tb.status_update(phase="verification", force=True)
            now = time.time()
            statuses = [(p, read_status(p))
                        for p in find_status_files(str(tmp_path))]
            lines = render_fleet_board(statuses, now)
            assert len(lines) == 2
            assert all(l.startswith("RUNNING") for l in lines)
            assert any("table1/A" in l and "learning" in l for l in lines)
            assert any("table1/B" in l and "verification" in l for l in lines)
    # both sessions closed: the same board now shows outcomes
    now = time.time()
    statuses = [(p, read_status(p)) for p in find_status_files(str(tmp_path))]
    assert all(l.startswith("SUCCESS")
               for l in render_fleet_board(statuses, now))


# ----------------------------------------------------------------------
# discovery + event stream helpers
# ----------------------------------------------------------------------
def test_resolve_run_status_path_variants(tmp_path):
    base = tmp_path / "C1-smoke"
    status = tmp_path / "C1-smoke.status.json"
    status.write_text("{}")
    assert resolve_run_status_path(str(status)) == str(status)
    assert resolve_run_status_path(str(base) + ".jsonl") == str(status)
    assert resolve_run_status_path(str(base)) == str(status)
    assert resolve_run_status_path(str(tmp_path)) == str(status)
    assert resolve_run_status_path(str(tmp_path / "nope")) is None


def test_format_event_skips_spans_and_protocol():
    assert format_event({"type": "span", "name": "x"}) is None
    assert format_event({"type": "metrics"}) is None
    assert format_event({"type": "trace_context"}) is None
    line = format_event({"type": "cegis.iteration", "iteration": 2,
                         "wall": 1.0, "nested": {"drop": 1}})
    assert line == "  [cegis.iteration] iteration=2"


def test_trace_follower_incremental_and_torn_lines(tmp_path):
    path = tmp_path / "run.jsonl"
    path.write_text('{"type":"a"}\n{"type":"b"}\n')
    follower = _TraceFollower(str(path))
    assert [e["type"] for e in follower.poll()] == ["a", "b"]
    assert follower.poll() == []  # nothing new
    with open(path, "a") as fh:
        fh.write('{"type":"c"}\n{"type":"d"')  # torn last line
    assert [e["type"] for e in follower.poll()] == ["c"]
    with open(path, "a") as fh:
        fh.write('}\n')  # completes the torn line
    assert [e["type"] for e in follower.poll()] == ["d"]


# ----------------------------------------------------------------------
# tail CLI
# ----------------------------------------------------------------------
def test_tail_cli_single_run_once(tmp_path, capsys):
    with session(str(tmp_path / "C1-smoke.jsonl"), name="table1/C1") as tel:
        tel.event("cegis.iteration", iteration=1)
        tel.status_update(phase="learning", cegis_iteration=1, force=True)
    assert tail_main([str(tmp_path / "C1-smoke"), "--once"]) == 0
    out = capsys.readouterr().out
    assert "table1/C1" in out
    assert "[cegis.iteration]" in out
    assert "SUCCESS" in out


def test_tail_cli_follows_to_outcome(tmp_path, capsys):
    with session(str(tmp_path / "C2-smoke.jsonl"), name="table1/C2") as tel:
        tel.status_update(phase="verification", force=True)
    # run already finished: the follow loop sees the outcome and exits 0
    assert tail_main([str(tmp_path / "C2-smoke"), "--interval", "0.01"]) == 0
    assert "SUCCESS" in capsys.readouterr().out


def test_tail_cli_no_status_found(tmp_path, capsys):
    assert tail_main([str(tmp_path / "ghost"), "--once"]) == 2
    assert "no status.json" in capsys.readouterr().err


def test_tail_cli_fleet_once(tmp_path, capsys):
    with session(str(tmp_path / "C1-smoke.jsonl"), name="table1/C1"):
        pass
    stale = StatusWriter(str(tmp_path / "C9-smoke.status.json"),
                         name="table1/C9")
    stale.state["heartbeat_wall"] = time.time() - 1e6  # ancient heartbeat
    with open(stale.path, "w") as fh:
        json.dump(stale.state, fh)
    assert tail_main(["--fleet", str(tmp_path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "2 run(s)" in out
    assert "SUCCESS" in out and "table1/C1" in out
    assert "DEAD" in out and "table1/C9" in out  # dead-heartbeat detection


# ----------------------------------------------------------------------
# crash durability (satellite: line-granular flush)
# ----------------------------------------------------------------------
def test_sigkilled_run_trace_ends_on_complete_line(tmp_path):
    """SIGKILL a live traced run: with ``flush_every=1`` every emitted
    event is already on disk and the trace ends on a complete JSON line
    (a buffered sink would lose the userspace tail wholesale)."""
    trace = str(tmp_path / "victim.jsonl")
    child = (
        "import sys, time\n"
        "from repro.telemetry import session\n"
        "with session(sys.argv[1], name='victim') as tel:\n"
        "    for i in range(50):\n"
        "        tel.event('tick', i=i)\n"
        "    print('READY', flush=True)\n"
        "    time.sleep(60)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", child, trace],
        stdout=subprocess.PIPE, cwd=os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), env=env,
    )
    try:
        assert proc.stdout.readline().strip() == b"READY"
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
    with open(trace, "rb") as fh:
        raw = fh.read()
    assert raw.endswith(b"\n")  # ends on a complete line
    events = [json.loads(line) for line in raw.decode().splitlines()]
    ticks = [e for e in events if e.get("type") == "tick"]
    assert len(ticks) == 50  # nothing emitted before the kill was lost
    # killed mid-run: no outcome ever recorded — the run reads incomplete
    status = read_status(trace[:-6] + ".status.json")
    assert status is not None and status["outcome"] is None
    assert classify(status, time.time() + 1e6) == "DEAD"
