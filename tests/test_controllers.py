"""Tests for NN controllers, LQR cloning and the polynomial inclusion."""

import numpy as np
import pytest

from repro.controllers import (
    NNController,
    behavior_clone,
    linear_feedback_fn,
    linearize,
    lqr_gain,
    polynomial_inclusion,
)
from repro.dynamics import ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def double_integrator():
    x, v = Polynomial.variables(2)
    return ControlAffineSystem.single_input([v, Polynomial.zero(2)], [0.0, 1.0])


# ----------------------------------------------------------------------
# controller wrapper
# ----------------------------------------------------------------------
def test_controller_shapes():
    k = NNController(3, 1, hidden=(8,), rng=np.random.default_rng(0))
    single = k(np.zeros(3))
    assert single.shape == (1,)
    batch = k(np.zeros((5, 3)))
    assert batch.shape == (5, 1)
    assert k.lipschitz_bound() > 0
    assert "NNController" in repr(k)


def test_controller_validation():
    with pytest.raises(ValueError):
        NNController(0, 1)
    with pytest.raises(ValueError):
        NNController(2, 0)


# ----------------------------------------------------------------------
# LQR
# ----------------------------------------------------------------------
def test_linearize_double_integrator():
    A, B = linearize(double_integrator())
    np.testing.assert_allclose(A, [[0, 1], [0, 0]])
    np.testing.assert_allclose(B, [[0], [1]])


def test_linearize_nonlinear_terms_vanish():
    x, y = Polynomial.variables(2)
    sys2 = ControlAffineSystem.single_input([y + x * x, -1.0 * x + y ** 3], [0.0, 1.0])
    A, _ = linearize(sys2)
    np.testing.assert_allclose(A, [[0, 1], [-1, 0]])


def test_lqr_stabilizes_linearization():
    sys2 = double_integrator()
    K = lqr_gain(sys2)
    A, B = linearize(sys2)
    eigs = np.linalg.eigvals(A - B @ K)
    assert np.all(eigs.real < 0)


def test_lqr_requires_input():
    x = Polynomial.variable(1, 0)
    with pytest.raises(ValueError):
        lqr_gain(ControlAffineSystem.autonomous([-1.0 * x]))


def test_linear_feedback_fn():
    K = np.array([[1.0, 2.0]])
    f = linear_feedback_fn(K)
    np.testing.assert_allclose(f(np.array([1.0, 1.0])), [[-3.0]])


# ----------------------------------------------------------------------
# behaviour cloning
# ----------------------------------------------------------------------
def test_behavior_clone_imitates_lqr():
    rng = np.random.default_rng(1)
    sys2 = double_integrator()
    K = lqr_gain(sys2)
    k = NNController(2, 1, hidden=(16,), rng=rng)
    box = Box.cube(2, -1.0, 1.0)
    mse = behavior_clone(
        k, linear_feedback_fn(K), box, n_samples=1024, epochs=120, rng=rng
    )
    assert mse < 0.01


def test_behavior_clone_shape_mismatch():
    k = NNController(2, 1, rng=np.random.default_rng(2))
    box = Box.cube(2, -1, 1)
    with pytest.raises(ValueError):
        behavior_clone(k, lambda x: np.zeros((len(x), 3)), box, n_samples=64, epochs=1)


# ----------------------------------------------------------------------
# polynomial inclusion (§3)
# ----------------------------------------------------------------------
def test_inclusion_exact_for_polynomial_controller():
    # a controller that IS a polynomial: sigma~ must be ~0
    p = Polynomial(2, {(1, 0): -2.0, (0, 1): -1.0, (2, 0): 0.5})

    def ctrl(pts):
        return p(pts)[:, None]

    box = Box.cube(2, -1.0, 1.0)
    inc = polynomial_inclusion(ctrl, box, degree=2, spacing=0.2, lipschitz=5.0)
    assert inc.sigma_tilde[0] == pytest.approx(0.0, abs=1e-8)
    assert inc.polynomials[0].is_close(p, tol=1e-6)
    assert inc.sigma_star[0] == pytest.approx(0.5 * inc.spacing * 5.0, abs=1e-8)


def test_inclusion_theorem2_bound_sound():
    rng = np.random.default_rng(3)
    k = NNController(2, 1, hidden=(8,), rng=rng)
    box = Box.cube(2, -1.0, 1.0)
    inc = polynomial_inclusion(k, box, degree=3, spacing=0.1)
    pts = box.sample(3000, rng=rng)
    err = np.abs(k(pts)[:, 0] - inc.polynomials[0](pts))
    assert float(np.max(err)) <= inc.sigma_star[0] + 1e-9
    assert inc.sigma_tilde[0] <= inc.sigma_star[0]


def test_inclusion_tightens_with_mesh():
    """Remark 1: smaller spacing -> smaller (or equal) sigma~ and sigma*."""
    rng = np.random.default_rng(4)
    k = NNController(1, 1, hidden=(6,), rng=rng)
    box = Box([-1.0], [1.0])
    coarse = polynomial_inclusion(k, box, degree=3, spacing=0.5)
    fine = polynomial_inclusion(k, box, degree=3, spacing=0.05)
    # sigma~ underestimates on coarse meshes (few points are easy to
    # interpolate); the verified bound sigma* must tighten as s shrinks.
    assert fine.sigma_star[0] <= coarse.sigma_star[0] + 1e-9
    # and sigma~ <= sigma* always (Theorem 2 sandwich)
    assert fine.sigma_tilde[0] <= fine.sigma_star[0]


def test_inclusion_multi_output():
    rng = np.random.default_rng(5)
    k = NNController(2, 2, hidden=(6,), rng=rng)
    box = Box.cube(2, -1.0, 1.0)
    inc = polynomial_inclusion(k, box, degree=2, spacing=0.25)
    assert len(inc.polynomials) == 2
    assert len(inc.sigma_star) == 2
    assert inc.worst_sigma_star == max(inc.sigma_star)
    lo, hi = inc.error_intervals()[0]
    assert lo == -hi


def test_inclusion_validation():
    box = Box.cube(2, -1, 1)
    with pytest.raises(ValueError):
        polynomial_inclusion(lambda pts: pts[:, :1], box, degree=1)  # no lipschitz
    with pytest.raises(ValueError):
        polynomial_inclusion(
            lambda pts: pts[:, :1], box, degree=-1, lipschitz=1.0
        )


def test_inclusion_mesh_cap_widens_spacing():
    rng = np.random.default_rng(6)
    k = NNController(3, 1, hidden=(4,), rng=rng)
    box = Box.cube(3, -1.0, 1.0)
    inc = polynomial_inclusion(k, box, degree=2, spacing=0.01, max_mesh_points=500)
    assert inc.n_mesh_points <= 500
    assert inc.spacing > 0.01  # got widened and honestly reported
