"""Result-identity tests for the hot-path performance layer.

Every default-on optimization (SOS workspace cache, tape replay,
compile-field memoization, incremental field values, vectorized design
matrix) must be *bitwise* identical to its reference path; parallel
verification must reproduce the serial :class:`VerificationResult`.
"""

import math

import numpy as np
import pytest

from repro.autodiff import Tape, Tensor
from repro.cegis.counterexamples import _ViolationFn
from repro.controllers.inclusion import _design_matrix
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import BarrierLearner, LearnerConfig, TrainingData
from repro.poly import Polynomial
from repro.poly.fast_eval import (
    clear_compile_cache,
    compile_field,
    set_compile_cache_enabled,
)
from repro.poly.monomials import monomials_upto
from repro.sets import Box
from repro.verifier import SOSVerifier, VerifierConfig


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
    )


def radial_barrier(n, c=1.0, scale=0.5):
    B = Polynomial.constant(n, c)
    for i in range(n):
        B = B - scale * Polynomial.variable(n, i) ** 2
    return B


FLOAT_FIELDS = (
    "residual_bound",
    "min_gram_eigenvalue",
    "sdp_gap",
    "sdp_primal_residual",
    "sdp_dual_residual",
)


def assert_results_identical(a, b):
    """Field-by-field equality of two VerificationResults, wall-clock
    timings aside — including the SDP endgame stats of every report."""
    assert a.ok == b.ok
    assert len(a.conditions) == len(b.conditions)
    for x, y in zip(a.conditions, b.conditions):
        assert x.name == y.name
        assert x.feasible == y.feasible
        assert x.validated == y.validated
        assert x.message == y.message
        assert x.sdp_status == y.sdp_status
        assert x.sdp_iterations == y.sdp_iterations
        for f in FLOAT_FIELDS:
            xa, ya = getattr(x, f), getattr(y, f)
            assert (math.isnan(xa) and math.isnan(ya)) or xa == ya, (
                x.name,
                f,
                xa,
                ya,
            )
    if a.lambda_poly is None:
        assert b.lambda_poly is None
    else:
        assert a.lambda_poly.coeffs == b.lambda_poly.coeffs
    la = a.lambda_polys or {}
    lb = b.lambda_polys or {}
    assert la.keys() == lb.keys()
    for k in la:
        assert la[k].coeffs == lb[k].coeffs


# ----------------------------------------------------------------------
# SOS workspace cache
# ----------------------------------------------------------------------
def test_workspace_cached_verify_identical_to_fresh():
    prob = decay_problem()
    B = radial_barrier(2)
    cached = SOSVerifier(prob, [], config=VerifierConfig(workspace_cache=True))
    fresh = SOSVerifier(prob, [], config=VerifierConfig(workspace_cache=False))
    # repeated verifies exercise the warm (hit) path of the cache
    for candidate in (B, B * 1.7 - 0.05 * Polynomial.variable(2, 0), B):
        assert_results_identical(cached.verify(candidate), fresh.verify(candidate))


def test_workspace_cached_verify_identical_on_failing_candidate():
    prob = decay_problem()
    bad = -1.0 * radial_barrier(2)
    cached = SOSVerifier(prob, [], config=VerifierConfig(workspace_cache=True))
    fresh = SOSVerifier(prob, [], config=VerifierConfig(workspace_cache=False))
    ra, rb = cached.verify(bad), fresh.verify(bad)
    assert not ra.ok
    assert_results_identical(ra, rb)


def test_workspace_reused_across_verifies():
    prob = decay_problem()
    v = SOSVerifier(prob, [], config=VerifierConfig(workspace_cache=True))
    v.verify(radial_barrier(2))
    workspaces_after_first = dict(v._workspaces)
    v.verify(radial_barrier(2, c=0.9))
    assert v._workspaces.keys() == {"init", "unsafe", "lie"}
    for key, ws in workspaces_after_first.items():
        assert v._workspaces[key] is ws  # same cached object, only affine refresh


# ----------------------------------------------------------------------
# parallel verification
# ----------------------------------------------------------------------
def test_parallel_verify_equals_serial():
    prob = decay_problem()
    serial = SOSVerifier(prob, [], config=VerifierConfig(parallel=False))
    par = SOSVerifier(
        prob, [], config=VerifierConfig(parallel=True, max_workers=2)
    )
    for candidate in (radial_barrier(2), -1.0 * radial_barrier(2)):
        assert_results_identical(par.verify(candidate), serial.verify(candidate))


def test_parallel_verify_c1_smoke_equals_serial():
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC, SNBCConfig

    def run(parallel):
        spec = get_benchmark("C1")
        snbc = SNBC(
            spec.make_problem(),
            controller=spec.make_controller(),
            config=SNBCConfig(parallel_verify=parallel),
        )
        return snbc.run()

    r_ser, r_par = run(False), run(True)
    assert r_ser.success == r_par.success
    assert r_ser.iterations == r_par.iterations
    assert r_ser.barrier.coeffs == r_par.barrier.coeffs
    assert_results_identical(r_ser.verification, r_par.verification)


# ----------------------------------------------------------------------
# tape replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("lambda_hidden", [(5,), None])
@pytest.mark.parametrize("arch", ["quadratic", "square"])
def test_tape_training_bitwise_identical(arch, lambda_hidden):
    prob = decay_problem()
    data = TrainingData.sample(prob, 60, rng=np.random.default_rng(0))
    field = prob.system.closed_loop([])

    def run(use_tape):
        cfg = LearnerConfig(
            epochs=40,
            seed=7,
            b_architecture=arch,
            lambda_hidden=lambda_hidden,
            use_tape=use_tape,
        )
        learner = BarrierLearner(2, config=cfg)
        learner.fit(data, field)
        return learner

    a, b = run(True), run(False)
    for p, q in zip(a._params, b._params):
        assert np.array_equal(p.data, q.data)
    assert len(a.loss_history) == len(b.loss_history)
    for ta, tb in zip(a.loss_history, b.loss_history):
        assert ta.total == tb.total
        assert ta.init == tb.init
        assert ta.unsafe == tb.unsafe
        assert ta.domain == tb.domain


def test_tape_replay_matches_rebuild_for_raw_graph():
    rng = np.random.default_rng(1)
    w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    x = Tensor(rng.normal(size=(5, 4)))

    def build():
        h = (x @ w).tanh()
        return (h * h).sum() + h.abs().mean()

    loss = build()
    loss.backward()
    tape = Tape(loss)
    g0 = w.grad.copy()
    # perturb the leaf and replay; compare against a fresh graph build
    w.data = w.data * 1.01
    tape.run()
    g_tape = w.grad.copy()
    v_tape = loss.item()
    w.grad = None
    loss2 = build()
    loss2.backward()
    assert v_tape == loss2.item()
    assert np.array_equal(g_tape, w.grad)
    assert g0.shape == g_tape.shape


# ----------------------------------------------------------------------
# compile_field memoization + incremental field values
# ----------------------------------------------------------------------
def test_compile_field_memoized_object_reused():
    clear_compile_cache()
    xs = Polynomial.variables(2)
    field = [-1.0 * xs[0] + 0.5 * xs[1], xs[0] * xs[1]]
    c1 = compile_field(field)
    # structurally identical fresh Polynomial objects hit the same entry
    field2 = [-1.0 * xs[0] + 0.5 * xs[1], xs[0] * xs[1]]
    assert compile_field(field2) is c1
    old = set_compile_cache_enabled(False)
    try:
        assert compile_field(field) is not c1
    finally:
        set_compile_cache_enabled(old)
        clear_compile_cache()


def test_incremental_field_values_bitwise_on_grown_dataset():
    prob = decay_problem()
    field = prob.system.closed_loop([])
    rng = np.random.default_rng(5)
    pts = prob.psi.sample(80, rng=rng)
    grown = np.vstack([pts, prob.psi.sample(17, rng=rng)])

    learner = BarrierLearner(
        2, config=LearnerConfig(incremental_field_values=True)
    )
    ref = compile_field(field)
    first = learner._field_values(field, pts)
    assert np.array_equal(first, ref(pts))
    second = learner._field_values(field, grown)  # prefix reused
    assert np.array_equal(second, ref(grown))


# ----------------------------------------------------------------------
# satellite kernels
# ----------------------------------------------------------------------
def test_design_matrix_matches_reference_loop():
    def reference(points, degree):
        m, n = points.shape
        basis = monomials_upto(n, degree)
        pows = np.ones((degree + 1, m, n))
        for k in range(1, degree + 1):
            pows[k] = pows[k - 1] * points
        cols = []
        for alpha in basis:
            col = np.ones(m)
            for i, a in enumerate(alpha):
                if a:
                    col = col * pows[a][:, i]
            cols.append(col)
        return np.stack(cols, axis=1)

    rng = np.random.default_rng(11)
    for n, d in [(1, 4), (2, 2), (3, 3), (5, 2)]:
        pts = 2.0 * rng.normal(size=(23, n))
        assert np.array_equal(_design_matrix(pts, d), reference(pts, d))


def test_compiled_violation_kernels_match_reference():
    p1 = Polynomial(2, {(0, 0): 1.0, (1, 0): 2.0, (1, 1): -0.5, (0, 2): 1.0})
    p2 = Polynomial(2, {(0, 0): 0.3, (2, 0): -1.0, (0, 1): 0.7})
    q = Polynomial(2, {(1, 0): 1.0, (0, 2): -0.2})
    pts = np.random.default_rng(3).normal(size=(64, 2))
    ref = _ViolationFn([p1, p2], [(0.4, q)])
    fast = _ViolationFn([p1, p2], [(0.4, q)], compiled=True)
    np.testing.assert_allclose(ref.value(pts), fast.value(pts), rtol=1e-12)
    np.testing.assert_allclose(
        ref.gradient(pts), fast.gradient(pts), rtol=1e-12, atol=1e-14
    )


# ----------------------------------------------------------------------
# batched tri-condition solves + warm starts (solver fast path, PR 8)
# ----------------------------------------------------------------------
def _condition_iterations(result):
    return sum(
        c.sdp_iterations
        for c in result.conditions
        if c.sdp_iterations is not None and c.sdp_iterations > 0
    )


def assert_certificates_identical(a, b):
    """Bitwise equality of two CertificateBundles."""
    if a is None or b is None:
        assert a is b
        return
    assert a.barrier.coeffs == b.barrier.coeffs
    assert a.barrier_scale == b.barrier_scale
    assert len(a.conditions) == len(b.conditions)
    for ca, cb in zip(a.conditions, b.conditions):
        assert ca.name == cb.name
        assert ca.margin == cb.margin
        assert np.array_equal(ca.slack_gram, cb.slack_gram)
        assert len(ca.multipliers) == len(cb.multipliers)
        for ma, mb in zip(ca.multipliers, cb.multipliers):
            assert np.array_equal(ma.gram, mb.gram)


def test_batched_verify_equals_serial():
    prob = decay_problem()
    serial = SOSVerifier(
        prob, [], config=VerifierConfig(batch_conditions=False)
    )
    batched = SOSVerifier(
        prob, [], config=VerifierConfig(batch_conditions=True)
    )
    # passing and failing candidates: the batched path must reproduce the
    # serial skip/short-circuit semantics bitwise
    for candidate in (radial_barrier(2), -1.0 * radial_barrier(2)):
        ra = batched.verify(candidate)
        rb = serial.verify(candidate)
        assert_results_identical(ra, rb)
        assert_certificates_identical(ra.certificate, rb.certificate)


def test_batched_and_warm_verify_c1_candidate():
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    result = SNBC(problem, controller=spec.make_controller()).run()
    assert result.success
    B = result.barrier
    h = result.inclusion.polynomials
    sigma = result.inclusion.sigma_star

    serial = SOSVerifier(problem, h, sigma, config=VerifierConfig())
    batched = SOSVerifier(
        problem, h, sigma, config=VerifierConfig(batch_conditions=True)
    )
    rs = serial.verify(B)
    rb = batched.verify(B)
    assert rs.ok
    assert_results_identical(rb, rs)
    assert_certificates_identical(rb.certificate, rs.certificate)

    # warm starting is NOT bitwise (different central path) but must be
    # verdict-equivalent and must not cost extra IPM iterations
    warm = SOSVerifier(
        problem, h, sigma, config=VerifierConfig(warm_start=True)
    )
    warm.verify(B)  # seeds the per-condition warm-start store
    rw = warm.verify(B)
    assert rw.ok == rs.ok
    assert [
        (c.name, c.feasible, c.validated) for c in rw.conditions
    ] == [(c.name, c.feasible, c.validated) for c in rs.conditions]
    assert _condition_iterations(rw) <= _condition_iterations(rs)


def test_warm_store_cleared_on_failure():
    prob = decay_problem()
    v = SOSVerifier(prob, [], config=VerifierConfig(warm_start=True))
    good = radial_barrier(2)
    v.verify(good)
    assert v._warm  # seeded by the successful solves
    v.verify(-1.0 * good)
    # conditions that now fail must not keep a stale warm point
    for name, ws in v._warm.items():
        assert ws is not None
    r = v.verify(good)
    assert r.ok
