"""Gradient checks for the reverse-mode autodiff engine."""

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xm = x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        g[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return g


def check_grad(build, shape, seed=0, atol=1e-5):
    """Compare autodiff gradient against finite differences."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=shape)
    t = Tensor(x0, requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_grad(lambda arr: build(Tensor(arr, requires_grad=True)).item(), x0)
    np.testing.assert_allclose(t.grad, num, atol=atol)


def test_add_mul_grad():
    check_grad(lambda t: (t * 3.0 + 1.0).sum(), (4,))
    check_grad(lambda t: (t * t).sum(), (3, 2))


def test_sub_div_grad():
    check_grad(lambda t: ((t - 2.0) / 3.0).sum(), (5,))
    check_grad(lambda t: (1.0 / (t * t + 2.0)).sum(), (4,))


def test_pow_grad():
    check_grad(lambda t: (t ** 3).sum(), (4,))


def test_matmul_grad():
    W = np.array([[1.0, -2.0], [0.5, 1.5], [2.0, 0.0]])
    check_grad(lambda t: (t @ Tensor(W)).sum(), (2, 3))

    A = np.array([[1.0, 0.5], [-1.0, 2.0]])
    check_grad(lambda t: (Tensor(A) @ t).sum(), (2, 4))


def test_matmul_param_grad():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(5, 3))
    check_grad(lambda t: (Tensor(X) @ t).sum(), (3, 2))


def test_activation_grads():
    check_grad(lambda t: t.tanh().sum(), (6,))
    check_grad(lambda t: t.sigmoid().sum(), (6,))
    check_grad(lambda t: t.exp().sum(), (4,))
    # relu/leaky away from the kink
    rng = np.random.default_rng(1)
    x0 = rng.normal(size=(8,))
    x0[np.abs(x0) < 0.1] = 0.5
    t = Tensor(x0, requires_grad=True)
    t.relu().sum().backward()
    np.testing.assert_allclose(t.grad, (x0 > 0).astype(float))
    t2 = Tensor(x0, requires_grad=True)
    t2.leaky_relu(0.1).sum().backward()
    np.testing.assert_allclose(t2.grad, np.where(x0 > 0, 1.0, 0.1))


def test_abs_and_maximum():
    check_grad(lambda t: (t * 2.0).abs().sum(), (5,), seed=7)
    check_grad(lambda t: t.maximum(0.3).sum(), (5,), seed=8)


def test_mean_and_reshape():
    check_grad(lambda t: t.mean(), (6,))
    check_grad(lambda t: t.reshape(3, 2).sum(), (6,))
    check_grad(lambda t: (t.T @ t).sum(), (3, 2))


def test_broadcasting_bias():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(4, 3))
    check_grad(lambda t: (Tensor(X) + t).sum(), (3,))
    check_grad(lambda t: (Tensor(X) * t).sum(), (3,))


def test_sum_axis():
    check_grad(lambda t: t.sum(axis=0).sum(), (3, 4))
    check_grad(lambda t: (t.sum(axis=1) ** 2).sum(), (3, 4))


def test_grad_accumulates_through_shared_node():
    x = Tensor(np.array([2.0]), requires_grad=True)
    y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
    y.sum().backward()
    np.testing.assert_allclose(x.grad, [7.0])


def test_backward_requires_scalar():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2.0).backward()


def test_backward_on_no_grad_tensor():
    x = Tensor(np.ones(1))
    with pytest.raises(RuntimeError):
        x.backward()


def test_no_grad_disables_graph():
    x = Tensor(np.ones(3), requires_grad=True)
    with no_grad():
        y = (x * 2.0).sum()
    assert not y.requires_grad


def test_detach():
    x = Tensor(np.ones(3), requires_grad=True)
    assert not x.detach().requires_grad


def test_repr_and_item():
    x = Tensor(np.array([1.5]))
    assert x.item() == 1.5
    assert "Tensor" in repr(x)
