"""RetryPolicy: classification, backoff growth, deterministic jitter."""

import math

import pytest

from repro.resilience import (
    TERMINAL,
    TRANSIENT,
    BudgetExhausted,
    CheckpointError,
    RetryPolicy,
    SolverNumericalError,
    WorkerCrash,
)


def test_transient_kinds_classified():
    policy = RetryPolicy()
    assert policy.classify_kind("WorkerCrash") == TRANSIENT
    assert policy.classify_kind("SolverNumericalError") == TRANSIENT
    assert policy.classify(WorkerCrash("died")) == TRANSIENT
    assert policy.classify(SolverNumericalError("nan")) == TRANSIENT


def test_terminal_kinds_fail_fast():
    policy = RetryPolicy()
    assert policy.classify_kind("BudgetExhausted") == TERMINAL
    assert policy.classify_kind("CheckpointError") == TERMINAL
    assert policy.classify(BudgetExhausted("oot")) == TERMINAL
    assert policy.classify(CheckpointError("bad")) == TERMINAL
    # a kind the taxonomy does not know is not retried on faith
    assert policy.classify_kind("SomethingNovel") == TERMINAL
    assert policy.classify_kind(None) == TERMINAL


def test_should_retry_respects_attempt_bound():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry_kind("WorkerCrash", 1)
    assert policy.should_retry_kind("WorkerCrash", 2)
    assert not policy.should_retry_kind("WorkerCrash", 3)
    assert not policy.should_retry_kind("BudgetExhausted", 1)
    assert policy.should_retry(WorkerCrash("died"), 1)
    assert not policy.should_retry(BudgetExhausted("oot"), 1)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
    )
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.4)
    assert policy.delay_s(4) == pytest.approx(0.5)  # capped
    assert policy.delay_s(10) == pytest.approx(0.5)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.25)
    seen = set()
    for token in ("job-a", "job-b", "job-c"):
        d1 = policy.delay_s(1, token=token)
        d2 = policy.delay_s(1, token=token)
        assert d1 == d2  # same token+attempt: same delay, every time
        assert 0.75 <= d1 <= 1.25
        seen.add(d1)
    assert len(seen) == 3  # distinct tokens spread out
    assert policy.delay_s(1, token="job-a") != policy.delay_s(
        2, token="job-a"
    )


def test_delay_never_negative():
    policy = RetryPolicy(base_delay_s=0.0, jitter=0.9)
    for attempt in range(1, 5):
        assert policy.delay_s(attempt, token="t") >= 0.0
        assert math.isfinite(policy.delay_s(attempt, token="t"))
