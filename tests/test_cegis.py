"""Tests for counterexample generation and the SNBC loop."""

import numpy as np
import pytest

from repro.cegis import (
    CexConfig,
    CounterexampleGenerator,
    SNBC,
    SNBCConfig,
)
from repro.controllers import NNController
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.sets import Box


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
        name=f"decay{n}d",
    )


def controlled_1d():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([1.0 * x], [1.0])  # unstable + u
    return CCDS(
        sys1,
        theta=Box([-0.5], [0.5]),
        psi=Box([-2.0], [2.0]),
        xi=Box([1.5], [2.0]),
        name="unstable1d",
    )


def radial_barrier(n, c=1.0):
    B = Polynomial.constant(n, c)
    for i in range(n):
        B = B - Polynomial.variable(n, i) ** 2
    return B


# ----------------------------------------------------------------------
# counterexample generation
# ----------------------------------------------------------------------
def test_cex_for_init_violation():
    prob = decay_problem()
    # B negative on part of Theta: B = x1 (negative for x1 < 0)
    B = Polynomial.variable(2, 0)
    lam = Polynomial.zero(2)
    gen = CounterexampleGenerator(prob, [], config=CexConfig(seed=0))
    cexs = gen.generate(B, lam, ["init"])
    assert len(cexs) == 1
    cex = cexs[0]
    assert cex.condition == "init"
    assert B(cex.worst_point) < 0
    assert prob.theta.contains(cex.worst_point, tol=1e-9)
    # worst point should be near the most-negative corner x1 = -0.5
    assert cex.worst_point[0] == pytest.approx(-0.5, abs=0.05)
    assert cex.gamma > 0
    assert len(cex.points) >= 1
    assert np.all(B(cex.points) < 0.1)  # points cluster in the violating zone


def test_cex_for_unsafe_violation():
    prob = decay_problem()
    B = Polynomial.constant(2, 1.0)  # positive everywhere: violates (ii)
    gen = CounterexampleGenerator(prob, [], config=CexConfig(seed=1))
    cexs = gen.generate(B, Polynomial.zero(2), ["unsafe"])
    assert len(cexs) == 1
    assert cexs[0].condition == "unsafe"
    assert np.all(prob.xi.contains(cexs[0].points, tol=1e-9))


def test_cex_for_lie_violation():
    # growing system, shrinking barrier: lie condition is violated
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([1.0 * x for x in xs])
    prob = CCDS(sys2, Box.cube(2, -0.5, 0.5), Box.cube(2, -2, 2), Box.cube(2, 1.5, 2))
    B = radial_barrier(2)
    gen = CounterexampleGenerator(prob, [], config=CexConfig(seed=2))
    cexs = gen.generate(B, Polynomial.zero(2), ["lie"])
    assert len(cexs) == 1
    assert cexs[0].condition == "lie"
    assert cexs[0].worst_violation > 0


def test_cex_skips_satisfied_condition():
    prob = decay_problem()
    B = radial_barrier(2)  # valid everywhere
    gen = CounterexampleGenerator(prob, [], config=CexConfig(seed=3))
    cexs = gen.generate(B, Polynomial.constant(2, -0.5), ["init", "unsafe"])
    assert cexs == []


def test_cex_sigma_star_enters_lie_violation():
    prob = controlled_1d()
    B = radial_barrier(1)
    h = [Polynomial(1, {(1,): -2.0})]  # u = -2x stabilizes: xdot = -x
    gen0 = CounterexampleGenerator(prob, h, sigma_star=[0.0], config=CexConfig(seed=4))
    assert gen0.generate(B, Polynomial.constant(1, -0.5), ["lie"]) == []
    # enormous inclusion error makes the robust margin fail
    gen_big = CounterexampleGenerator(
        prob, h, sigma_star=[100.0], config=CexConfig(seed=4)
    )
    cexs = gen_big.generate(B, Polynomial.constant(1, -0.5), ["lie"])
    assert len(cexs) == 1


def test_cex_unknown_condition():
    prob = decay_problem()
    gen = CounterexampleGenerator(prob, [])
    with pytest.raises(ValueError):
        gen.generate(radial_barrier(2), Polynomial.zero(2), ["bogus"])


# ----------------------------------------------------------------------
# SNBC loop
# ----------------------------------------------------------------------
def test_snbc_autonomous_success():
    prob = decay_problem()
    res = SNBC(
        prob,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=400, seed=0),
        config=SNBCConfig(max_iterations=6, n_samples=300, seed=0),
    ).run()
    assert res.success
    assert res.barrier is not None
    assert res.verification.ok
    assert res.iterations >= 1
    assert res.timings.total > 0
    assert res.timings.learning > 0


def test_snbc_controlled_success():
    prob = controlled_1d()
    ctrl = NNController(1, 1, hidden=(8,), rng=np.random.default_rng(0))
    # quick cloning of a stabilizing law u = -2x
    from repro.controllers import behavior_clone

    behavior_clone(
        ctrl,
        lambda x: -2.0 * np.atleast_2d(x),
        prob.psi,
        n_samples=512,
        epochs=100,
        rng=np.random.default_rng(0),
    )
    res = SNBC(
        prob,
        controller=ctrl,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=400, seed=0),
        config=SNBCConfig(max_iterations=6, n_samples=300, seed=0),
    ).run()
    assert res.success
    assert res.inclusion is not None
    assert res.inclusion.sigma_star[0] < 1.0
    # the certified barrier separates: check numerically
    B = res.barrier
    rng = np.random.default_rng(1)
    assert np.all(B(prob.theta.sample(500, rng=rng)) >= -1e-6)
    assert np.all(B(prob.xi.sample(500, rng=rng)) < 0)


def test_snbc_requires_controller_for_controlled_system():
    prob = controlled_1d()
    with pytest.raises(ValueError):
        SNBC(prob)


def test_snbc_failure_reports_history():
    # impossible instance: unsafe set INSIDE the initial set
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    prob = CCDS(
        sys2,
        theta=Box.cube(2, -1.0, 1.0),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, -0.2, 0.2),  # overlaps Theta: no BC can exist
    )
    res = SNBC(
        prob,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=50, seed=0),
        config=SNBCConfig(max_iterations=2, n_samples=100, seed=0),
    ).run()
    assert not res.success
    assert len(res.history) == 2
    assert res.iterations == 2


def test_snbc_warm_start_disabled_still_works():
    prob = decay_problem()
    res = SNBC(
        prob,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=600, seed=0, warm_start=False),
        config=SNBCConfig(max_iterations=8, n_samples=300, seed=0),
    ).run()
    assert res.success


def test_snbc_result_metadata():
    prob = decay_problem()
    res = SNBC(
        prob,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=200, seed=0),
        config=SNBCConfig(max_iterations=4, n_samples=200, seed=0),
    ).run()
    assert res.problem_name == "decay2d"
    assert res.total_time == res.timings.total


def test_snbc_deterministic_history_from_seed():
    """The single config seed drives one generator chain: two identical
    runs must produce byte-identical iteration histories."""

    def one_run():
        return SNBC(
            decay_problem(),
            learner_config=LearnerConfig(b_hidden=(4,), epochs=60, seed=0),
            config=SNBCConfig(max_iterations=2, n_samples=150, seed=123),
        ).run()

    a, b = one_run(), one_run()
    assert a.success == b.success
    assert a.iterations == b.iterations
    assert a.history == b.history  # exact float equality, not approx
    if a.barrier is not None:
        assert a.barrier == b.barrier


def test_snbc_emits_spans_for_all_four_phases():
    """A controlled run with a failing first candidate traverses every
    pipeline phase, and the trace's per-phase totals must agree with
    ``SNBCResult.timings``."""
    from repro.telemetry import InMemorySink, Telemetry
    from repro.telemetry.report import phase_totals

    prob = controlled_1d()
    ctrl = NNController(1, 1, hidden=(4,), rng=np.random.default_rng(0))
    sink = InMemorySink()
    tel = Telemetry(sink)
    res = SNBC(
        prob,
        controller=ctrl,
        learner_config=LearnerConfig(
            b_hidden=(4,), epochs=2, seed=0, warm_start=False
        ),
        config=SNBCConfig(max_iterations=2, n_samples=100, seed=0),
        telemetry=tel,
    ).run()
    phases = sink.phases()
    assert set(phases) == {
        "inclusion", "learning", "verification", "counterexample"
    }
    # the spans are the source of truth for PhaseTimings: totals match
    totals = phase_totals(sink.events)
    assert totals["inclusion"] == pytest.approx(res.timings.inclusion)
    assert totals["learning"] == pytest.approx(res.timings.learning)
    assert totals["verification"] == pytest.approx(res.timings.verification)
    assert totals["counterexample"] == pytest.approx(
        res.timings.counterexample
    )
