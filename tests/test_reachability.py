"""Tests for Monte-Carlo reachability estimation."""

import numpy as np
import pytest

from repro.analysis import estimate_reachability
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5),
        psi=Box.cube(n, -2.0, 2.0),
        xi=Box.cube(n, 1.5, 2.0),
    )


def escape_problem():
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([1.0 * x for x in xs])
    return CCDS(
        sys2,
        theta=Box([0.3, 0.3], [0.5, 0.5]),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box([1.0, 1.0], [2.0, 2.0]),
    )


def test_stable_system_is_empirically_safe():
    prob = decay_problem()
    report = estimate_reachability(
        prob, n_trajectories=15, t_final=6.0, rng=np.random.default_rng(0)
    )
    assert report.empirically_safe
    assert report.n_exited_domain == 0
    # the tube must contract toward the origin
    lo0, hi0 = report.tube.lower[0], report.tube.upper[0]
    lof, hif = report.tube.final_bounds
    assert np.all(hif <= hi0 + 1e-9)
    assert np.max(np.abs(hif)) < 0.2  # decayed
    assert report.min_unsafe_distance > 1.0


def test_unsafe_system_detected():
    prob = escape_problem()
    report = estimate_reachability(
        prob, n_trajectories=10, t_final=6.0, rng=np.random.default_rng(1)
    )
    assert not report.empirically_safe
    assert report.n_unsafe > 0


def test_barrier_margin_tracked():
    prob = decay_problem()
    B = Polynomial.constant(2, 1.0)
    for i in range(2):
        B = B - 0.5 * Polynomial.variable(2, i) ** 2
    report = estimate_reachability(
        prob,
        n_trajectories=10,
        t_final=5.0,
        barrier=B,
        rng=np.random.default_rng(2),
    )
    assert report.min_barrier_value is not None
    assert report.min_barrier_value >= 0.5  # B >= 0.75 on Theta, grows inward


def test_tube_contains_its_own_trajectories():
    prob = decay_problem()
    rng = np.random.default_rng(3)
    report = estimate_reachability(prob, n_trajectories=8, t_final=4.0, rng=rng)
    # the tube is built from sampled trajectories, so a trajectory from one
    # of the same starts must lie inside it (up to bucket-edge effects)
    from repro.analysis import simulate

    start = prob.theta.sample(8, rng=np.random.default_rng(3))[0]
    sim = simulate(prob, start, t_final=4.0)
    hits = sum(
        report.tube.contains(t, x) for t, x in zip(sim.times[::20], sim.states[::20])
    )
    assert hits >= 1
    # structural checks
    assert report.tube.lower.shape == report.tube.upper.shape
    assert np.all(report.tube.lower <= report.tube.upper + 1e-12)


def test_validation():
    prob = decay_problem()
    with pytest.raises(ValueError):
        estimate_reachability(prob, n_trajectories=0)
    with pytest.raises(ValueError):
        estimate_reachability(prob, n_buckets=0)
