"""Tests for the fleet telemetry store and CLI (store.py / fleet.py).

The committed fixtures under ``tests/data/fleet/`` are run artifact
families (the first two copied from real ``results/telemetry/`` runs):

* ``C1-smoke`` — written *after* IPM tracing landed (``sdp.ipm_trace``
  events, audit conditions carrying ``convergence``/``recovery_rung``).
* ``C3-smoke`` — an older-schema trace with none of those fields.
* ``C5-smoke`` — a partially-written family: manifest with no recorded
  outcome plus a stale ``.status.json`` heartbeat (a killed run).
* ``bench-smoke`` — a ``--jobs`` bench-parent trace (manifest
  ``extra.role == "bench_parent"``) holding merged copies of row spans;
  indexed but excluded from aggregates.

``tests/data/fleet_golden.json`` pins the exact ``fleet_summary``
aggregate over them.
"""

import json
import os

import pytest

from repro.telemetry import fleet_summary, load_run, scan_runs
from repro.telemetry.fleet import main as fleet_main
from repro.telemetry.fleet import render_fleet_text
from repro.telemetry.store import RunRecord, _system_and_scale

FIXTURES = os.path.join(os.path.dirname(__file__), "data", "fleet")
GOLDEN = os.path.join(os.path.dirname(__file__), "data", "fleet_golden.json")


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def test_system_and_scale_parsing():
    assert _system_and_scale("table1/C1", "results/C1-smoke") == ("C1", "smoke")
    assert _system_and_scale("table1/C7", "x/C7-paper") == ("C7", "paper")
    assert _system_and_scale("unknown", "runs/C3-smoke") == ("C3", "smoke")
    assert _system_and_scale("unknown", "runs/mystery") == ("mystery", "unknown")


# ----------------------------------------------------------------------
# load_run over committed fixtures
# ----------------------------------------------------------------------
def test_load_run_new_schema_fixture():
    rec = load_run(os.path.join(FIXTURES, "C1-smoke.jsonl"), root=FIXTURES)
    assert rec is not None
    assert rec.base == "C1-smoke"
    assert rec.name == "table1/C1"
    assert rec.system == "C1"
    assert rec.scale == "smoke"
    assert rec.outcome == "success"
    assert rec.iterations == 2
    assert rec.n_events > 0
    assert not rec.truncated
    # IPM tracing fields present in the new schema
    assert rec.convergence
    assert sum(rec.convergence.values()) >= 1
    assert set(rec.convergence) <= {
        "healthy", "stalling", "diverging", "ill_conditioned", "unknown"
    }
    assert "verification" in rec.phases and "learning" in rec.phases


def test_load_run_old_schema_fixture_degrades_gracefully():
    rec = load_run(os.path.join(FIXTURES, "C3-smoke.jsonl"), root=FIXTURES)
    assert rec is not None
    assert rec.system == "C3"
    assert rec.outcome == "success"
    # pre-tracing artifacts contribute no convergence classes — and that
    # must not break indexing
    assert rec.convergence == {}


def test_load_run_missing_file_returns_none(tmp_path):
    assert load_run(str(tmp_path / "nope.jsonl")) is None


def test_load_run_all_malformed_returns_none(tmp_path):
    p = tmp_path / "junk.jsonl"
    p.write_text("not json\n{broken\n")
    assert load_run(str(p)) is None


def test_load_run_without_manifest_still_indexes(tmp_path):
    p = tmp_path / "orphan-smoke.jsonl"
    p.write_text('{"type":"span","name":"x","span_id":1,"parent_id":null,'
                 '"duration":0.5,"attrs":{"phase":"learning"}}\n')
    rec = load_run(str(p), root=str(tmp_path))
    assert rec is not None
    assert rec.name == "unknown"
    # no manifest at all == partially-written family: explicit marker
    assert rec.outcome == "incomplete"
    assert rec.incomplete
    assert rec.system == "orphan"
    assert rec.scale == "smoke"
    assert rec.phases == {"learning": 0.5}


def test_load_run_flags_truncated_trace(tmp_path):
    p = tmp_path / "cut-smoke.jsonl"
    p.write_text('{"type":"span","name":"x","span_id":1,"parent_id":null,'
                 '"duration":0.1,"attrs":{}}\n'
                 '{"type":"trace_truncated","max_bytes":100,"dropped_events":7}\n')
    rec = load_run(str(p))
    assert rec is not None
    assert rec.truncated


# ----------------------------------------------------------------------
# scan + aggregate
# ----------------------------------------------------------------------
def test_scan_runs_finds_all_fixtures():
    records = scan_runs(FIXTURES)
    assert [r.base for r in records] == [
        "C1-smoke", "C3-smoke", "C5-smoke", "bench-smoke"
    ]


def test_load_run_partial_family_is_incomplete():
    rec = load_run(os.path.join(FIXTURES, "C5-smoke.jsonl"), root=FIXTURES)
    assert rec is not None
    assert rec.name == "table1/C5"
    assert rec.outcome == "incomplete"
    assert rec.incomplete
    assert rec.elapsed_seconds is None
    assert "learning" in rec.phases  # partial trace still contributes


def test_load_run_bench_parent_role():
    rec = load_run(os.path.join(FIXTURES, "bench-smoke.jsonl"), root=FIXTURES)
    assert rec is not None
    assert rec.role == "bench_parent"
    assert rec.outcome == "success"
    assert not rec.incomplete


def test_fleet_summary_aggregates_fixtures():
    summary = fleet_summary(scan_runs(FIXTURES))
    assert summary["kind"] == "fleet_summary"
    # bench-parent trace is listed but excluded from every aggregate
    assert summary["n_runs"] == 3
    assert summary["n_parent_traces"] == 1
    assert summary["n_incomplete"] == 1
    assert summary["n_systems"] == 3
    assert summary["outcomes"] == {"incomplete": 1, "success": 2}
    assert set(summary["systems"]) == {"C1", "C3", "C5"}
    assert len(summary["runs"]) == 4  # listing keeps the parent trace
    c1 = summary["systems"]["C1"]
    assert c1["runs"] == 1
    assert c1["scales"] == ["smoke"]
    assert c1["iterations"]["min"] == c1["iterations"]["max"] == 2
    assert c1["phase_seconds"]["verification"]["total"] > 0
    # the all-runs convergence histogram comes from the C1 trace alone
    assert summary["convergence"]
    assert summary["convergence"] == c1["convergence"]
    assert summary["systems"]["C3"]["convergence"] == {}


def test_fleet_summary_matches_committed_golden():
    summary = fleet_summary(scan_runs(FIXTURES))
    golden = json.load(open(GOLDEN))
    assert summary == golden


def test_fleet_summary_is_deterministic():
    a = fleet_summary(scan_runs(FIXTURES))
    b = fleet_summary(scan_runs(FIXTURES))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_fleet_summary_empty_records():
    summary = fleet_summary([])
    assert summary["n_runs"] == 0
    assert summary["systems"] == {}
    assert summary["runs"] == []


def test_run_record_to_dict_rounds_and_sorts():
    rec = RunRecord(base="x", elapsed_seconds=1.23456789,
                    phases={"b": 0.2, "a": float("inf")},
                    convergence={"healthy": 2})
    d = rec.to_dict()
    assert d["elapsed_seconds"] == 1.234568
    assert list(d["phases"]) == ["a", "b"]
    assert d["phases"]["a"] is None  # non-finite scrubbed for JSON
    assert json.dumps(d)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_fleet_cli_text_output(capsys):
    assert fleet_main([FIXTURES]) == 0
    out = capsys.readouterr().out
    assert "3 run(s) across 3 system(s)" in out
    assert "incomplete=1" in out
    assert "bench-parent traces=1" in out
    assert "C1-smoke" in out and "C3-smoke" in out
    assert "== Systems ==" in out
    assert "IPM convergence classes" in out


def test_fleet_cli_json_matches_golden(capsys):
    assert fleet_main([FIXTURES, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == json.load(open(GOLDEN))


def test_fleet_cli_out_writes_document(tmp_path, capsys):
    out = str(tmp_path / "nested" / "fleet.json")
    assert fleet_main([FIXTURES, "--out", out]) == 0
    capsys.readouterr()
    doc = json.load(open(out))
    assert doc["kind"] == "fleet_summary"
    assert doc["n_runs"] == 3


def test_fleet_cli_empty_root(tmp_path, capsys):
    assert fleet_main([str(tmp_path)]) == 1
    assert "no run traces" in capsys.readouterr().err


def test_fleet_cli_missing_root(tmp_path, capsys):
    assert fleet_main([str(tmp_path / "absent")]) == 2
    assert "not a directory" in capsys.readouterr().err


def test_fleet_round_trip_over_committed_results_tree():
    """The committed results/telemetry artifacts must index cleanly.

    Tolerant of extra uncommitted local runs in the tree — we only pin
    the committed C1-smoke family (CI runs tests before regenerating
    it), not the tree's total contents.
    """
    root = os.path.join(os.path.dirname(__file__), os.pardir, "results")
    records = scan_runs(root)
    assert records, "committed results/ tree should contain run traces"
    by_base = {r.base: r for r in records}
    assert "telemetry/C1-smoke" in by_base
    c1 = by_base["telemetry/C1-smoke"]
    assert c1.name == "table1/C1"
    assert c1.outcome == "success"
    assert c1.iterations == 2
    summary = fleet_summary(records)
    n_parents = sum(1 for r in records if r.role == "bench_parent")
    assert summary["n_runs"] == len(records) - n_parents
    assert "C1" in summary["systems"]
    assert json.dumps(summary)  # JSON-clean end to end


# ----------------------------------------------------------------------
# partial / stale / empty results trees
# ----------------------------------------------------------------------
def test_scan_tolerates_stale_heartbeat_tree(tmp_path):
    """A tree holding only a mid-run family — trace plus a status
    heartbeat that stopped updating, no finalized manifest — indexes
    without crashing and flags the run ``incomplete``."""
    (tmp_path / "X1-smoke.jsonl").write_text(
        '{"type":"span","name":"snbc.learning","span_id":2,"parent_id":1,'
        '"duration":0.4,"attrs":{"phase":"learning"}}\n'
    )
    (tmp_path / "X1-smoke.status.json").write_text(json.dumps({
        "schema_version": 1, "name": "table1/X1", "pid": 999,
        "started_wall": 1786150000.0, "heartbeat_wall": 1786150002.0,
        "phase": "learning", "outcome": None, "workers": {},
    }))
    records = scan_runs(str(tmp_path))
    assert len(records) == 1  # the status sidecar is not its own run
    assert records[0].incomplete
    assert records[0].outcome == "incomplete"
    summary = fleet_summary(records)
    assert summary["n_incomplete"] == 1
    assert summary["outcomes"] == {"incomplete": 1}
    assert json.dumps(summary)


def test_scan_tolerates_torn_trailing_line(tmp_path):
    """A trace whose writer died mid-line (no trailing newline, torn
    JSON) still indexes from its complete prefix lines."""
    (tmp_path / "Y1-smoke.jsonl").write_text(
        '{"type":"span","name":"snbc.inclusion","span_id":2,"parent_id":1,'
        '"duration":0.2,"attrs":{"phase":"inclusion"}}\n'
        '{"type":"span","name":"snbc.lear'
    )
    records = scan_runs(str(tmp_path))
    assert len(records) == 1
    assert records[0].phases == {"inclusion": 0.2}
    assert records[0].incomplete


def test_fleet_summary_excludes_bench_parent_from_aggregates():
    records = scan_runs(FIXTURES)
    summary = fleet_summary(records)
    # the parent trace's merged span copies must not leak into any
    # per-system phase totals ("smoke" is what its name would parse to)
    assert "smoke" not in summary["systems"]
    listed_roles = {r["base"]: r["role"] for r in summary["runs"]}
    assert listed_roles["bench-smoke"] == "bench_parent"
    assert listed_roles["C1-smoke"] is None


def test_render_fleet_text_marks_truncated():
    rec = RunRecord(base="cut-smoke", system="C9", scale="smoke",
                    outcome="error", truncated=True)
    text = render_fleet_text(fleet_summary([rec]))
    row = next(l for l in text.splitlines() if l.startswith("cut-smoke"))
    assert "yes" in row
