"""End-to-end tests for SOS feasibility programs."""

import numpy as np
import pytest

from repro.poly import Polynomial, lie_derivative
from repro.sos import SOSExpr, SOSProgram, validate_sos_identity


def x_var(n=1, i=0):
    return Polynomial.variable(n, i)


# ----------------------------------------------------------------------
# plain SOS membership
# ----------------------------------------------------------------------
def test_x2_plus_1_is_sos():
    prog = SOSProgram(1)
    x = x_var()
    expr = SOSExpr.from_polynomial(x * x + 1.0)
    block = prog.require_sos(expr)
    sol = prog.solve()
    assert sol.feasible
    Q = sol.gram(block.block_id)
    assert np.linalg.eigvalsh(Q)[0] >= -1e-7
    realized = sol.slack_polynomial(block)
    assert realized.is_close(x * x + 1.0, tol=1e-5)


def test_sos_decomposition_of_shifted_square():
    # 2x^2 - 2x + 1 = x^2 + (x - 1)^2 is SOS
    prog = SOSProgram(1)
    x = x_var()
    p = 2.0 * x * x - 2.0 * x + 1.0
    prog.require_sos(SOSExpr.from_polynomial(p))
    assert prog.solve().feasible


def test_odd_polynomial_not_sos():
    prog = SOSProgram(1)
    prog.require_sos(SOSExpr.from_polynomial(x_var()), half_degree=1)
    sol = prog.solve()
    assert not sol.feasible


def test_negative_constant_not_sos():
    prog = SOSProgram(1)
    x = x_var()
    prog.require_sos(SOSExpr.from_polynomial(-1.0 * x * x - 1.0))
    assert not prog.solve().feasible


def test_motzkin_not_sos():
    # Motzkin polynomial: nonnegative but NOT a sum of squares.
    x, y = Polynomial.variables(2)
    m = (x ** 4) * (y ** 2) + (x ** 2) * (y ** 4) - 3.0 * (x ** 2) * (y ** 2) + 1.0
    prog = SOSProgram(2)
    prog.require_sos(SOSExpr.from_polynomial(m))
    assert not prog.solve().feasible


def test_bivariate_sos():
    # (x + y)^2 + (x - 2y)^2
    x, y = Polynomial.variables(2)
    p = (x + y) ** 2 + (x - 2.0 * y) ** 2
    prog = SOSProgram(2)
    block = prog.require_sos(SOSExpr.from_polynomial(p))
    sol = prog.solve()
    assert sol.feasible
    assert sol.slack_polynomial(block).is_close(p, tol=1e-5)


# ----------------------------------------------------------------------
# Putinar certificates with SOS multipliers
# ----------------------------------------------------------------------
def test_positivity_on_box_with_multiplier():
    # show 2 - x >= 0.5 on [-1, 1]: (2 - x) - 0.5 - sigma * (1 - x^2) in SOS
    prog = SOSProgram(1)
    x = x_var()
    sigma = prog.sos_poly(0)
    g = 1.0 - x * x
    expr = SOSExpr.from_polynomial(2.0 - x - 0.5) - sigma * g
    prog.require_sos(expr)
    sol = prog.solve()
    assert sol.feasible
    sig_poly = sol.value(sigma)
    assert sig_poly((0.0,)) >= -1e-7


def test_positivity_fails_when_false():
    # x >= 0.5 on [-1, 1] is false
    prog = SOSProgram(1)
    x = x_var()
    sigma = prog.sos_poly(2)
    expr = SOSExpr.from_polynomial(x - 0.5) - sigma * (1.0 - x * x)
    prog.require_sos(expr)
    assert not prog.solve().feasible


def test_free_multiplier_lie_condition():
    # xdot = -x; B = 1 - x^2. Need L_f B - lambda * B - eps in SOS on R
    # with free lambda. L_f B = 2x^2; lambda = -1 gives x^2 + 1 - eps.
    prog = SOSProgram(1)
    x = x_var()
    B = 1.0 - x * x
    lfb = lie_derivative(B, [-1.0 * x])
    lam = prog.free_poly(0)
    expr = SOSExpr.from_polynomial(lfb) - lam * B - 0.5
    prog.require_sos(expr)
    sol = prog.solve()
    assert sol.feasible
    lam_poly = sol.value(lam)
    # realized identity should hold pointwise
    realized = lfb - lam_poly * B - 0.5
    xs = np.linspace(-2, 2, 41)[:, None]
    assert np.all(realized(xs) >= -1e-5)


def test_multiple_constraints_share_variables():
    # find free scalar c with: (x^2 + c) SOS and (x^2 + 2 - c) SOS -> any c in [0, 2]
    prog = SOSProgram(1)
    x = x_var()
    c = prog.free_scalar()
    prog.require_sos(SOSExpr.from_polynomial(x * x) + c)
    prog.require_sos(SOSExpr.from_polynomial(x * x + 2.0) - c)
    sol = prog.solve()
    assert sol.feasible
    c_val = sol.value(c)((0.0,))
    assert -1e-6 <= c_val <= 2.0 + 1e-6


def test_require_zero():
    # free poly f with f - (1 + x) == 0 forces f = 1 + x, then x^2 + f - 1 SOS
    prog = SOSProgram(1)
    x = x_var()
    f = prog.free_poly(1)
    prog.require_zero(f - (1.0 + x))
    prog.require_sos(f * x - x)  # (1 + x) x - x = x^2
    sol = prog.solve()
    assert sol.feasible
    assert sol.value(f).is_close(1.0 + x, tol=1e-5)


# ----------------------------------------------------------------------
# validation layer
# ----------------------------------------------------------------------
def test_validation_accepts_good_certificate():
    prog = SOSProgram(1)
    x = x_var()
    p = x * x + 1.0
    expr = SOSExpr.from_polynomial(p)
    block = prog.require_sos(expr)
    sol = prog.solve()
    report = validate_sos_identity(
        p, block, sol.gram(block.block_id), [-2.0], [2.0], margin=0.5
    )
    assert report.ok
    assert report.residual_bound < 0.5


def test_validation_rejects_corrupted_gram():
    prog = SOSProgram(1)
    x = x_var()
    p = x * x + 1.0
    block = prog.require_sos(SOSExpr.from_polynomial(p))
    sol = prog.solve()
    bad = sol.gram(block.block_id).copy()
    bad[0, 0] -= 1.0  # corrupt: identity now off by 1 > margin
    report = validate_sos_identity(p, block, bad, [-2.0], [2.0], margin=0.5)
    assert not report.ok


def test_validation_rejects_nonpsd_gram():
    prog = SOSProgram(1)
    x = x_var()
    p = x * x + 1.0
    block = prog.require_sos(SOSExpr.from_polynomial(p))
    sol = prog.solve()
    bad = sol.gram(block.block_id) - 2.0 * np.eye(block.size)
    report = validate_sos_identity(p, block, bad, [-2.0], [2.0], margin=100.0)
    assert not report.ok
    assert report.min_eigenvalue < 0


# ----------------------------------------------------------------------
# misc API
# ----------------------------------------------------------------------
def test_program_errors():
    prog = SOSProgram(1)
    with pytest.raises(ValueError):
        prog.compile()  # no constraints
    with pytest.raises(ValueError):
        prog.sos_poly(-1)
    with pytest.raises(ValueError):
        prog.free_poly(-1)
    with pytest.raises(ValueError):
        SOSProgram(0)
    with pytest.raises(ValueError):
        prog.require_sos(SOSExpr.zero(2))
    with pytest.raises(ValueError):
        prog.require_zero(SOSExpr.zero(2))


def test_value_requires_feasible():
    prog = SOSProgram(1)
    s = prog.sos_poly(2)
    prog.require_sos(SOSExpr.from_polynomial(-1.0 * x_var() * x_var() - 1.0) + s * 0.0)
    sol = prog.solve()
    if not sol.feasible:
        with pytest.raises(RuntimeError):
            sol.value(s)
