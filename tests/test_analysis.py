"""Tests for simulation, phase-portrait data and table rendering."""

import numpy as np
import pytest

from repro.analysis import (
    PhasePortraitData,
    SimulationResult,
    Table,
    check_empirical_safety,
    format_table,
    phase_portrait,
    simulate,
)
from repro.analysis.simulate import barrier_along_trajectory
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5),
        psi=Box.cube(n, -2.0, 2.0),
        xi=Box.cube(n, 1.5, 2.0),
    )


def escape_problem():
    # xdot = +x: trajectories from Theta head into the unsafe corner
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([1.0 * x for x in xs])
    return CCDS(
        sys2,
        theta=Box([0.3, 0.3], [0.5, 0.5]),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box([1.0, 1.0], [2.0, 2.0]),
    )


# ----------------------------------------------------------------------
# simulation
# ----------------------------------------------------------------------
def test_simulate_decays_to_origin():
    prob = decay_problem()
    res = simulate(prob, np.array([0.5, -0.5]), t_final=8.0)
    assert isinstance(res, SimulationResult)
    assert not res.entered_unsafe
    assert not res.exited_domain
    assert np.linalg.norm(res.final_state) < 1e-2


def test_simulate_detects_unsafe_entry():
    prob = escape_problem()
    res = simulate(prob, np.array([0.4, 0.4]), t_final=5.0)
    assert res.entered_unsafe


def test_simulate_stops_on_domain_exit():
    prob = escape_problem()
    res = simulate(prob, np.array([0.5, 0.5]), t_final=50.0)
    assert res.exited_domain
    assert res.times[-1] < 50.0


def test_simulate_controlled():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([1.0 * x], [1.0])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    res = simulate(prob, np.array([0.4]), controller=lambda x: -2.0 * x, t_final=8.0)
    assert abs(res.final_state[0]) < 0.05  # stabilized


def test_simulate_input_validation():
    prob = decay_problem()
    with pytest.raises(ValueError):
        simulate(prob, np.zeros(3))
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([1.0 * x], [1.0])
    prob1 = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    with pytest.raises(ValueError):
        simulate(prob1, np.array([0.1]), controller=lambda x: np.zeros(3))


def test_check_empirical_safety():
    prob = decay_problem()
    sims = check_empirical_safety(prob, n_trajectories=5, t_final=5.0)
    assert len(sims) == 5
    assert not any(s.entered_unsafe for s in sims)


def test_barrier_along_trajectory():
    prob = decay_problem()
    B = Polynomial.constant(2, 1.0) - Polynomial.variable(2, 0) ** 2 - Polynomial.variable(2, 1) ** 2
    res = simulate(prob, np.array([0.4, 0.4]), t_final=5.0)
    vals = barrier_along_trajectory(B, res)
    assert np.all(vals >= 0.5)  # trajectory decays, B grows toward 1


# ----------------------------------------------------------------------
# phase portrait (Figure 3 data)
# ----------------------------------------------------------------------
def test_phase_portrait_data():
    prob = decay_problem()
    B = Polynomial.constant(2, 1.0) - 0.5 * (
        Polynomial.variable(2, 0) ** 2 + Polynomial.variable(2, 1) ** 2
    )
    data = phase_portrait(
        prob,
        B,
        counterexamples=[np.array([1.0, 1.0])],
        n_trajectories=4,
        t_final=3.0,
        n_level_points=100,
        rng=np.random.default_rng(0),
    )
    assert isinstance(data, PhasePortraitData)
    assert len(data.trajectories) == 4
    assert not data.any_trajectory_unsafe
    # level-set points actually lie near B = 0 (radius sqrt(2))
    vals = np.abs(B(data.level_set_points))
    assert np.median(vals) < 0.05
    assert data.counterexample_points.shape == (1, 2)
    assert data.barrier_grid.shape[1] == 3
    assert "trajectories" in data.summary()


def test_phase_portrait_flags_unsafe():
    prob = escape_problem()
    B = Polynomial.one(2)
    data = phase_portrait(
        prob, B, n_trajectories=3, t_final=5.0, rng=np.random.default_rng(1)
    )
    assert data.any_trajectory_unsafe


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
def test_table_round_trip():
    t = Table(columns=["name", "T_e", "ok"], title="demo")
    t.add_row(name="C1", T_e=0.444, ok=True)
    t.add_row(name="C2", T_e=None, ok=False)
    text = format_table(t)
    assert "demo" in text
    assert "C1" in text and "0.444" in text
    assert "yes" in text and "no" in text
    assert "-" in text  # None rendering
    assert t.column("T_e") == [0.444, None]


def test_table_validation():
    t = Table(columns=["a"])
    with pytest.raises(ValueError):
        t.add_row(b=1)
    with pytest.raises(ValueError):
        t.column("b")


def test_table_float_formats():
    t = Table(columns=["v"])
    t.add_row(v=12345.6)
    t.add_row(v=0.0000123)
    t.add_row(v=float("nan"))
    text = format_table(t)
    assert "e+04" in text.replace("E", "e") or "1.235e+04" in text
    assert "1.230e-05" in text
