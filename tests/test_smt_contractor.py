"""Tests for the HC4-style polynomial constraint contractor."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.smt import BranchAndPrune, CheckStatus, poly_enclosure
from repro.smt.contractor import contract_box, contract_nonnegative


def test_contracts_linear_constraint():
    # x - 0.5 >= 0 on [-1, 1] -> x in [0.5, 1]
    x = Polynomial.variable(1, 0)
    out = contract_nonnegative(x - 0.5, [-1.0], [1.0])
    assert out is not None
    lo, hi = out
    assert lo[0] == pytest.approx(0.5, abs=1e-9)
    assert hi[0] == pytest.approx(1.0)


def test_detects_empty_box():
    # x - 2 >= 0 impossible on [-1, 1]
    x = Polynomial.variable(1, 0)
    assert contract_nonnegative(x - 2.0, [-1.0], [1.0]) is None


def test_contracts_even_power():
    # 0.25 - x^2 >= 0 -> |x| <= 0.5
    x = Polynomial.variable(1, 0)
    out = contract_nonnegative(0.25 - x * x, [-1.0], [1.0])
    assert out is not None
    lo, hi = out
    assert lo[0] == pytest.approx(-0.5, abs=1e-9)
    assert hi[0] == pytest.approx(0.5, abs=1e-9)


def test_contracts_ball_constraint_multivariate():
    # 1 - x^2 - y^2 >= 0 on [-2,2]^2 -> [-1,1]^2
    x, y = Polynomial.variables(2)
    g = 1.0 - x * x - y * y
    out = contract_nonnegative(g, [-2.0, -2.0], [2.0, 2.0])
    assert out is not None
    lo, hi = out
    np.testing.assert_allclose(lo, [-1.0, -1.0], atol=1e-9)
    np.testing.assert_allclose(hi, [1.0, 1.0], atol=1e-9)


def test_inactive_constraint_unchanged():
    x = Polynomial.variable(1, 0)
    out = contract_nonnegative(x + 10.0, [-1.0], [1.0])
    lo, hi = out
    assert (lo[0], hi[0]) == (-1.0, 1.0)


def test_zero_polynomial():
    out = contract_nonnegative(Polynomial.zero(2), [-1, -1], [1, 1])
    assert out is not None


def test_contract_box_intersects_constraints():
    # x >= 0.2 and y - x >= 0 on [-1,1]^2
    x, y = Polynomial.variables(2)
    out = contract_box([x - 0.2, y - x], [-1, -1], [1, 1])
    assert out is not None
    lo, hi = out
    assert lo[0] == pytest.approx(0.2, abs=1e-9)
    assert lo[1] >= 0.2 - 1e-9  # propagated through y >= x


def test_contract_box_empty():
    x, y = Polynomial.variables(2)
    assert contract_box([x - 0.5, -1.0 * x - 0.5], [-1, -1], [1, 1]) is None


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=2),
    st.floats(0.2, 1.5),
)
def test_contraction_never_removes_solutions(center, radius):
    """Property: points satisfying the constraint survive contraction."""
    x, y = Polynomial.variables(2)
    g = radius ** 2 - (x - center[0]) ** 2 - (y - center[1]) ** 2
    lo, hi = np.array([-3.0, -3.0]), np.array([3.0, 3.0])
    rng = np.random.default_rng(0)
    pts = rng.uniform(lo, hi, size=(400, 2))
    sat = pts[g(pts) >= 0]
    out = contract_nonnegative(g, lo, hi)
    if len(sat) == 0:
        return  # nothing to check (contractor may or may not empty the box)
    assert out is not None
    clo, chi = out
    assert np.all(sat >= clo - 1e-9)
    assert np.all(sat <= chi + 1e-9)


def test_subnormal_coefficient_division_is_sound():
    """Regression: a subnormal center coordinate gives the linear term a
    subnormal coefficient; dividing by it overflows the quotient to inf,
    which must be treated as uninformative, not as a tighter bound."""
    x, y = Polynomial.variables(2)
    center = [0.0, 5e-324]
    radius = 0.625
    g = radius ** 2 - (x - center[0]) ** 2 - (y - center[1]) ** 2
    lo, hi = np.array([-3.0, -3.0]), np.array([3.0, 3.0])
    rng = np.random.default_rng(0)
    pts = rng.uniform(lo, hi, size=(400, 2))
    sat = pts[g(pts) >= 0]
    out = contract_nonnegative(g, lo, hi)
    assert out is not None
    clo, chi = out
    assert np.all(sat >= clo - 1e-9)
    assert np.all(sat <= chi + 1e-9)


def test_contractor_hook_in_branch_and_prune():
    """With a region contractor, B&P proves the same query processing no
    more boxes."""
    x, y = Polynomial.variables(2)
    region_g = 0.25 - (x - 0.5) ** 2 - (y - 0.5) ** 2  # small disc
    target = x + y - 0.1  # >= 0 holds on the disc (x+y >= 1 - sqrt(0.5) > 0.1)

    def run(contractor):
        engine = BranchAndPrune(
            delta=0.01, max_boxes=100_000, rng=np.random.default_rng(0),
            contractor=contractor,
        )
        return engine.check_forall(
            lambda a, b: poly_enclosure(target, a, b),
            lambda pts: target(pts),
            np.array([-2.0, -2.0]),
            np.array([2.0, 2.0]),
            region_enclosures=[lambda a, b: poly_enclosure(region_g, a, b)],
            region_point=lambda pts: region_g(pts) >= 0,
        )

    plain = run(None)
    contracted = run(lambda lo, hi: contract_box([region_g], lo, hi))
    assert plain.status == contracted.status == CheckStatus.PROVED
    assert contracted.boxes_processed <= plain.boxes_processed
