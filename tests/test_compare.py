"""Tests for the Table 1 shape scorecard."""

import pytest

from repro.analysis.report import Table1Row
from repro.benchmarks.compare import check_table1_shape, format_scorecard


def row(name, n_x, success=True, d_b=2, t_l=1.0, t_v=None, t_e=None):
    t_v = t_v if t_v is not None else 0.1 * n_x ** 2
    t_e = t_e if t_e is not None else t_l + t_v
    return Table1Row(
        name=name, n_x=n_x, d_f=2, nn_b="", nn_lambda="",
        success=success, d_b=d_b if success else None, iterations=1,
        t_learn=t_l, t_cex=0.0, t_verify=t_v, t_total=t_e,
    )


def good_rows():
    return [
        row("C1", 2),
        row("C6", 3),
        row("C9", 5),
        row("C12", 7),
        row("C14", 12, t_v=100.0, t_e=101.5),
    ]


def test_good_shape_all_pass():
    checks = check_table1_shape(good_rows())
    assert all(c.passed for c in checks), format_scorecard(checks)
    names = {c.name for c in checks}
    assert "all_solved" in names
    assert "t_verify_grows_with_dimension" in names


def test_failure_detected():
    rows = good_rows()
    rows[2] = row("C9", 5, success=False)
    checks = {c.name: c for c in check_table1_shape(rows)}
    assert not checks["all_solved"].passed


def test_wrong_degree_detected():
    rows = good_rows()
    rows[0] = row("C1", 2, d_b=4)
    checks = {c.name: c for c in check_table1_shape(rows)}
    assert not checks["degree_2_everywhere"].passed


def test_inverted_scaling_detected():
    rows = [
        row("C1", 2, t_v=100.0),
        row("C6", 3, t_v=10.0),
        row("C9", 5, t_v=1.0),
        row("C12", 7, t_v=0.1),
    ]
    checks = {c.name: c for c in check_table1_shape(rows)}
    assert not checks["t_verify_grows_with_dimension"].passed


def test_scorecard_format():
    text = format_scorecard(check_table1_shape(good_rows()))
    assert "PASS" in text
    assert "scorecard" in text


def test_measured_smoke_rows_pass_shape():
    """Integration: real measured rows satisfy the paper's signatures."""
    from repro.analysis.report import run_snbc_rows

    rows = run_snbc_rows(["C1", "C6", "C9", "C12"], scale="smoke")
    checks = check_table1_shape(rows)
    assert all(c.passed for c in checks), format_scorecard(checks)
