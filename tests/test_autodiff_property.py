"""Property-based gradient checks for the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor


def numeric_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        g[idx] = (fn(xp) - fn(xm)) / (2 * eps)
        it.iternext()
    return g


def agrees(build, x0, atol=2e-4):
    t = Tensor(x0, requires_grad=True)
    build(t).backward()
    num = numeric_grad(lambda arr: build(Tensor(arr, requires_grad=True)).item(), x0)
    np.testing.assert_allclose(t.grad, num, atol=atol)


arrays = st.integers(2, 5).flatmap(
    lambda n: st.lists(
        st.floats(-2, 2, allow_nan=False, allow_infinity=False),
        min_size=n,
        max_size=n,
    ).map(lambda v: np.asarray(v))
)


@settings(max_examples=30, deadline=None)
@given(arrays)
def test_polynomial_chain_gradient(x0):
    agrees(lambda t: ((t * t + t * 3.0 - 1.0) * (t - 0.5)).sum(), x0)


@settings(max_examples=30, deadline=None)
@given(arrays)
def test_smooth_activation_chain(x0):
    agrees(lambda t: (t.tanh() * t.sigmoid() + (t * 0.1).exp()).sum(), x0)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 10_000))
def test_matmul_random_shapes(m, k, seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(m, k))
    W0 = rng.normal(size=(k, 3))

    def build(t):
        return ((Tensor(X) @ t) * (Tensor(X) @ t)).mean()

    agrees(build, W0)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_two_layer_network_gradient(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(6, 2))
    W1 = rng.normal(size=(2, 4))
    W2 = rng.normal(size=(4, 1))

    def loss_for(w1):
        h = (Tensor(X) @ Tensor(w1, requires_grad=False)).tanh()
        return ((h @ Tensor(W2)) ** 2).mean()

    t = Tensor(W1, requires_grad=True)
    h = (Tensor(X) @ t).tanh()
    ((h @ Tensor(W2)) ** 2).mean().backward()
    num = numeric_grad(lambda arr: loss_for(arr).item(), W1)
    np.testing.assert_allclose(t.grad, num, atol=2e-4)


@settings(max_examples=30, deadline=None)
@given(arrays, arrays)
def test_gradient_additivity(a, b):
    """grad of f+g equals grad f + grad g (linearity of backward)."""
    if a.shape != b.shape:
        return
    x0 = a.copy()

    def f(t):
        return (t * t).sum()

    def g(t):
        return (t.tanh() * 2.0).sum()

    t1 = Tensor(x0, requires_grad=True)
    f(t1).backward()
    t2 = Tensor(x0, requires_grad=True)
    g(t2).backward()
    t3 = Tensor(x0, requires_grad=True)
    (f(t3) + g(t3)).backward()
    np.testing.assert_allclose(t3.grad, t1.grad + t2.grad, atol=1e-10)
