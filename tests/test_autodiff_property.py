"""Property-based gradient checks for the autodiff engine, driven by the
shared seeded generator library (``repro.soundness.strategies``)."""

import numpy as np

from repro.autodiff import Tensor
from repro.soundness import strategies as st
from repro.soundness.oracles import numeric_gradient

SEED = st.resolve_seed(0)


def agrees(build, x0, atol=2e-4):
    t = Tensor(x0, requires_grad=True)
    build(t).backward()
    num = numeric_gradient(
        lambda arr: build(Tensor(arr, requires_grad=True)).item(), x0
    )
    np.testing.assert_allclose(t.grad, num, atol=atol)


def test_polynomial_chain_gradient():
    st.run_property(
        "autodiff-polynomial-chain",
        st.float_arrays(),
        lambda x0: agrees(
            lambda t: ((t * t + t * 3.0 - 1.0) * (t - 0.5)).sum(), x0
        ),
        n_examples=st.fuzz_examples(30),
        seed=SEED,
    )


def test_smooth_activation_chain():
    st.run_property(
        "autodiff-activation-chain",
        st.float_arrays(),
        lambda x0: agrees(
            lambda t: (t.tanh() * t.sigmoid() + (t * 0.1).exp()).sum(), x0
        ),
        n_examples=st.fuzz_examples(30),
        seed=SEED,
    )


def test_matmul_random_shapes():
    def prop(case):
        m, k, seed = case
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(m, k))
        W0 = rng.normal(size=(k, 3))
        agrees(lambda t: ((Tensor(X) @ t) * (Tensor(X) @ t)).mean(), W0)

    st.run_property(
        "autodiff-matmul-shapes",
        st.tuples(st.integers(1, 4), st.integers(1, 4),
                  st.integers(0, 10_000)),
        prop,
        n_examples=st.fuzz_examples(20),
        seed=SEED,
    )


def test_two_layer_network_gradient():
    def prop(seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(6, 2))
        W1 = rng.normal(size=(2, 4))
        W2 = rng.normal(size=(4, 1))

        def loss_for(w1):
            h = (Tensor(X) @ Tensor(w1, requires_grad=False)).tanh()
            return ((h @ Tensor(W2)) ** 2).mean()

        t = Tensor(W1, requires_grad=True)
        h = (Tensor(X) @ t).tanh()
        ((h @ Tensor(W2)) ** 2).mean().backward()
        num = numeric_gradient(lambda arr: loss_for(arr).item(), W1)
        np.testing.assert_allclose(t.grad, num, atol=2e-4)

    st.run_property(
        "autodiff-two-layer",
        st.integers(0, 10_000),
        prop,
        n_examples=st.fuzz_examples(20),
        seed=SEED,
    )


def test_gradient_additivity():
    """grad of f+g equals grad f + grad g (linearity of backward)."""

    def prop(x0):
        def f(t):
            return (t * t).sum()

        def g(t):
            return (t.tanh() * 2.0).sum()

        t1 = Tensor(x0, requires_grad=True)
        f(t1).backward()
        t2 = Tensor(x0, requires_grad=True)
        g(t2).backward()
        t3 = Tensor(x0, requires_grad=True)
        (f(t3) + g(t3)).backward()
        np.testing.assert_allclose(t3.grad, t1.grad + t2.grad, atol=1e-10)

    st.run_property(
        "autodiff-additivity",
        st.float_arrays(),
        prop,
        n_examples=st.fuzz_examples(30),
        seed=SEED,
    )
