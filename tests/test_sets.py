"""Tests for semialgebraic sets, boxes and balls."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.sets import Ball, Box, SemialgebraicSet


# ----------------------------------------------------------------------
# Box
# ----------------------------------------------------------------------
def test_box_membership():
    box = Box([-1, -1], [1, 2])
    assert box.contains(np.array([0.0, 0.0]))
    assert not box.contains(np.array([0.0, 2.5]))
    mask = box.contains(np.array([[0, 0], [2, 0], [1, 2]], dtype=float))
    assert mask.tolist() == [True, False, True]


def test_box_constraint_polynomials_nonneg_inside():
    box = Box([-1, 0], [1, 3])
    pts = box.sample(100, rng=np.random.default_rng(0))
    for g in box.constraints:
        assert np.all(g(pts) >= -1e-12)


def test_box_cube():
    c = Box.cube(3, -2.0, 2.0)
    assert c.n_vars == 3
    np.testing.assert_allclose(c.lo, [-2, -2, -2])


def test_box_sample_inside():
    box = Box([-1, 0.5], [0, 1.5])
    pts = box.sample(200, rng=np.random.default_rng(1))
    assert pts.shape == (200, 2)
    assert np.all(box.contains(pts))


def test_box_mesh_spacing():
    box = Box([0, 0], [1, 1])
    mesh = box.mesh(0.5)
    assert mesh.shape == (9, 2)
    assert box.effective_spacing(0.5) == pytest.approx(0.5)


def test_box_mesh_respects_max_points():
    box = Box.cube(3, -1, 1)
    mesh = box.mesh(0.01, max_points=1000)
    assert mesh.shape[0] <= 1000


def test_box_mesh_invalid_spacing():
    with pytest.raises(ValueError):
        Box([0], [1]).mesh(0.0)


def test_box_volume():
    assert Box([0, 0], [2, 3]).volume() == 6.0


def test_box_invalid_bounds():
    with pytest.raises(ValueError):
        Box([1, 1], [0, 0])  # caught by base-class check via constraints box
    with pytest.raises(ValueError):
        Box([[0, 0]], [[1, 1]])


def test_box_project():
    box = Box([-1, -1], [1, 1])
    np.testing.assert_allclose(box.project(np.array([5.0, -3.0])), [1.0, -1.0])


# ----------------------------------------------------------------------
# Ball
# ----------------------------------------------------------------------
def test_ball_membership_and_constraint():
    ball = Ball([1.0, 0.0], 2.0)
    assert ball.contains(np.array([2.0, 0.0]))
    assert not ball.contains(np.array([4.0, 0.0]))
    g = ball.constraints[0]
    assert g(np.array([1.0, 0.0])) == pytest.approx(4.0)
    assert g(np.array([3.0, 0.0])) == pytest.approx(0.0)


def test_ball_sampling_uniform_inside():
    ball = Ball([0.0, 0.0, 0.0], 1.5)
    pts = ball.sample(500, rng=np.random.default_rng(2))
    assert np.all(ball.contains(pts, tol=1e-9))
    # mean radius of uniform ball in 3D is 3/4 R
    radii = np.linalg.norm(pts, axis=1)
    assert np.mean(radii) == pytest.approx(0.75 * 1.5, rel=0.1)


def test_ball_invalid():
    with pytest.raises(ValueError):
        Ball([0, 0], -1.0)
    with pytest.raises(ValueError):
        Ball([[0, 0]], 1.0)


# ----------------------------------------------------------------------
# generic semialgebraic set
# ----------------------------------------------------------------------
def annulus():
    # 0.5 <= ||x|| <= 1.5 as {g1 = |x|^2 - 0.25 >= 0, g2 = 2.25 - |x|^2 >= 0}
    x, y = Polynomial.variables(2)
    r2 = x * x + y * y
    return SemialgebraicSet(
        2,
        [r2 - 0.25, 2.25 - r2],
        bounding_box=([-1.5, -1.5], [1.5, 1.5]),
        name="annulus",
    )


def test_generic_set_membership():
    s = annulus()
    assert s.contains(np.array([1.0, 0.0]))
    assert not s.contains(np.array([0.0, 0.0]))
    assert not s.contains(np.array([2.0, 0.0]))


def test_generic_set_violation():
    s = annulus()
    assert s.violation(np.array([1.0, 0.0])) == 0.0
    assert s.violation(np.array([0.0, 0.0])) == pytest.approx(0.25)


def test_generic_set_rejection_sampling():
    s = annulus()
    pts = s.sample(100, rng=np.random.default_rng(3))
    assert np.all(s.contains(pts))


def test_generic_set_needs_bbox_to_sample():
    x = Polynomial.variable(1, 0)
    s = SemialgebraicSet(1, [x])
    with pytest.raises(ValueError):
        s.sample(10)


def test_constraint_nvars_mismatch():
    with pytest.raises(ValueError):
        SemialgebraicSet(2, [Polynomial.one(3)])


def test_repr_smoke():
    assert "annulus" in repr(annulus())
    assert "Box" in repr(Box([0], [1]))
    assert "Ball" in repr(Ball([0.0], 1.0))


@settings(max_examples=30, deadline=None)
@given(st.floats(-2, 0), st.floats(0.1, 2))
def test_box_sample_always_inside(lo, width):
    box = Box([lo, lo], [lo + width, lo + width])
    pts = box.sample(50, rng=np.random.default_rng(0))
    assert np.all(box.contains(pts))
