"""Fault-injection suite: every injected fault must terminate in a
documented typed outcome — never an unhandled traceback, and never a
``verified`` result on a faulted path.

Also covers each ``SDPStatus.NUMERICAL_ERROR`` exit path in
``repro.sdp.ipm`` individually (satellite d of the robustness issue).
"""

import os
import sys

import numpy as np
import pytest

from repro.cegis import SNBC, SNBCConfig
from repro.diagnostics import faultinject as fi
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.resilience.faults import FaultSpec, active_plan, clear, fault_point
from repro.sdp import SDPProblem, SDPStatus, solve_sdp
from repro.sets import Box

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")


def unit(n, i, j):
    E = np.zeros((n, n))
    E[i, j] += 0.5
    E[j, i] += 0.5
    if i == j:
        E[i, i] = 1.0
    return E


def min_trace_problem():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    return prob


def impossible_problem():
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys2,
        theta=Box.cube(2, -1.0, 1.0),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, -0.2, 0.2),
    )


def decay_problem():
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys2,
        theta=Box.cube(2, -0.5, 0.5),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, 1.5, 2.0),
    )


def run_snbc(problem, **config_kwargs):
    defaults = dict(max_iterations=2, n_samples=100, seed=0)
    defaults.update(config_kwargs)
    return SNBC(
        problem,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=40, seed=0),
        config=SNBCConfig(**defaults),
    ).run()


# ----------------------------------------------------------------------
# fault-point core
# ----------------------------------------------------------------------
def test_fault_point_noop_without_plan():
    assert active_plan() is None
    fault_point("sdp.solve")  # silent when nothing is injected


def test_spec_window_at_call_and_times():
    spec = FaultSpec("s", at_call=2, times=2)
    assert [spec.should_fire(n) for n in (1, 2, 3, 4)] == [
        False,
        True,
        True,
        False,
    ]


def test_inject_window_fires_then_stops():
    with fi.inject(FaultSpec("site.x", at_call=2)) as plan:
        fault_point("site.x")  # call 1: below window
        with pytest.raises(RuntimeError):
            fault_point("site.x")  # call 2: fires
        fault_point("site.x")  # call 3: window exhausted
    assert plan.fired_sites() == ["site.x"]
    assert plan.calls["site.x"] == 3
    assert active_plan() is None


def test_inject_refuses_nesting():
    with fi.inject(FaultSpec("a")):
        with pytest.raises(RuntimeError, match="already active"):
            with fi.inject(FaultSpec("b")):
                pass
    clear()


def test_clear_removes_plan():
    with fi.inject(FaultSpec("a")):
        clear()
        fault_point("a")  # no longer fires
    assert active_plan() is None


# ----------------------------------------------------------------------
# satellite (d): every NUMERICAL_ERROR exit path in ipm.py
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec_factory, message_part",
    [
        (fi.nan_mu, "mu became invalid"),
        (fi.cholesky_failure, "Z lost positive definiteness"),
        (fi.nan_direction, "non-finite search direction"),
        (fi.step_collapse, "step lengths collapsed"),
        (fi.solver_exception, "solver exception"),
    ],
)
def test_ipm_numerical_error_exit_paths(spec_factory, message_part):
    with fi.inject(spec_factory()) as plan:
        res = solve_sdp(min_trace_problem())
    assert plan.fired_sites(), "fault never reached its site"
    assert res.status == SDPStatus.NUMERICAL_ERROR
    assert message_part in res.message


def test_ipm_injected_nonconvergence_is_max_iterations():
    with fi.inject(fi.solver_nonconvergence()) as plan:
        res = solve_sdp(min_trace_problem())
    assert plan.fired_sites() == ["sdp.nonconvergence"]
    assert res.status == SDPStatus.MAX_ITERATIONS
    assert "injected non-convergence" in res.message


def test_ipm_healthy_solve_unaffected_by_other_sites():
    # a plan for an unrelated site must not perturb the solve
    base = solve_sdp(min_trace_problem())
    with fi.inject(FaultSpec("unrelated.site")):
        res = solve_sdp(min_trace_problem())
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == base.primal_objective


# ----------------------------------------------------------------------
# SNBC-level typed outcomes (times=100 outlasts every recovery ladder)
# ----------------------------------------------------------------------
def test_nan_gradients_once_is_recovered():
    with fi.inject(fi.nan_gradients()) as plan:
        res = run_snbc(impossible_problem())
    assert plan.fired_sites() == ["learner.gradients"]
    assert res.outcome == "not_verified"  # recovered, ran to completion
    assert res.error is None


def test_nan_gradients_persistent_is_learner_divergence():
    with fi.inject(fi.nan_gradients(times=100)) as plan:
        res = run_snbc(impossible_problem())
    assert plan.fired_sites()
    assert res.outcome == "error"
    assert res.error["kind"] == "LearnerDivergence"
    assert not res.success


def test_persistent_solver_faults_never_verify():
    for spec_factory in (fi.cholesky_failure, fi.solver_nonconvergence):
        with fi.inject(spec_factory(times=100)) as plan:
            res = run_snbc(impossible_problem())
        assert plan.fired_sites(), spec_factory.__name__
        assert res.outcome != "verified", spec_factory.__name__
        assert not res.success


def test_deadline_overrun_is_clean_timeout():
    with fi.inject(fi.deadline_overrun()) as plan:
        res = run_snbc(impossible_problem())
    assert plan.fired_sites() == ["budget.deadline"]
    assert res.outcome == "timeout"
    assert res.timed_out
    assert res.error["kind"] == "BudgetExhausted"
    assert res.error["details"].get("injected") is True


def test_lp_failure_is_inclusion_error():
    from repro.benchmarks import get_benchmark

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    controller = spec.make_controller()
    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("smoke"),
    )
    with fi.inject(fi.lp_failure()) as plan:
        res = snbc.run()
    assert plan.fired_sites() == ["inclusion.lp"]
    assert res.outcome == "error"
    assert res.error["kind"] == "InclusionError"
    assert not res.success


def test_verifier_pool_crash_falls_back_to_serial():
    import dataclasses

    from repro.verifier import VerifierConfig

    snbc = SNBC(
        decay_problem(),
        learner_config=LearnerConfig(b_hidden=(4,), epochs=60, seed=0),
        config=SNBCConfig(max_iterations=4, n_samples=200, seed=0),
    )
    snbc.verifier_config = dataclasses.replace(
        snbc.verifier_config, parallel=True, max_workers=2
    )
    with fi.inject(fi.verifier_pool_crash()) as plan:
        res = snbc.run()
    # crash fires once, the verifier falls back to the serial path and
    # the run still terminates with a normal outcome
    assert plan.fired_sites() == ["verifier.pool"]
    assert res.outcome in ("verified", "not_verified")
    assert res.error is None


# ----------------------------------------------------------------------
# satellite (b)+(c): bench table continues past bad rows
# ----------------------------------------------------------------------
def _bench_modules():
    if BENCH_DIR not in sys.path:
        sys.path.insert(0, BENCH_DIR)
    import run_bench_table1
    import table1_common

    return run_bench_table1, table1_common


def test_bench_serial_records_error_row_and_continues(tmp_path):
    import argparse

    driver, common = _bench_modules()
    common.BENCH_ROWS.clear()
    args = argparse.Namespace(
        jobs=1, checkpoint_dir=None, resume=False, time_budget=None
    )
    failures = []
    # first C1 row hits the LP fault, the second system still runs clean
    with fi.inject(fi.lp_failure()) as plan:
        driver._run_one_serial("C1", "smoke", args, failures)
        driver._run_one_serial("C3", "smoke", args, failures)
    assert plan.fired_sites() == ["inclusion.lp"]
    assert common.BENCH_ROWS["C1"]["outcome"] == "error"
    assert common.BENCH_ROWS["C1"]["error"]["kind"] == "InclusionError"
    assert common.BENCH_ROWS["C3"]["outcome"] == "success"
    assert failures == ["C1"]
    out = driver.main(["--systems", "C1", "--out", str(tmp_path / "b.json")])
    common.BENCH_ROWS.clear()
    assert out in (0, 1)  # document emitted either way


def test_bench_parallel_worker_crash_retried_serially(tmp_path):
    import argparse

    driver, common = _bench_modules()
    common.BENCH_ROWS.clear()
    args = argparse.Namespace(
        jobs=2, checkpoint_dir=None, resume=False, time_budget=None
    )
    with fi.inject(fi.worker_crash()) as plan:
        failures = driver._run_parallel(["C1", "C3"], "smoke", args)
    # one future "died"; its row was classified WorkerCrash, then the
    # serial retry overwrote it with a real result
    assert plan.fired_sites() == ["bench.pool"]
    assert set(common.BENCH_ROWS) == {"C1", "C3"}
    for name in ("C1", "C3"):
        assert common.BENCH_ROWS[name]["outcome"] == "success"
    assert failures == []
    common.BENCH_ROWS.clear()


def test_bench_parallel_worker_crash_row_without_retry():
    from repro.diagnostics import error_entry
    from repro.resilience import WorkerCrash

    row = error_entry(WorkerCrash("pool worker died running C9", system="C9"))
    assert row["outcome"] == "error"
    assert row["error"]["kind"] == "WorkerCrash"
    assert row["error"]["details"]["system"] == "C9"


# -- certification-service sites (PR 9) ----------------------------------
def test_service_worker_kill_spec_builds():
    spec = fi.service_worker_kill(at_call=3, times=2)
    assert spec.site == "service.worker_kill_mid_job"
    assert spec.at_call == 3 and spec.times == 2


def test_service_worker_kill_fires_in_worker_and_is_survived(tmp_path):
    from repro.service import CertificationRequest, ServiceConfig, run_service

    reqs = [
        CertificationRequest(
            kind="custom", system="test", seed=i, config={},
            entry="repro.service.testing:echo_job",
        )
        for i in range(3)
    ]
    spec = fi.service_worker_kill(at_call=1)
    config = ServiceConfig(
        workers=1,
        worker_faults=(
            {"site": spec.site, "at_call": spec.at_call,
             "times": spec.times},
        ),
    )
    out = run_service(str(tmp_path / "root"), reqs, config)
    # the kill happened (a redelivery proves it) and every job still
    # reached success — a typed recovery, not a hang or a traceback
    assert out["counts"]["redeliveries"] >= 1
    assert all(r["status"] == "success" for r in out["jobs"].values())


def test_service_cache_corruption_evicts_never_serves(tmp_path):
    from repro.service import (
        CertificateCache,
        ServiceConfig,
        make_verify_request,
        run_service,
    )

    root = str(tmp_path / "root")
    req = make_verify_request(seed=0)
    run_service(root, [req], ServiceConfig(workers=0))
    cache = CertificateCache(os.path.join(root, "cache"))
    with fi.inject(fi.service_cache_corruption()) as plan:
        assert cache.get(req) is None  # rejected by the exact recheck
    assert plan.fired_sites() == ["service.cache_corrupt_bundle"]
    assert cache.eviction_log[-1][1] == "recheck"


def test_service_torn_journal_write_loses_one_record(tmp_path):
    from repro.service import JobJournal, replay_journal

    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.append("submit", "k1", request={"kind": "custom"})
    with fi.inject(fi.service_torn_journal_write()) as plan:
        journal.append("complete", "k1")
    journal.close()
    assert plan.fired_sites() == ["service.journal_torn_write"]
    state = replay_journal(path)
    assert state.torn_records == 1
    assert state.jobs["k1"]["status"] == "pending"  # torn, not applied
