"""Tests for the interval cross-check verifier (agreement with the SOS one)."""

import numpy as np
import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box
from repro.verifier import (
    IntervalVerifier,
    IntervalVerifierConfig,
    SOSVerifier,
)


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
    )


def radial_barrier(n, c=1.0, scale=0.5):
    B = Polynomial.constant(n, c)
    for i in range(n):
        B = B - scale * Polynomial.variable(n, i) ** 2
    return B


def test_valid_certificate_proved():
    prob = decay_problem()
    B = radial_barrier(2)
    lam = Polynomial.constant(2, -0.1)
    result = IntervalVerifier(prob, []).verify(B, lam)
    assert result.ok
    assert result.failed_conditions() == []
    assert set(result.outcomes) == {"init", "unsafe", "lie"}


def test_invalid_certificate_rejected_with_witness():
    prob = decay_problem()
    bad = -1.0 * radial_barrier(2)  # negative on Theta
    result = IntervalVerifier(prob, []).verify(bad)
    assert not result.ok
    assert "init" in result.failed_conditions()
    witness = result.outcomes["init"].witness
    assert witness is not None
    assert bad(witness) < 0
    assert prob.theta.contains(witness, tol=1e-9)


def test_agrees_with_sos_verifier():
    """Both verifiers accept the same valid certificate and reject the same
    corrupted one — two independent code paths agreeing."""
    prob = decay_problem()
    B = radial_barrier(2)
    sos = SOSVerifier(prob, [])
    sos_result = sos.verify(B)
    assert sos_result.ok
    iv = IntervalVerifier(prob, [])
    iv_result = iv.verify(B, sos_result.lambda_poly)
    assert iv_result.ok

    corrupted = B + Polynomial.constant(2, 50.0)
    assert not sos.verify(corrupted).ok
    assert not iv.verify(corrupted, sos_result.lambda_poly).ok


def test_controlled_with_endpoints():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([-1.0 * x], [1.0])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    B = radial_barrier(1)
    iv = IntervalVerifier(prob, [Polynomial.zero(1)], sigma_star=[0.05])
    result = iv.verify(B, Polynomial.constant(1, -0.5))
    assert result.ok
    lie_names = [n for n in result.outcomes if n.startswith("lie")]
    assert len(lie_names) == 2  # both error endpoints checked


def test_zero_lambda_default_is_stricter():
    # xdot = -x with B = 1 - 0.5 x^2: L_f B = x^2 which is 0 at the origin,
    # so the strict check without lambda fails (or is delta-sat), while a
    # negative constant lambda rescues it.
    prob = decay_problem(1)
    B = radial_barrier(1)
    iv = IntervalVerifier(
        prob, [], config=IntervalVerifierConfig(delta=1e-3, eps_lie=1e-4)
    )
    without = iv.verify(B)  # lambda = 0
    assert not without.ok
    with_lam = iv.verify(B, Polynomial.constant(1, -0.5))
    assert with_lam.ok


def test_validation_errors():
    prob = decay_problem()
    with pytest.raises(ValueError):
        IntervalVerifier(prob, [Polynomial.zero(2)])  # autonomous
    iv = IntervalVerifier(prob, [])
    with pytest.raises(ValueError):
        iv.verify(radial_barrier(3))  # dimension mismatch


def test_contractor_toggle():
    prob = decay_problem()
    B = radial_barrier(2)
    lam = Polynomial.constant(2, -0.1)
    with_c = IntervalVerifier(
        prob, [], config=IntervalVerifierConfig(use_contractor=True)
    ).verify(B, lam)
    without_c = IntervalVerifier(
        prob, [], config=IntervalVerifierConfig(use_contractor=False)
    ).verify(B, lam)
    assert with_c.ok and without_c.ok
