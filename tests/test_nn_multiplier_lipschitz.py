"""Tests for multiplier networks and Lipschitz bounds."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import (
    MLP,
    Adam,
    ConstantMultiplier,
    LinearMultiplier,
    empirical_lipschitz_lower_bound,
    spectral_lipschitz_bound,
)
from repro.nn.lipschitz import spectral_norm


# ----------------------------------------------------------------------
# multipliers
# ----------------------------------------------------------------------
def test_linear_multiplier_is_affine():
    rng = np.random.default_rng(0)
    net = LinearMultiplier([3, 5, 1], rng=rng)
    p = net.to_polynomial()
    assert p.degree <= 1
    pts = rng.uniform(-2, 2, size=(20, 3))
    np.testing.assert_allclose(net.predict(pts).reshape(-1), p(pts), atol=1e-9)


def test_linear_multiplier_deep_stack_still_affine():
    rng = np.random.default_rng(1)
    net = LinearMultiplier([2, 5, 5, 1], rng=rng)
    pts = rng.uniform(-1, 1, size=(10, 2))
    p = net.to_polynomial()
    np.testing.assert_allclose(net.predict(pts).reshape(-1), p(pts), atol=1e-9)


def test_linear_multiplier_trains():
    rng = np.random.default_rng(2)
    net = LinearMultiplier([2, 4, 1], rng=rng)
    X = rng.uniform(-1, 1, size=(200, 2))
    y = 2.0 * X[:, 0] - X[:, 1] + 0.5
    opt = Adam(net.parameters(), lr=0.02)
    for _ in range(300):
        opt.zero_grad()
        err = net(Tensor(X)) - Tensor(y)
        ((err * err).mean()).backward()
        opt.step()
    w, c = net.affine_coefficients()
    np.testing.assert_allclose(w, [2.0, -1.0], atol=0.05)
    assert c == pytest.approx(0.5, abs=0.05)


def test_linear_multiplier_validation():
    with pytest.raises(ValueError):
        LinearMultiplier([3])
    with pytest.raises(ValueError):
        LinearMultiplier([3, 2])  # scalar output required


def test_constant_multiplier():
    net = ConstantMultiplier(3, init=-2.0)
    out = net(Tensor(np.zeros((5, 3))))
    np.testing.assert_allclose(out.numpy(), -2.0 * np.ones(5))
    assert net.to_polynomial().coeff((0, 0, 0)) == -2.0
    # trainable
    (out.sum()).backward()
    assert net.value.grad is not None
    assert "ConstantMultiplier" in repr(net)


# ----------------------------------------------------------------------
# Lipschitz bounds
# ----------------------------------------------------------------------
def test_spectral_norm_matches_numpy():
    rng = np.random.default_rng(3)
    A = rng.normal(size=(6, 4))
    assert spectral_norm(A) == pytest.approx(np.linalg.norm(A, 2), rel=1e-6)
    assert spectral_norm(np.zeros((3, 3))) == 0.0


def test_spectral_bound_sandwiches_truth():
    rng = np.random.default_rng(4)
    net = MLP([2, 8, 1], rng=rng)
    upper = spectral_lipschitz_bound(net)
    lower = empirical_lipschitz_lower_bound(
        net, [-2, -2], [2, 2], rng=np.random.default_rng(5)
    )
    assert 0 < lower <= upper * (1 + 1e-9)


def test_spectral_bound_linear_network_is_exact():
    # With no hidden activation (single Dense), bound equals ||W||_2.
    net = MLP([3, 1], rng=np.random.default_rng(6))
    assert spectral_lipschitz_bound(net) == pytest.approx(
        np.linalg.norm(net.net.modules[0].W.data, 2), rel=1e-6
    )


def test_spectral_bound_output_scale():
    net1 = MLP([2, 4, 1], rng=np.random.default_rng(7))
    net2 = MLP([2, 4, 1], output_scale=3.0, rng=np.random.default_rng(7))
    # same weights (same seed) so bound scales by 3
    assert spectral_lipschitz_bound(net2) == pytest.approx(
        3.0 * spectral_lipschitz_bound(net1), rel=1e-9
    )


def test_spectral_bound_type_error():
    with pytest.raises(TypeError):
        spectral_lipschitz_bound("not a net")
