"""Certification service: requests, journal, cache, queue, supervisor.

The expensive acceptance drills (20-job chaos batch, supervisor
SIGKILL + journal resume) live at the bottom; everything above runs on
cheap scripted custom jobs so the state machinery is exercised without
paying for SOS solves.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience.faults import FaultSpec, inject
from repro.service import (
    CertificateCache,
    CertificationRequest,
    CertificationService,
    JobJournal,
    JobQueue,
    JobStatus,
    ServiceConfig,
    canonical_json,
    make_verify_request,
    replay_journal,
    request_key,
    run_service,
)
from repro.service.cache import payload_digest
from repro.service.testing import read_events

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def custom_request(seed=0, entry="repro.service.testing:echo_job", **config):
    return CertificationRequest(
        kind="custom", system="test", seed=seed, config=config, entry=entry
    )


# -- requests and keys ---------------------------------------------------
def test_request_key_is_canonical():
    a = CertificationRequest(
        kind="verify", seed=3, config={"b": 1.0, "a": 2}
    )
    b = CertificationRequest(
        kind="verify", seed=3, config={"a": 2, "b": 1.0}
    )
    assert request_key(a) == request_key(b)  # dict order is irrelevant
    assert a.key() == request_key(a)
    c = CertificationRequest(kind="verify", seed=4, config={"a": 2, "b": 1.0})
    assert request_key(c) != request_key(a)


def test_request_round_trips_through_manifest():
    req = make_verify_request(seed=7)
    again = CertificationRequest.from_dict(req.manifest())
    assert request_key(again) == request_key(req)
    assert canonical_json(again.manifest()) == canonical_json(req.manifest())


def test_verify_family_is_deterministic():
    a, b = make_verify_request(seed=5), make_verify_request(seed=5)
    assert a.key() == b.key()
    assert make_verify_request(seed=6).key() != a.key()


# -- journal -------------------------------------------------------------
def test_journal_replay_reconstructs_state(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.append("submit", "k1", request={"kind": "custom"})
    journal.append("start", "k1", attempt=1, worker=0)
    journal.append("complete", "k1")
    journal.append("submit", "k2", request={"kind": "custom"})
    journal.append("start", "k2", attempt=1, worker=1)
    journal.append("retry", "k2", attempt=1)
    journal.close()
    state = replay_journal(path)
    assert state.jobs["k1"]["status"] == "complete"
    assert state.jobs["k2"]["status"] == "pending"
    assert state.jobs["k2"]["attempts"] == 1
    assert state.pending() == ["k2"]
    assert state.completed() == ["k1"]
    assert state.torn_records == 0


def test_journal_torn_write_loses_exactly_one_record(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.append("submit", "k1", request={"kind": "custom"})
    with inject(FaultSpec(site="service.journal_torn_write")) as plan:
        journal.append("complete", "k1")  # half-written, no newline
    assert plan.fired_sites() == ["service.journal_torn_write"]
    journal.close()
    # crash-restart: a fresh handle repairs framing, replay skips the
    # torn record and keeps everything before AND after it
    journal2 = JobJournal(path)
    journal2.append("start", "k1", attempt=2, worker=0)
    journal2.close()
    state = replay_journal(path)
    assert state.torn_records == 1
    assert state.jobs["k1"]["status"] == "running"  # complete was torn
    assert state.jobs["k1"]["attempts"] == 2


def test_journal_compact_preserves_state(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    for i in range(5):
        journal.append("submit", f"k{i}", request={"seed": i})
        journal.append("start", f"k{i}", attempt=1, worker=0)
        journal.append("complete", f"k{i}")
    journal.append("submit", "pending-job", request={"seed": 99})
    before = replay_journal(path)
    journal.compact()
    journal.close()
    after = replay_journal(path)
    assert {k: v["status"] for k, v in after.jobs.items()} == {
        k: v["status"] for k, v in before.jobs.items()
    }
    # compaction: one snapshot line per job
    with open(path) as fh:
        lines = [json.loads(l) for l in fh if l.strip()]
    assert all(rec["op"] == "snapshot" for rec in lines)
    assert len(lines) == 6


def test_journal_replay_missing_file_is_empty(tmp_path):
    state = replay_journal(str(tmp_path / "nope.jsonl"))
    assert state.jobs == {} and state.records == 0


# -- queue ---------------------------------------------------------------
def test_queue_fifo_and_backoff():
    queue = JobQueue()
    j1 = queue.submit(custom_request(seed=1))
    j2 = queue.submit(custom_request(seed=2))
    assert queue.submit(custom_request(seed=1)) is j1  # dedupe by key
    assert queue.next_ready(now=0.0) is j1
    queue.mark_running(j1, worker=0, now=0.0)
    assert queue.next_ready(now=0.0) is j2
    queue.mark_retry(j2, {"kind": "WorkerCrash"}, not_before=10.0)
    assert queue.next_ready(now=5.0) is None  # backoff not yet elapsed
    assert queue.next_ready(now=10.5) is j2
    queue.mark_done(j1, {"outcome": "success"}, finished_at=1.0)
    queue.mark_dead_letter(j2, {"kind": "WorkerCrash"}, finished_at=2.0)
    assert queue.all_terminal()
    assert j1.summary()["status"] == "success"
    assert j2.summary()["status"] == "dead_letter"


# -- cache ---------------------------------------------------------------
def test_cache_put_get_round_trip(tmp_path):
    cache = CertificateCache(str(tmp_path / "cache"))
    req = custom_request(seed=1)
    payload = {"kind": "custom", "outcome": "success", "x": [1, 2.5]}
    key = cache.put(req, payload)
    assert key == request_key(req)
    assert cache.get(req) == payload
    assert cache.get(custom_request(seed=2)) is None  # plain miss


def test_cache_rejects_bitflipped_entry(tmp_path):
    """Satellite: a bit-flipped stored payload fails the digest layer,
    is evicted, and is NEVER served; recompute then repopulates."""
    root = str(tmp_path / "svc")
    req = make_verify_request(seed=0)
    out = run_service(root, [req], ServiceConfig(workers=0))
    assert out["jobs"][req.key()]["status"] == "success"
    cache = CertificateCache(os.path.join(root, "cache"))
    good = cache.get(req)
    assert good is not None and good.get("bundle") is not None

    # flip one bit in the stored payload
    path = cache.path_for(req.key())
    entry = json.load(open(path))
    entry["payload"]["ok"] = not entry["payload"]["ok"]
    json.dump(entry, open(path, "w"))

    assert cache.get(req) is None  # evicted, not served
    assert cache.eviction_log and cache.eviction_log[-1][1] == "digest"
    assert req.key() not in cache  # file is gone

    # recompute produces the original payload again (content address!)
    out2 = run_service(root, [req], ServiceConfig(workers=0))
    assert out2["jobs"][req.key()]["status"] == "success"
    assert not out2["jobs"][req.key()]["from_cache"]
    restored = cache.get(req)
    assert payload_digest(restored) == payload_digest(good)


def test_cache_recheck_rejects_selfconsistent_corruption(tmp_path):
    """A corrupted bundle with a *recomputed* digest passes layers 1-2;
    only the exact recheck (layer 3) can reject it — and must."""
    root = str(tmp_path / "svc")
    req = make_verify_request(seed=1)
    run_service(root, [req], ServiceConfig(workers=0))
    cache = CertificateCache(os.path.join(root, "cache"))
    with inject(FaultSpec(site="service.cache_corrupt_bundle")) as plan:
        assert cache.get(req) is None
    assert plan.fired_sites() == ["service.cache_corrupt_bundle"]
    assert cache.eviction_log[-1][1] == "recheck"


def test_cache_envelope_mismatch_evicts(tmp_path):
    cache = CertificateCache(str(tmp_path / "cache"))
    req_a, req_b = custom_request(seed=1), custom_request(seed=2)
    cache.put(req_a, {"outcome": "success"})
    # cross-wire: entry for A moved under B's key
    path_b = cache.path_for(request_key(req_b))
    os.makedirs(os.path.dirname(path_b), exist_ok=True)
    os.replace(cache.path_for(request_key(req_a)), path_b)
    assert cache.get(req_b) is None
    assert cache.eviction_log[-1][1] == "envelope"


# -- supervisor: happy path and failure policies -------------------------
def test_service_runs_batch_across_workers(tmp_path):
    log = str(tmp_path / "events.jsonl")
    reqs = [
        custom_request(seed=i, entry="repro.service.testing:pid_job", log=log)
        for i in range(6)
    ]
    out = run_service(str(tmp_path / "root"), reqs, ServiceConfig(workers=2))
    assert all(r["status"] == "success" for r in out["jobs"].values())
    pids = {e["pid"] for e in read_events(log)}
    assert len(pids) >= 2  # genuinely distributed over the pool


def test_service_retries_transient_failures_with_backoff(tmp_path):
    log = str(tmp_path / "events.jsonl")
    req = custom_request(
        seed=0, entry="repro.service.testing:flaky_job",
        succeed_on=2, log=log,
    )
    out = run_service(str(tmp_path / "root"), [req], ServiceConfig(workers=1))
    row = out["jobs"][req.key()]
    assert row["status"] == "success"
    assert row["attempts"] == 2
    assert out["counts"]["retries"] == 1
    attempts = [e["attempt"] for e in read_events(log)]
    assert attempts == [1, 2]


def test_service_dead_letters_terminal_failures_fast(tmp_path):
    req = custom_request(seed=0, entry="repro.service.testing:terminal_job")
    out = run_service(str(tmp_path / "root"), [req], ServiceConfig(workers=1))
    row = out["jobs"][req.key()]
    assert row["status"] == "dead_letter"
    assert row["attempts"] == 1  # BudgetExhausted: no retry
    assert row["error"]["kind"] == "BudgetExhausted"
    assert out["counts"]["retries"] == 0
    assert out["counts"]["dead_letters"] == 1


def test_service_survives_worker_kill_mid_job(tmp_path):
    reqs = [custom_request(seed=i) for i in range(4)]
    config = ServiceConfig(
        workers=2,
        worker_faults=(
            {"site": "service.worker_kill_mid_job", "at_call": 1},
        ),
    )
    out = run_service(str(tmp_path / "root"), reqs, config)
    assert all(r["status"] == "success" for r in out["jobs"].values())
    assert out["counts"]["redeliveries"] >= 1
    assert out["counts"]["workers_respawned"] >= 1


def test_service_dead_letters_after_max_redeliveries(tmp_path):
    # a persistent killer: every respawned worker re-arms the fault, so
    # the single job keeps dying until the redelivery bound gives up
    req = custom_request(seed=0)
    config = ServiceConfig(
        workers=1,
        max_redeliveries=1,
        worker_faults=(
            {"site": "service.worker_kill_mid_job", "times": 50},
        ),
        worker_faults_once=False,
        serial_fallback=False,
    )
    out = run_service(str(tmp_path / "root"), [req], config)
    row = out["jobs"][req.key()]
    assert row["status"] == "dead_letter"
    assert row["error"]["kind"] == "WorkerCrash"
    assert row["redeliveries"] == 1
    assert out["counts"]["dead_letters"] == 1


def test_service_degrades_to_serial_when_pool_unavailable(tmp_path):
    reqs = [custom_request(seed=i) for i in range(3)]
    with inject(
        FaultSpec(
            site="service.pool_spawn",
            exception=lambda: OSError("no more processes"),
            times=100,
        )
    ) as plan:
        out = run_service(
            str(tmp_path / "root"), reqs, ServiceConfig(workers=2)
        )
    assert plan.fired_sites()  # spawn really was refused
    assert out["counts"]["serial_fallbacks"] == 1
    assert all(r["status"] == "success" for r in out["jobs"].values())


def test_service_cache_hits_skip_execution(tmp_path):
    root = str(tmp_path / "root")
    log = str(tmp_path / "events.jsonl")
    reqs = [
        custom_request(seed=i, log=log) for i in range(3)
    ]
    run_service(root, reqs, ServiceConfig(workers=0))
    runs_before = len(read_events(log))
    out = run_service(root, reqs, ServiceConfig(workers=0))
    assert all(r["from_cache"] for r in out["jobs"].values())
    assert len(read_events(log)) == runs_before  # nothing re-executed


def test_service_status_file_carries_service_block(tmp_path):
    root = str(tmp_path / "root")
    run_service(root, [custom_request(seed=0)], ServiceConfig(workers=0))
    status = json.load(open(os.path.join(root, "service.status.json")))
    assert status["outcome"] == "success"
    service = status["service"]
    assert service["done"] == 1 and service["total"] == 1
    assert service["dead_letters"] == 0
    # and the fleet board renders the service view for it
    from repro.telemetry.tail import render_status_line

    line = render_status_line(status, now=time.time())
    assert "done=1/1" in line and "dead=0" in line


# -- acceptance drills ---------------------------------------------------
def test_chaos_batch_terminates_and_matches_serial(tmp_path):
    """The PR's headline acceptance: a 20-job batch with a worker kill
    mid-job and a corrupted cache entry — every job terminal, corrupted
    entry evicted (never served), payloads bitwise-identical to a
    fault-free serial run."""
    root = str(tmp_path / "chaos")
    reqs = [make_verify_request(seed=i) for i in range(20)]

    # plant a self-consistent corrupted entry for job 0 (bad margin
    # claim, recomputed digest) before the batch runs
    seed_root = str(tmp_path / "seed")
    run_service(seed_root, [reqs[0]], ServiceConfig(workers=0))
    donor = CertificateCache(
        os.path.join(seed_root, "cache"), verify_on_read=False
    )
    payload = donor.get(reqs[0])
    from repro.soundness import bundle_from_dict, bundle_to_dict

    bundle = bundle_from_dict(payload["bundle"])
    bundle.conditions[0].margin = float(bundle.conditions[0].margin) + 10.0
    payload["bundle"] = bundle_to_dict(bundle)
    CertificateCache(
        os.path.join(root, "cache"), verify_on_read=False
    ).put(reqs[0], payload)

    config = ServiceConfig(
        workers=2,
        worker_faults=(
            {"site": "service.worker_kill_mid_job", "at_call": 2},
        ),
    )
    out = run_service(root, reqs, config)

    # every job terminal, chaos absorbed
    assert out["all_terminal"]
    assert all(
        r["status"] in ("success", "dead_letter")
        for r in out["jobs"].values()
    )
    assert all(r["status"] == "success" for r in out["jobs"].values())
    assert out["counts"]["redeliveries"] >= 1

    # the corrupted entry was evicted at submit time and recomputed
    evicted_keys = {e["key"] for e in out["cache_evictions"]}
    assert reqs[0].key() in evicted_keys
    assert not out["jobs"][reqs[0].key()]["from_cache"]

    # bitwise identity against a fault-free serial run
    serial_root = str(tmp_path / "serial")
    run_service(serial_root, reqs, ServiceConfig(workers=0))
    chaos_cache = CertificateCache(os.path.join(root, "cache"))
    serial_cache = CertificateCache(os.path.join(serial_root, "cache"))
    for req in reqs:
        a, b = chaos_cache.get(req), serial_cache.get(req)
        assert a is not None and b is not None
        assert payload_digest(a) == payload_digest(b)


@pytest.mark.slow
def test_supervisor_sigkill_then_resume_finishes_batch(tmp_path):
    """SIGKILL the supervisor mid-batch; a journal-recovered restart
    finishes every job, loses none, and completes none twice."""
    root = str(tmp_path / "root")
    log = str(tmp_path / "events.jsonl")
    jobs_file = str(tmp_path / "jobs.jsonl")
    with open(jobs_file, "w") as fh:
        for seed in range(6):
            fh.write(json.dumps({
                "schema_version": 1, "kind": "custom", "system": "test",
                "seed": seed,
                "config": {"sleep_s": 0.4, "log": log},
                "entry": "repro.service.testing:slow_job",
            }) + "\n")

    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "run", "--root", root,
         "--jobs-file", jobs_file, "--workers", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    # let it journal the batch and get jobs in flight, then SIGKILL
    deadline = time.time() + 10.0
    while time.time() < deadline:
        state = replay_journal(os.path.join(root, "journal.jsonl"))
        if state.jobs and any(
            j["status"] == "running" for j in state.jobs.values()
        ):
            break
        time.sleep(0.05)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=10)
    time.sleep(0.5)  # orphan watch reaps the workers

    state = replay_journal(os.path.join(root, "journal.jsonl"))
    assert state.jobs, "journal lost the batch"
    assert state.pending(), "nothing left pending — kill came too late"

    resume = subprocess.run(
        [sys.executable, "-m", "repro.service", "resume", "--root", root,
         "--workers", "2"],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert resume.returncode == 0, resume.stderr
    results = json.loads(resume.stdout)
    assert len(results["jobs"]) == 6
    assert all(r["status"] == "success" for r in results["jobs"].values())

    finishes = {}
    for event in read_events(log):
        if event["op"] == "finish":
            finishes[event["seed"]] = finishes.get(event["seed"], 0) + 1
    assert sorted(finishes) == [0, 1, 2, 3, 4, 5], "a job was lost"
    assert all(v == 1 for v in finishes.values()), (
        f"a job ran to completion twice: {finishes}"
    )


# -- CLI -----------------------------------------------------------------
def test_cli_run_and_status(tmp_path, capsys):
    from repro.service.cli import main

    root = str(tmp_path / "root")
    rc = main(["run", "--root", root, "--verify-seeds", "2",
               "--workers", "0"])
    out = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert len(out["jobs"]) == 2
    rc = main(["status", "--root", root])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["pending"] == []
    assert len(doc["cached_keys"]) == 2


def test_cli_reports_dead_letters_in_exit_code(tmp_path, capsys):
    from repro.service.cli import main

    jobs_file = str(tmp_path / "jobs.jsonl")
    with open(jobs_file, "w") as fh:
        fh.write(json.dumps({
            "schema_version": 1, "kind": "custom", "system": "test",
            "seed": 0, "config": {},
            "entry": "repro.service.testing:terminal_job",
        }) + "\n")
    rc = main(["run", "--root", str(tmp_path / "root"),
               "--jobs-file", jobs_file, "--workers", "0"])
    capsys.readouterr()
    assert rc == 3  # terminated, but with a dead letter
