"""Tests for cross-process trace propagation (repro.telemetry.context).

Covers the capture → worker_session → merge_shard protocol in-process
(deterministic, no pool), plus one real ``ProcessPoolExecutor`` round
trip through the verifier's ``parallel=True`` path — the acceptance
shape: a single merged trace where every worker span carries the run's
``trace_id`` and resolves to a parent span in the parent process, and
whose self-time totals equal the sum of the per-process traces'.
"""

import json
import os

import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box
from repro.telemetry import session
from repro.telemetry.context import (
    TraceContext,
    capture,
    load_shard_events,
    merge_shard,
    merge_shard_events,
    worker_session,
)
from repro.telemetry.report import span_self_times
from repro.verifier import SOSVerifier, VerifierConfig


def read_trace(path):
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# TraceContext serialization
# ----------------------------------------------------------------------
def test_trace_context_round_trip():
    ctx = TraceContext(trace_id="abc123", parent_span_id=7,
                       run_name="table1/C1", shard_index=2, profile=True)
    d = ctx.to_dict()
    assert d["schema_version"] == 1
    assert TraceContext.from_dict(d) == ctx
    assert TraceContext.from_dict(json.loads(json.dumps(d))) == ctx


def test_trace_context_from_dict_defaults():
    ctx = TraceContext.from_dict({"trace_id": "x"})
    assert ctx.parent_span_id is None
    assert ctx.shard_index == 0
    assert not ctx.profile


def test_capture_outside_session_returns_none():
    # the default-telemetry path: pool submissions stay exactly what they
    # were before trace propagation existed
    assert capture() is None


def test_capture_inside_session(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    with session(trace, name="cap-test") as tel:
        with tel.span("submitting") as span:
            ctx = capture(shard_index=3)
            assert ctx is not None
            assert ctx.trace_id == tel.trace_id
            assert ctx.parent_span_id == span.span_id
            assert ctx.run_name == "cap-test"
            assert ctx.shard_index == 3


# ----------------------------------------------------------------------
# worker_session + merge, in-process (no pool — fully deterministic)
# ----------------------------------------------------------------------
def test_worker_merge_round_trip(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    shard = str(tmp_path / "shard-0.jsonl")
    with session(trace, name="merge-test") as tel:
        tel.metrics.inc("parent.counter", 2)
        with tel.span("verify.parallel") as sub:
            ctx = capture(shard_index=0)
        submission_id = sub.span_id
        # the "worker": same process, own Telemetry via worker_session
        with worker_session(ctx, shard) as wtel:
            with wtel.span("sdp.solve", rung="base"):
                with wtel.span("ipm.iterate"):
                    pass
            wtel.metrics.inc("parent.counter", 5)
            wtel.metrics.observe("ipm.seconds", 0.25)
        stats = merge_shard(tel, shard)
        assert stats["spans"] == 2
        assert stats["shard"] == 0
        # same-process "worker": skew is (wall-perf) self-difference ~ 0
        assert abs(stats["clock_skew_s"]) < 0.05
        assert not os.path.exists(shard)  # consumed
        # worker metrics folded into the parent registry
        assert tel.metrics.counter_value("parent.counter") == 7
        run_trace_id = tel.trace_id

    events = read_trace(trace)
    spans = [e for e in events if e.get("type") == "span"]
    worker_spans = [e for e in spans if e.get("shard") == 0]
    parent_spans = [e for e in spans if "shard" not in e]
    assert len(worker_spans) == 2 and parent_spans
    by_id = {e["span_id"]: e for e in spans}
    assert len(by_id) == len(spans)  # remapped ids stay unique
    for w in worker_spans:
        assert w["trace_id"] == run_trace_id
        assert w["parent_id"] in by_id  # resolves inside the merged trace
        assert "clock_skew_s" in w and "pid" in w
    # the worker root hangs under the submission span
    root = next(w for w in worker_spans if w["name"] == "sdp.solve")
    assert root["parent_id"] == submission_id
    assert by_id[submission_id].get("shard") is None
    # the child remapped under its own root, not the parent's tree
    child = next(w for w in worker_spans if w["name"] == "ipm.iterate")
    assert child["parent_id"] == root["span_id"]
    # the folded histogram lands in the final metrics summary
    summary = next(e for e in events if e.get("type") == "metrics")["summary"]
    assert summary["histograms"]["ipm.seconds"]["count"] == 1
    # shard-protocol events are consumed, never re-emitted
    assert not any(e.get("type") == "worker_metrics" for e in events)


def test_merge_self_time_totals_match_per_process_sum(tmp_path):
    """Acceptance: self-time totals over the merged trace == sum of the
    per-process traces' totals (workers run concurrently, so a worker
    span must not subtract from its parent-process submission span)."""
    trace = str(tmp_path / "run.jsonl")
    shard = str(tmp_path / "shard-0.jsonl")
    with session(trace, name="selftime") as tel:
        with tel.span("verify.parallel"):
            ctx = capture(shard_index=0)
        with worker_session(ctx, shard) as wtel:
            with wtel.span("sdp.solve"):
                with wtel.span("ipm.iterate"):
                    pass
        shard_events = load_shard_events(shard)
        worker_total = sum(span_self_times(shard_events).values())
        merge_shard(tel, shard)
    merged = read_trace(trace)
    parent_only = [e for e in merged if "shard" not in e]
    parent_total = sum(span_self_times(parent_only).values())
    merged_total = sum(span_self_times(merged).values())
    assert merged_total == pytest.approx(parent_total + worker_total,
                                         rel=1e-9, abs=1e-12)


def test_merge_missing_or_torn_shard_is_harmless(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    with session(trace, name="tolerant") as tel:
        stats = merge_shard(tel, str(tmp_path / "never-written.jsonl"))
        assert stats == {"events": 0, "spans": 0, "shard": None,
                         "clock_skew_s": 0.0}
        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            '{"type":"trace_context","trace_id":"t","shard_index":1,'
            '"parent_span_id":null,"pid":1,"t_perf":0.0,"t_wall":0.0}\n'
            '{"type":"span","name":"ok","span_id":1,"parent_id":null,'
            '"t_start":0.1,"t_end":0.2,"duration":0.1,"attrs":{}}\n'
            '{"type":"span","name":"torn","span_id":2,"par'
        )
        stats = merge_shard(tel, str(torn))
        assert stats["spans"] == 1  # the torn line is skipped, not fatal


def test_merge_events_requires_no_anchor(tmp_path):
    # a shard written by a pre-anchor writer still merges (no remapping
    # guarantees, but no crash); skew defaults to 0
    trace = str(tmp_path / "run.jsonl")
    with session(trace, name="anchorless") as tel:
        stats = merge_shard_events(tel, [
            {"type": "span", "name": "x", "span_id": 1, "parent_id": None,
             "duration": 0.1, "attrs": {}},
        ])
        assert stats["spans"] == 1
        assert stats["clock_skew_s"] == 0.0


# ----------------------------------------------------------------------
# the real thing: verifier parallel=True through a process pool
# ----------------------------------------------------------------------
def _decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
    )


def _radial_barrier(n, c=1.0, scale=0.5):
    B = Polynomial.constant(n, c)
    for i in range(n):
        B = B - scale * Polynomial.variable(n, i) ** 2
    return B


def test_parallel_verify_produces_single_merged_trace(tmp_path):
    trace = str(tmp_path / "parallel.jsonl")
    cfg = VerifierConfig(parallel=True, max_workers=2)
    with session(trace, name="verify-parallel") as tel:
        run_trace_id = tel.trace_id
        result = SOSVerifier(_decay_problem(), [], config=cfg).verify(
            _radial_barrier(2)
        )
    assert result.ok

    events = read_trace(trace)
    spans = [e for e in events if e.get("type") == "span"]
    by_id = {e["span_id"]: e for e in spans}
    assert len(by_id) == len(spans)
    worker_spans = [e for e in spans if e.get("shard") is not None]
    # 3 conditions (init/unsafe/lie) → at least one span from each shard
    assert {e["shard"] for e in worker_spans} == {0, 1, 2}
    assert any(e["name"] == "sdp.solve" for e in worker_spans)
    for w in worker_spans:
        assert w["trace_id"] == run_trace_id
        # every worker span resolves, transitively, to a parent-process
        # span of this run — one unified tree
        cur = w
        for _ in range(100):
            parent = cur.get("parent_id")
            if parent is None:
                break
            assert parent in by_id, (
                f"span {w['name']} dangles at parent_id={parent}"
            )
            cur = by_id[parent]
        assert cur.get("shard") is None or cur.get("parent_id") is None
    # worker pids differ from the parent's (it really crossed a process)
    assert any(e.get("pid") != os.getpid() for e in worker_spans)
    # worker metrics folded: the per-solve counters exist parent-side
    summary = next(e for e in events if e.get("type") == "metrics")["summary"]
    assert summary["counters"].get("verifier.pool.tasks", 0) == 3
    # no shard temp files survive the merge
    leftovers = [p for p in os.listdir(tmp_path) if "shard" in p]
    assert leftovers == []


def test_parallel_verify_without_telemetry_unchanged():
    # telemetry off → capture() is None → the pre-existing worker path
    cfg = VerifierConfig(parallel=True, max_workers=2)
    result = SOSVerifier(_decay_problem(), [], config=cfg).verify(
        _radial_barrier(2)
    )
    assert result.ok
    serial = SOSVerifier(_decay_problem(), []).verify(_radial_barrier(2))
    assert [c.feasible for c in result.conditions] == [
        c.feasible for c in serial.conditions
    ]
