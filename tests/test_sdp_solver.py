"""Tests for the interior-point SDP solver on problems with known answers."""

import numpy as np
import pytest

from repro.sdp import (
    InteriorPointOptions,
    SDPProblem,
    SDPStatus,
    solve_sdp,
)


def unit(n, i, j):
    """Symmetric unit matrix E_ij + E_ji (or E_ii)."""
    E = np.zeros((n, n))
    E[i, j] += 0.5
    E[j, i] += 0.5
    if i == j:
        E[i, i] = 1.0
    return E


# ----------------------------------------------------------------------
# basic problems
# ----------------------------------------------------------------------
def test_min_trace_with_fixed_entry():
    # min tr(X) s.t. X_11 = 2, X 2x2 PSD  ->  X = diag(2, 0), value 2
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(2.0, abs=1e-5)
    assert res.X[0][0, 0] == pytest.approx(2.0, abs=1e-5)


def test_min_eigenvalue_formulation():
    # min <A, X> s.t. tr X = 1, X PSD  ->  lambda_min(A)
    rng = np.random.default_rng(5)
    A = rng.normal(size=(4, 4))
    A = 0.5 * (A + A.T)
    prob = SDPProblem([4])
    prob.set_objective([A])
    prob.add_constraint([np.eye(4)], 1.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    lam_min = np.linalg.eigvalsh(A)[0]
    assert res.primal_objective == pytest.approx(lam_min, abs=1e-5)


def test_two_blocks():
    # min tr(X1) + tr(X2) with X1_11 = 1, X2_22 = 3
    prob = SDPProblem([2, 3])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0), None], 1.0)
    prob.add_constraint([None, unit(3, 1, 1)], 3.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(4.0, abs=1e-5)


def test_feasibility_recovers_psd_completion():
    # X_12 = 1 with min trace => X = [[1,1],[1,1]] (rank-1, trace 2)
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 1)], 1.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(2.0, abs=1e-4)
    assert np.linalg.eigvalsh(res.X[0])[0] >= -1e-7


def test_primal_infeasible_detected():
    # X_11 = -1 impossible for PSD X
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], -1.0)
    res = solve_sdp(prob, InteriorPointOptions(max_iterations=200))
    assert res.status in (
        SDPStatus.PRIMAL_INFEASIBLE,
        SDPStatus.MAX_ITERATIONS,
        SDPStatus.NUMERICAL_ERROR,
    )
    assert not res.feasible


def test_inconsistent_constraints_detected():
    prob = SDPProblem([2])
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.INCONSISTENT


def test_redundant_constraints_presolved():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    prob.add_constraint([unit(2, 0, 0)], 1.0)  # duplicate
    prob.add_constraint([2.0 * unit(2, 0, 0)], 2.0)  # scaled duplicate
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.X[0][0, 0] == pytest.approx(1.0, abs=1e-5)
    assert res.y is not None and res.y.shape == (3,)


def test_no_constraints():
    prob = SDPProblem([3])
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    np.testing.assert_allclose(res.X[0], np.zeros((3, 3)))


# ----------------------------------------------------------------------
# randomized problems with a constructed KKT-optimal pair
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,m,seed", [(3, 4, 0), (5, 8, 1), (6, 10, 2), (8, 12, 3)])
def test_random_sdp_with_known_optimum(n, m, seed):
    rng = np.random.default_rng(seed)
    # strictly complementary optimal pair: X* = U diag(p, 0) U^T, Z* = U diag(0, q) U^T
    U, _ = np.linalg.qr(rng.normal(size=(n, n)))
    r = n // 2
    p = rng.uniform(0.5, 2.0, size=r)
    q = rng.uniform(0.5, 2.0, size=n - r)
    X_star = U @ np.diag(np.concatenate([p, np.zeros(n - r)])) @ U.T
    Z_star = U @ np.diag(np.concatenate([np.zeros(r), q])) @ U.T
    y_star = rng.normal(size=m)
    A_mats = []
    for _ in range(m):
        Ai = rng.normal(size=(n, n))
        A_mats.append(0.5 * (Ai + Ai.T))
    C = Z_star + sum(y_star[i] * A_mats[i] for i in range(m))
    prob = SDPProblem([n])
    prob.set_objective([C])
    for Ai in A_mats:
        prob.add_constraint([Ai], float(np.sum(Ai * X_star)))
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    expected = float(np.sum(C * X_star))
    assert res.primal_objective == pytest.approx(expected, abs=1e-4 * (1 + abs(expected)))
    assert res.dual_objective == pytest.approx(expected, abs=1e-4 * (1 + abs(expected)))


def test_result_diagnostics():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    res = solve_sdp(prob)
    eigs = res.min_eigenvalues()
    assert len(eigs) == 1
    assert eigs[0] >= -1e-8
    assert res.gap < 1e-6
    assert res.iterations > 0


# ----------------------------------------------------------------------
# problem container validation
# ----------------------------------------------------------------------
def test_problem_validation():
    with pytest.raises(ValueError):
        SDPProblem([])
    with pytest.raises(ValueError):
        SDPProblem([0])
    prob = SDPProblem([2])
    with pytest.raises(ValueError):
        prob.add_constraint([np.zeros((3, 3))], 0.0)
    with pytest.raises(ValueError):
        prob.add_constraint([np.zeros((2, 2)), np.zeros((2, 2))], 0.0)
    with pytest.raises(ValueError):
        prob.set_objective([np.zeros((3, 3))])
    with pytest.raises(ValueError):
        prob.add_constraint_svec([np.zeros(5)], 0.0)


def test_constraint_matrix_and_split():
    prob = SDPProblem([2, 2])
    prob.add_constraint([unit(2, 0, 0), unit(2, 1, 1)], 1.0)
    mat = prob.constraint_matrix()
    assert mat.shape == (1, 6)
    parts = prob.split_svec(mat[0])
    assert len(parts) == 2 and parts[0].shape == (3,)


# ----------------------------------------------------------------------
# solver fast path: kernels, batching, warm starts (PR 8)
# ----------------------------------------------------------------------
def _random_feasible_sdp(n, m, seed):
    """Strictly feasible random SDP built from a known interior pair."""
    rng = np.random.default_rng(seed)
    X0 = rng.normal(size=(n, n))
    X0 = X0 @ X0.T + n * np.eye(n)
    Z0 = rng.normal(size=(n, n))
    Z0 = Z0 @ Z0.T + n * np.eye(n)
    y0 = rng.normal(size=m)
    A_mats = []
    for _ in range(m):
        Ai = rng.normal(size=(n, n))
        A_mats.append(0.5 * (Ai + Ai.T))
    C = Z0 + sum(y0[i] * A_mats[i] for i in range(m))
    prob = SDPProblem([n])
    prob.set_objective([C])
    for Ai in A_mats:
        prob.add_constraint([Ai], float(np.sum(Ai * X0)))
    return prob


def assert_sdp_results_identical(a, b):
    """Bitwise SDPResult equality (wall-clock trace timers aside)."""
    assert a.status == b.status
    assert a.iterations == b.iterations
    assert a.message == b.message
    assert a.convergence_class == b.convergence_class
    for fa, fb in (
        (a.primal_objective, b.primal_objective),
        (a.dual_objective, b.dual_objective),
        (a.gap, b.gap),
        (a.primal_residual, b.primal_residual),
        (a.dual_residual, b.dual_residual),
    ):
        assert (np.isnan(fa) and np.isnan(fb)) or fa == fb
    for pa, pb in ((a.X, b.X), (a.Z, b.Z)):
        if pa is None or pb is None:
            assert pa is pb
        else:
            assert len(pa) == len(pb)
            for Ma, Mb in zip(pa, pb):
                assert np.array_equal(Ma, Mb)
    if a.y is None or b.y is None:
        assert a.y is b.y
    else:
        assert np.array_equal(a.y, b.y)


@pytest.mark.parametrize("n,m,seed", [(3, 4, 0), (6, 9, 1), (8, 12, 2)])
def test_fast_kernels_bitwise_identical_to_legacy(n, m, seed):
    prob = _random_feasible_sdp(n, m, seed)
    fast = solve_sdp(prob, InteriorPointOptions(fast_kernels=True))
    legacy = solve_sdp(prob, InteriorPointOptions(fast_kernels=False))
    assert fast.status == SDPStatus.OPTIMAL
    assert_sdp_results_identical(fast, legacy)


def test_structured_schur_mode_agrees_with_gemm():
    prob = _random_feasible_sdp(6, 9, 4)
    gemm = solve_sdp(prob, InteriorPointOptions(schur_mode="gemm"))
    structured = solve_sdp(prob, InteriorPointOptions(schur_mode="structured"))
    assert structured.status == SDPStatus.OPTIMAL
    # structured congruence reorders float ops: close, not bitwise
    assert structured.primal_objective == pytest.approx(
        gemm.primal_objective, rel=1e-6, abs=1e-6
    )
    assert structured.dual_objective == pytest.approx(
        gemm.dual_objective, rel=1e-6, abs=1e-6
    )


def test_invalid_schur_mode_rejected():
    with pytest.raises(ValueError):
        solve_sdp(
            _random_feasible_sdp(3, 4, 0),
            InteriorPointOptions(schur_mode="bogus"),
        )


def test_batch_solve_bitwise_identical_to_serial():
    from repro.sdp import solve_sdp_batch

    probs = [
        _random_feasible_sdp(3, 4, 10),
        _random_feasible_sdp(6, 9, 11),
        _random_feasible_sdp(4, 6, 12),
    ]
    serial = [solve_sdp(p) for p in probs]
    batched = solve_sdp_batch(probs)
    assert len(batched) == len(serial)
    for s, b in zip(serial, batched):
        assert_sdp_results_identical(s, b)


def test_batch_solve_handles_heterogeneous_lanes():
    from repro.sdp import solve_sdp_batch

    inconsistent = SDPProblem([2])
    inconsistent.add_constraint([unit(2, 0, 0)], 1.0)
    inconsistent.add_constraint([unit(2, 0, 0)], 2.0)
    empty = SDPProblem([3])
    probs = [_random_feasible_sdp(4, 5, 13), inconsistent, empty]
    batched = solve_sdp_batch(probs)
    serial = [solve_sdp(p) for p in probs]
    for s, b in zip(serial, batched):
        assert_sdp_results_identical(s, b)
    assert batched[1].status == SDPStatus.INCONSISTENT
    assert batched[2].status == SDPStatus.OPTIMAL


def test_warm_start_reduces_iterations():
    from repro.sdp import WarmStart

    prob = _random_feasible_sdp(6, 9, 20)
    cold = solve_sdp(prob)
    assert cold.status == SDPStatus.OPTIMAL
    assert not cold.warm_started
    ws = WarmStart.from_result(cold)
    assert ws is not None
    warm = solve_sdp(prob, warm_start=ws)
    assert warm.status == SDPStatus.OPTIMAL
    assert warm.warm_started
    assert warm.iterations <= cold.iterations


def test_warm_start_shape_mismatch_falls_back_to_cold():
    from repro.sdp import WarmStart

    donor = solve_sdp(_random_feasible_sdp(4, 5, 21))
    ws = WarmStart.from_result(donor)
    prob = _random_feasible_sdp(6, 9, 22)
    cold = solve_sdp(prob)
    mismatched = solve_sdp(prob, warm_start=ws)
    assert not mismatched.warm_started
    assert_sdp_results_identical(mismatched, cold)


def test_warm_start_from_failed_result_is_none():
    from repro.sdp import WarmStart
    from repro.sdp.result import SDPResult

    failed = SDPResult(status=SDPStatus.NUMERICAL_ERROR, message="boom")
    assert WarmStart.from_result(failed) is None


def test_schur_regularization_guards():
    from repro.sdp.ipm import _schur_regularization

    # healthy: exact legacy float-op order
    M = np.diag([1.0, 2.0, 3.0])
    assert _schur_regularization(M, 3) == 1e-14 * np.trace(M) / 3
    # m == 0 (fully presolved constraint set)
    assert _schur_regularization(np.zeros((0, 0)), 0) == 0.0
    # nan / zero / negative trace fall back to a positive jitter
    bad = np.diag([np.nan, 1.0])
    assert _schur_regularization(bad, 2) > 0.0
    assert np.isfinite(_schur_regularization(bad, 2))
    assert _schur_regularization(np.zeros((2, 2)), 2) > 0.0
    assert _schur_regularization(np.diag([-1.0, -2.0]), 2) > 0.0


def test_smat_batch_matches_scalar_smat():
    from repro.sdp import smat, smat_batch, svec

    rng = np.random.default_rng(7)
    n = 5
    mats = []
    for _ in range(4):
        A = rng.normal(size=(n, n))
        mats.append(0.5 * (A + A.T))
    vecs = np.stack([svec(A) for A in mats])
    out = smat_batch(vecs, n)
    assert out.shape == (4, n, n)
    for k, A in enumerate(mats):
        assert np.array_equal(out[k], smat(vecs[k], n))


def test_compose_block_diagonal_round_trip():
    from repro.sdp import compose_block_diagonal

    probs = [
        _random_feasible_sdp(3, 4, 30),
        _random_feasible_sdp(4, 6, 31),
    ]
    composed, comp = compose_block_diagonal(probs)
    assert comp.n_groups == 2
    assert composed.block_dims == (3, 4)
    assert composed.n_constraints == 10
    subs = comp.subproblems(composed)
    for orig, sub in zip(probs, subs):
        assert np.array_equal(
            orig.constraint_matrix(), sub.constraint_matrix()
        )
        assert np.array_equal(orig.rhs(), sub.rhs())
        assert_sdp_results_identical(solve_sdp(orig), solve_sdp(sub))


def test_composed_solve_matches_independent_solves():
    from repro.sdp import compose_block_diagonal

    probs = [
        _random_feasible_sdp(3, 4, 40),
        _random_feasible_sdp(4, 5, 41),
    ]
    composed, comp = compose_block_diagonal(probs)
    res = solve_sdp(composed)
    assert res.status == SDPStatus.OPTIMAL
    singles = [solve_sdp(p) for p in probs]
    # block-diagonal coupling only via the barrier: objectives agree to
    # solver tolerance, not bitwise
    total = sum(s.primal_objective for s in singles)
    assert res.primal_objective == pytest.approx(
        total, rel=1e-5, abs=1e-5 * (1 + abs(total))
    )
    for sl, s in zip(comp.split_blocks(res.X), singles):
        assert len(sl) == len(s.X)
