"""Tests for the interior-point SDP solver on problems with known answers."""

import numpy as np
import pytest

from repro.sdp import (
    InteriorPointOptions,
    SDPProblem,
    SDPStatus,
    solve_sdp,
)


def unit(n, i, j):
    """Symmetric unit matrix E_ij + E_ji (or E_ii)."""
    E = np.zeros((n, n))
    E[i, j] += 0.5
    E[j, i] += 0.5
    if i == j:
        E[i, i] = 1.0
    return E


# ----------------------------------------------------------------------
# basic problems
# ----------------------------------------------------------------------
def test_min_trace_with_fixed_entry():
    # min tr(X) s.t. X_11 = 2, X 2x2 PSD  ->  X = diag(2, 0), value 2
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(2.0, abs=1e-5)
    assert res.X[0][0, 0] == pytest.approx(2.0, abs=1e-5)


def test_min_eigenvalue_formulation():
    # min <A, X> s.t. tr X = 1, X PSD  ->  lambda_min(A)
    rng = np.random.default_rng(5)
    A = rng.normal(size=(4, 4))
    A = 0.5 * (A + A.T)
    prob = SDPProblem([4])
    prob.set_objective([A])
    prob.add_constraint([np.eye(4)], 1.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    lam_min = np.linalg.eigvalsh(A)[0]
    assert res.primal_objective == pytest.approx(lam_min, abs=1e-5)


def test_two_blocks():
    # min tr(X1) + tr(X2) with X1_11 = 1, X2_22 = 3
    prob = SDPProblem([2, 3])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0), None], 1.0)
    prob.add_constraint([None, unit(3, 1, 1)], 3.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(4.0, abs=1e-5)


def test_feasibility_recovers_psd_completion():
    # X_12 = 1 with min trace => X = [[1,1],[1,1]] (rank-1, trace 2)
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 1)], 1.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.primal_objective == pytest.approx(2.0, abs=1e-4)
    assert np.linalg.eigvalsh(res.X[0])[0] >= -1e-7


def test_primal_infeasible_detected():
    # X_11 = -1 impossible for PSD X
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], -1.0)
    res = solve_sdp(prob, InteriorPointOptions(max_iterations=200))
    assert res.status in (
        SDPStatus.PRIMAL_INFEASIBLE,
        SDPStatus.MAX_ITERATIONS,
        SDPStatus.NUMERICAL_ERROR,
    )
    assert not res.feasible


def test_inconsistent_constraints_detected():
    prob = SDPProblem([2])
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    res = solve_sdp(prob)
    assert res.status == SDPStatus.INCONSISTENT


def test_redundant_constraints_presolved():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    prob.add_constraint([unit(2, 0, 0)], 1.0)  # duplicate
    prob.add_constraint([2.0 * unit(2, 0, 0)], 2.0)  # scaled duplicate
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    assert res.X[0][0, 0] == pytest.approx(1.0, abs=1e-5)
    assert res.y is not None and res.y.shape == (3,)


def test_no_constraints():
    prob = SDPProblem([3])
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    np.testing.assert_allclose(res.X[0], np.zeros((3, 3)))


# ----------------------------------------------------------------------
# randomized problems with a constructed KKT-optimal pair
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,m,seed", [(3, 4, 0), (5, 8, 1), (6, 10, 2), (8, 12, 3)])
def test_random_sdp_with_known_optimum(n, m, seed):
    rng = np.random.default_rng(seed)
    # strictly complementary optimal pair: X* = U diag(p, 0) U^T, Z* = U diag(0, q) U^T
    U, _ = np.linalg.qr(rng.normal(size=(n, n)))
    r = n // 2
    p = rng.uniform(0.5, 2.0, size=r)
    q = rng.uniform(0.5, 2.0, size=n - r)
    X_star = U @ np.diag(np.concatenate([p, np.zeros(n - r)])) @ U.T
    Z_star = U @ np.diag(np.concatenate([np.zeros(r), q])) @ U.T
    y_star = rng.normal(size=m)
    A_mats = []
    for _ in range(m):
        Ai = rng.normal(size=(n, n))
        A_mats.append(0.5 * (Ai + Ai.T))
    C = Z_star + sum(y_star[i] * A_mats[i] for i in range(m))
    prob = SDPProblem([n])
    prob.set_objective([C])
    for Ai in A_mats:
        prob.add_constraint([Ai], float(np.sum(Ai * X_star)))
    res = solve_sdp(prob)
    assert res.status == SDPStatus.OPTIMAL
    expected = float(np.sum(C * X_star))
    assert res.primal_objective == pytest.approx(expected, abs=1e-4 * (1 + abs(expected)))
    assert res.dual_objective == pytest.approx(expected, abs=1e-4 * (1 + abs(expected)))


def test_result_diagnostics():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 1.0)
    res = solve_sdp(prob)
    eigs = res.min_eigenvalues()
    assert len(eigs) == 1
    assert eigs[0] >= -1e-8
    assert res.gap < 1e-6
    assert res.iterations > 0


# ----------------------------------------------------------------------
# problem container validation
# ----------------------------------------------------------------------
def test_problem_validation():
    with pytest.raises(ValueError):
        SDPProblem([])
    with pytest.raises(ValueError):
        SDPProblem([0])
    prob = SDPProblem([2])
    with pytest.raises(ValueError):
        prob.add_constraint([np.zeros((3, 3))], 0.0)
    with pytest.raises(ValueError):
        prob.add_constraint([np.zeros((2, 2)), np.zeros((2, 2))], 0.0)
    with pytest.raises(ValueError):
        prob.set_objective([np.zeros((3, 3))])
    with pytest.raises(ValueError):
        prob.add_constraint_svec([np.zeros(5)], 0.0)


def test_constraint_matrix_and_split():
    prob = SDPProblem([2, 2])
    prob.add_constraint([unit(2, 0, 0), unit(2, 1, 1)], 1.0)
    mat = prob.constraint_matrix()
    assert mat.shape == (1, 6)
    parts = prob.split_svec(mat[0])
    assert len(parts) == 2 and parts[0].shape == (3,)
