"""Differential oracles: SOS vs interval verification and Tape vs naive
backward must agree; disagreements must be detected and dumped."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box
from repro.soundness import oracles
from repro.verifier.interval_verifier import IntervalVerifierConfig

FAST_INTERVAL = IntervalVerifierConfig(
    max_boxes_per_check=10_000, time_limit_per_check=20.0
)


def decay_problem():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-1.0 * x, -1.0 * y])
    return CCDS(
        system,
        theta=Box.cube(2, -0.3, 0.3, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box.cube(2, 1.5, 2.0, name="xi"),
        name="decay",
    )


def decay_barrier():
    x, y = Polynomial.variables(2)
    return Polynomial.constant(2, 1.0) - 0.5 * (x * x + y * y)


# ----------------------------------------------------------------------
# SOS vs interval
# ----------------------------------------------------------------------
def test_verifiers_agree_on_valid_barrier():
    cmp = oracles.compare_verifiers(
        decay_problem(), decay_barrier(),
        interval_config=FAST_INTERVAL, dump=False,
    )
    assert cmp.sos_ok
    assert cmp.ok
    assert cmp.interval_outcomes.get("init") == "PROVED"


def test_sos_rejection_is_not_a_disagreement():
    # -B is negative on Theta: both verifiers reject, which the oracle
    # must NOT flag (it is one-sided by design)
    cmp = oracles.compare_verifiers(
        decay_problem(), -1.0 * decay_barrier(),
        interval_config=FAST_INTERVAL, dump=False,
    )
    assert not cmp.sos_ok
    assert cmp.ok  # no disagreement recorded


def test_controlled_system_comparison():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.single_input(
        [-1.0 * x, -1.0 * y], [0.0, 1.0]
    )
    prob = CCDS(
        system,
        theta=Box.cube(2, -0.3, 0.3, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box.cube(2, 1.5, 2.0, name="xi"),
        name="decay-controlled",
    )
    h = [Polynomial.zero(2)]
    cmp = oracles.compare_verifiers(
        prob, decay_barrier(), controller_polys=h, sigma_star=[0.05],
        interval_config=FAST_INTERVAL, dump=False,
    )
    assert cmp.sos_ok
    assert cmp.ok


# ----------------------------------------------------------------------
# Tape vs naive backward
# ----------------------------------------------------------------------
def _leaves(seed=0, n_in=3, n_hidden=4):
    rng = np.random.default_rng(seed)
    W = Tensor(rng.normal(size=(n_in, n_hidden)), requires_grad=True)
    b = Tensor(rng.normal(size=(1, n_hidden)), requires_grad=True)
    X = Tensor(rng.normal(size=(6, n_in)))
    return W, b, X


@pytest.mark.parametrize("act", ["tanh", "sigmoid", "relu", "exp"])
def test_tape_matches_naive_across_activations(act):
    W, b, X = _leaves()

    def build():
        h = X @ W + b
        h = getattr(h, act)()
        return (h ** 2.0).mean()

    assert oracles.compare_tape_gradients(build, [W, b], dump=False) == []


def test_tape_matches_naive_deep_chain():
    W, b, X = _leaves(seed=3)

    def build():
        h = (X @ W + b).tanh()
        return ((h * h).sum() / 7.0 + h.abs().mean()) ** 2.0

    assert oracles.compare_tape_gradients(build, [W, b], dump=False) == []


def test_gradient_disagreement_is_detected(tmp_path, monkeypatch):
    from repro.soundness import strategies as st

    monkeypatch.setenv(st.DUMP_DIR_ENV, str(tmp_path))
    W, b, X = _leaves(seed=1)
    calls = {"n": 0}

    def drifting_build():
        # a non-deterministic forward pass: the second graph differs, so
        # tape gradients cannot match the reference
        calls["n"] += 1
        scale = float(calls["n"])
        return ((X @ W + b) * scale).sum()

    dis = oracles.compare_tape_gradients(
        drifting_build, [W, b], dump=True, dump_tag="drift"
    )
    assert dis
    assert dis[0].oracle == "tape_vs_naive"
    assert dis[0].dump_path and dis[0].dump_path.startswith(str(tmp_path))


def test_polynomial_gradient_matches_numeric():
    # anchor the autodiff oracle itself against central differences once
    W = Tensor(np.array([[0.5], [-1.25]]), requires_grad=True)
    X = Tensor(np.array([[1.0, 2.0], [0.5, -1.0]]))

    def loss_value(w):
        return float(np.sum((X.data @ w) ** 3))

    loss = ((X @ W) ** 3.0).sum()
    loss.backward()
    eps = 1e-6
    for i in range(2):
        w_hi = W.data.copy()
        w_lo = W.data.copy()
        w_hi[i, 0] += eps
        w_lo[i, 0] -= eps
        numeric = (loss_value(w_hi) - loss_value(w_lo)) / (2 * eps)
        assert W.grad[i, 0] == pytest.approx(numeric, rel=1e-5)
