"""Tests for coefficient norms and box range bounds."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial, abs_bound_on_box, l1_norm, linf_norm
from repro.poly.bounds import interval_eval
from repro.poly.monomials import monomials_upto


def test_norms():
    p = Polynomial(2, {(1, 0): 3.0, (0, 1): -4.0})
    assert l1_norm(p) == 7.0
    assert linf_norm(p) == 4.0
    assert l1_norm(Polynomial.zero(2)) == 0.0
    assert linf_norm(Polynomial.zero(2)) == 0.0


def test_abs_bound_simple():
    # |2x^2 - y| <= 2*4 + 2 = 10 on [-2,2]^2
    p = Polynomial(2, {(2, 0): 2.0, (0, 1): -1.0})
    assert abs_bound_on_box(p, [-2, -2], [2, 2]) == pytest.approx(10.0)


def test_abs_bound_shape_error():
    with pytest.raises(ValueError):
        abs_bound_on_box(Polynomial.one(2), [0], [1])
    with pytest.raises(ValueError):
        abs_bound_on_box(Polynomial.one(2), [1, 1], [0, 0])


def test_interval_eval_even_power_through_zero():
    # x^2 on [-1, 2] has range [0, 4]
    p = Polynomial(1, {(2,): 1.0})
    lo, hi = interval_eval(p, [-1], [2])
    assert lo == pytest.approx(0.0)
    assert hi == pytest.approx(4.0)


def test_interval_eval_negative_coeff():
    p = Polynomial(1, {(1,): -1.0})
    lo, hi = interval_eval(p, [-1], [2])
    assert (lo, hi) == (-2.0, 1.0)


def small_polys():
    basis = list(monomials_upto(2, 3))
    coeff = st.floats(-3, 3, allow_nan=False, allow_infinity=False)
    return st.dictionaries(st.sampled_from(basis), coeff, max_size=5).map(
        lambda d: Polynomial(2, d)
    )


@settings(max_examples=60, deadline=None)
@given(small_polys())
def test_bounds_are_sound_on_samples(p):
    lo_box, hi_box = np.array([-1.5, -0.5]), np.array([0.5, 2.0])
    rng = np.random.default_rng(42)
    pts = rng.uniform(lo_box, hi_box, size=(200, 2))
    vals = p(pts)
    bound = abs_bound_on_box(p, lo_box, hi_box)
    assert np.all(np.abs(vals) <= bound + 1e-9)
    ilo, ihi = interval_eval(p, lo_box, hi_box)
    assert np.all(vals >= ilo - 1e-9)
    assert np.all(vals <= ihi + 1e-9)
