"""Tests for symmetric vectorization utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sdp import smat, svec, svec_dim
from repro.sdp.svec import sym


def random_sym(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return 0.5 * (A + A.T)


def test_svec_dim():
    assert svec_dim(1) == 1
    assert svec_dim(4) == 10


def test_svec_smat_roundtrip():
    for n in (1, 2, 5, 8):
        A = random_sym(n, seed=n)
        np.testing.assert_allclose(smat(svec(A), n), A, atol=1e-12)


def test_svec_inner_product_isometry():
    A = random_sym(4, seed=1)
    B = random_sym(4, seed=2)
    assert svec(A) @ svec(B) == pytest.approx(np.sum(A * B))


def test_svec_batch():
    mats = np.stack([random_sym(3, s) for s in range(5)])
    out = svec(mats)
    assert out.shape == (5, svec_dim(3))
    np.testing.assert_allclose(out[2], svec(mats[2]))


def test_svec_rejects_nonsquare():
    with pytest.raises(ValueError):
        svec(np.zeros((2, 3)))


def test_smat_rejects_bad_length():
    with pytest.raises(ValueError):
        smat(np.zeros(4), 3)


def test_sym():
    A = np.array([[1.0, 2.0], [0.0, 3.0]])
    S = sym(A)
    np.testing.assert_allclose(S, S.T)
    np.testing.assert_allclose(S, [[1.0, 1.0], [1.0, 3.0]])


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6))
def test_isometry_property(n):
    rng = np.random.default_rng(n)
    A = sym(rng.normal(size=(n, n)))
    assert np.linalg.norm(svec(A)) == pytest.approx(np.linalg.norm(A))
