"""Tests for the stdlib sampling profiler (repro.telemetry.profiler)."""

import json
import re
import time

import numpy as np
import pytest

from repro.telemetry.profiler import (
    DEFAULT_INTERVAL_S,
    SamplingProfiler,
    phase_of,
)


def _spin(seconds):
    """Burn CPU under a recognizable function name."""
    t0 = time.perf_counter()
    x = 0
    while time.perf_counter() - t0 < seconds:
        x += 1
    return x


# ----------------------------------------------------------------------
# phase mapping
# ----------------------------------------------------------------------
def test_phase_of_module_prefixes():
    assert phase_of("repro.sdp.ipm:solve_sdp") == "verification"
    assert phase_of("repro.sdp:anything") == "verification"
    assert phase_of("repro.autodiff.tape:_f_matmul") == "learning"
    assert phase_of("repro.learner.trainer:step") == "learning"
    assert phase_of("repro.cegis.counterexamples:search") == "counterexample"
    assert phase_of("repro.controllers.inclusion:enclose") == "inclusion"
    assert phase_of("repro.cegis.snbc:run") == "other"
    assert phase_of("numpy.linalg:cholesky") == "other"
    # prefix match must respect module boundaries
    assert phase_of("repro.sdpextra:foo") == "other"


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
def test_profiler_samples_busy_thread():
    with SamplingProfiler(interval=0.002) as prof:
        _spin(0.15)
    assert prof.n_samples >= 10
    assert prof.wall_seconds >= 0.15
    # the busy loop must dominate the leaves
    table = prof.function_table()
    assert table
    top = table[0]
    assert "_spin" in top["frame"]
    assert top["self"] > 0.5 * prof.n_samples


def test_profiler_collapsed_stack_format():
    with SamplingProfiler(interval=0.002) as prof:
        _spin(0.1)
    lines = prof.collapsed()
    assert lines
    pat = re.compile(r"^\S+(;\S+)* \d+$")
    for line in lines:
        assert pat.match(line), line
        stack = line.rsplit(" ", 1)[0].split(";")
        assert all(":" in frame for frame in stack)
    assert lines == sorted(lines)  # stable output
    # collapsed counts must add back up to the sample total
    assert sum(int(l.rsplit(" ", 1)[1]) for l in lines) == prof.n_samples


def test_profiler_self_total_consistency():
    with SamplingProfiler(interval=0.002) as prof:
        _spin(0.1)
    table = prof.function_table()
    for row in table:
        assert 0 <= row["self"] <= row["total"] <= prof.n_samples
    # every sample has exactly one leaf
    assert sum(r["self"] for r in table) == prof.n_samples


def test_profiler_phase_table_shares_sum_to_one():
    with SamplingProfiler(interval=0.002) as prof:
        _spin(0.1)
    phases = prof.phase_table()
    assert phases
    assert sum(p["samples"] for p in phases.values()) == prof.n_samples
    assert sum(p["share"] for p in phases.values()) == pytest.approx(1.0, abs=1e-3)


def test_profiler_restart_forbidden_while_running():
    prof = SamplingProfiler(interval=0.01)
    prof.start()
    try:
        with pytest.raises(RuntimeError):
            prof.start()
    finally:
        prof.stop()
    prof.stop()  # idempotent


def test_profiler_write_artifacts(tmp_path):
    with SamplingProfiler(interval=0.002) as prof:
        _spin(0.05)
    # a trailing .jsonl is stripped so artifacts sit next to the trace
    paths = prof.write(str(tmp_path / "run.jsonl"))
    assert paths["stacks"] == str(tmp_path / "run.stacks.txt")
    assert paths["profile"] == str(tmp_path / "run.profile.json")
    doc = json.load(open(paths["profile"]))
    assert doc["kind"] == "sampling_profile"
    assert doc["schema_version"] == 1
    assert doc["n_samples"] == prof.n_samples
    assert set(doc["phases"]) <= {
        "learning", "verification", "counterexample", "inclusion", "other"
    }
    stacks = open(paths["stacks"]).read().splitlines()
    assert stacks == prof.collapsed()


def test_profiler_idle_thread_yields_no_crash():
    prof = SamplingProfiler(interval=0.005, target_ident=-1)  # no such thread
    prof.start()
    time.sleep(0.03)
    prof.stop()
    assert prof.n_samples == 0
    assert prof.collapsed() == []
    assert prof.function_table() == []
    assert prof.seconds_per_sample == 0.0


# ----------------------------------------------------------------------
# overhead / identity
# ----------------------------------------------------------------------
def _workload():
    """A numpy-heavy loop shaped like the learner hot path."""
    rng = np.random.default_rng(0)
    A = rng.normal(size=(60, 60))
    acc = np.zeros((60, 60))
    for _ in range(120):
        acc = acc + A @ A.T
        np.linalg.cholesky(acc / np.trace(acc) * 60 + np.eye(60))
    return float(np.trace(acc))


def test_profiler_overhead_under_budget():
    _workload()  # warm numpy / caches
    t0 = time.perf_counter()
    base_val = _workload()
    baseline = time.perf_counter() - t0

    t0 = time.perf_counter()
    with SamplingProfiler(interval=DEFAULT_INTERVAL_S):
        prof_val = _workload()
    profiled = time.perf_counter() - t0

    assert prof_val == base_val  # sampling never perturbs the computation
    # ISSUE budget is <3%; allow generous CI jitter headroom on top of a
    # short workload — the C1 smoke run in CI enforces the real budget
    assert profiled <= baseline * 1.5 + 0.05


def test_profiled_snbc_run_is_bitwise_identical_and_cheap():
    """Attaching the profiler must not change SNBC results (C1 smoke).

    This is the PR's overhead guard: the real budget is <3% end-to-end,
    but a ~2s run on shared CI hardware sees more scheduler noise than
    that, so the wall-clock assertion keeps generous headroom — the
    bitwise identity checks are the hard part.
    """
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC, SNBCConfig

    def run(profile):
        spec = get_benchmark("C1")
        snbc = SNBC(
            spec.make_problem(),
            controller=spec.make_controller(),
            config=SNBCConfig(),
        )
        t0 = time.perf_counter()
        if not profile:
            result = snbc.run()
        else:
            with SamplingProfiler():
                result = snbc.run()
        return result, time.perf_counter() - t0

    run(False)  # warm caches so both timed runs see the same state
    plain, t_plain = run(False)
    profiled, t_profiled = run(True)

    assert profiled.success == plain.success
    assert profiled.iterations == plain.iterations
    assert profiled.barrier.coeffs == plain.barrier.coeffs
    assert t_profiled <= t_plain * 1.3 + 0.5
