"""The property-based generator library: seeded determinism, shrinking,
failure dumps, and validity of every domain generator."""

import json
import random

import numpy as np
import pytest

from repro.poly import Polynomial
from repro.soundness import strategies as st


# ----------------------------------------------------------------------
# core machinery
# ----------------------------------------------------------------------
def test_generation_is_deterministic_per_seed():
    strat = st.polynomials(2)
    a = [strat.generate(random.Random(7)) for _ in range(5)]
    b = [strat.generate(random.Random(7)) for _ in range(5)]
    assert [p.coeffs for p in a] == [q.coeffs for q in b]
    c = strat.generate(random.Random(8))
    assert any(p.coeffs != c.coeffs for p in a)


def test_integers_shrink_toward_lo():
    strat = st.integers(3, 100)
    for cand in strat.simplify(50):
        assert 3 <= cand < 50


def test_run_property_shrinks_to_boundary():
    def prop(v):
        assert v < 42, "too big"

    with pytest.raises(st.PropertyFailure) as exc_info:
        st.run_property(
            "boundary", st.integers(0, 1000), prop,
            n_examples=200, seed=5, dump=False,
        )
    failure = exc_info.value
    assert failure.minimized == 42  # greedy shrink reaches the exact edge
    assert failure.seed == 5
    assert "too big" in failure.cause


def test_run_property_passes_clean_suite():
    ran = st.run_property(
        "clean", st.floats(-1.0, 1.0),
        lambda v: None, n_examples=30, seed=0, dump=False,
    )
    assert ran == 30


def test_run_property_dumps_minimized_repro(tmp_path, monkeypatch):
    monkeypatch.setenv(st.DUMP_DIR_ENV, str(tmp_path))

    def prop(v):
        assert v <= 10

    with pytest.raises(st.PropertyFailure) as exc_info:
        st.run_property("dumped", st.integers(0, 500), prop,
                        n_examples=100, seed=1)
    path = exc_info.value.dump_path
    assert path and path.startswith(str(tmp_path))
    doc = json.loads(open(path).read())
    assert doc["property"] == "dumped"
    assert doc["minimized"] == 11
    assert doc["replay"] == f"{st.SEED_ENV}=1"


def test_non_assertion_errors_propagate():
    def prop(v):
        raise RuntimeError("harness bug")

    with pytest.raises(RuntimeError, match="harness bug"):
        st.run_property("boom", st.integers(0, 1), prop,
                        n_examples=1, seed=0, dump=False)


def test_resolve_seed_reads_env(monkeypatch):
    monkeypatch.delenv(st.SEED_ENV, raising=False)
    assert st.resolve_seed(9) == 9
    monkeypatch.setenv(st.SEED_ENV, "1234")
    assert st.resolve_seed(9) == 1234


def test_fuzz_examples_scales_under_opt_in(monkeypatch):
    monkeypatch.delenv(st.FUZZ_LONG_ENV, raising=False)
    assert st.fuzz_examples(10) == 10
    monkeypatch.setenv(st.FUZZ_LONG_ENV, "1")
    assert st.fuzz_examples(10) == 200


def test_greedy_shrink_skips_erroring_candidates():
    def simplify(v):
        yield "not-an-int"  # predicate raises on this one
        if v > 0:
            yield v - 1

    out = st.greedy_shrink(
        3, simplify, lambda v: v + 0 >= 0, max_steps=10
    )
    assert out == 0


# ----------------------------------------------------------------------
# domain generators stay valid
# ----------------------------------------------------------------------
def test_polynomial_strategy_covers_edges_and_shrinks():
    strat = st.polynomials(2, max_degree=3)
    rng = random.Random(0)
    saw_zero = saw_const = False
    for _ in range(200):
        p = strat.generate(rng)
        assert isinstance(p, Polynomial) and p.n_vars == 2
        assert p.degree <= 3
        if p.is_zero:
            saw_zero = True
        elif p.degree == 0:
            saw_const = True
    assert saw_zero and saw_const  # edge cases are generated on purpose
    p = strat.generate(random.Random(1))
    for simpler in strat.simplify(p):
        assert simpler.n_vars == 2


def test_psd_matrices_are_psd():
    strat = st.psd_matrices(4)
    rng = random.Random(0)
    for _ in range(20):
        Q = np.array(strat.generate(rng))
        assert np.all(np.linalg.eigvalsh(0.5 * (Q + Q.T)) > 0)


def test_sos_polynomials_are_nonnegative():
    strat = st.sos_polynomials(2, half_degree=1)
    rng = random.Random(3)
    pts = np.random.default_rng(0).uniform(-5, 5, size=(500, 2))
    for _ in range(20):
        p = strat.generate(rng)
        assert np.all(p(pts) >= -1e-9)


def test_boxes_are_nonempty():
    strat = st.boxes(3)
    rng = random.Random(0)
    for _ in range(50):
        lo, hi = strat.generate(rng)
        assert len(lo) == len(hi) == 3
        assert all(a < b for a, b in zip(lo, hi))


def test_semialgebraic_sets_sample_inside():
    strat = st.semialgebraic_sets(2)
    rng = random.Random(0)
    np_rng = np.random.default_rng(0)
    for _ in range(10):
        region = strat.generate(rng)
        pts = region.sample(50, rng=np_rng)
        assert np.all(region.contains(pts, tol=1e-9))


def test_sdp_problems_carry_feasible_witness():
    strat = st.sdp_problems()
    rng = random.Random(0)
    from repro.sdp import solve_sdp

    for _ in range(10):
        case = strat.generate(rng)
        sdp, X0 = case["sdp"], case["witness"]
        assert np.all(np.linalg.eigvalsh(X0) > 0)  # witness is interior
        res = solve_sdp(sdp)
        assert res.status.name in ("OPTIMAL", "FEASIBLE")


def test_ccds_instances_are_well_formed():
    strat = st.ccds_instances()
    rng = random.Random(0)
    np_rng = np.random.default_rng(0)
    for _ in range(20):
        prob = strat.generate(rng)
        n = prob.n_vars
        assert prob.system.degree() <= 3
        assert len(prob.system.f0) == n
        # Theta and Xi are disjoint by construction
        theta_pts = prob.theta.sample(100, rng=np_rng)
        assert not np.any(prob.xi.contains(theta_pts, tol=0.0))
        # both live inside the domain box
        assert np.all(prob.psi.contains(theta_pts, tol=1e-9))
