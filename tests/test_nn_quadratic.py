"""Tests for the quadratic (cross-product) and square networks."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Adam, QuadraticNetwork, SquareNetwork
from repro.poly import Polynomial, lie_derivative


@pytest.mark.parametrize("cls", [QuadraticNetwork, SquareNetwork])
def test_network_output_matches_polynomial(cls):
    rng = np.random.default_rng(0)
    net = cls([2, 4], rng=rng)
    p = net.to_polynomial()
    pts = rng.uniform(-1.5, 1.5, size=(30, 2))
    np.testing.assert_allclose(net.predict(pts).reshape(-1), p(pts), atol=1e-9)


@pytest.mark.parametrize("cls", [QuadraticNetwork, SquareNetwork])
def test_two_layer_degree_four(cls):
    rng = np.random.default_rng(1)
    net = cls([2, 3, 3], rng=rng)
    assert net.output_degree == 4
    p = net.to_polynomial()
    assert p.degree <= 4
    pts = rng.uniform(-1, 1, size=(10, 2))
    np.testing.assert_allclose(net.predict(pts).reshape(-1), p(pts), atol=1e-8)


def test_quadratic_degree_two_exact():
    net = QuadraticNetwork([3, 5], rng=np.random.default_rng(2))
    assert net.output_degree == 2
    assert net.to_polynomial().degree <= 2


@pytest.mark.parametrize("cls", [QuadraticNetwork, SquareNetwork])
def test_tangent_forward_matches_lie_derivative(cls):
    rng = np.random.default_rng(3)
    net = cls([2, 4], rng=rng)
    p = net.to_polynomial()
    x, y = Polynomial.variables(2)
    field = [y, -1.0 * x + 0.3 * x * x]
    lfb = lie_derivative(p, field)
    pts = rng.uniform(-1, 1, size=(20, 2))
    f_vals = np.stack([field[0](pts), field[1](pts)], axis=1)
    B_t, L_t = net.forward_with_tangent(Tensor(pts), Tensor(f_vals))
    np.testing.assert_allclose(B_t.numpy(), p(pts), atol=1e-9)
    np.testing.assert_allclose(L_t.numpy(), lfb(pts), atol=1e-8)


def test_gradient_matches_symbolic():
    rng = np.random.default_rng(4)
    net = QuadraticNetwork([3, 4], rng=rng)
    p = net.to_polynomial()
    grads = p.grad()
    pts = rng.uniform(-1, 1, size=(15, 3))
    G = net.gradient(pts)
    expected = np.stack([g(pts) for g in grads], axis=1)
    np.testing.assert_allclose(G, expected, atol=1e-8)


def test_gradient_two_hidden_layers():
    rng = np.random.default_rng(5)
    net = QuadraticNetwork([2, 3, 2], rng=rng)
    p = net.to_polynomial()
    pts = rng.uniform(-1, 1, size=(8, 2))
    expected = np.stack([g(pts) for g in p.grad()], axis=1)
    np.testing.assert_allclose(net.gradient(pts), expected, atol=1e-7)


def test_tangent_is_trainable():
    """Backprop through forward_with_tangent reaches all parameters."""
    rng = np.random.default_rng(6)
    net = QuadraticNetwork([2, 3], rng=rng)
    pts = rng.uniform(-1, 1, size=(16, 2))
    f_vals = rng.normal(size=(16, 2))
    _, L_t = net.forward_with_tangent(Tensor(pts), Tensor(f_vals))
    (L_t * L_t).mean().backward()
    touched = [p for p in net.parameters() if p.grad is not None]
    # b1/b2 influence the tangent through the products, W1/W2/W_out always
    assert len(touched) >= 5


def test_quadratic_fits_indefinite_quadratic_better_than_square():
    """Cross-product nets can represent sign-indefinite forms; square
    networks of one layer are sums of squares of affine functions and
    cannot fit x*y well (paper's motivation)."""
    rng = np.random.default_rng(7)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = X[:, 0] * X[:, 1]  # indefinite

    def fit(net, steps=400):
        opt = Adam(net.parameters(), lr=0.02)
        for _ in range(steps):
            opt.zero_grad()
            err = net(Tensor(X)) - Tensor(y)
            loss = (err * err).mean()
            loss.backward()
            opt.step()
        return float(((net.predict(X).reshape(-1) - y) ** 2).mean())

    mse_quad = fit(QuadraticNetwork([2, 4], output_bias=False, rng=np.random.default_rng(8)))
    assert mse_quad < 1e-3


def test_no_output_bias_means_no_constant_freedom():
    net = QuadraticNetwork([2, 3], output_bias=False, rng=np.random.default_rng(9))
    assert net.b_out is None
    # still evaluates and expands
    p = net.to_polynomial()
    assert isinstance(p, Polynomial)


def test_validation_errors():
    with pytest.raises(ValueError):
        QuadraticNetwork([2])
    with pytest.raises(ValueError):
        SquareNetwork([3])


def test_repr():
    net = QuadraticNetwork([3, 5], rng=np.random.default_rng(10))
    assert "3-5-1" in repr(net)
    sq = SquareNetwork([3, 5], rng=np.random.default_rng(11))
    assert "3-5-1" in repr(sq)
