"""Tests for the CEGIS flight recorder (repro.diagnostics)."""

import json
import math

import pytest

from repro.benchmarks import get_benchmark
from repro.cegis import SNBC, SNBCConfig
from repro.diagnostics import (
    audit_certificate,
    bench_entry,
    convergence_summary,
    detect_stall,
    load_audit,
    load_bench,
    write_audit,
    write_bench,
)
from repro.diagnostics.regress import compare_benches, compare_perf_benches
from repro.diagnostics.regress import main as regress_main
from repro.diagnostics.report import main as report_main
from repro.diagnostics.report import resolve_run
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.sets import Box
from repro.telemetry import InMemorySink, Telemetry


# ----------------------------------------------------------------------
# shared runs (module-scoped: real SNBC runs are the expensive part)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def c1_run():
    """The Table-1 C1 instance: succeeds after >= 2 CEGIS rounds, so the
    lineage has counterexamples that the final certificate resolves."""
    spec = get_benchmark("C1")
    problem = spec.make_problem()
    controller = spec.make_controller()
    sink = InMemorySink()
    result = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("smoke"),
        telemetry=Telemetry(sink),
    ).run()
    return result, problem, sink


@pytest.fixture(scope="module")
def infeasible_run():
    """Unsafe set inside the initial set: no BC exists, every round
    produces counterexamples, and the loop eventually stalls."""
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    problem = CCDS(
        sys2,
        theta=Box.cube(2, -1.0, 1.0),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, -0.2, 0.2),
    )
    result = SNBC(
        problem,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=50, seed=0),
        config=SNBCConfig(
            max_iterations=6, n_samples=100, seed=0, stall_window=2
        ),
    ).run()
    return result, problem


# ----------------------------------------------------------------------
# counterexample lineage
# ----------------------------------------------------------------------
def test_lineage_resolved_on_success(c1_run):
    result, _, _ = c1_run
    assert result.success
    assert result.iterations >= 2
    assert result.counterexamples, "C1 must need at least one retraining round"
    for rec in result.counterexamples:
        assert 1 <= rec.iteration < result.iterations
        assert rec.condition in ("init", "unsafe", "lie")
        assert rec.paper_condition in (13, 14, 15)
        assert rec.worst_violation > 0
        assert rec.n_points >= 1
        # the certified barrier must satisfy every recorded counterexample
        assert rec.satisfied_by_final is True
        assert rec.final_violation is not None
        assert rec.final_violation <= 0
    assert result.resolved_counterexamples() == len(result.counterexamples)


def test_lineage_spans_iterations_on_failure(infeasible_run):
    result, _ = infeasible_run
    assert not result.success
    origin_iters = {rec.iteration for rec in result.counterexamples}
    assert len(origin_iters) >= 2  # lineage across multiple CEGIS rounds
    # finalization ran even though the run failed (against the last candidate)
    assert all(
        rec.satisfied_by_final is not None for rec in result.counterexamples
    )
    # the unsafe-inside-init conflict can never be fully resolved
    assert any(not rec.satisfied_by_final for rec in result.counterexamples)


def test_iteration_records_carry_loss_breakdown(c1_run):
    result, _, _ = c1_run
    for rec in result.history:
        assert math.isfinite(rec.loss_init)
        assert math.isfinite(rec.loss_unsafe)
        assert math.isfinite(rec.loss_domain)
        assert len(rec.dataset_sizes) == 3
        assert all(s > 0 for s in rec.dataset_sizes)
    # counterexamples are appended to the training sets: sizes never shrink
    sizes = [sum(rec.dataset_sizes) for rec in result.history]
    assert sizes == sorted(sizes)
    d = result.history[0].to_dict()
    assert d["iteration"] == 1
    assert isinstance(d["dataset_sizes"], list)


# ----------------------------------------------------------------------
# stall detection
# ----------------------------------------------------------------------
def test_detect_stall_unit():
    assert detect_stall([3.0, 2.0, 1.0, 0.5]) is None
    assert detect_stall([3.0, 1.0, 1.0, 1.2, 1.1], window=3) == 3
    assert detect_stall([1.0, 1.0], window=2) == 1
    # non-finite entries break the chain
    assert detect_stall([1.0, float("nan"), 1.0, 1.0], window=3) is None
    assert detect_stall([], window=2) is None
    with pytest.raises(ValueError):
        detect_stall([1.0, 2.0], window=1)


def test_stall_flagged_on_infeasible_run(infeasible_run):
    result, _ = infeasible_run
    assert result.stalled
    assert result.stall_iteration is not None
    assert 1 <= result.stall_iteration <= result.iterations


def test_no_stall_on_quick_success(c1_run):
    result, _, _ = c1_run
    assert not result.stalled
    assert result.stall_iteration is None


# ----------------------------------------------------------------------
# trace events -> convergence summary
# ----------------------------------------------------------------------
def test_trace_events_reconstruct_run(c1_run):
    result, _, sink = c1_run
    summary = convergence_summary(sink.events)
    assert summary["n_iterations"] == result.iterations
    assert summary["converged"] is True
    assert summary["n_counterexamples"] == len(result.counterexamples)
    assert summary["n_resolved"] == len(result.counterexamples)
    assert summary["stall"] is None
    row = summary["iterations"][0]
    assert row["iteration"] == 1
    for key in ("loss", "loss_init", "loss_unsafe", "loss_domain",
                "worst_violation", "dataset_sizes", "verified"):
        assert key in row


# ----------------------------------------------------------------------
# certificate audit
# ----------------------------------------------------------------------
def test_audit_artifact_schema(c1_run, tmp_path):
    result, problem, _ = c1_run
    audit = audit_certificate(result, problem, max_grid_points=512, seed=0)
    assert audit["schema_version"] == 1
    assert audit["kind"] == "certificate_audit"
    assert audit["success"] is True
    assert audit["barrier_degree"] == 2
    assert audit["counterexamples"]["total"] == len(result.counterexamples)
    assert audit["counterexamples"]["resolved"] == len(result.counterexamples)

    names = {c["name"] for c in audit["conditions"]}
    assert any(n == "init" for n in names)
    assert any(n == "unsafe" for n in names)
    assert any(n.startswith("lie") for n in names)
    for c in audit["conditions"]:
        assert c["paper_condition"] in (13, 14, 15)
        assert c["feasible"] and c["validated"]
        assert math.isfinite(c["min_gram_eigenvalue"])
        assert c["residual_bound"] >= 0
        assert c["sdp"]["status"]
        assert c["sdp"]["iterations"] > 0
        assert math.isfinite(c["sdp"]["gap"])

    # independent recheck: a certified barrier holds strictly on the grid
    for name in ("init", "unsafe", "lie"):
        m = audit["grid_margins"][name]
        assert m["margin"] > 0, f"{name} margin not positive"
        assert m["n_points"] > 0
    # C1 carries a nonzero inclusion error: both sign endpoints checked
    assert audit["grid_margins"]["lie"]["n_endpoints"] >= 2

    s = audit["summary"]
    assert s["min_grid_margin"] > 0
    assert math.isfinite(s["min_gram_eigenvalue"])
    assert s["max_sdp_gap"] < 1e-6

    path = str(tmp_path / "c1.audit.json")
    write_audit(path, audit)
    assert load_audit(path) == json.loads(json.dumps(audit, default=str))


def test_audit_of_failed_run_shows_negative_margin(infeasible_run, tmp_path):
    result, problem = infeasible_run
    audit = audit_certificate(result, problem, max_grid_points=256)
    assert audit["success"] is False
    assert audit["stalled"] is True
    # the last candidate cannot separate Theta from a Xi inside it
    assert audit["summary"]["min_grid_margin"] < 0


def test_load_audit_rejects_wrong_schema(tmp_path):
    path = str(tmp_path / "bad.audit.json")
    with open(path, "w") as fh:
        json.dump({"schema_version": 99}, fh)
    with pytest.raises(ValueError):
        load_audit(path)


# ----------------------------------------------------------------------
# BENCH document + regression gate
# ----------------------------------------------------------------------
def _bench_row(outcome="success", iterations=1, t=1.0, margin=0.5):
    return {
        "outcome": outcome,
        "iterations": iterations,
        "stalled": False,
        "d_B": 2,
        "timings": {"T_l": t, "T_c": t / 10, "T_v": t / 2, "T_e": 2 * t,
                    "inclusion": t / 20},
        "audit": {"min_gram_eigenvalue": 1e-9, "max_residual_bound": 1e-8,
                  "max_sdp_gap": 1e-9, "min_grid_margin": margin},
    }


def test_bench_entry_from_result(c1_run):
    result, problem, _ = c1_run
    audit = audit_certificate(result, problem, max_grid_points=256)
    entry = bench_entry(result, audit=audit)
    assert entry["outcome"] == "success"
    assert entry["iterations"] == result.iterations
    assert entry["d_B"] == 2
    assert set(entry["timings"]) == {"T_l", "T_c", "T_v", "T_e", "inclusion"}
    assert entry["timings"]["T_e"] == pytest.approx(
        result.timings.total, abs=1e-5
    )
    assert entry["audit"]["min_grid_margin"] > 0


def test_bench_write_load_roundtrip(tmp_path):
    path = str(tmp_path / "BENCH_table1.json")
    doc = write_bench(path, {"C1": _bench_row()}, "smoke")
    loaded = load_bench(path)
    assert loaded["kind"] == "BENCH_table1"
    assert loaded["schema_version"] == 1
    assert loaded["scale"] == "smoke"
    assert loaded["systems"]["C1"]["outcome"] == "success"
    assert doc["systems"] == loaded["systems"]
    with open(path, "w") as fh:
        json.dump({"kind": "something_else"}, fh)
    with pytest.raises(ValueError):
        load_bench(path)


def test_compare_benches_pure():
    old = {"scale": "smoke", "systems": {"C1": _bench_row(t=1.0)}}
    same = {"scale": "smoke", "systems": {"C1": _bench_row(t=1.0)}}
    assert compare_benches(old, same) == {"regressions": [], "warnings": []}

    slow = {"scale": "smoke", "systems": {"C1": _bench_row(t=3.0)}}
    out = compare_benches(old, slow, max_slowdown=1.3)
    assert any("T_e" in r for r in out["regressions"])
    assert compare_benches(old, slow, ignore_timings=True)["regressions"] == []

    failed = {"scale": "smoke",
              "systems": {"C1": _bench_row(outcome="failure", t=1.0)}}
    out = compare_benches(old, failed)
    assert any("outcome regressed" in r for r in out["regressions"])

    more_iters = {"scale": "smoke",
                  "systems": {"C1": _bench_row(iterations=3, t=1.0)}}
    out = compare_benches(old, more_iters, ignore_timings=True)
    assert any("iterations" in r for r in out["regressions"])
    out = compare_benches(old, more_iters, max_extra_iterations=5,
                          ignore_timings=True)
    assert out["regressions"] == []

    missing = {"scale": "smoke", "systems": {}}
    assert compare_benches(old, missing)["regressions"]
    out = compare_benches(old, missing, allow_missing=True)
    assert out["regressions"] == [] and out["warnings"]

    flipped = {"scale": "paper",
               "systems": {"C1": _bench_row(t=1.0, margin=-0.1)}}
    out = compare_benches(old, flipped, ignore_timings=True)
    assert out["regressions"] == []
    assert any("scale mismatch" in w for w in out["warnings"])
    assert any("flipped sign" in w for w in out["warnings"])


def test_regress_cli_exit_codes(tmp_path, capsys):
    old = str(tmp_path / "old.json")
    write_bench(old, {"C1": _bench_row(t=1.0)}, "smoke")

    assert regress_main([old, old]) == 0
    assert "no regressions" in capsys.readouterr().out

    slow = str(tmp_path / "slow.json")
    write_bench(slow, {"C1": _bench_row(t=3.0)}, "smoke")
    assert regress_main([old, slow, "--max-slowdown", "1.3"]) == 1
    assert "FAIL" in capsys.readouterr().out
    # generous threshold lets the same document pass
    assert regress_main([old, slow, "--max-slowdown", "10"]) == 0
    capsys.readouterr()

    garbage = str(tmp_path / "garbage.json")
    with open(garbage, "w") as fh:
        fh.write("{not json")
    assert regress_main([old, garbage]) == 2
    assert regress_main([str(tmp_path / "missing.json"), old]) == 2


def _perf_row(seconds=1.0, identical=True, correctness=None):
    return {
        "seconds": seconds,
        "reference_seconds": seconds * 1.5,
        "speedup": 1.5,
        "identical": identical,
        "correctness": correctness,
    }


def test_compare_perf_benches_pure():
    corr = {"outcome": "success", "iterations": 2}
    old = {"benches": {"e2e_c1": _perf_row(correctness=dict(corr)),
                       "train_epoch": _perf_row()}}
    same = {"benches": {"e2e_c1": _perf_row(correctness=dict(corr)),
                        "train_epoch": _perf_row()}}
    assert compare_perf_benches(old, same) == {"regressions": [],
                                               "warnings": []}

    # timing is loose and ignorable; identity is hard either way
    slow = {"benches": {"e2e_c1": _perf_row(5.0, correctness=dict(corr)),
                        "train_epoch": _perf_row()}}
    out = compare_perf_benches(old, slow, max_slowdown=3.0)
    assert any("5.000s" in r for r in out["regressions"])
    assert compare_perf_benches(old, slow, ignore_timings=True) == {
        "regressions": [], "warnings": []
    }
    diverged = {"benches": {"e2e_c1": _perf_row(identical=False,
                                                correctness=dict(corr)),
                            "train_epoch": _perf_row()}}
    out = compare_perf_benches(old, diverged, ignore_timings=True)
    assert any("diverged" in r for r in out["regressions"])

    failed = {"benches": {
        "e2e_c1": _perf_row(correctness={"outcome": "failure",
                                         "iterations": 2}),
        "train_epoch": _perf_row(),
    }}
    out = compare_perf_benches(old, failed, ignore_timings=True)
    assert any("outcome regressed" in r for r in out["regressions"])

    missing = {"benches": {"e2e_c1": _perf_row(correctness=dict(corr))}}
    assert compare_perf_benches(old, missing)["regressions"]
    out = compare_perf_benches(old, missing, allow_missing=True)
    assert out["regressions"] == [] and out["warnings"]


def test_regress_cli_perf_kind(tmp_path, capsys):
    from repro.diagnostics.perfbench import perf_document, write_perf

    perf = str(tmp_path / "perf.json")
    write_perf(perf, perf_document({"train_epoch": _perf_row()}))
    assert regress_main([perf, perf]) == 0
    assert "no regressions" in capsys.readouterr().out

    diverged = str(tmp_path / "diverged.json")
    write_perf(
        diverged, perf_document({"train_epoch": _perf_row(identical=False)})
    )
    assert regress_main([perf, diverged]) == 1
    assert "diverged" in capsys.readouterr().out

    # mixing document kinds is a usage error, not a comparison
    table = str(tmp_path / "table.json")
    write_bench(table, {"C1": _bench_row(t=1.0)}, "smoke")
    assert regress_main([perf, table]) == 2


# ----------------------------------------------------------------------
# report CLI
# ----------------------------------------------------------------------
def _write_run_family(tmp_path, name="run"):
    """A minimal but complete artifact family for the report CLI."""
    base = str(tmp_path / name)
    events = [
        {"type": "span", "name": "snbc.learning", "duration": 0.5,
         "attrs": {"phase": "learning"}},
        {"type": "cegis.iteration", "iteration": 1, "loss": 0.2,
         "loss_init": 0.1, "loss_unsafe": 0.05, "loss_domain": 0.05,
         "worst_violation": 0.3, "n_counterexamples": 2,
         "dataset_sizes": [10, 10, 10], "verified": False,
         "failed_conditions": ["lie"]},
        {"type": "cegis.iteration", "iteration": 2, "loss": 0.0,
         "loss_init": 0.0, "loss_unsafe": 0.0, "loss_domain": 0.0,
         "worst_violation": 0.0, "n_counterexamples": 0,
         "dataset_sizes": [12, 10, 10], "verified": True,
         "failed_conditions": []},
        {"type": "cegis.lineage", "records": [
            {"iteration": 1, "condition": "lie", "paper_condition": 15,
             "worst_violation": 0.3, "gamma": 0.1, "n_points": 2,
             "worst_point": [0.5], "satisfied_by_final": True,
             "final_violation": -0.2}]},
    ]
    with open(base + ".jsonl", "w") as fh:
        for e in events:
            fh.write(json.dumps(e) + "\n")
    with open(base + ".manifest.json", "w") as fh:
        json.dump({"name": "unit/run", "outcome": "success", "seed": 0,
                   "elapsed_seconds": 1.0}, fh)
    return base


def test_report_cli_renders_and_writes_dashboard(tmp_path, capsys):
    base = _write_run_family(tmp_path)
    assert report_main([base]) == 0
    out = capsys.readouterr().out
    assert "unit/run" in out
    assert "Convergence" in out and "lineage" in out.lower()
    page = open(base + ".report.html").read()
    assert "<svg" in page and "</html>" in page
    assert "http" not in page.replace("http://www.w3.org", "")  # offline

    # .jsonl path spells the same family
    assert resolve_run(base + ".jsonl")["base"] == base


def test_report_cli_no_html(tmp_path, capsys):
    import os

    base = _write_run_family(tmp_path, "nohtml")
    assert report_main([base, "--no-html"]) == 0
    capsys.readouterr()
    assert not os.path.exists(base + ".report.html")


def test_report_cli_missing_trace(tmp_path, capsys):
    assert report_main([str(tmp_path / "nope")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_report_cli_all_malformed(tmp_path, capsys):
    base = str(tmp_path / "junk")
    with open(base + ".jsonl", "w") as fh:
        fh.write("not json at all\n{still: not json\n")
    assert report_main([base]) == 1
    assert "malformed" in capsys.readouterr().err


def test_report_cli_truncated_line_warns(tmp_path, capsys):
    base = _write_run_family(tmp_path, "trunc")
    with open(base + ".jsonl", "a") as fh:
        fh.write('{"type": "cegis.iter')  # crash mid-write
    assert report_main([base, "--no-html"]) == 0
    err = capsys.readouterr().err
    assert "skipped 1 malformed line" in err


def test_report_cli_missing_manifest_warns(tmp_path, capsys):
    import os

    base = _write_run_family(tmp_path, "noman")
    os.remove(base + ".manifest.json")
    assert report_main([base, "--no-html"]) == 0
    assert "no manifest" in capsys.readouterr().err
