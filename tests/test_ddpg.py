"""Tests for the DDPG trainer components (smoke-scale)."""

import numpy as np
import pytest

from repro.controllers.ddpg import DDPGConfig, DDPGTrainer, OUNoise, ReplayBuffer
from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box


def simple_problem():
    x, v = Polynomial.variables(2)
    sys2 = ControlAffineSystem.single_input([v, Polynomial.zero(2)], [0.0, 1.0])
    return CCDS(
        sys2,
        theta=Box.cube(2, -0.3, 0.3),
        psi=Box.cube(2, -3.0, 3.0),
        xi=Box.cube(2, 2.5, 3.0),
    )


# ----------------------------------------------------------------------
# replay buffer
# ----------------------------------------------------------------------
def test_replay_buffer_push_and_sample():
    buf = ReplayBuffer(10, 2, 1)
    for i in range(5):
        buf.push(np.full(2, i), np.array([i]), float(i), np.full(2, i + 1), False)
    assert len(buf) == 5
    s, a, r, s2, d = buf.sample(3, np.random.default_rng(0))
    assert s.shape == (3, 2) and a.shape == (3, 1)
    assert np.all(d == 0)


def test_replay_buffer_wraps_around():
    buf = ReplayBuffer(4, 1, 1)
    for i in range(10):
        buf.push([i], [0.0], 0.0, [i], False)
    assert len(buf) == 4
    assert set(buf.states[:, 0]) == {6.0, 7.0, 8.0, 9.0}


def test_replay_buffer_validation():
    with pytest.raises(ValueError):
        ReplayBuffer(0, 1, 1)


# ----------------------------------------------------------------------
# OU noise
# ----------------------------------------------------------------------
def test_ou_noise_mean_reverts():
    noise = OUNoise(1, theta=0.5, sigma=0.0, rng=np.random.default_rng(0))
    noise.state = np.array([10.0])
    for _ in range(50):
        noise.sample()
    assert abs(noise.state[0]) < 0.1


def test_ou_noise_reset():
    noise = OUNoise(3, rng=np.random.default_rng(0))
    noise.sample()
    noise.reset()
    np.testing.assert_allclose(noise.state, 0.0)


# ----------------------------------------------------------------------
# trainer
# ----------------------------------------------------------------------
def test_ddpg_runs_and_updates():
    prob = simple_problem()
    cfg = DDPGConfig(
        episodes=3,
        steps_per_episode=40,
        warmup_steps=32,
        batch_size=16,
        seed=0,
    )
    trainer = DDPGTrainer(prob, cfg)
    before = [p.copy() for p in trainer.actor.net.state_dict()]
    actor = trainer.train()
    after = actor.net.state_dict()
    # training must have changed the actor parameters
    changed = any(not np.allclose(b, a) for b, a in zip(before, after))
    assert changed
    assert len(trainer.episode_returns) == 3
    # action saturation respected
    u = actor(np.array([[3.0, 3.0]]))
    assert np.all(np.abs(u) <= cfg.action_limit + 1e-9)


def test_ddpg_requires_controlled_system():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.autonomous([-1.0 * x])
    prob = CCDS(sys1, Box([-0.3], [0.3]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    with pytest.raises(ValueError):
        DDPGTrainer(prob)


def test_ddpg_longer_run_stays_stable():
    """A longer run must keep finite returns and a bounded policy (RL
    improvement itself is too noisy at smoke scale to assert)."""
    prob = simple_problem()
    cfg = DDPGConfig(
        episodes=12,
        steps_per_episode=60,
        warmup_steps=64,
        batch_size=32,
        seed=1,
    )
    trainer = DDPGTrainer(prob, cfg)
    actor = trainer.train()
    rets = np.asarray(trainer.episode_returns)
    assert rets.shape == (12,)
    assert np.all(np.isfinite(rets))
    probe = prob.psi.sample(100, rng=np.random.default_rng(0))
    u = actor(probe)
    assert np.all(np.isfinite(u))
    assert np.all(np.abs(u) <= cfg.action_limit + 1e-9)
