"""End-to-end tests for systems with multiple control inputs.

The paper treats single-output controllers; the pipeline here handles the
multi-output case component-wise (per-output polynomial inclusion and
endpoint enumeration over the error box's vertices in the Verifier).
"""

import numpy as np
import pytest

from repro.cegis import SNBC, SNBCConfig
from repro.controllers import NNController, behavior_clone, polynomial_inclusion
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.sets import Box
from repro.verifier import SOSVerifier


def two_input_problem():
    # double integrator pair, each axis with its own control
    x1, x2 = Polynomial.variables(2)
    system = ControlAffineSystem(
        [0.5 * x1, 0.5 * x2],  # unstable drift on both axes
        [[1.0, 0.0], [0.0, 1.0]],
    )
    return CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="two-input",
    )


@pytest.fixture(scope="module")
def trained_controller():
    prob = two_input_problem()
    ctrl = NNController(2, 2, hidden=(10,), rng=np.random.default_rng(0))
    behavior_clone(
        ctrl,
        lambda pts: -2.0 * np.atleast_2d(pts),  # u_i = -2 x_i stabilizes
        prob.psi,
        n_samples=1024,
        epochs=150,
        rng=np.random.default_rng(0),
    )
    return prob, ctrl


def test_multi_output_inclusion(trained_controller):
    prob, ctrl = trained_controller
    inc = polynomial_inclusion(ctrl, prob.psi, degree=2, spacing=0.15)
    assert len(inc.polynomials) == 2
    assert all(s < 1.0 for s in inc.sigma_star)
    # each h_j approximates the j-th output
    pts = prob.psi.sample(500, rng=np.random.default_rng(1))
    u = ctrl(pts)
    for j in range(2):
        err = np.abs(u[:, j] - inc.polynomials[j](pts))
        assert np.max(err) <= inc.sigma_star[j] + 1e-9


def test_verifier_enumerates_four_endpoints(trained_controller):
    prob, ctrl = trained_controller
    inc = polynomial_inclusion(ctrl, prob.psi, degree=2, spacing=0.15)
    B = Polynomial.constant(2, 1.0)
    for i in range(2):
        B = B - 0.4 * Polynomial.variable(2, i) ** 2
    verifier = SOSVerifier(prob, inc.polynomials, inc.sigma_star)
    result = verifier.verify(B)
    lie_names = [c.name for c in result.conditions if c.name.startswith("lie")]
    # 2 inputs with nonzero error -> up to 2^2 = 4 endpoint LMIs (early
    # break on failure can shorten the list, but success needs all 4)
    if result.ok:
        assert len(lie_names) == 4


def test_multi_input_snbc_end_to_end(trained_controller):
    prob, ctrl = trained_controller
    result = SNBC(
        prob,
        controller=ctrl,
        learner_config=LearnerConfig(b_hidden=(10,), epochs=500, seed=0),
        config=SNBCConfig(max_iterations=8, n_samples=400, seed=0),
    ).run()
    assert result.success
    B = result.barrier
    rng = np.random.default_rng(2)
    assert np.all(B(prob.theta.sample(1000, rng=rng)) >= -1e-6)
    assert np.all(B(prob.xi.sample(1000, rng=rng)) < 0)


def test_too_many_inputs_with_error_rejected():
    n = 5
    xs = Polynomial.variables(n)
    G = [[1.0 if i == j else 0.0 for j in range(5)] for i in range(n)]
    system = ControlAffineSystem([-1.0 * x for x in xs], G)
    prob = CCDS(
        system,
        theta=Box.cube(n, -0.4, 0.4),
        psi=Box.cube(n, -2.0, 2.0),
        xi=Box.cube(n, 1.5, 2.0),
    )
    h = [Polynomial.zero(n)] * 5
    with pytest.raises(ValueError, match="intractable"):
        SOSVerifier(prob, h, sigma_star=[0.1] * 5)
    # zero error is fine (no endpoint blow-up)
    SOSVerifier(prob, h, sigma_star=[0.0] * 5)
