"""Region algebra: unions, differences, decomposition, spec hashing.

Property-based (via :mod:`repro.soundness.strategies`) plus targeted
regressions:

* sampled points always satisfy ``contains`` (Union/Difference);
* de Morgan reading of a difference — in the base and in no obstacle;
* piece/cell decomposition consistency — the region is covered by its
  basic cells, and every cell is basic (usable by the SOS verifier);
* shrinking a failing composite produces a *minimal* failing spec;
* the rejection-sampling attempt budget raises a typed
  :class:`~repro.resilience.errors.SamplingError` instead of spinning;
* ``RegionSpec`` canonical hashing is stable across dict round-trips,
  rebuilds, and the service request manifest;
* the per-cell SOS verdict is never contradicted by the independent
  interval verifier (one-sided differential oracle).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import SamplingError
from repro.sets import (
    Ball,
    Box,
    DifferenceSet,
    RegionAlgebraError,
    RegionSpec,
    SemialgebraicSet,
    UnionSet,
    region_spec_of,
)
from repro.soundness.strategies import (
    PropertyFailure,
    region_specs,
    resolve_seed,
    run_property,
)


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# construction / membership basics
# ----------------------------------------------------------------------
class TestConstruction:
    def test_union_contains_is_or(self):
        u = UnionSet([Box([0, 0], [1, 1]), Ball([3, 0], 0.5)])
        pts = np.array([[0.5, 0.5], [3.0, 0.0], [2.0, 2.0]])
        assert u.contains(pts).tolist() == [True, True, False]

    def test_difference_contains_is_and_not(self):
        d = DifferenceSet(
            Box([-1, -1], [1, 1]), [Box([-0.2, -0.2], [0.2, 0.2])]
        )
        pts = np.array([[0.5, 0.5], [0.0, 0.0], [2.0, 0.0]])
        assert d.contains(pts).tolist() == [True, False, False]

    def test_composite_constraints_raise(self):
        u = UnionSet([Box([0, 0], [1, 1]), Box([2, 2], [3, 3])])
        with pytest.raises(RegionAlgebraError):
            _ = u.constraints

    def test_difference_rejects_unsupported_obstacle(self):
        multi = SemialgebraicSet(
            2,
            list(Box([0, 0], [1, 1]).constraints),
            bounding_box=([0, 0], [1, 1]),
        )
        with pytest.raises(RegionAlgebraError):
            DifferenceSet(Box([-2, -2], [2, 2]), [multi])

    def test_violation_signs(self):
        d = DifferenceSet(
            Box([-1, -1], [1, 1]), [Box([-0.2, -0.2], [0.2, 0.2])]
        )
        inside = d.violation(np.array([[0.6, 0.6]]))
        in_obstacle = d.violation(np.array([[0.0, 0.0]]))
        outside = d.violation(np.array([[2.0, 0.0]]))
        assert inside[0] <= 0.0
        assert in_obstacle[0] > 0.0
        assert outside[0] > 0.0


# ----------------------------------------------------------------------
# decomposition
# ----------------------------------------------------------------------
class TestDecomposition:
    def test_basic_sets_are_their_own_cell(self):
        box = Box([0, 0], [1, 1])
        assert box.decompose() == (box,)
        ball = Ball([0, 0], 1.0)
        assert ball.decompose() == (ball,)

    def test_box_obstacle_splits_into_face_cells(self):
        d = DifferenceSet(
            Box([-2, -2], [2, 2]), [Box([-0.5, -0.5], [0.5, 0.5])]
        )
        cells = d.decompose()
        assert len(cells) == 4
        for cell in cells:
            # every cell is basic: real constraints, usable by Putinar
            assert len(cell.constraints) >= 1

    def test_ball_obstacle_single_cell(self):
        d = DifferenceSet(Box([-2, -2], [2, 2]), [Ball([1, 1], 0.3)])
        cells = d.decompose()
        assert len(cells) == 1
        assert len(cells[0].constraints) == len(
            Box([-2, -2], [2, 2]).constraints
        ) + 1

    def test_disjoint_obstacle_is_dropped(self):
        d = DifferenceSet(Box([-1, -1], [1, 1]), [Box([5, 5], [6, 6])])
        assert len(d.decompose()) == 1

    def test_cells_cover_the_region(self):
        d = DifferenceSet(
            Box([-2, -2], [2, 2]),
            [Box([0.5, 0.5], [1.5, 1.5]), Ball([-1, -1], 0.4)],
        )
        pts = d.sample(300, rng=_rng(7))
        cells = d.decompose()
        in_some_cell = np.zeros(len(pts), dtype=bool)
        for cell in cells:
            in_some_cell |= cell.contains(pts, tol=1e-9)
        assert in_some_cell.all()


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_zero_samples_is_empty(self):
        assert Box([0, 0], [1, 1]).sample(0, rng=_rng()).shape == (0, 2)
        basic = SemialgebraicSet(
            2,
            list(Box([0, 0], [1, 1]).constraints),
            bounding_box=([0, 0], [1, 1]),
        )
        assert basic.sample(0, rng=_rng()).shape == (0, 2)

    def test_infeasible_region_raises_typed_error(self):
        from repro.poly import Polynomial

        empty = SemialgebraicSet(
            2,
            [Polynomial.constant(2, -1.0)],  # -1 >= 0: never satisfiable
            bounding_box=([-1, -1], [1, 1]),
            name="empty",
        )
        with pytest.raises(SamplingError) as excinfo:
            empty.sample(5, rng=_rng(), max_attempts=500)
        err = excinfo.value
        assert err.details["region"] == "empty"
        assert err.details["requested"] == 5
        assert err.details["attempts"] >= 500
        assert err.phase == "sampling"

    def test_fully_obstructed_difference_raises(self):
        d = DifferenceSet(
            Box([0, 0], [1, 1]), [Box([-1, -1], [2, 2])], name="blocked"
        )
        with pytest.raises(SamplingError):
            d.sample(5, rng=_rng(), max_attempts=500)

    def test_union_stratifies_by_volume(self):
        big = Box([0, 0], [10, 10])
        small = Box([20, 0], [21, 1])
        u = UnionSet([big, small])
        pts = u.sample(400, rng=_rng(3))
        assert len(pts) == 400
        n_big = int(big.contains(pts).sum())
        # largest-remainder apportionment: ~99% of the volume is `big`
        assert n_big >= 350

    def test_union_sample_no_double_count_overlap(self):
        a = Box([0, 0], [2, 2])
        b = Box([1, 1], [3, 3])
        pts = UnionSet([a, b]).sample(200, rng=_rng(5))
        assert len(pts) == 200
        assert UnionSet([a, b]).contains(pts).all()


# ----------------------------------------------------------------------
# properties over generated region specs
# ----------------------------------------------------------------------
class TestProperties:
    def test_samples_satisfy_contains(self):
        seed = resolve_seed(11)

        def prop(spec: RegionSpec) -> None:
            region = spec.build()
            try:
                pts = region.sample(
                    50, rng=_rng(int(spec.canonical_key()[:8], 16))
                )
            except SamplingError:
                return  # fully-obstructed geometry: vacuous for this prop
            assert region.contains(pts, tol=1e-9).all(), (
                f"sampled point escapes {spec.kind} region"
            )

        run_property(
            "region-samples-contained", region_specs(2), prop,
            n_examples=40, seed=seed, dump=False,
        )

    def test_difference_de_morgan(self):
        seed = resolve_seed(12)

        def prop(spec: RegionSpec) -> None:
            if spec.kind != "difference":
                return
            region = spec.build()
            base = spec.base.build()
            obstacles = [o.build() for o in spec.obstacles]
            pts = _rng(seed).uniform(-2.5, 2.5, size=(200, 2))
            expected = base.contains(pts)
            for obstacle in obstacles:
                # difference excludes the *closed* obstacle
                expected &= ~obstacle.contains(pts, tol=-1e-12)
            got = region.contains(pts)
            assert (got == expected).all(), "de Morgan reading violated"

        run_property(
            "difference-de-morgan", region_specs(2), prop,
            n_examples=40, seed=seed, dump=False,
        )

    def test_decomposition_covers_region(self):
        seed = resolve_seed(13)

        def prop(spec: RegionSpec) -> None:
            region = spec.build()
            cells = region.decompose()
            assert len(cells) >= 1
            pts = _rng(seed + 1).uniform(-2.5, 2.5, size=(200, 2))
            inside = region.contains(pts)
            covered = np.zeros(len(pts), dtype=bool)
            for cell in cells:
                covered |= cell.contains(pts, tol=1e-9)
            # cells may over-cover (closed obstacle boundaries) but must
            # never miss a point of the region
            assert covered[inside].all(), "decomposition misses the region"

        run_property(
            "decomposition-covers", region_specs(2), prop,
            n_examples=40, seed=seed, dump=False,
        )

    def test_shrinking_minimizes_failing_spec(self):
        # a property that rejects every difference spec: the shrinker
        # must walk it down to a single-obstacle difference (dropping
        # obstacles keeps failing; collapsing to the base passes)
        def prop(spec: RegionSpec) -> None:
            assert spec.kind != "difference", "no differences allowed"

        with pytest.raises(PropertyFailure) as excinfo:
            run_property(
                "shrink-to-minimal", region_specs(2), prop,
                n_examples=60, seed=3, dump=False,
            )
        minimized = excinfo.value.minimized
        assert minimized.kind == "difference"
        assert len(minimized.obstacles) == 1


# ----------------------------------------------------------------------
# spec canonicalization / hashing
# ----------------------------------------------------------------------
class TestRegionSpec:
    def _spec(self) -> RegionSpec:
        return RegionSpec.box_minus_obstacles(
            [-2.0, -2.0],
            [2.0, 2.0],
            [
                RegionSpec.box([1.4, 1.4], [1.8, 1.8], name="block"),
                RegionSpec.ball([-1.2, -1.2], 0.35, name="pillar"),
            ],
            name="psi",
        )

    def test_round_trip_preserves_key(self):
        spec = self._spec()
        again = RegionSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.canonical_key() == spec.canonical_key()

    def test_rebuild_preserves_key(self):
        spec = self._spec()
        recovered = region_spec_of(spec.build())
        assert recovered.canonical_key() == spec.canonical_key()

    def test_key_is_order_and_type_stable(self):
        spec = self._spec()
        doc = spec.to_dict()
        # reversed key order in the payload must not change the hash
        shuffled = dict(reversed(list(doc.items())))
        assert (
            RegionSpec.from_dict(shuffled).canonical_key()
            == spec.canonical_key()
        )

    def test_service_request_key_stable_with_region(self):
        from repro.service.request import CertificationRequest, request_key

        spec = self._spec()
        req = CertificationRequest(
            kind="verify", system="decay", seed=7,
            config={"psi": spec.to_dict(), "level": 1.0},
        )
        key = request_key(req)
        # round-trip through the wire format and through a rebuilt spec
        assert request_key(req.to_dict()) == key
        rebuilt = CertificationRequest(
            kind="verify", system="decay", seed=7,
            config={
                "psi": region_spec_of(spec.build()).to_dict(),
                "level": 1.0,
            },
        )
        assert request_key(rebuilt) == key


# ----------------------------------------------------------------------
# differential oracle: per-cell SOS vs interval verifier
# ----------------------------------------------------------------------
class TestDifferentialOracle:
    def _compare(self, seed: int):
        from repro.soundness import oracles
        from repro.soundness.scenarios import make_scenario
        from repro.verifier.interval_verifier import IntervalVerifierConfig

        scenario = make_scenario(seed)
        return scenario, oracles.compare_verifiers(
            scenario.problem,
            scenario.barrier,
            interval_config=IntervalVerifierConfig(
                delta=5e-2, max_boxes_per_check=20_000,
                time_limit_per_check=20.0,
            ),
            dump_tag=f"region-seed{seed}",
        )

    def test_certified_scenario_never_contradicted(self):
        scenario, comparison = self._compare(seed=0)
        assert scenario.expected == "certifiable"
        assert comparison.sos_ok
        assert comparison.ok, "\n".join(
            str(d) for d in comparison.disagreements
        )

    def test_falsified_scenario_is_not_a_disagreement(self):
        scenario, comparison = self._compare(seed=4)
        assert scenario.expected == "infeasible"
        assert not comparison.sos_ok
        # one-sided oracle: an SOS rejection is never a disagreement
        assert comparison.ok
