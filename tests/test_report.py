"""Tests for the markdown report generator."""

import numpy as np
import pytest

from repro.analysis.report import (
    Table1Row,
    render_markdown,
    render_text,
    run_snbc_rows,
)


def fake_rows():
    return [
        Table1Row("C1", 2, 3, "2-10-1", "2-5-1", True, 2, 1, 0.5, 0.0, 0.2, 0.7),
        Table1Row("C9", 5, 2, "5-10-1", "5-5-1", False, None, 4, 1.0, 0.5, 0.5, 2.0),
    ]


def test_render_markdown():
    text = render_markdown(fake_rows(), "smoke")
    assert "| C1 |" in text
    assert "| x |" in text  # failed row marked
    assert "1/2" in text
    assert "Mean T_e" in text


def test_render_text():
    text = render_text(fake_rows(), "smoke")
    assert "C1" in text and "C9" in text
    assert "T_e" in text


def test_run_snbc_rows_single_system():
    seen = []
    rows = run_snbc_rows(["C1"], scale="smoke", progress=seen.append)
    assert len(rows) == 1
    assert rows[0].success
    assert rows[0].d_b == 2
    assert seen and seen[0].name == "C1"


def test_cli_main(tmp_path, capsys):
    from repro.analysis.report import main

    out = tmp_path / "report.md"
    code = main(["--systems", "C1", "--scale", "smoke", "--output", str(out)])
    assert code == 0
    content = out.read_text()
    assert "| C1 |" in content
    stdout = capsys.readouterr().out
    assert "C1: ok" in stdout
