"""Regression tests: degree-0 polynomials and empty boxes through the
interval contractor and the box range bounds (these used to crash with a
bare Interval ValueError / silently return unsound enclosures)."""

import numpy as np
import pytest

from repro.poly import Polynomial
from repro.poly.bounds import abs_bound_on_box, interval_eval
from repro.smt.contractor import contract_box, contract_nonnegative


def test_contract_nonnegative_empty_box_returns_none():
    x, y = Polynomial.variables(2)
    p = x * x + y - 1.0
    out = contract_nonnegative(p, np.array([1.0, 0.0]), np.array([-1.0, 2.0]))
    assert out is None


def test_contract_box_empty_box_returns_none():
    x, y = Polynomial.variables(2)
    out = contract_box([x + y], np.array([0.5, 0.5]), np.array([0.4, 1.0]))
    assert out is None


def test_contract_nonnegative_degree_zero_positive_keeps_box():
    p = Polynomial.constant(2, 3.0)
    lo, hi = np.array([-1.0, -1.0]), np.array([1.0, 1.0])
    out = contract_nonnegative(p, lo, hi)
    assert out is not None
    np.testing.assert_array_equal(out[0], lo)
    np.testing.assert_array_equal(out[1], hi)


def test_contract_nonnegative_degree_zero_negative_prunes():
    p = Polynomial.constant(2, -0.5)
    out = contract_nonnegative(p, np.array([-1.0, -1.0]), np.array([1.0, 1.0]))
    assert out is None


def test_contract_nonnegative_zero_polynomial_keeps_box():
    p = Polynomial.zero(2)
    lo, hi = np.array([-2.0, 0.0]), np.array([2.0, 1.0])
    out = contract_nonnegative(p, lo, hi)
    assert out is not None
    np.testing.assert_array_equal(out[0], lo)
    np.testing.assert_array_equal(out[1], hi)


def test_contract_still_sound_on_active_constraint():
    # x >= 1 intersected with [-2, 2]: the contractor must keep [1, 2]
    x, = Polynomial.variables(1)
    out = contract_nonnegative(x - 1.0, np.array([-2.0]), np.array([2.0]))
    assert out is not None
    lo, hi = out
    assert lo[0] >= 1.0 - 1e-9 and hi[0] == pytest.approx(2.0)


def test_interval_eval_rejects_empty_box():
    x, y = Polynomial.variables(2)
    with pytest.raises(ValueError, match="lo > hi"):
        interval_eval(x * y, [1.0, 0.0], [0.0, 1.0])


def test_abs_bound_rejects_empty_box():
    x, y = Polynomial.variables(2)
    with pytest.raises(ValueError, match="lo > hi"):
        abs_bound_on_box(x + y, [1.0, 0.0], [0.0, 1.0])


def test_interval_eval_degree_zero():
    p = Polynomial.constant(3, -2.5)
    low, high = interval_eval(p, [-1.0] * 3, [1.0] * 3)
    assert low == pytest.approx(-2.5)
    assert high == pytest.approx(-2.5)


def test_interval_eval_encloses_true_range():
    x, y = Polynomial.variables(2)
    p = x * x - 2.0 * y + 0.5
    lo_b, hi_b = [-1.0, -1.0], [1.0, 1.0]
    low, high = interval_eval(p, lo_b, hi_b)
    rng = np.random.default_rng(0)
    pts = rng.uniform(-1.0, 1.0, size=(2000, 2))
    vals = p(pts)
    assert low <= float(np.min(vals)) + 1e-12
    assert high >= float(np.max(vals)) - 1e-12
