"""Metamorphic properties of the verification pipeline: verdicts must be
invariant under variable permutation and positive candidate scaling, and
monotone under inclusion-error tightening."""

import random

import numpy as np
import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.poly import Polynomial
from repro.sets import Box
from repro.soundness import strategies as st
from repro.verifier import SOSVerifier

SEED = st.resolve_seed(0)


def permute_poly(p: Polynomial, perm) -> Polynomial:
    """Rename variables: new variable ``i`` is old variable ``perm[i]``."""
    return Polynomial(
        p.n_vars,
        {
            tuple(alpha[perm[i]] for i in range(p.n_vars)): c
            for alpha, c in p.coeffs.items()
        },
    )


def asymmetric_problem():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.autonomous([-1.0 * x, -2.0 * y + 0.1 * x])
    return CCDS(
        system,
        theta=Box([-0.3, -0.2], [0.3, 0.4], name="theta"),
        psi=Box([-2.0, -1.5], [2.0, 2.5], name="psi"),
        xi=Box([1.5, 1.8], [1.9, 2.4], name="xi"),
        name="asym",
    )


def permuted_problem(prob: CCDS, perm) -> CCDS:
    inv = [perm.index(i) for i in range(prob.n_vars)]

    def permute_box(box: Box) -> Box:
        lo, hi = box.bounding_box
        return Box(
            [lo[perm[i]] for i in range(len(lo))],
            [hi[perm[i]] for i in range(len(hi))],
            name=box.name,
        )

    f0 = [permute_poly(prob.system.f0[perm[i]], perm)
          for i in range(prob.n_vars)]
    system = ControlAffineSystem.autonomous(f0)
    return CCDS(
        system,
        theta=permute_box(prob.theta),
        psi=permute_box(prob.psi),
        xi=permute_box(prob.xi),
        name=prob.name + "-perm",
    )


def candidate_pool():
    """A deterministic mix of likely-valid and clearly-invalid candidates."""
    x, y = Polynomial.variables(2)
    base = Polynomial.constant(2, 1.0)
    cands = [
        base - 0.5 * (x * x + y * y),          # valid barrier shape
        base - 0.4 * x * x - 0.3 * y * y,      # valid, asymmetric
        -1.0 * base + 0.5 * (x * x + y * y),   # violates init
        base - 0.05 * (x * x + y * y),         # too flat: unsafe fails
    ]
    grams = st.psd_matrices(2)
    rng = random.Random(SEED)
    for _ in range(2):
        Q = grams.generate(rng)
        q = Q[0][0] * x * x + (Q[0][1] + Q[1][0]) * x * y + Q[1][1] * y * y
        level = float(q(np.array([[1.7, 2.1]]))[0])
        if level > 0:
            cands.append(base - q * (1.0 / level))
    return cands


def verdict(prob, B):
    return bool(SOSVerifier(prob, []).verify(B).ok)


def test_variable_permutation_does_not_flip_verdicts():
    prob = asymmetric_problem()
    perm = [1, 0]
    pprob = permuted_problem(prob, perm)
    flips = []
    for i, B in enumerate(candidate_pool()):
        before = verdict(prob, B)
        after = verdict(pprob, permute_poly(B, perm))
        if before != after:
            flips.append((i, before, after))
    assert not flips, f"permutation flipped verdicts: {flips}"


def test_positive_scaling_does_not_flip_verdicts():
    prob = asymmetric_problem()
    flips = []
    for i, B in enumerate(candidate_pool()):
        base = verdict(prob, B)
        for c in (0.01, 3.0, 250.0):
            scaled = verdict(prob, B * c)
            if scaled != base:
                flips.append((i, c, base, scaled))
    assert not flips, f"scaling flipped verdicts: {flips}"


def test_inclusion_tightening_cannot_break_success():
    x, y = Polynomial.variables(2)
    system = ControlAffineSystem.single_input(
        [-1.0 * x, -1.0 * y], [0.0, 1.0]
    )
    prob = CCDS(
        system,
        theta=Box.cube(2, -0.3, 0.3, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box.cube(2, 1.5, 2.0, name="xi"),
        name="decay-controlled",
    )
    B = Polynomial.constant(2, 1.0) - 0.5 * (x * x + y * y)
    h = [Polynomial.zero(2)]
    loose = bool(SOSVerifier(prob, h, sigma_star=[0.1]).verify(B).ok)
    assert loose  # sanity: the loose problem is certifiable
    # a tighter inclusion error only removes Lie obligations: success
    # must be preserved at every smaller sigma (including zero)
    for s in (0.05, 0.01, 0.0):
        tight = bool(SOSVerifier(prob, h, sigma_star=[s]).verify(B).ok)
        assert tight, f"tightening sigma to {s} flipped success to failure"


def test_permutation_invariance_of_exact_recheck():
    from repro.soundness import check_verification

    prob = asymmetric_problem()
    perm = [1, 0]
    pprob = permuted_problem(prob, perm)
    x, y = Polynomial.variables(2)
    B = Polynomial.constant(2, 1.0) - 0.4 * x * x - 0.3 * y * y
    v1 = SOSVerifier(prob, []).verify(B)
    v2 = SOSVerifier(pprob, []).verify(permute_poly(B, perm))
    assert v1.ok and v2.ok
    r1 = check_verification(prob, v1)
    r2 = check_verification(pprob, v2)
    assert r1.ok and r2.ok
