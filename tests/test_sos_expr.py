"""Tests for SOS expression arithmetic and BMI rejection."""

import numpy as np
import pytest

from repro.poly import Polynomial
from repro.sos import SOSExpr, SOSProgram
from repro.sos.expr import LinCoeff


def test_from_polynomial_roundtrip():
    p = Polynomial(2, {(1, 0): 2.0, (0, 0): -1.0})
    e = SOSExpr.from_polynomial(p)
    assert e.constant_part() == p
    assert not e.has_decision_variables()
    assert e.degree == 1


def test_add_and_scale():
    p = Polynomial(1, {(1,): 1.0})
    e = SOSExpr.from_polynomial(p) * 3.0 + 2.0
    q = e.constant_part()
    assert q.coeff((1,)) == 3.0
    assert q.coeff((0,)) == 2.0


def test_sub_and_rsub():
    p = SOSExpr.from_polynomial(Polynomial(1, {(1,): 1.0}))
    assert (1.0 - p).constant_part().coeff((0,)) == 1.0
    assert (p - 1.0).constant_part().coeff((0,)) == -1.0


def test_mul_by_polynomial_distributes():
    prog = SOSProgram(1)
    s = prog.sos_poly(2)
    g = Polynomial(1, {(2,): -1.0, (0,): 1.0})  # 1 - x^2
    prod = s * g
    assert prod.degree == s.degree + 2
    assert prod.has_decision_variables()


def test_bmi_product_rejected():
    prog = SOSProgram(2)
    s1 = prog.sos_poly(2)
    s2 = prog.sos_poly(2)
    with pytest.raises(ValueError, match="bilinear"):
        s1 * s2
    f = prog.free_poly(1)
    with pytest.raises(ValueError, match="bilinear"):
        s1 * f


def test_constant_symbolic_product_ok():
    prog = SOSProgram(1)
    s = prog.sos_poly(2)
    const_expr = SOSExpr.from_polynomial(Polynomial.constant(1, 2.0))
    assert (const_expr * s).has_decision_variables()
    assert (s * const_expr).has_decision_variables()


def test_type_errors():
    e = SOSExpr.zero(2)
    with pytest.raises(TypeError):
        e + "nope"
    with pytest.raises(TypeError):
        e * object()


def test_nvars_mismatch():
    with pytest.raises(ValueError):
        SOSExpr.zero(2) + SOSExpr.zero(3)
    with pytest.raises(ValueError):
        SOSExpr.zero(2) * Polynomial.one(3)


def test_lincoeff_ops():
    a = LinCoeff(1.0, {0: 2.0}, {(0, 0, 0): 1.0})
    b = LinCoeff(0.5, {0: -2.0})
    a.add_inplace(b)
    assert a.const == 1.5
    assert a.free[0] == 0.0
    c = a.scaled(2.0)
    assert c.const == 3.0
    assert not a.is_constant
    assert LinCoeff(0.0).is_trivial()
