"""Cross-module integration tests: the full pipeline on real benchmarks."""

import numpy as np
import pytest

from repro.analysis import check_empirical_safety
from repro.benchmarks import get_benchmark
from repro.cegis import SNBC
from repro.poly import lie_derivative
from repro.verifier import SOSVerifier


@pytest.fixture(scope="module")
def example1_run():
    spec = get_benchmark("example1")
    problem = spec.make_problem()
    controller = spec.make_controller()
    result = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("smoke"),
    ).run()
    return spec, problem, controller, result


def test_example1_synthesizes(example1_run):
    _, _, _, result = example1_run
    assert result.success
    assert result.barrier.degree == 2  # paper's certificate (19) is degree 2
    assert result.iterations <= 4


def test_example1_certificate_conditions_hold_empirically(example1_run):
    """The certified B must satisfy Theorem 1 on dense random samples.

    The Lie condition is checked in its safety-relevant form: near the zero
    level set of B (where the lambda term vanishes) the derivative along
    the closed loop must be positive at *both* inclusion-error endpoints —
    which, by affinity in w, covers every admissible w.
    """
    _, problem, _, result = example1_run
    B = result.barrier
    rng = np.random.default_rng(0)
    assert np.min(B(problem.theta.sample(5000, rng=rng))) >= -1e-6
    assert np.max(B(problem.xi.sample(5000, rng=rng))) < 0

    h = result.inclusion.polynomials
    sigma = result.inclusion.sigma_star[0]
    pts = problem.psi.sample(100_000, rng=rng)
    b_vals = np.abs(B(pts))
    near_zero = pts[b_vals < np.quantile(b_vals, 0.01)]
    assert len(near_zero) > 0
    # certified: L_f B > lambda B everywhere, so near the level set
    # Bdot >= -max|lambda| * max|B| on those points
    assert result.verification.lambda_polys
    delta = float(np.max(np.abs(B(near_zero))))
    lam_bound = max(
        float(np.max(np.abs(lam(near_zero))))
        for lam in result.verification.lambda_polys.values()
    )
    for w in (-sigma, +sigma):
        field_w = problem.system.closed_loop(h, error=[w])
        lfb_w = lie_derivative(B, field_w)
        assert np.min(lfb_w(near_zero)) > -lam_bound * delta - 1e-6


def test_example1_simulation_agrees(example1_run):
    """No simulated closed-loop trajectory (true NN in the loop) reaches Xi."""
    _, problem, controller, result = example1_run
    sims = check_empirical_safety(
        problem, controller, n_trajectories=8, t_final=8.0,
        rng=np.random.default_rng(1),
    )
    assert not any(s.entered_unsafe for s in sims)
    # and B stays nonnegative along every in-domain trajectory
    for s in sims:
        inside = problem.psi.contains(s.states)
        assert np.all(result.barrier(s.states[inside]) > -1e-6)


def test_certificate_survives_reverification(example1_run):
    """Verifying the found certificate again (fresh verifier) passes."""
    _, problem, _, result = example1_run
    verifier = SOSVerifier(
        problem, result.inclusion.polynomials, result.inclusion.sigma_star
    )
    again = verifier.verify(result.barrier)
    assert again.ok


def test_perturbed_certificate_fails(example1_run):
    """A clearly corrupted certificate must NOT verify (soundness check)."""
    from repro.poly import Polynomial

    _, problem, _, result = example1_run
    bad = result.barrier + Polynomial.constant(3, 1000.0)  # positive on Xi now
    verifier = SOSVerifier(
        problem, result.inclusion.polynomials, result.inclusion.sigma_star
    )
    assert not verifier.verify(bad).ok


@pytest.mark.parametrize("name", ["C2", "C5", "C11"])
def test_more_benchmarks_end_to_end(name):
    spec = get_benchmark(name)
    problem = spec.make_problem()
    controller = spec.make_controller()
    result = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("smoke"),
    ).run()
    assert result.success, f"{name} failed: {result.history}"
    assert result.barrier.degree == 2
