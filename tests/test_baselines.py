"""Tests for the FOSSIL / NNCChecker / SOSTOOLS baseline tools."""

import numpy as np
import pytest

from repro.baselines import (
    BaselineStatus,
    FossilBaseline,
    FossilConfig,
    NNCCheckerBaseline,
    NNCCheckerConfig,
    SOSToolsBaseline,
    SOSToolsConfig,
)
from repro.controllers import NNController, behavior_clone
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.sets import Box


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
        name=f"decay{n}d",
    )


def controlled_1d_with_ctrl():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([1.0 * x], [1.0])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    ctrl = NNController(1, 1, hidden=(8,), rng=np.random.default_rng(0))
    behavior_clone(
        ctrl,
        lambda pts: -2.0 * np.atleast_2d(pts),
        prob.psi,
        n_samples=512,
        epochs=100,
        rng=np.random.default_rng(0),
    )
    return prob, ctrl


# ----------------------------------------------------------------------
# FOSSIL-style
# ----------------------------------------------------------------------
def test_fossil_succeeds_on_easy_autonomous():
    prob = decay_problem()
    res = FossilBaseline(
        prob,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=400, seed=0),
        config=FossilConfig(max_iterations=6, n_samples=300, seed=0, delta=5e-2),
    ).run()
    assert res.success
    assert res.tool == "fossil"
    assert res.barrier is not None and res.degree == 2
    assert res.total_seconds > 0


def test_fossil_with_nn_controller_in_loop():
    prob, ctrl = controlled_1d_with_ctrl()
    res = FossilBaseline(
        prob,
        controller=ctrl,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=400, seed=0),
        config=FossilConfig(max_iterations=8, n_samples=300, seed=0, delta=5e-2),
    ).run()
    assert res.status in (BaselineStatus.SUCCESS, BaselineStatus.TIMEOUT)


def test_fossil_times_out_with_tiny_budget():
    prob = decay_problem(3)
    res = FossilBaseline(
        prob,
        learner_config=LearnerConfig(b_hidden=(5,), epochs=50, seed=0),
        config=FossilConfig(
            max_iterations=3,
            n_samples=100,
            delta=1e-6,
            max_boxes_per_check=50,
            time_limit=300.0,
            seed=0,
        ),
    ).run()
    # verifier budget far too small: must report timeout, never "success"
    assert res.status in (BaselineStatus.TIMEOUT, BaselineStatus.FAILED)


def test_fossil_requires_controller():
    x = Polynomial.variable(1, 0)
    sys1 = ControlAffineSystem.single_input([-1.0 * x], [1.0])
    prob = CCDS(sys1, Box([-0.5], [0.5]), Box([-2.0], [2.0]), Box([1.5], [2.0]))
    with pytest.raises(ValueError):
        FossilBaseline(prob)


# ----------------------------------------------------------------------
# SOSTOOLS-style
# ----------------------------------------------------------------------
def test_sostools_direct_synthesis_easy():
    prob = decay_problem()
    res = SOSToolsBaseline(
        prob, config=SOSToolsConfig(degrees=(2,), n_random_multipliers=4, seed=0)
    ).run()
    assert res.success
    B = res.barrier
    rng = np.random.default_rng(0)
    assert np.all(B(prob.theta.sample(500, rng=rng)) >= -1e-6)
    assert np.all(B(prob.xi.sample(500, rng=rng)) <= 0)


def test_sostools_reports_infeasible_on_impossible_instance():
    # unsafe inside initial: no barrier exists
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    prob = CCDS(
        sys2,
        theta=Box.cube(2, -1.0, 1.0),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, -0.2, 0.2),
    )
    res = SOSToolsBaseline(
        prob, config=SOSToolsConfig(degrees=(2,), n_random_multipliers=2, seed=0)
    ).run()
    assert res.status in (BaselineStatus.INFEASIBLE, BaselineStatus.FAILED)


def test_sostools_with_polynomial_controller():
    prob, _ = controlled_1d_with_ctrl()
    h = [Polynomial(1, {(1,): -2.0})]
    res = SOSToolsBaseline(
        prob,
        controller_polys=h,
        config=SOSToolsConfig(degrees=(2,), n_random_multipliers=4, seed=0),
    ).run()
    assert res.status in (BaselineStatus.SUCCESS, BaselineStatus.INFEASIBLE)


def test_sostools_controller_poly_count_checked():
    prob, _ = controlled_1d_with_ctrl()
    with pytest.raises(ValueError):
        SOSToolsBaseline(prob)  # missing controller polynomial


def test_sostools_table_cells():
    prob = decay_problem()
    res = SOSToolsBaseline(
        prob, config=SOSToolsConfig(degrees=(2,), n_random_multipliers=3, seed=1)
    ).run()
    cells = res.table_cells()
    assert set(cells) == {"d_B", "iters", "T_l", "T_v", "T_e"}


# ----------------------------------------------------------------------
# NNCChecker-style
# ----------------------------------------------------------------------
def test_nncchecker_on_autonomous():
    prob = decay_problem()
    res = NNCCheckerBaseline(
        prob,
        config=NNCCheckerConfig(max_refinements=2, delta=5e-2, seed=0),
    ).run()
    assert res.status in (
        BaselineStatus.SUCCESS,
        BaselineStatus.TIMEOUT,
        BaselineStatus.INFEASIBLE,
    )
    assert res.tool == "nncchecker"


def test_nncchecker_with_controller():
    prob, ctrl = controlled_1d_with_ctrl()
    h = [Polynomial(1, {(1,): -2.0})]
    res = NNCCheckerBaseline(
        prob,
        controller=ctrl,
        controller_polys=h,
        config=NNCCheckerConfig(max_refinements=2, delta=5e-2, seed=0),
    ).run()
    assert res.status in (
        BaselineStatus.SUCCESS,
        BaselineStatus.TIMEOUT,
        BaselineStatus.INFEASIBLE,
    )


def test_nncchecker_validation():
    prob, ctrl = controlled_1d_with_ctrl()
    with pytest.raises(ValueError):
        NNCCheckerBaseline(prob)  # missing controller
    with pytest.raises(ValueError):
        NNCCheckerBaseline(prob, controller=ctrl)  # missing poly approx
