"""Tests for graded-lex monomial bookkeeping."""

import pytest
from hypothesis import given, strategies as st

from repro.poly.monomials import (
    add_exponents,
    grlex_key,
    monomial_index_map,
    monomials_exact,
    monomials_upto,
    n_monomials_upto,
    total_degree,
)


def test_monomials_upto_matches_paper_ordering():
    # [x]_2 for n=2: [1, x1, x2, x1^2, x1 x2, x2^2]
    basis = monomials_upto(2, 2)
    assert basis == ((0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2))


def test_monomials_upto_degree_zero():
    assert monomials_upto(3, 0) == ((0, 0, 0),)


def test_monomials_exact_count():
    # exact degree d in n vars: C(n+d-1, d)
    assert len(monomials_exact(3, 2)) == 6
    assert len(monomials_exact(2, 5)) == 6


def test_n_monomials_upto_formula():
    for n in range(1, 6):
        for d in range(0, 5):
            assert len(monomials_upto(n, d)) == n_monomials_upto(n, d)


def test_index_map_consistent():
    idx = monomial_index_map(3, 3)
    basis = monomials_upto(3, 3)
    for i, alpha in enumerate(basis):
        assert idx[alpha] == i


def test_grlex_key_orders_degree_first():
    assert grlex_key((0, 2)) > grlex_key((1, 0))
    assert grlex_key((2, 0)) < grlex_key((1, 1))


def test_add_exponents():
    assert add_exponents((1, 2), (3, 0)) == (4, 2)


def test_total_degree():
    assert total_degree((2, 0, 3)) == 5


def test_monomials_invalid_args():
    with pytest.raises(ValueError):
        monomials_exact(0, 2)
    with pytest.raises(ValueError):
        monomials_exact(2, -1)


@given(st.integers(1, 5), st.integers(0, 6))
def test_basis_sorted_and_unique(n, d):
    basis = monomials_upto(n, d)
    assert len(set(basis)) == len(basis)
    keys = [grlex_key(a) for a in basis]
    assert keys == sorted(keys)
    assert all(total_degree(a) <= d for a in basis)
