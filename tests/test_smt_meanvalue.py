"""Tests for the mean-value form enclosure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.poly import Polynomial
from repro.poly.monomials import monomials_upto
from repro.smt import BranchAndPrune, CheckStatus, MeanValueEnclosure, poly_enclosure


def test_meanvalue_sound_on_samples():
    rng = np.random.default_rng(0)
    p = Polynomial(2, {(2, 0): 1.0, (1, 1): -2.0, (0, 3): 0.5, (0, 0): 0.1})
    enc = MeanValueEnclosure(p)
    for _ in range(20):
        lo = rng.uniform(-1, 0.5, size=2)
        hi = lo + rng.uniform(0.05, 1.0, size=2)
        box = enc(lo, hi)
        pts = rng.uniform(lo, hi, size=(300, 2))
        vals = p(pts)
        assert np.all(vals >= box.lo - 1e-9)
        assert np.all(vals <= box.hi + 1e-9)


def test_meanvalue_never_wider_than_natural():
    rng = np.random.default_rng(1)
    p = Polynomial(2, {(2, 0): 1.0, (1, 1): -1.0, (0, 2): 1.0})
    enc = MeanValueEnclosure(p)
    for _ in range(20):
        lo = rng.uniform(-1, 0, size=2)
        hi = lo + rng.uniform(0.01, 0.8, size=2)
        mv = enc(lo, hi)
        nat = poly_enclosure(p, lo, hi)
        assert mv.lo >= nat.lo - 1e-12
        assert mv.hi <= nat.hi + 1e-12


def test_meanvalue_tighter_on_small_boxes():
    # x^2 - x*y + y^2 around (0.5, 0.5): natural extension is loose
    p = Polynomial(2, {(2, 0): 1.0, (1, 1): -1.0, (0, 2): 1.0})
    enc = MeanValueEnclosure(p)
    lo, hi = np.array([0.45, 0.45]), np.array([0.55, 0.55])
    mv = enc(lo, hi)
    nat = poly_enclosure(p, lo, hi)
    assert mv.width < nat.width


def test_meanvalue_degenerate_box():
    p = Polynomial(1, {(2,): 1.0})
    enc = MeanValueEnclosure(p)
    point = enc(np.array([0.7]), np.array([0.7]))
    assert point.lo == pytest.approx(0.49)
    assert point.hi == pytest.approx(0.49)


def test_meanvalue_speeds_up_branch_and_prune():
    """The same tight query needs no MORE boxes with the mean-value form."""
    coeffs = {(2, 0, 0): 1.0, (0, 2, 0): 1.0, (0, 0, 2): 1.0, (1, 1, 0): -0.9,
              (0, 0, 0): 1e-3}
    p = Polynomial(3, coeffs)
    lo, hi = -np.ones(3), np.ones(3)

    def run(enclosure):
        engine = BranchAndPrune(delta=0.02, max_boxes=300_000,
                                rng=np.random.default_rng(0))
        return engine.check_forall(enclosure, lambda pts: p(pts), lo, hi)

    natural = run(lambda a, b: poly_enclosure(p, a, b))
    meanval = run(MeanValueEnclosure(p))
    assert natural.status == meanval.status == CheckStatus.PROVED
    assert meanval.boxes_processed <= natural.boxes_processed


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(list(monomials_upto(2, 3))),
        st.floats(-3, 3, allow_nan=False),
        max_size=5,
    )
)
def test_meanvalue_soundness_property(coeffs):
    p = Polynomial(2, coeffs)
    enc = MeanValueEnclosure(p)
    lo, hi = np.array([-0.8, 0.1]), np.array([0.3, 0.9])
    box = enc(lo, hi)
    pts = np.random.default_rng(7).uniform(lo, hi, size=(200, 2))
    vals = p(pts)
    assert np.all(vals >= box.lo - 1e-8)
    assert np.all(vals <= box.hi + 1e-8)
