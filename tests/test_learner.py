"""Tests for datasets, the barrier loss and the Learner."""

import numpy as np
import pytest

from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import BarrierLearner, LearnerConfig, TrainingData, barrier_loss
from repro.learner.loss import field_values
from repro.poly import Polynomial, lie_derivative
from repro.sets import Ball, Box


def decay_problem(n=2):
    xs = Polynomial.variables(n)
    sys_n = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys_n,
        theta=Box.cube(n, -0.5, 0.5, name="theta"),
        psi=Box.cube(n, -2.0, 2.0, name="psi"),
        xi=Box.cube(n, 1.5, 2.0, name="xi"),
        name=f"decay{n}d",
    )


# ----------------------------------------------------------------------
# datasets
# ----------------------------------------------------------------------
def test_training_data_sampling():
    prob = decay_problem()
    data = TrainingData.sample(prob, 100, rng=np.random.default_rng(0))
    assert data.sizes() == (100, 100, 100)
    assert np.all(prob.theta.contains(data.s_init))
    assert np.all(prob.xi.contains(data.s_unsafe))
    assert np.all(prob.psi.contains(data.s_domain))


def test_training_data_boundary_fraction_ball():
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    prob = CCDS(
        sys2,
        theta=Ball([0.0, 0.0], 0.5, name="theta"),
        psi=Box.cube(2, -2, 2, name="psi"),
        xi=Ball([1.5, 1.5], 0.3, name="xi"),
    )
    data = TrainingData.sample(
        prob, 100, rng=np.random.default_rng(1), boundary_fraction=0.5
    )
    radii = np.linalg.norm(data.s_init, axis=1)
    n_on_boundary = int(np.sum(np.abs(radii - 0.5) < 1e-9))
    assert n_on_boundary == 50


def test_training_data_boundary_fraction_box():
    prob = decay_problem()
    data = TrainingData.sample(
        prob, 60, rng=np.random.default_rng(2), boundary_fraction=0.5
    )
    on_face = np.any(
        (np.abs(data.s_init - (-0.5)) < 1e-12) | (np.abs(data.s_init - 0.5) < 1e-12),
        axis=1,
    )
    assert int(np.sum(on_face)) >= 30


def test_training_data_add():
    prob = decay_problem()
    data = TrainingData.sample(prob, 10, rng=np.random.default_rng(0))
    data.add_init(np.zeros((3, 2)))
    data.add_unsafe(np.zeros((2, 2)))
    data.add_domain(np.zeros(2))  # single point broadcast
    assert data.sizes() == (13, 12, 11)
    assert "TrainingData" in repr(data)


def test_training_data_validation():
    prob = decay_problem()
    with pytest.raises(ValueError):
        TrainingData.sample(prob, 0)
    with pytest.raises(ValueError):
        TrainingData.sample(prob, 10, boundary_fraction=2.0)


# ----------------------------------------------------------------------
# loss
# ----------------------------------------------------------------------
def test_loss_zero_for_perfect_certificate():
    """A warm-started perfect certificate yields (near-)zero hinge loss."""
    prob = decay_problem()
    cfg = LearnerConfig(b_hidden=(4,), eps=0.01, seed=0)
    learner = BarrierLearner(2, cfg)
    # B = 1 - 0.5 |x|^2: >= 0.875 on Theta, <= -1.25 on Xi
    learner.b_net.init_from_quadratic_form(0.5 * np.eye(2), 1.0, noise=0.0)
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 200, rng=np.random.default_rng(0))
    f_vals = field_values(field, data.s_domain)
    # lambda = -0.1 const: margin = |x|^2 + 0.1(1 - 0.5|x|^2) >= 0.1 > eps
    loss, terms = barrier_loss(
        learner.b_net, learner.lambda_net, data, f_vals, eps=0.01
    )
    assert terms.total == pytest.approx(0.0, abs=1e-9)


def test_loss_positive_for_bad_certificate():
    prob = decay_problem()
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), seed=0))
    # B = -1 + |x|^2: negative on Theta -> init loss positive
    learner.b_net.init_from_quadratic_form(-1.0 * np.eye(2), -1.0, noise=0.0)
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 100, rng=np.random.default_rng(0))
    f_vals = field_values(field, data.s_domain)
    loss, terms = barrier_loss(
        learner.b_net, learner.lambda_net, data, f_vals, eps=0.01
    )
    assert terms.init > 0


def test_loss_robust_gain_term_lowers_margin():
    prob = decay_problem()
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), seed=0))
    learner.b_net.init_from_quadratic_form(np.eye(2), 1.0, noise=0.0)
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 100, rng=np.random.default_rng(0))
    f_vals = field_values(field, data.s_domain)
    gain = [np.ones((100, 2))]
    _, no_robust = barrier_loss(
        learner.b_net, learner.lambda_net, data, f_vals, eps=0.01
    )
    _, robust = barrier_loss(
        learner.b_net,
        learner.lambda_net,
        data,
        f_vals,
        eps=0.01,
        gain_field_values=gain,
        sigma_star=[10.0],
    )
    assert robust.domain >= no_robust.domain


def test_loss_printed_form_differs():
    prob = decay_problem()
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), seed=1))
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 50, rng=np.random.default_rng(3))
    f_vals = field_values(field, data.s_domain)
    _, a = barrier_loss(learner.b_net, learner.lambda_net, data, f_vals)
    _, b = barrier_loss(
        learner.b_net, learner.lambda_net, data, f_vals, paper_printed_form=True
    )
    # both compute; they generally disagree (lambda vs lambda*B)
    assert isinstance(a.domain, float) and isinstance(b.domain, float)


# ----------------------------------------------------------------------
# trainer
# ----------------------------------------------------------------------
def test_learner_converges_on_decay_system():
    prob = decay_problem()
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 300, rng=np.random.default_rng(0))
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(5,), epochs=600, seed=0, warm_start=False))
    terms = learner.fit(data, field)
    assert terms.total < 0.01
    assert learner.empirical_violations(data, field) == (0, 0, 0)


def test_learner_candidate_is_polynomial_pair():
    learner = BarrierLearner(3, LearnerConfig(b_hidden=(5,), seed=0))
    B, lam = learner.candidate()
    assert B.n_vars == 3 and B.degree <= 2
    assert lam.n_vars == 3 and lam.degree <= 1


def test_learner_constant_multiplier():
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), lambda_hidden=None))
    lam = learner.lambda_net.to_polynomial()
    assert lam.degree == 0


def test_learner_square_architecture():
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), b_architecture="square"))
    B, _ = learner.candidate()
    assert B.degree <= 2


def test_learner_invalid_architecture():
    with pytest.raises(ValueError):
        BarrierLearner(2, LearnerConfig(b_architecture="cubic"))


def test_loss_history_recorded():
    prob = decay_problem()
    field = prob.system.closed_loop([])
    data = TrainingData.sample(prob, 50, rng=np.random.default_rng(0))
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), epochs=10, seed=0))
    learner.fit(data, field)
    assert len(learner.loss_history) == 10
