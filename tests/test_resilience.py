"""Tests for the resilience layer: taxonomy, budgets, recovery ladder,
checkpoints, and bit-identical CEGIS resume."""

import json
import os

import numpy as np
import pytest

from repro.cegis import SNBC, SNBCConfig
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import BarrierLearner, LearnerConfig, TrainingData
from repro.nn import Adam, SGD
from repro.nn.layers import Parameter
from repro.poly import Polynomial
from repro.resilience import (
    BudgetExhausted,
    CheckpointError,
    InclusionError,
    LearnerDivergence,
    RecoveryPolicy,
    ReproError,
    SolverNumericalError,
    TimeBudget,
    WorkerCrash,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
    solve_sdp_resilient,
)
from repro.sdp import InteriorPointOptions, SDPProblem, SDPStatus, solve_sdp
from repro.sets import Box
from repro.telemetry import get_telemetry
from repro.telemetry import session as telemetry_session


def unit(n, i, j):
    E = np.zeros((n, n))
    E[i, j] += 0.5
    E[j, i] += 0.5
    if i == j:
        E[i, i] = 1.0
    return E


def min_trace_problem():
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], 2.0)
    return prob


def impossible_problem():
    """Unsafe set inside the initial set: no barrier certificate exists,
    so every CEGIS iteration fails — ideal for checkpoint/resume tests."""
    xs = Polynomial.variables(2)
    sys2 = ControlAffineSystem.autonomous([-1.0 * x for x in xs])
    return CCDS(
        sys2,
        theta=Box.cube(2, -1.0, 1.0),
        psi=Box.cube(2, -2.0, 2.0),
        xi=Box.cube(2, -0.2, 0.2),
    )


def snbc_for(problem, **config_kwargs):
    defaults = dict(max_iterations=2, n_samples=100, seed=0)
    defaults.update(config_kwargs)
    return SNBC(
        problem,
        learner_config=LearnerConfig(b_hidden=(4,), epochs=40, seed=0),
        config=SNBCConfig(**defaults),
    )


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------
def test_error_defaults_and_to_dict():
    exc = SolverNumericalError("cholesky blew up", condition="lie")
    assert isinstance(exc, ReproError)
    assert exc.kind == "SolverNumericalError"
    assert exc.phase == "verification"
    d = exc.to_dict()
    assert d["kind"] == "SolverNumericalError"
    assert d["message"] == "cholesky blew up"
    assert d["details"] == {"condition": "lie"}
    assert "[verification] cholesky blew up" == str(exc)


def test_error_cause_and_phase_override():
    cause = np.linalg.LinAlgError("singular")
    exc = WorkerCrash("worker died", phase="bench", cause=cause, system="C3")
    assert exc.phase == "bench"
    assert exc.__cause__ is cause
    d = exc.to_dict()
    assert d["cause"] == "LinAlgError: singular"
    assert d["details"]["system"] == "C3"
    json.dumps(d)  # must be JSON-safe for BENCH rows


def test_error_details_render_jsonable():
    exc = InclusionError("bad", array=np.zeros(2))
    json.dumps(exc.to_dict())  # non-primitive details stringified


def test_taxonomy_default_phases():
    assert LearnerDivergence("x").phase == "learning"
    assert InclusionError("x").phase == "inclusion"
    assert BudgetExhausted("x").phase == "run"
    assert WorkerCrash("x").phase == "parallel"
    assert CheckpointError("x").phase == "checkpoint"


# ----------------------------------------------------------------------
# time budgets
# ----------------------------------------------------------------------
def test_unarmed_budget_never_raises():
    budget = TimeBudget()
    assert not budget.armed
    assert budget.remaining() is None
    budget.check("anywhere")  # no-op


def test_total_budget_overrun_raises():
    now = [0.0]
    budget = TimeBudget(total_s=10.0, clock=lambda: now[0])
    budget.check("learning")
    now[0] = 9.0
    budget.check("learning")
    assert budget.remaining() == pytest.approx(1.0)
    now[0] = 10.5
    with pytest.raises(BudgetExhausted) as err:
        budget.check("verification")
    assert err.value.phase == "verification"
    assert err.value.details["budget_s"] == 10.0


def test_iteration_budget_resets_each_iteration():
    now = [0.0]
    budget = TimeBudget(iteration_s=5.0, clock=lambda: now[0])
    budget.start_iteration(1)
    now[0] = 4.0
    budget.check()
    budget.start_iteration(2)  # window resets at 4.0
    now[0] = 8.0
    budget.check()
    now[0] = 9.5
    with pytest.raises(BudgetExhausted) as err:
        budget.check()
    assert err.value.details["iteration"] == 2


def test_remaining_is_tightest_window():
    now = [0.0]
    budget = TimeBudget(total_s=100.0, iteration_s=5.0, clock=lambda: now[0])
    budget.start_iteration(1)
    now[0] = 3.0
    assert budget.remaining() == pytest.approx(2.0)  # iteration window


def test_budget_rejects_nonpositive():
    with pytest.raises(ValueError):
        TimeBudget(total_s=0.0)
    with pytest.raises(ValueError):
        TimeBudget(iteration_s=-1.0)


# ----------------------------------------------------------------------
# SDP recovery ladder
# ----------------------------------------------------------------------
def test_resilient_solve_is_bit_identical_on_healthy_instance():
    base = solve_sdp(min_trace_problem())
    res = solve_sdp_resilient(min_trace_problem())
    assert res.status == SDPStatus.OPTIMAL
    assert res.message == base.message
    assert res.primal_objective == base.primal_objective  # bitwise
    assert np.array_equal(res.X[0], base.X[0])


def test_recovery_ladder_recovers_injected_nonconvergence(tmp_path):
    from repro.diagnostics import faultinject as fi

    with telemetry_session(str(tmp_path / "t.jsonl")) as tel:
        # base solve fails; the first ladder strategy solves untouched
        with fi.inject(fi.solver_nonconvergence(at_call=1, times=1)) as plan:
            res = solve_sdp_resilient(min_trace_problem())
        assert plan.fired_sites() == ["sdp.nonconvergence"]
        assert res.status == SDPStatus.OPTIMAL
        assert "recovered via rescale" in res.message
        assert res.primal_objective == pytest.approx(2.0, abs=1e-5)
        assert tel.metrics.counter_value("sdp.recovery.engaged") == 1
        assert tel.metrics.counter_value("sdp.recovery.rescale.attempts") == 1
        assert tel.metrics.counter_value("sdp.recovery.rescale.successes") == 1


def test_recovery_ladder_exhausts_on_persistent_fault(tmp_path):
    from repro.diagnostics import faultinject as fi

    with telemetry_session(str(tmp_path / "t.jsonl")) as tel:
        with fi.inject(fi.solver_nonconvergence(times=100)) as plan:
            res = solve_sdp_resilient(min_trace_problem())
        assert len(plan.fired_sites()) == 5  # base + 4 ladder attempts
        assert res.status == SDPStatus.MAX_ITERATIONS
        assert "recovery ladder exhausted" in res.message
        assert tel.metrics.counter_value("sdp.recovery.exhausted") == 1


def test_recovery_policy_disabled_returns_base_failure():
    from repro.diagnostics import faultinject as fi

    with fi.inject(fi.solver_nonconvergence(times=100)) as plan:
        res = solve_sdp_resilient(
            min_trace_problem(), policy=RecoveryPolicy(enabled=False)
        )
    assert plan.fired_sites() == ["sdp.nonconvergence"]  # no retries ran
    assert res.status == SDPStatus.MAX_ITERATIONS


def test_recovery_ladder_not_engaged_on_infeasible():
    # a definitive infeasibility verdict must not be retried
    prob = SDPProblem([2])
    prob.set_trace_objective()
    prob.add_constraint([unit(2, 0, 0)], -1.0)
    opts = InteriorPointOptions(max_iterations=200)
    base = solve_sdp(prob, opts)
    res = solve_sdp_resilient(prob, opts)
    assert res.status == base.status
    assert res.message == base.message


# ----------------------------------------------------------------------
# checkpoint envelope
# ----------------------------------------------------------------------
def test_checkpoint_round_trip(tmp_path):
    path = str(tmp_path / "ck.json")
    save_checkpoint(path, {"iteration": 3, "x": [1.5, 2.25]})
    doc = load_checkpoint(path)
    assert doc["iteration"] == 3
    assert doc["x"] == [1.5, 2.25]
    assert doc["kind"] == "SNBC_checkpoint"


def test_checkpoint_envelope_rejects_wrong_kind(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as fh:
        json.dump({"kind": "something_else"}, fh)
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_checkpoint_envelope_rejects_wrong_version(tmp_path):
    path = str(tmp_path / "old.json")
    with open(path, "w") as fh:
        json.dump({"kind": "SNBC_checkpoint", "schema_version": 999}, fh)
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_checkpoint_missing_file_raises_typed_error(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "nope.json"))


def test_checkpoint_write_failure_is_typed(tmp_path):
    target = tmp_path / "afile"
    target.write_text("not a directory")
    with pytest.raises(CheckpointError):
        save_checkpoint(str(target / "ck.json"), {})


def test_rng_state_round_trip_is_bit_exact():
    gen = np.random.default_rng(42)
    gen.normal(size=7)  # advance
    state = rng_state(gen)
    json_state = json.loads(json.dumps(state))  # survives JSON
    expected = gen.normal(size=5)
    fresh = np.random.default_rng(0)
    restore_rng(fresh, json_state)
    assert np.array_equal(fresh.normal(size=5), expected)


# ----------------------------------------------------------------------
# optimizer / learner state
# ----------------------------------------------------------------------
def test_adam_state_dict_round_trip():
    p1 = [Parameter(np.ones((2, 2))), Parameter(np.zeros(3))]
    opt1 = Adam(p1, lr=0.1)
    for _ in range(3):
        for p in p1:
            p.grad = np.full_like(p.data, 0.5)
        opt1.step()
    p2 = [Parameter(p.data.copy()) for p in p1]
    opt2 = Adam(p2, lr=0.1)
    opt2.load_state_dict(json.loads(json.dumps(opt1.state_dict())))
    for p in p1 + p2:
        p.grad = np.full_like(p.data, 0.25)
    opt1.step()
    opt2.step()
    for a, b in zip(p1, p2):
        assert np.array_equal(a.data, b.data)


def test_sgd_state_dict_round_trip():
    p1 = [Parameter(np.ones(4))]
    opt1 = SGD(p1, lr=0.1, momentum=0.9)
    p1[0].grad = np.full(4, 1.0)
    opt1.step()
    p2 = [Parameter(p1[0].data.copy())]
    opt2 = SGD(p2, lr=0.1, momentum=0.9)
    opt2.load_state_dict(opt1.state_dict())
    p1[0].grad = np.full(4, 1.0)
    p2[0].grad = np.full(4, 1.0)
    opt1.step()
    opt2.step()
    assert np.array_equal(p1[0].data, p2[0].data)


def test_optimizer_state_size_mismatch_rejected():
    opt = Adam([Parameter(np.zeros(2))])
    with pytest.raises(ValueError):
        opt.load_state_dict({"t": 1, "m": [], "v": []})


def test_learner_snapshot_restore_is_bit_exact():
    prob = impossible_problem()
    rng = np.random.default_rng(0)
    data = TrainingData.sample(prob, 50, rng=rng)
    learner = BarrierLearner(
        2, LearnerConfig(b_hidden=(4,), epochs=10, seed=0)
    )
    field = prob.system.closed_loop([])
    learner.fit(data, field, epochs=5)
    snap = json.loads(json.dumps(learner.snapshot()))
    before = [p.data.copy() for p in learner._params]
    learner.fit(data, field, epochs=5)  # mutate further
    learner.restore(snap)
    for p, b in zip(learner._params, before):
        assert np.array_equal(p.data, b)


def test_learner_restore_rejects_mismatched_snapshot():
    learner = BarrierLearner(2, LearnerConfig(b_hidden=(4,), seed=0))
    with pytest.raises(ValueError):
        learner.restore({"params": [], "optimizer": {}})


# ----------------------------------------------------------------------
# SNBC outcomes, budgets, checkpoint/resume
# ----------------------------------------------------------------------
def test_snbc_result_outcome_backfills_from_success():
    from repro.cegis.snbc import PhaseTimings, SNBCResult

    ok = SNBCResult(True, None, None, 1, PhaseTimings(), [], None, None)
    bad = SNBCResult(False, None, None, 1, PhaseTimings(), [], None, None)
    assert ok.outcome == "verified"
    assert bad.outcome == "not_verified"


def test_snbc_time_budget_yields_clean_timeout():
    res = snbc_for(impossible_problem(), time_budget_s=1e-9).run()
    assert res.outcome == "timeout"
    assert res.timed_out
    assert not res.success
    assert res.error["kind"] == "BudgetExhausted"


def test_snbc_iteration_budget_yields_clean_timeout():
    res = snbc_for(
        impossible_problem(), max_iterations=3, iteration_budget_s=1e-9
    ).run()
    assert res.outcome == "timeout"
    assert res.error["details"]["budget_s"] == 1e-9


def test_snbc_checkpoint_resume_bit_identical(tmp_path):
    ck_full = str(tmp_path / "full.json")
    ck_part = str(tmp_path / "part.json")

    full = snbc_for(
        impossible_problem(), max_iterations=4, checkpoint_path=ck_full
    ).run()
    # "interrupted" run: stop after 2 iterations, then resume to 4
    snbc_for(
        impossible_problem(), max_iterations=2, checkpoint_path=ck_part
    ).run()
    resumed = snbc_for(impossible_problem(), max_iterations=4).run(
        resume_from=ck_part
    )

    assert resumed.resumed_from_iteration == 2
    assert resumed.iterations == full.iterations
    assert resumed.outcome == full.outcome
    # bit-identical trajectory: losses, violations, lineage, certificate
    assert [r.loss for r in resumed.history] == [r.loss for r in full.history]
    assert [r.worst_violation for r in resumed.history] == [
        r.worst_violation for r in full.history
    ]
    assert len(resumed.counterexamples) == len(full.counterexamples)
    for a, b in zip(full.counterexamples, resumed.counterexamples):
        assert a.to_dict() == b.to_dict()
    assert str(resumed.barrier) == str(full.barrier)
    assert str(resumed.lambda_poly) == str(full.lambda_poly)


def test_snbc_resume_rejects_mismatched_checkpoint(tmp_path):
    ck = str(tmp_path / "seed0.json")
    snbc_for(impossible_problem(), checkpoint_path=ck).run()
    res = snbc_for(impossible_problem(), seed=1).run(resume_from=ck)
    assert res.outcome == "error"
    assert res.error["kind"] == "CheckpointError"


def test_snbc_resume_missing_checkpoint_is_clean_error(tmp_path):
    res = snbc_for(impossible_problem()).run(
        resume_from=str(tmp_path / "missing.json")
    )
    assert res.outcome == "error"
    assert res.error["kind"] == "CheckpointError"


def test_checkpoint_survives_json_reload(tmp_path):
    ck = str(tmp_path / "ck.json")
    snbc_for(impossible_problem(), checkpoint_path=ck).run()
    doc = load_checkpoint(ck)
    assert doc["iteration"] == 2
    assert doc["problem"] == impossible_problem().name
    assert set(doc["rng"]) == {"sampling", "learner", "cex"}
    assert len(doc["history"]) == 2


# ----------------------------------------------------------------------
# bench rows / regression gate
# ----------------------------------------------------------------------
def test_bench_entry_maps_new_outcomes():
    from repro.diagnostics import bench_entry

    res = snbc_for(impossible_problem(), time_budget_s=1e-9).run()
    row = bench_entry(res)
    assert row["outcome"] == "timeout"
    assert row["error"]["kind"] == "BudgetExhausted"
    json.dumps(row)


def test_error_entry_records_exception_class():
    from repro.diagnostics import error_entry

    row = error_entry(WorkerCrash("worker died", system="C9"))
    assert row["outcome"] == "error"
    assert row["error"]["kind"] == "WorkerCrash"
    assert row["iterations"] == 0
    row2 = error_entry(RuntimeError("boom"))
    assert row2["error"] == {"kind": "RuntimeError", "message": "boom"}


def test_regress_flags_new_failure_class():
    from repro.diagnostics.regress import compare_benches

    def doc(outcome, error=None):
        row = {
            "outcome": outcome,
            "iterations": 1,
            "timings": {k: 0.0 for k in ("T_l", "T_c", "T_v", "T_e", "inclusion")},
        }
        if error:
            row["error"] = error
        return {"scale": "smoke", "systems": {"C1": row}}

    # failure -> timeout is a NEW failure class: hard regression
    out = compare_benches(doc("failure"), doc("timeout"))
    assert any("new failure class" in r for r in out["regressions"])
    # failure -> error likewise, and the kind is named
    out = compare_benches(
        doc("failure"), doc("error", {"kind": "LearnerDivergence"})
    )
    assert any("LearnerDivergence" in r for r in out["regressions"])
    # success -> timeout caught by the outcome check
    out = compare_benches(doc("success"), doc("timeout"))
    assert any("outcome regressed" in r for r in out["regressions"])
    # timeout -> timeout is stable, not a regression
    out = compare_benches(doc("timeout"), doc("timeout"))
    assert out["regressions"] == []
    # failure -> failure unchanged
    out = compare_benches(doc("failure"), doc("failure"))
    assert out["regressions"] == []
