"""Tests for the telemetry subsystem (spans, metrics, manifest, report)."""

import json
import threading
import time

import pytest

from repro.telemetry import (
    InMemorySink,
    JSONLSink,
    MetricsRegistry,
    NullSink,
    RunManifest,
    Telemetry,
    Tracer,
    configure,
    disable,
    get_telemetry,
    load_events,
    platform_info,
    session,
)
from repro.telemetry.metrics import percentile
from repro.telemetry.report import (
    cache_rates,
    ipm_subphase_totals,
    metrics_summary,
    phase_totals,
    render_report,
    span_aggregates,
    span_self_times,
)
from repro.telemetry.report import main as report_main


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_nested_spans_record_parent_ids():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner"):
                pass
        assert middle.parent_id == outer.span_id
    events = sink.spans()
    assert [e["name"] for e in events] == ["inner", "middle", "outer"]
    by_name = {e["name"]: e for e in events}
    assert by_name["inner"]["parent_id"] == by_name["middle"]["span_id"]
    assert by_name["middle"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["parent_id"] is None


def test_span_durations_and_attrs():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with tracer.span("work", kind="test") as sp:
        time.sleep(0.01)
        sp.set_attr("items", 3)
    event = sink.spans("work")[0]
    assert event["duration"] >= 0.01
    assert event["t_end"] >= event["t_start"]
    assert event["attrs"] == {"kind": "test", "items": 3}


def test_span_records_exceptions_and_reraises():
    sink = InMemorySink()
    tracer = Tracer(sink)
    with pytest.raises(RuntimeError):
        with tracer.span("explodes"):
            raise RuntimeError("boom")
    event = sink.spans("explodes")[0]
    assert "RuntimeError: boom" in event["attrs"]["error"]


def test_disabled_tracer_times_but_emits_nothing():
    sink = InMemorySink()
    tracer = Tracer(sink, enabled=False)
    with tracer.span("quiet") as sp:
        pass
    assert sp.duration >= 0.0
    assert sink.events == []


def test_noop_span_overhead_is_small():
    tel = Telemetry(NullSink(), enabled=False)
    n = 5000
    t0 = time.perf_counter()
    for _ in range(n):
        with tel.span("hot"):
            pass
        tel.metrics.inc("c")
        tel.metrics.observe("h", 1.0)
    per_call = (time.perf_counter() - t0) / n
    # generous CI bound; the actual cost is a few microseconds
    assert per_call < 200e-6


def test_tracer_is_thread_safe():
    sink = InMemorySink()
    tracer = Tracer(sink)

    def worker(tag):
        for _ in range(50):
            with tracer.span(f"w{tag}"):
                pass

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(sink.spans()) == 200
    ids = [e["span_id"] for e in sink.spans()]
    assert len(set(ids)) == len(ids)  # unique ids across threads


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    sink = JSONLSink(path)
    tracer = Tracer(sink)
    with tracer.span("phase1", phase="learning"):
        with tracer.span("sub", detail=1):
            pass
    tracer.emit_event("note", text="hello")
    sink.close()

    events = load_events(path)
    assert [e["type"] for e in events] == ["span", "span", "note"]
    spans = [e for e in events if e["type"] == "span"]
    assert spans[0]["name"] == "sub"
    assert spans[1]["attrs"]["phase"] == "learning"
    assert spans[0]["parent_id"] == spans[1]["span_id"]


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_percentile_interpolation():
    vals = sorted(float(v) for v in range(1, 101))
    assert percentile(vals, 0.0) == 1.0
    assert percentile(vals, 100.0) == 100.0
    assert percentile(vals, 50.0) == pytest.approx(50.5)
    assert percentile(vals, 95.0) == pytest.approx(95.05)
    assert percentile([7.0], 95.0) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 150.0)


def test_metrics_registry_summary():
    reg = MetricsRegistry()
    reg.inc("runs")
    reg.inc("runs", 2)
    reg.gauge("loss", 0.5)
    reg.gauge("loss", 0.25)
    for v in range(1, 101):
        reg.observe("lat", float(v))
    summary = reg.summary()
    assert summary["counters"]["runs"] == 3.0
    assert summary["gauges"]["loss"] == 0.25
    hist = summary["histograms"]["lat"]
    assert hist["count"] == 100
    assert hist["min"] == 1.0
    assert hist["max"] == 100.0
    assert hist["p50"] == pytest.approx(50.5)
    assert hist["p95"] == pytest.approx(95.05)


def test_histogram_p99_max_and_to_dict():
    reg = MetricsRegistry()
    for v in range(1, 101):
        reg.observe("lat", float(v))
    hist = reg.summary()["histograms"]["lat"]
    assert hist["p99"] == pytest.approx(99.01)
    assert hist["max"] == 100.0
    assert hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]
    # to_dict is the JSON-ready alias the diagnostics reports consume
    assert reg.to_dict() == reg.summary()
    assert json.dumps(reg.to_dict())  # serializable as-is


def test_disabled_metrics_record_nothing():
    reg = MetricsRegistry(enabled=False)
    reg.inc("a")
    reg.gauge("b", 1.0)
    reg.observe("c", 2.0)
    summary = reg.summary()
    assert summary == {"counters": {}, "gauges": {}, "histograms": {}}


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def test_manifest_schema(tmp_path):
    from repro.cegis import SNBCConfig

    manifest = RunManifest.create(
        "unit-test", config=SNBCConfig(seed=7), seed=7, trace_path="t.jsonl"
    )
    manifest.finish("success", iterations=3)
    path = str(tmp_path / "run.manifest.json")
    manifest.write(path)
    loaded = RunManifest.load(path)
    for key in (
        "name", "seed", "config", "trace_path", "git_sha", "platform",
        "started_at", "finished_at", "outcome", "elapsed_seconds",
        "extra", "schema_version",
    ):
        assert key in loaded, key
    assert loaded["name"] == "unit-test"
    assert loaded["seed"] == 7
    assert loaded["outcome"] == "success"
    assert loaded["config"]["seed"] == 7  # dataclass echoed as dict
    assert loaded["extra"]["iterations"] == 3
    assert loaded["elapsed_seconds"] >= 0.0
    assert loaded["platform"]["python"] == platform_info()["python"]


# ----------------------------------------------------------------------
# runtime / session
# ----------------------------------------------------------------------
def test_default_telemetry_is_disabled():
    tel = get_telemetry()
    assert not tel.enabled
    with tel.span("anything") as sp:
        pass
    assert sp.duration >= 0.0


def test_configure_and_disable_swap_default():
    sink = InMemorySink()
    tel = configure(sink)
    try:
        assert get_telemetry() is tel
        with get_telemetry().span("visible"):
            pass
        assert len(sink.spans("visible")) == 1
    finally:
        disable()
    assert not get_telemetry().enabled


def test_session_writes_trace_and_manifest(tmp_path):
    trace = str(tmp_path / "run.jsonl")
    with session(trace, name="sess", config={"k": 1}, seed=42) as tel:
        assert get_telemetry() is tel
        with tel.span("snbc.learning", phase="learning"):
            pass
        tel.metrics.inc("cegis.iterations")
    # default restored, files written
    assert not get_telemetry().enabled
    events = load_events(trace)
    assert any(e["type"] == "span" for e in events)
    assert events[-1]["type"] == "metrics"
    assert events[-1]["summary"]["counters"]["cegis.iterations"] == 1.0
    manifest = RunManifest.load(str(tmp_path / "run.manifest.json"))
    assert manifest["seed"] == 42
    assert manifest["outcome"] == "success"
    assert manifest["config"] == {"k": 1}


def test_concurrent_sessions_do_not_interleave(tmp_path):
    """Two sessions in sibling threads must each get their own sink.

    Before per-context activation this interleaved both runs' events
    into whichever trace was installed last.
    """
    barrier = threading.Barrier(2)
    errors = []

    def run(tag):
        trace = str(tmp_path / f"{tag}.jsonl")
        try:
            with session(trace, name=tag) as tel:
                barrier.wait(timeout=10)  # both sessions open at once
                for i in range(20):
                    with tel.span(f"work.{tag}", i=i):
                        pass
                tel.metrics.inc(f"count.{tag}", 20)
                barrier.wait(timeout=10)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(t,)) for t in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for tag, other in (("a", "b"), ("b", "a")):
        events = load_events(str(tmp_path / f"{tag}.jsonl"))
        spans = [e for e in events if e.get("type") == "span"]
        assert len(spans) == 20
        assert all(e["name"] == f"work.{tag}" for e in spans)
        counters = events[-1]["summary"]["counters"]
        assert counters == {f"count.{tag}": 20.0}
        assert f"count.{other}" not in counters


def test_session_is_context_scoped_not_global(tmp_path):
    """A thread spawned outside any session keeps the disabled default
    even while another thread has a session open."""
    seen = {}
    started = threading.Event()
    release = threading.Event()

    def outsider():
        started.wait(timeout=10)
        seen["enabled"] = get_telemetry().enabled
        release.set()

    t = threading.Thread(target=outsider)
    t.start()
    with session(str(tmp_path / "scoped.jsonl"), name="scoped"):
        started.set()
        release.wait(timeout=10)
    t.join()
    assert seen["enabled"] is False


def test_session_marks_errors(tmp_path):
    trace = str(tmp_path / "bad.jsonl")
    with pytest.raises(ValueError):
        with session(trace, name="boom"):
            raise ValueError("nope")
    manifest = RunManifest.load(str(tmp_path / "bad.manifest.json"))
    assert manifest["outcome"] == "error"
    assert "nope" in manifest["extra"]["error"]
    assert not get_telemetry().enabled


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def _sample_trace(tmp_path):
    trace = str(tmp_path / "t.jsonl")
    with session(trace, name="report-test", seed=0) as tel:
        for phase, secs in (("learning", 0.0), ("verification", 0.0)):
            with tel.span(f"snbc.{phase}", phase=phase):
                pass
        with tel.span("sdp.solve"):
            pass
        tel.metrics.inc("cegis.iterations", 2)
        tel.metrics.gauge("cegis.loss", 0.01)
        tel.metrics.observe("sdp.iterations", 12.0)
    return trace


def test_phase_totals_skip_unphased_spans(tmp_path):
    events = load_events(_sample_trace(tmp_path))
    totals = phase_totals(events)
    assert set(totals) == {"learning", "verification"}
    aggregates = {name for name, *_ in span_aggregates(events)}
    assert "sdp.solve" in aggregates
    assert metrics_summary(events)["counters"]["cegis.iterations"] == 2.0


def test_render_report_text_and_markdown(tmp_path):
    events = load_events(_sample_trace(tmp_path))
    text = render_report(events, fmt="text")
    assert "Phases" in text and "learning" in text and "cegis.iterations" in text
    md = render_report(events, fmt="markdown")
    assert "## Phases" in md and "| phase |" in md


def test_cache_rates_pairs_hit_miss_counters():
    rows = cache_rates({
        "verifier.workspace.hits": 3.0,
        "verifier.workspace.misses": 1.0,
        "poly.compile_cache.misses": 2.0,  # cold cache: misses only
        "cegis.iterations": 5.0,           # not a cache counter
    })
    assert rows == [
        ("poly.compile_cache", 0, 2, 0.0),
        ("verifier.workspace", 3, 1, 0.75),
    ]
    assert cache_rates({"cegis.iterations": 5.0}) == []


def test_render_report_caches_section(tmp_path):
    trace = str(tmp_path / "caches.jsonl")
    with session(trace, name="cache-test") as tel:
        tel.metrics.inc("verifier.workspace.hits", 3)
        tel.metrics.inc("verifier.workspace.misses")
    events = load_events(trace)
    text = render_report(events, fmt="text")
    assert "Caches" in text and "verifier.workspace" in text and "75.0%" in text


def test_report_cli_main(tmp_path, capsys):
    trace = _sample_trace(tmp_path)
    assert report_main([trace]) == 0
    out = capsys.readouterr().out
    # manifest auto-detected next to the trace
    assert "report-test" in out
    assert "learning" in out
    assert "sdp.iterations" in out


def test_report_cli_json_format(tmp_path, capsys):
    trace = _sample_trace(tmp_path)
    assert report_main([trace, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"manifest", "phases", "spans", "workers",
                            "metrics", "caches", "ipm_subphases"}
    assert payload["manifest"]["name"] == "report-test"
    assert set(payload["phases"]) == {"learning", "verification"}
    assert payload["metrics"]["counters"]["cegis.iterations"] == 2.0
    assert any(s["name"] == "sdp.solve" for s in payload["spans"])


def test_report_cli_all_lines_malformed_fails(tmp_path, capsys):
    trace = str(tmp_path / "garbage.jsonl")
    with open(trace, "w") as fh:
        fh.write("not json\n{also broken\n")
    assert report_main([trace]) == 1
    assert "malformed" in capsys.readouterr().err


def test_report_cli_partial_corruption_warns(tmp_path, capsys):
    trace = _sample_trace(tmp_path)
    with open(trace, "a") as fh:
        fh.write('{"type": "span", "name": "tru')  # crash mid-write
    assert report_main([trace]) == 0
    captured = capsys.readouterr()
    assert "skipped 1 malformed line" in captured.err
    assert "learning" in captured.out


# ----------------------------------------------------------------------
# self time
# ----------------------------------------------------------------------
def _span_event(name, span_id, parent_id, duration):
    return {"type": "span", "name": name, "span_id": span_id,
            "parent_id": parent_id, "duration": duration, "attrs": {}}


def test_span_self_times_subtract_direct_children():
    events = [
        _span_event("leaf", 3, 2, 0.2),
        _span_event("mid", 2, 1, 0.5),
        _span_event("root", 1, None, 1.0),
    ]
    selfs = span_self_times(events)
    assert selfs[3] == pytest.approx(0.2)   # leaf: no children
    assert selfs[2] == pytest.approx(0.3)   # 0.5 - 0.2
    assert selfs[1] == pytest.approx(0.5)   # 1.0 - 0.5 (direct child only)


def test_span_self_times_floor_at_zero():
    # clock jitter: children sum past the parent
    events = [
        _span_event("kid", 2, 1, 0.6),
        _span_event("kid", 3, 1, 0.6),
        _span_event("root", 1, None, 1.0),
    ]
    assert span_self_times(events)[1] == 0.0


def test_span_aggregates_include_self_column():
    events = [
        _span_event("inner", 2, 1, 0.4),
        _span_event("outer", 1, None, 1.0),
    ]
    rows = {name: (count, total, self_total, mean, mx)
            for name, count, total, self_total, mean, mx
            in span_aggregates(events)}
    assert rows["outer"][1] == pytest.approx(1.0)   # total is inclusive
    assert rows["outer"][2] == pytest.approx(0.6)   # self excludes child
    assert rows["inner"][2] == pytest.approx(0.4)
    text = render_report(events, fmt="text")
    assert "self s" in text


def test_report_payload_span_rows_carry_self(tmp_path):
    from repro.telemetry.report import report_payload
    events = load_events(_sample_trace(tmp_path))
    payload = report_payload(events)
    assert payload["spans"]
    for row in payload["spans"]:
        assert set(row) == {"name", "count", "total", "self", "mean", "max"}
        assert 0.0 <= row["self"] <= row["total"] + 1e-12


# ----------------------------------------------------------------------
# JSONLSink max_bytes
# ----------------------------------------------------------------------
def test_jsonl_sink_unbounded_by_default(tmp_path):
    path = str(tmp_path / "unbounded.jsonl")
    sink = JSONLSink(path)
    for i in range(100):
        sink.emit({"type": "note", "i": i})
    sink.close()
    assert not sink.truncated
    assert len(load_events(path)) == 100


def test_jsonl_sink_max_bytes_truncates_with_markers(tmp_path):
    path = str(tmp_path / "bounded.jsonl")
    sink = JSONLSink(path, max_bytes=200)
    for i in range(50):
        sink.emit({"type": "note", "i": i, "pad": "x" * 20})
    assert sink.truncated
    dropped = sink.dropped_events
    assert dropped > 0
    sink.close()

    events = load_events(path)
    # some real events were written before the bound
    assert any(e.get("type") == "note" for e in events)
    markers = [e for e in events if e.get("type") == "trace_truncated"]
    assert len(markers) == 2  # cut-point marker + closing total
    assert markers[0]["max_bytes"] == 200
    assert markers[0]["bytes_written"] <= 200
    assert markers[-1]["dropped_events"] == dropped
    # the bound holds for everything before the closing marker
    assert sum(
        len(json.dumps(e, separators=(",", ":")).encode()) + 1
        for e in events[:-1]
    ) <= 200 + len(json.dumps(markers[0], separators=(",", ":"))) + 1


def test_jsonl_sink_emit_after_close_is_noop(tmp_path):
    path = str(tmp_path / "closed.jsonl")
    sink = JSONLSink(path, max_bytes=10_000)
    sink.emit({"type": "note"})
    sink.close()
    sink.emit({"type": "late"})  # must not raise or write
    assert [e["type"] for e in load_events(path)] == ["note"]


def test_session_passes_max_bytes_through(tmp_path):
    trace = str(tmp_path / "tight.jsonl")
    with session(trace, name="tight", max_bytes=300) as tel:
        for i in range(200):
            with tel.span("filler", i=i, pad="y" * 30):
                pass
    events = load_events(trace)
    assert any(e.get("type") == "trace_truncated" for e in events)


# ----------------------------------------------------------------------
# JSONLSink flush_every (line-granular durability)
# ----------------------------------------------------------------------
def test_jsonl_sink_flushes_every_line_by_default(tmp_path):
    path = str(tmp_path / "live.jsonl")
    sink = JSONLSink(path)
    sink.emit({"type": "a"})
    sink.emit({"type": "b"})
    # visible on disk immediately, without close(): this is what lets
    # `tail` follow a live trace and crash post-mortems see everything
    assert [e["type"] for e in load_events(path)] == ["a", "b"]
    sink.close()


def test_jsonl_sink_flush_every_zero_buffers_until_close(tmp_path):
    path = str(tmp_path / "buffered.jsonl")
    sink = JSONLSink(path, flush_every=0)
    sink.emit({"type": "a"})  # small enough to sit in the IO buffer
    assert load_events(path) == []
    sink.close()
    assert [e["type"] for e in load_events(path)] == ["a"]


def test_jsonl_sink_flush_every_n(tmp_path):
    path = str(tmp_path / "batched.jsonl")
    sink = JSONLSink(path, flush_every=3)
    sink.emit({"type": "a"})
    sink.emit({"type": "b"})
    assert load_events(path) == []  # batch not full yet
    sink.emit({"type": "c"})  # third line triggers the flush
    assert [e["type"] for e in load_events(path)] == ["a", "b", "c"]
    sink.close()


def test_ipm_subphase_totals_aggregates_trace_events():
    nan = float("nan")
    events = [
        {"type": "sdp.ipm_trace", "records": [
            {"iteration": 1, "t_z_factor": 0.01, "t_schur_assembly": 0.02,
             "t_schur_factor": 0.005, "t_line_search": 0.03},
            {"iteration": 2, "t_z_factor": 0.01, "t_schur_assembly": nan,
             "t_schur_factor": 0.005, "t_line_search": nan},
        ]},
        {"type": "metric_snapshot"},  # ignored
        {"type": "sdp.ipm_trace", "records": [
            {"iteration": 1, "t_z_factor": 0.02},
        ]},
    ]
    rows = ipm_subphase_totals(events)
    by_phase = {r["phase"]: r for r in rows}
    assert by_phase["z_factor"]["iterations"] == 3
    assert by_phase["z_factor"]["seconds"] == pytest.approx(0.04)
    # nan timers (early-exit iterations) are skipped, not counted
    assert by_phase["schur_assembly"]["iterations"] == 1
    assert by_phase["line_search"]["seconds"] == pytest.approx(0.03)
    for r in rows:
        assert r["mean_s"] == pytest.approx(r["seconds"] / r["iterations"])


def test_ipm_subphase_totals_empty_without_trace_events():
    assert ipm_subphase_totals([]) == []
    assert ipm_subphase_totals([{"type": "span"}]) == []
