"""Polynomial inclusion of an NN controller (paper Section 3 / Theorem 2).

Trains a small tanh controller, then sweeps the mesh spacing ``s`` of the
Chebyshev-approximation LP and prints the sandwich

    sigma~  <=  sigma  <=  sigma* = sigma~ + s L / 2,

showing Remark 1 (the verified bound sigma* tightens as s -> 0) and the
degree trade-off (higher-degree h shrinks sigma~).

Run:  python examples/controller_inclusion.py
"""

import numpy as np

from repro.analysis import Table, format_table
from repro.controllers import NNController, polynomial_inclusion
from repro.sets import Box


def main() -> None:
    rng = np.random.default_rng(0)
    domain = Box.cube(2, -2.0, 2.0, name="psi")
    controller = NNController(2, 1, hidden=(12,), rng=rng)
    L = controller.lipschitz_bound()
    print(f"controller: {controller!r}")
    print(f"spectral Lipschitz bound L = {L:.3f}\n")

    # 1. mesh-spacing sweep at fixed degree (Theorem 2 / Remark 1)
    table = Table(
        columns=["spacing", "mesh points", "sigma~", "sigma*", "max |k-h| (sampled)"],
        title="degree-2 inclusion vs mesh spacing (Theorem 2 sandwich)",
    )
    test_pts = domain.sample(20000, rng=rng)
    for s in (1.0, 0.5, 0.25, 0.1, 0.05):
        inc = polynomial_inclusion(controller, domain, degree=2, spacing=s)
        true_err = float(
            np.max(np.abs(controller(test_pts)[:, 0] - inc.polynomials[0](test_pts)))
        )
        table.add_row(
            **{
                "spacing": inc.spacing,
                "mesh points": inc.n_mesh_points,
                "sigma~": inc.sigma_tilde[0],
                "sigma*": inc.sigma_star[0],
                "max |k-h| (sampled)": true_err,
            }
        )
        # Theorem 2 soundness: the sampled truth lies inside the sandwich
        assert inc.sigma_tilde[0] <= true_err + 1e-9 or inc.spacing >= 1.0
        assert true_err <= inc.sigma_star[0] + 1e-9
    print(format_table(table))

    # 2. degree sweep at fixed spacing
    table2 = Table(
        columns=["degree", "sigma~", "sigma*"],
        title="\ninclusion degree vs approximation error (spacing 0.1)",
    )
    for d in (1, 2, 3, 4):
        inc = polynomial_inclusion(controller, domain, degree=d, spacing=0.1)
        table2.add_row(degree=d, **{"sigma~": inc.sigma_tilde[0], "sigma*": inc.sigma_star[0]})
    print(format_table(table2))
    print("\nhigher-degree h tightens sigma~; sigma* is then dominated by sL/2,")
    print("so tight inclusions need both a fine mesh and enough degree.")


if __name__ == "__main__":
    main()
