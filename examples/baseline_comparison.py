"""Head-to-head on one benchmark: SNBC vs FOSSIL / NNCChecker / SOSTOOLS.

A single-row slice of Table 1: all four tools attack the same 2D benchmark
(C1) with the same NN controller; the script prints per-tool learning /
verification / total times.  The full 14-system sweep lives in
``benchmarks/bench_table1_*.py``.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.analysis import Table, format_table
from repro.baselines import (
    FossilBaseline,
    FossilConfig,
    NNCCheckerBaseline,
    NNCCheckerConfig,
    SOSToolsBaseline,
    SOSToolsConfig,
)
from repro.benchmarks import get_benchmark
from repro.cegis import SNBC
from repro.controllers import polynomial_inclusion


def main() -> None:
    spec = get_benchmark("C1")
    problem = spec.make_problem()
    controller = spec.make_controller()
    print(f"benchmark C1: {problem.system!r} ({spec.source})\n")

    table = Table(
        columns=["tool", "status", "d_B", "iters", "T_l", "T_v", "T_e"],
        title="one row of Table 1 (seconds; shapes matter, not absolutes)",
    )

    # --- SNBC (this paper)
    res = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("paper"),
    ).run()
    table.add_row(
        tool="SNBC",
        status="ok" if res.success else "fail",
        d_B=res.barrier.degree if res.success else None,
        iters=res.iterations,
        T_l=res.timings.learning,
        T_v=res.timings.verification,
        T_e=res.timings.total,
    )

    # --- FOSSIL-style (NN learner + SMT-style interval verifier)
    fossil = FossilBaseline(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=FossilConfig(max_iterations=8, delta=5e-2, time_limit=120.0, seed=0),
    ).run()
    table.add_row(
        tool="FOSSIL*",
        status=fossil.status.value,
        d_B=fossil.degree,
        iters=fossil.iterations,
        T_l=fossil.learn_seconds,
        T_v=fossil.verify_seconds,
        T_e=fossil.total_seconds,
    )

    # --- NNCChecker-style (SOS candidate + dReal-style verification)
    inclusion = polynomial_inclusion(controller, problem.psi, degree=2, spacing=0.1)
    nnc = NNCCheckerBaseline(
        problem,
        controller=controller,
        controller_polys=inclusion.polynomials,
        config=NNCCheckerConfig(max_refinements=3, delta=5e-2, seed=0),
    ).run()
    table.add_row(
        tool="NNCChecker*",
        status=nnc.status.value,
        d_B=nnc.degree,
        iters=nnc.iterations,
        T_l=nnc.learn_seconds,
        T_v=nnc.verify_seconds,
        T_e=nnc.total_seconds,
    )

    # --- SOSTOOLS-style (direct one-shot SOS, random fixed multipliers)
    sos = SOSToolsBaseline(
        problem,
        controller_polys=inclusion.polynomials,
        config=SOSToolsConfig(degrees=(2, 4), n_random_multipliers=3, seed=0),
    ).run()
    table.add_row(
        tool="SOSTOOLS*",
        status=sos.status.value,
        d_B=sos.degree,
        iters=sos.iterations,
        T_l=sos.learn_seconds,
        T_v=sos.verify_seconds,
        T_e=sos.total_seconds,
    )

    print(format_table(table))
    print("\n(* reimplementations on the same substrate; see DESIGN.md)")


if __name__ == "__main__":
    main()
