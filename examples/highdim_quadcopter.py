"""High-dimensional verification: the 12-state quadcopter benchmark (C14).

Table 1's headline claim is scalability: SMT-based verification (FOSSIL,
NNCChecker) times out beyond ~5 states, while SNBC's three convex LMI
feasibility tests keep working up to 12.  This example runs SNBC on the
inner-loop-stabilized quadcopter reconstruction and also demonstrates the
blow-up of the interval/SMT route by giving it a small box budget and
watching it exhaust.

Run:  python examples/highdim_quadcopter.py
"""

import time

import numpy as np

from repro.benchmarks import get_benchmark
from repro.cegis import SNBC
from repro.poly import Polynomial
from repro.smt import BranchAndPrune, CheckStatus, poly_enclosure


def main() -> None:
    spec = get_benchmark("C14")
    problem = spec.make_problem()
    print(f"system: {problem.system!r}  ({spec.source})")
    controller = spec.make_controller()

    # --- SNBC on the 12-state system
    t0 = time.time()
    result = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("paper"),
    ).run()
    elapsed = time.time() - t0
    print(f"\nSNBC: success={result.success} after {result.iterations} iteration(s), "
          f"{elapsed:.1f}s wall clock")
    if result.success:
        t = result.timings
        print(f"  T_l={t.learning:.2f}s  T_c={t.counterexample:.2f}s  "
              f"T_v={t.verification:.2f}s  T_e={t.total:.2f}s")
        n_terms = len(result.barrier.coeffs)
        print(f"  certified B has {n_terms} terms of degree <= {result.barrier.degree}")

    # --- why SMT-style verification cannot follow: one single forall-check
    # of a *known-true* quadratic inequality in 12 variables
    print("\ninterval/SMT-style check of a trivial 12-D inequality "
          "(|x|^2 + 0.001 >= 0 resolved to delta=0.05):")
    n = 12
    coeffs = {tuple(2 if i == j else 0 for i in range(n)): 1.0 for j in range(n)}
    coeffs[(0,) * n] = 1e-3
    p = Polynomial(n, coeffs)
    engine = BranchAndPrune(delta=0.05, max_boxes=20000, time_limit=20.0)
    out = engine.check_forall(
        lambda a, b: poly_enclosure(p, a, b),
        lambda pts: p(pts),
        -np.ones(n),
        np.ones(n),
    )
    print(f"  status={out.status.value}, boxes processed={out.boxes_processed}, "
          f"{out.elapsed_seconds:.1f}s")
    if out.status is CheckStatus.UNKNOWN:
        print("  -> the branch-and-prune budget is exhausted even on a trivial "
              "query; this is Table 1's OT mechanism for n_x >= 5")


if __name__ == "__main__":
    main()
