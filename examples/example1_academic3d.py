"""Paper Example 1: the Academic 3D model, eq. (18), with a DDPG controller.

Reproduces the running example: a DDPG-trained NN controller for

    [xdot, ydot, zdot] = [z + 8y, -y + z, -z - x^2 + u]

is abstracted to a degree-2 polynomial inclusion, then SNBC synthesizes a
real barrier certificate (the paper reports success after 2 iterations and
prints the degree-2 certificate (19)).  Also emits the Figure 3 data:
trajectories from Theta, the zero level set of B, and counterexample
points from failed candidates.

Run:  python examples/example1_academic3d.py            (cloned controller, fast)
      REPRO_USE_DDPG=1 python examples/example1_academic3d.py   (real DDPG)
"""

import os

import numpy as np

from repro.analysis import phase_portrait
from repro.benchmarks import get_benchmark
from repro.cegis import SNBC
from repro.controllers import DDPGConfig, DDPGTrainer


def main() -> None:
    spec = get_benchmark("example1")
    problem = spec.make_problem()
    print(f"system: {problem.system!r}")
    print(f"Theta = {problem.theta!r}")
    print(f"Psi   = {problem.psi!r}")
    print(f"Xi    = {problem.xi!r}")

    if os.environ.get("REPRO_USE_DDPG"):
        print("\ntraining the controller with DDPG (paper protocol) ...")
        trainer = DDPGTrainer(
            problem,
            DDPGConfig(episodes=30, steps_per_episode=150, seed=0),
        )
        controller = trainer.train()
        returns = trainer.episode_returns
        print(f"  episodes: {len(returns)}, first return {returns[0]:.1f}, "
              f"last return {returns[-1]:.1f}")
    else:
        print("\ntraining the controller by LQR behaviour cloning "
              "(set REPRO_USE_DDPG=1 for the DDPG path) ...")
        controller = spec.make_controller()

    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=spec.learner_config(),
        config=spec.snbc_config("paper"),
    )
    result = snbc.run()
    if not result.success:
        raise SystemExit(f"synthesis failed: {result.verification}")

    print(f"\nreal barrier certificate found after {result.iterations} iteration(s)")
    print("(the paper reports 2 iterations for its DDPG controller)")
    print(f"  B(x) = {result.barrier.truncate(1e-4)}")
    t = result.timings
    print(f"  T_l={t.learning:.3f}s  T_c={t.counterexample:.3f}s  "
          f"T_v={t.verification:.3f}s  T_e={t.total:.3f}s")

    # Figure 3 data: trajectories + level set + worst counterexamples
    print("\nassembling Figure 3 phase-portrait data ...")
    data = phase_portrait(
        problem,
        result.barrier,
        controller=controller,
        n_trajectories=12,
        t_final=8.0,
        rng=np.random.default_rng(0),
    )
    print(f"  {data.summary()}")
    level = data.level_set_points
    if len(level):
        print(f"  level-set extent: x in [{level[:,0].min():.2f}, {level[:,0].max():.2f}], "
              f"z in [{level[:,2].min():.2f}, {level[:,2].max():.2f}]")
    assert not data.any_trajectory_unsafe, "certificate contradicted by simulation!"
    print("  no simulated trajectory enters the unsafe cube — consistent with B")


if __name__ == "__main__":
    main()
