"""Quickstart: certify safety of an NN-controlled 2D system end to end.

Pipeline demonstrated (the whole paper in ~40 lines of user code):

1. define a control-affine plant and the Theta / Psi / Xi sets,
2. train an NN controller (behaviour cloning of an LQR expert),
3. run SNBC: polynomial inclusion -> learn B, lambda -> LMI verification,
4. inspect the certified barrier certificate and cross-check by simulation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import check_empirical_safety
from repro.cegis import SNBC, SNBCConfig
from repro.controllers import NNController, behavior_clone, linear_feedback_fn, lqr_gain
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial
from repro.sets import Box


def main() -> None:
    # 1. the plant: an unstable cubic oscillator, control on the velocity
    x1, x2 = Polynomial.variables(2)
    f0 = [x2, 0.5 * x1 + (1.0 / 3.0) * x1 ** 3 - 0.5 * x2]
    system = ControlAffineSystem.single_input(f0, [0.0, 1.0])
    problem = CCDS(
        system,
        theta=Box.cube(2, -0.4, 0.4, name="theta"),
        psi=Box.cube(2, -2.0, 2.0, name="psi"),
        xi=Box([1.4, 1.4], [1.8, 1.8], name="xi"),
        name="quickstart",
    )

    # 2. an NN controller imitating the LQR expert
    rng = np.random.default_rng(0)
    controller = NNController(2, 1, hidden=(8,), rng=rng)
    K = lqr_gain(system)
    mse = behavior_clone(controller, linear_feedback_fn(K), problem.psi, rng=rng)
    print(f"controller: {controller!r}")
    print(f"  LQR gain K = {np.round(K, 3).tolist()}, cloning MSE = {mse:.2e}")
    print(f"  Lipschitz bound L = {controller.lipschitz_bound():.2f}")

    # 3. SNBC synthesis
    snbc = SNBC(
        problem,
        controller=controller,
        learner_config=LearnerConfig(b_hidden=(10,), epochs=600, seed=0),
        config=SNBCConfig(max_iterations=10, n_samples=400, seed=0),
    )
    result = snbc.run()

    inc = result.inclusion
    print("\npolynomial inclusion (paper Section 3):")
    print(f"  h(x) = {inc.polynomials[0].truncate(1e-6)}")
    print(f"  sigma~ = {inc.sigma_tilde[0]:.4f}, sigma* = {inc.sigma_star[0]:.4f} "
          f"(mesh spacing {inc.spacing:.3f}, {inc.n_mesh_points} points)")

    if not result.success:
        raise SystemExit(f"synthesis failed after {result.iterations} iterations")

    print("\ncertified barrier certificate:")
    print(f"  B(x) = {result.barrier.truncate(1e-6)}")
    print(f"  lambda(x) = {result.lambda_poly.truncate(1e-6)}")
    print(f"  iterations: {result.iterations}")
    t = result.timings
    print(f"  T_l={t.learning:.3f}s  T_c={t.counterexample:.3f}s  "
          f"T_v={t.verification:.3f}s  T_e={t.total:.3f}s")

    # 4. independent cross-checks
    B = result.barrier
    pts_theta = problem.theta.sample(2000, rng=rng)
    pts_xi = problem.xi.sample(2000, rng=rng)
    print("\nnumerical cross-check of the certificate:")
    print(f"  min B on Theta samples: {B(pts_theta).min():+.4f} (must be >= 0)")
    print(f"  max B on Xi samples:    {B(pts_xi).max():+.4f} (must be < 0)")

    sims = check_empirical_safety(problem, controller, n_trajectories=10, rng=rng)
    unsafe = sum(s.entered_unsafe for s in sims)
    print(f"  simulated trajectories entering the unsafe set: {unsafe}/10")


if __name__ == "__main__":
    main()
