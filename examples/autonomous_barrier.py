"""Barrier certificates for an autonomous system (no controller).

The SNBC machinery degenerates gracefully when the plant has no input:
the inclusion phase is skipped and the Learner/Verifier/CEGIS loop
synthesizes a classical barrier certificate.  This example certifies a
damped pendulum (cubic small-angle model) — trajectories from a small
initial box spiral into the origin and never reach the unsafe corner.

It also shows the certified-SOS utility layer: `sos_range` bounds the
certified barrier and its Lie derivative over the domain.

Run:  python examples/autonomous_barrier.py
"""

import numpy as np

from repro.analysis import check_empirical_safety
from repro.cegis import SNBC, SNBCConfig
from repro.dynamics import CCDS, ControlAffineSystem
from repro.learner import LearnerConfig
from repro.poly import Polynomial, lie_derivative
from repro.sets import Box
from repro.sos import sos_range


def main() -> None:
    # damped pendulum, cubic small-angle model:
    # theta_dot = omega, omega_dot = -sin(theta) - 0.5 omega
    #                              ~ -theta + theta^3/6 - 0.5 omega
    x, y = Polynomial.variables(2)
    f = [y, -1.0 * x + (1.0 / 6.0) * x ** 3 - 0.5 * y]
    system = ControlAffineSystem.autonomous(f)
    problem = CCDS(
        system,
        theta=Box.cube(2, -0.5, 0.5, name="theta"),
        psi=Box.cube(2, -1.8, 1.8, name="psi"),
        xi=Box([1.3, 1.3], [1.7, 1.7], name="xi"),
        name="damped-pendulum",
    )
    print(f"system: {problem.system!r} (damped pendulum, cubic model)")

    result = SNBC(
        problem,
        learner_config=LearnerConfig(b_hidden=(10,), epochs=800, seed=0),
        config=SNBCConfig(max_iterations=10, n_samples=500, seed=0),
    ).run()
    if not result.success:
        raise SystemExit(f"synthesis failed: {result.history}")

    B = result.barrier
    print(f"\ncertified barrier (after {result.iterations} iteration(s)):")
    print(f"  B(x) = {B.truncate(1e-5)}")

    # certified SOS enclosures over the domain
    b_lo, b_hi = sos_range(B, problem.psi)
    print(f"\ncertified range of B on Psi: [{b_lo:.3f}, {b_hi:.3f}]")
    lfb = lie_derivative(B, system.closed_loop([]))
    margin = lfb - result.lambda_poly * B
    m_lo, _ = sos_range(margin, problem.psi, multiplier_degree=2)
    print(f"certified minimum of the Lie margin on Psi: {m_lo:.4f} (> 0 required)")

    sims = check_empirical_safety(problem, n_trajectories=10, t_final=10.0,
                                  rng=np.random.default_rng(0))
    print(f"simulation cross-check: "
          f"{sum(s.entered_unsafe for s in sims)}/10 trajectories reach Xi")


if __name__ == "__main__":
    main()
