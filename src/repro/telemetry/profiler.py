"""Stdlib sampling profiler: where does the wall-clock actually go?

A background thread wakes every ``interval`` seconds and snapshots the
target thread's Python stack via ``sys._current_frames()`` — the same
mechanism py-spy-style tools use in-process.  Sampling never touches the
profiled code path (no ``sys.settrace``, no bytecode patching), so the
run under profile produces bitwise-identical results; the only cost is
the GIL time spent walking ~30 frames a hundred times a second, which is
well under the PR's 3% end-to-end budget.

Two artifacts per profile, written next to the run's telemetry:

``<base>.stacks.txt``
    Collapsed-stack format (``root;child;leaf count`` per line) — feed it
    to any flamegraph renderer, or just sort it.
``<base>.profile.json``
    A per-function self/total table plus a per-*pipeline-phase* rollup
    (learning / verification / counterexample / inclusion / other) keyed
    off module prefixes, so the profile answers the ROADMAP question
    ("what, inside verification, is slow?") without a renderer.

Usage::

    from repro.telemetry.profiler import SamplingProfiler

    with SamplingProfiler() as prof:
        result = SNBC(problem, config).run()
    prof.write("results/telemetry/C1-smoke")

or pass ``--profile`` to ``benchmarks/run_bench_table1.py`` /
``run_bench_perf.py``.

A signal-based sampler (``signal.setitimer``) would also catch C-level
stalls, but only works on the main thread and collides with the bench
drivers' pool workers; the thread-based sampler works anywhere, which is
why it is the default and only implementation here.
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

PROFILE_SCHEMA_VERSION = 1

#: the profiler attached to the *current* context, if any — pool-merge
#: code uses this to fold worker samples into whatever profiler the
#: harness started, without threading the handle through every layer
_active: "contextvars.ContextVar[Optional[SamplingProfiler]]" = (
    contextvars.ContextVar("repro_active_profiler", default=None)
)


def get_active_profiler() -> Optional["SamplingProfiler"]:
    """The profiler registered for this context, or None."""
    return _active.get()


def set_active_profiler(
    profiler: Optional["SamplingProfiler"],
) -> "contextvars.Token":
    """Register ``profiler`` for this context; returns the reset token."""
    return _active.set(profiler)


def reset_active_profiler(token: "contextvars.Token") -> None:
    _active.reset(token)

#: default sampling period (seconds); ~100 Hz keeps overhead noise-level
#: while resolving phases that last tens of milliseconds
DEFAULT_INTERVAL_S = 0.01

#: module-prefix → pipeline phase, first match wins (most specific first)
PHASE_MODULES: Tuple[Tuple[str, str], ...] = (
    ("repro.cegis.counterexamples", "counterexample"),
    ("repro.controllers.inclusion", "inclusion"),
    ("repro.learner", "learning"),
    ("repro.nn", "learning"),
    ("repro.autodiff", "learning"),
    ("repro.sdp", "verification"),
    ("repro.sos", "verification"),
    ("repro.verifier", "verification"),
    ("repro.soundness", "verification"),
)


def phase_of(frame_key: str) -> str:
    """Map a ``module:function`` frame key onto a pipeline phase."""
    module = frame_key.split(":", 1)[0]
    for prefix, phase in PHASE_MODULES:
        if module == prefix or module.startswith(prefix + "."):
            return phase
    return "other"


class SamplingProfiler:
    """Samples one thread's stack from a daemon thread.

    The target defaults to the thread that calls :meth:`start` (almost
    always the one about to run ``SNBC.run``).  Samples accumulate as a
    ``Counter`` over full stacks (root→leaf), which is simultaneously
    the collapsed-stack output and the input to the self/total rollups.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL_S,
        target_ident: Optional[int] = None,
        max_depth: int = 256,
    ) -> None:
        self.interval = float(interval)
        self.target_ident = target_ident
        self.max_depth = int(max_depth)
        self.samples: Counter = Counter()
        self.n_samples = 0
        self.wall_seconds = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if self.target_ident is None:
            self.target_ident = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.wall_seconds += time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling loop --------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.target_ident)
            if frame is None:
                continue
            stack: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                module = frame.f_globals.get("__name__", "?")
                stack.append(f"{module}:{frame.f_code.co_name}")
                frame = frame.f_back
                depth += 1
            if stack:
                self.samples[tuple(reversed(stack))] += 1
                self.n_samples += 1

    # -- cross-process fold ---------------------------------------------
    def export_samples(self) -> Dict[str, Any]:
        """JSON-ready sample dump a pool worker ships to the parent:
        stacks as lists of frame keys plus the worker's own sample count
        and sampled wall time (see :meth:`absorb`)."""
        return {
            "samples": [
                [list(stack), count]
                for stack, count in sorted(self.samples.items())
            ],
            "n_samples": self.n_samples,
            "wall_seconds": round(self.wall_seconds, 6),
            "interval_s": self.interval,
        }

    def absorb(self, exported: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`export_samples` dump into this profiler.

        Both the samples *and* the worker's sampled wall seconds are
        added, so ``seconds_per_sample`` stays ≈ the sampling interval
        instead of being diluted by stacks this process never timed.
        """
        if not exported:
            return
        for stack, count in exported.get("samples", []):
            self.samples[tuple(stack)] += int(count)
        self.n_samples += int(exported.get("n_samples", 0))
        self.wall_seconds += float(exported.get("wall_seconds", 0.0))

    # -- aggregation ----------------------------------------------------
    @property
    def seconds_per_sample(self) -> float:
        return self.wall_seconds / self.n_samples if self.n_samples else 0.0

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``a;b;c count``), sorted for stability."""
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.samples.items())
        ]

    def function_table(self) -> List[Dict[str, Any]]:
        """Per-function self/total sample counts and estimated seconds.

        ``self`` counts samples where the function was the leaf;
        ``total`` counts samples where it appears anywhere on the stack
        (once per sample, so recursion does not inflate it).
        """
        self_counts: Counter = Counter()
        total_counts: Counter = Counter()
        for stack, count in self.samples.items():
            self_counts[stack[-1]] += count
            for frame_key in set(stack):
                total_counts[frame_key] += count
        sps = self.seconds_per_sample
        rows = [
            {
                "frame": frame_key,
                "phase": phase_of(frame_key),
                "self": self_counts.get(frame_key, 0),
                "total": total,
                "self_seconds": round(self_counts.get(frame_key, 0) * sps, 6),
                "total_seconds": round(total * sps, 6),
            }
            for frame_key, total in total_counts.items()
        ]
        rows.sort(key=lambda r: (-r["self"], -r["total"], r["frame"]))
        return rows

    def phase_table(self) -> Dict[str, Dict[str, Any]]:
        """Self-time rollup per pipeline phase.

        Each sample is attributed to the phase of the *innermost* frame
        that maps to a known phase (leaf-ward attribution), falling back
        to ``other`` — so an SDP solve called from the CEGIS loop counts
        as verification, not other.
        """
        phase_counts: Counter = Counter()
        for stack, count in self.samples.items():
            phase = "other"
            for frame_key in reversed(stack):
                candidate = phase_of(frame_key)
                if candidate != "other":
                    phase = candidate
                    break
            phase_counts[phase] += count
        sps = self.seconds_per_sample
        total = self.n_samples or 1
        return {
            phase: {
                "samples": count,
                "seconds": round(count * sps, 6),
                "share": round(count / total, 6),
            }
            for phase, count in sorted(phase_counts.items())
        }

    def report(self) -> Dict[str, Any]:
        return {
            "kind": "sampling_profile",
            "schema_version": PROFILE_SCHEMA_VERSION,
            "interval_s": self.interval,
            "n_samples": self.n_samples,
            "wall_seconds": round(self.wall_seconds, 6),
            "phases": self.phase_table(),
            "functions": self.function_table(),
        }

    # -- output ---------------------------------------------------------
    def write(self, base: str) -> Dict[str, str]:
        """Write ``<base>.stacks.txt`` + ``<base>.profile.json``; returns
        the two paths.  ``base`` may be a trace path — a trailing
        ``.jsonl`` is stripped so the artifacts sit next to the trace."""
        if base.endswith(".jsonl"):
            base = base[: -len(".jsonl")]
        stacks_path = base + ".stacks.txt"
        profile_path = base + ".profile.json"
        with open(stacks_path, "w", encoding="utf-8") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")
        with open(profile_path, "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return {"stacks": stacks_path, "profile": profile_path}
