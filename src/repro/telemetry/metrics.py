"""Counters, gauges, and histograms with percentile summaries.

A :class:`MetricsRegistry` is an ordinary object — construct as many as
you like — but most instrumentation points use the registry attached to
the process-default :class:`~repro.telemetry.runtime.Telemetry`.  When
the registry is disabled every recording call returns immediately, so
hot loops (per-epoch, per-IPM-iteration) can record unconditionally.

Histograms keep raw observations (these runs record at most a few
thousand values per metric); ``summary()`` derives count/mean/min/max and
linearly-interpolated p50/p95/p99 without numpy, keeping the telemetry
package stdlib-only.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted list,
    matching ``numpy.percentile``'s default method."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    pos = (q / 100.0) * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return float(sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac)


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, List[float]] = {}

    # -- recording ------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed value."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self._histograms.setdefault(name, []).append(float(value))

    # -- reading --------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram_values(self, name: str) -> List[float]:
        with self._lock:
            return list(self._histograms.get(name, []))

    def summary(self) -> Dict[str, Any]:
        """Snapshot of everything recorded, histograms summarized."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {k: list(v) for k, v in self._histograms.items()}
        hist_summaries: Dict[str, Dict[str, float]] = {}
        for name, values in histograms.items():
            values.sort()
            n = len(values)
            hist_summaries[name] = {
                "count": n,
                "mean": sum(values) / n,
                "min": values[0],
                "max": values[-1],
                "p50": percentile(values, 50.0),
                "p95": percentile(values, 95.0),
                "p99": percentile(values, 99.0),
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": hist_summaries,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready export — identical to :meth:`summary`; the name the
        diagnostics reports consume."""
        return self.summary()

    def raw(self) -> Dict[str, Any]:
        """Lossless export: counters, gauges, and the *raw* histogram
        observation lists (no percentile reduction).  This is what a pool
        worker ships back to the parent so :meth:`merge_raw` can fold the
        observations in without double-summarizing."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: list(v) for k, v in self._histograms.items()},
            }

    def merge_raw(self, raw: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`raw` export into this one:
        counters add, gauges take the incoming value (last-writer-wins,
        matching ``gauge()`` semantics), histogram observations extend.
        Ignores the ``enabled`` flag — a merge is bookkeeping the parent
        asked for, not hot-path instrumentation."""
        if not raw:
            return
        with self._lock:
            for name, value in (raw.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + float(value)
            for name, value in (raw.get("gauges") or {}).items():
                self._gauges[name] = float(value)
            for name, values in (raw.get("histograms") or {}).items():
                self._histograms.setdefault(name, []).extend(
                    float(v) for v in values
                )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
