"""Live run-health streaming: follow status.json heartbeats.

    python -m repro.telemetry.tail results/telemetry/C1-smoke
    python -m repro.telemetry.tail results/telemetry/C1-smoke.jsonl
    python -m repro.telemetry.tail --fleet results/
    python -m repro.telemetry.tail --fleet results/ --once

Single-run mode follows one run: a phase ticker (phase, CEGIS iteration,
IPM iteration + convergence class, counterexample counts, recovery rung,
remaining budget) re-rendered every ``--interval`` seconds from the
run's atomically-written ``status.json``, interleaved with the trace's
non-span events as they are appended (``flush_every=1`` on the sink
makes them visible live).  Exits when the run records an outcome.

``--fleet`` mode renders a one-line-per-run board over every
``*.status.json`` under a results tree, with dead-man detection: a run
whose heartbeat is older than ``--stale-after`` seconds shows STALLED,
older than ``--dead-after`` shows DEAD — no cooperation from the
(possibly wedged) run process required.  A certification-service
supervisor (its status carries a ``service`` block) renders queue
health instead of CEGIS progress: queue depth, in-flight, done/total,
retries, redeliveries, dead-letters, cache hits/evictions, and a
SERIAL marker when the pool degraded to in-process execution; its
``worker-<i>.status.json`` heartbeats appear as ordinary fleet rows.

``--once`` renders a single snapshot and exits — for scripts and CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.status import read_status

#: heartbeat age (seconds) after which a run with no outcome is STALLED
DEFAULT_STALE_AFTER_S = 30.0
#: heartbeat age (seconds) after which it is presumed DEAD
DEFAULT_DEAD_AFTER_S = 120.0


# -- classification (pure: everything takes `now` for testability) ------
def heartbeat_age(status: Dict[str, Any], now: float) -> Optional[float]:
    beat = status.get("heartbeat_wall")
    if not isinstance(beat, (int, float)):
        return None
    return max(0.0, now - float(beat))


def classify(
    status: Dict[str, Any],
    now: float,
    stale_after: float = DEFAULT_STALE_AFTER_S,
    dead_after: float = DEFAULT_DEAD_AFTER_S,
) -> str:
    """One word for the run's liveness: a recorded outcome wins; without
    one the heartbeat age decides RUNNING / STALLED / DEAD."""
    outcome = status.get("outcome")
    if outcome:
        return str(outcome).upper()
    age = heartbeat_age(status, now)
    if age is None or age > dead_after:
        return "DEAD"
    if age > stale_after:
        return "STALLED"
    return "RUNNING"


def _fmt_age(age: Optional[float]) -> str:
    if age is None:
        return "?"
    if age < 100.0:
        return f"{age:.0f}s"
    return f"{age / 60.0:.1f}m"


def _fmt_budget(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    return f"{float(value):.0f}s"


def render_status_line(
    status: Dict[str, Any],
    now: float,
    stale_after: float = DEFAULT_STALE_AFTER_S,
    dead_after: float = DEFAULT_DEAD_AFTER_S,
) -> str:
    """One fleet-board row: liveness, name, phase, progress, heartbeat."""
    state = classify(status, now, stale_after, dead_after)
    name = str(status.get("name", "?"))
    phase = str(status.get("phase") or "-")
    service = status.get("service")
    if isinstance(service, dict):
        # service-supervisor row: queue health instead of CEGIS progress
        parts = [f"{state:<8}", f"{name:<24}", f"{phase:<16}"]
        parts.append(f"queue={service.get('queue_depth', '-')}")
        parts.append(f"inflight={service.get('in_flight', '-')}")
        parts.append(
            f"done={service.get('done', '-')}/{service.get('total', '-')}"
        )
        parts.append(f"retries={service.get('retries', '-')}")
        if service.get("redeliveries"):
            parts.append(f"redeliv={service['redeliveries']}")
        parts.append(f"dead={service.get('dead_letters', '-')}")
        if service.get("cache_hits"):
            parts.append(f"cached={service['cache_hits']}")
        if service.get("cache_evictions"):
            parts.append(f"evicted={service['cache_evictions']}")
        if service.get("serial_mode"):
            parts.append("SERIAL")
        parts.append(f"beat={_fmt_age(heartbeat_age(status, now))}")
        return "  ".join(parts)
    it = status.get("cegis_iteration")
    ipm = status.get("ipm_iteration")
    conv = status.get("ipm_convergence")
    cex = status.get("cex_total")
    rung = status.get("recovery_rung")
    workers = status.get("workers") or {}
    parts = [f"{state:<8}", f"{name:<24}", f"{phase:<16}"]
    parts.append(f"it={it if it is not None else '-'}")
    ipm_text = f"ipm={ipm if ipm is not None else '-'}"
    if conv:
        ipm_text += f"/{conv}"
    parts.append(ipm_text)
    parts.append(f"cex={cex if cex is not None else '-'}")
    if rung and rung != "base":
        parts.append(f"rung={rung}")
    if workers:
        live = sum(
            1 for lane in workers.values()
            if isinstance(lane, dict)
            and isinstance(lane.get("heartbeat_wall"), (int, float))
            and now - lane["heartbeat_wall"] <= stale_after
        )
        parts.append(f"workers={live}/{len(workers)}")
    budget = status.get("budget_remaining_s")
    if budget is not None:
        parts.append(f"budget={_fmt_budget(budget)}")
    parts.append(f"beat={_fmt_age(heartbeat_age(status, now))}")
    return "  ".join(parts)


def render_fleet_board(
    statuses: Sequence[Tuple[str, Dict[str, Any]]],
    now: float,
    stale_after: float = DEFAULT_STALE_AFTER_S,
    dead_after: float = DEFAULT_DEAD_AFTER_S,
) -> List[str]:
    """The full fleet board: one line per (path, status), running runs
    first (RUNNING, then STALLED/DEAD, then finished), stable by name."""
    rank = {"RUNNING": 0, "STALLED": 1, "DEAD": 2}
    decorated = []
    for path, status in statuses:
        state = classify(status, now, stale_after, dead_after)
        decorated.append((rank.get(state, 3), str(status.get("name", path)),
                          path, status))
    decorated.sort(key=lambda item: (item[0], item[1], item[2]))
    lines = [
        render_status_line(status, now, stale_after, dead_after)
        for _, _, _, status in decorated
    ]
    if not lines:
        lines.append("(no status.json heartbeats found)")
    return lines


# -- discovery -----------------------------------------------------------
def find_status_files(root: str) -> List[str]:
    """Every ``*.status.json`` under ``root`` (sorted walk, like the
    fleet store's trace scan)."""
    out: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".status.json"):
                out.append(os.path.join(dirpath, filename))
    return out


def resolve_run_status_path(target: str) -> Optional[str]:
    """Map a run dir / trace path / status path onto its status.json."""
    if target.endswith(".status.json"):
        return target if os.path.exists(target) else None
    if target.endswith(".jsonl"):
        candidate = target[: -len(".jsonl")] + ".status.json"
        return candidate if os.path.exists(candidate) else None
    if os.path.isdir(target):
        found = find_status_files(target)
        if not found:
            return None
        # most recently touched heartbeat = the run being watched
        return max(found, key=lambda p: (os.path.getmtime(p), p))
    candidate = target + ".status.json"
    return candidate if os.path.exists(candidate) else None


# -- single-run event stream --------------------------------------------
def format_event(event: Dict[str, Any], max_width: int = 110) -> Optional[str]:
    """Compact one-liner for a non-span trace event; None to skip."""
    etype = event.get("type")
    if etype in (None, "span", "metrics", "trace_context", "worker_metrics",
                 "profile_samples"):
        return None
    payload = {
        k: v
        for k, v in event.items()
        if k not in ("type", "wall") and not isinstance(v, (dict, list))
    }
    text = " ".join(f"{k}={v}" for k, v in sorted(payload.items()))
    line = f"  [{etype}] {text}" if text else f"  [{etype}]"
    if len(line) > max_width:
        line = line[: max_width - 3] + "..."
    return line


class _TraceFollower:
    """Incrementally yields newly appended complete lines of a trace."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0

    def poll(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
        except OSError:
            return events
        if not chunk:
            return events
        lines = chunk.split("\n")
        tail = lines.pop()  # incomplete last line: retry next poll
        consumed = len(chunk) - len(tail)
        self._offset += consumed
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if isinstance(event, dict):
                events.append(event)
        return events


def _tail_run(args: argparse.Namespace) -> int:
    status_path = resolve_run_status_path(args.target)
    if status_path is None:
        print(f"error: no status.json found for {args.target}",
              file=sys.stderr)
        return 2
    trace_path = status_path[: -len(".status.json")] + ".jsonl"
    follower = _TraceFollower(trace_path)
    last_line = None
    while True:
        now = time.time()
        status = read_status(status_path) or {}
        for event in follower.poll():
            line = format_event(event)
            if line:
                print(line, flush=True)
        line = render_status_line(status, now, args.stale_after,
                                  args.dead_after)
        if line != last_line:
            print(line, flush=True)
            last_line = line
        if args.once or status.get("outcome"):
            return 0
        state = classify(status, now, args.stale_after, args.dead_after)
        if state == "DEAD":
            print("heartbeat lost; giving up", file=sys.stderr)
            return 1
        time.sleep(args.interval)


def _tail_fleet(args: argparse.Namespace) -> int:
    while True:
        now = time.time()
        statuses = [
            (path, status)
            for path in find_status_files(args.target)
            for status in [read_status(path)]
            if status is not None
        ]
        board = render_fleet_board(statuses, now, args.stale_after,
                                   args.dead_after)
        stamp = time.strftime("%H:%M:%S", time.localtime(now))
        print(f"-- fleet @ {stamp} ({len(statuses)} run(s)) --", flush=True)
        for line in board:
            print(line, flush=True)
        if args.once:
            return 0
        if statuses and all(
            status.get("outcome") for _, status in statuses
        ):
            return 0
        time.sleep(args.interval)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.tail", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("target",
                        help="run dir / trace / status.json (or, with "
                             "--fleet, a results tree)")
    parser.add_argument("--fleet", action="store_true",
                        help="render a one-line-per-run board over every "
                             "*.status.json under the target tree")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="poll interval in seconds (default 1.0)")
    parser.add_argument("--stale-after", type=float,
                        default=DEFAULT_STALE_AFTER_S,
                        help="heartbeat age marking a run STALLED "
                             f"(default {DEFAULT_STALE_AFTER_S:.0f}s)")
    parser.add_argument("--dead-after", type=float,
                        default=DEFAULT_DEAD_AFTER_S,
                        help="heartbeat age marking a run DEAD "
                             f"(default {DEFAULT_DEAD_AFTER_S:.0f}s)")
    parser.add_argument("--once", action="store_true",
                        help="render one snapshot and exit (scripts/CI)")
    args = parser.parse_args(argv)
    if args.fleet:
        return _tail_fleet(args)
    return _tail_run(args)


if __name__ == "__main__":
    sys.exit(main())
