"""Fleet telemetry CLI: aggregate every run under a results root.

    python -m repro.telemetry.fleet results/
    python -m repro.telemetry.fleet results/telemetry --format json
    python -m repro.telemetry.fleet results/ --out fleet_summary.json

Walks the root for ``*.jsonl`` traces (with their sibling manifests and
audit artifacts), indexes them through :mod:`repro.telemetry.store`, and
prints the cross-run aggregate: per-system run/iteration counts, phase
time trends, cache hit rates, SDP recovery engagement, and the
IPM-convergence-class histogram.  ``--format json`` emits the full
:func:`~repro.telemetry.store.fleet_summary` document; ``--out`` writes
the JSON document regardless of the printed format (the CI artifact
path).

Exit codes: 0 ok, 1 no runs found under the root, 2 root unreadable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.store import fleet_summary, scan_runs


def _fmt(x: Any) -> str:
    if x is None:
        return "-"
    if isinstance(x, float):
        return f"{x:.4g}" if abs(x) < 1e-3 or abs(x) >= 1e5 else f"{x:.3f}"
    return str(x)


def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [line, "-" * len(line)]
    out += ["  ".join(r[i].ljust(widths[i]) for i in range(len(header))) for r in rows]
    return out


def render_fleet_text(summary: Dict[str, Any]) -> str:
    """Human-readable rendering of a fleet summary document."""
    lines: List[str] = []
    lines.append(
        f"== Fleet: {summary.get('n_runs', 0)} run(s) across "
        f"{summary.get('n_systems', 0)} system(s) =="
    )
    extras = []
    if summary.get("n_incomplete"):
        extras.append(f"incomplete={summary['n_incomplete']}")
    if summary.get("n_parent_traces"):
        extras.append(f"bench-parent traces={summary['n_parent_traces']}")
    if extras:
        lines.append("   " + "  ".join(extras))
    outcomes = summary.get("outcomes", {})
    if outcomes:
        lines.append(
            "outcomes: "
            + "  ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        )
    lines.append("")

    runs = summary.get("runs", [])
    if runs:
        rows = [
            [
                r.get("base", "?"),
                r.get("system", "?"),
                r.get("scale", "?"),
                r.get("outcome", "?"),
                _fmt(r.get("iterations")),
                _fmt(r.get("elapsed_seconds")),
                "yes" if r.get("truncated") else "no",
            ]
            for r in runs
        ]
        lines.append("== Runs ==")
        lines += _table(
            ["run", "system", "scale", "outcome", "iters", "elapsed s",
             "truncated"],
            rows,
        )
        lines.append("")

    systems = summary.get("systems", {})
    if systems:
        rows = []
        for system, s in sorted(systems.items()):
            iters = s.get("iterations", {})
            phases = s.get("phase_seconds", {})
            verification = (phases.get("verification") or {}).get("total")
            learning = (phases.get("learning") or {}).get("total")
            conv = s.get("convergence", {})
            recovery = s.get("sdp_recovery", {})
            rows.append([
                system,
                str(s.get("runs", 0)),
                _fmt(iters.get("mean")),
                _fmt(learning),
                _fmt(verification),
                _fmt(s.get("cache_hit_rate")),
                f"{recovery.get('engaged', 0)}/{recovery.get('successes', 0)}",
                " ".join(f"{k}={v}" for k, v in sorted(conv.items())) or "-",
            ])
        lines.append("== Systems ==")
        lines += _table(
            ["system", "runs", "mean iters", "learn s", "verify s",
             "cache hit", "recov eng/succ", "ipm convergence"],
            rows,
        )
        lines.append("")

    convergence = summary.get("convergence", {})
    if convergence:
        lines.append("== IPM convergence classes (all runs) ==")
        total = sum(convergence.values()) or 1
        for cls, n in sorted(convergence.items()):
            lines.append(f"  {cls:<16} {n:>6}  {100.0 * n / total:>5.1f}%")
        lines.append("")

    caches = summary.get("caches", {})
    if caches:
        rows = [
            [name, str(c.get("hits", 0)), str(c.get("misses", 0)),
             _fmt(c.get("rate"))]
            for name, c in sorted(caches.items())
        ]
        lines.append("== Caches (all runs) ==")
        lines += _table(["cache", "hits", "misses", "hit rate"], rows)
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.fleet", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("root", help="results root to scan for run traces")
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument("--out", default=None,
                        help="also write the JSON summary document here")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.root):
        print(f"error: not a directory: {args.root}", file=sys.stderr)
        return 2
    records = scan_runs(args.root)
    if not records:
        print(f"error: no run traces found under {args.root}", file=sys.stderr)
        return 1
    summary = fleet_summary(records)

    if args.out:
        out_dir = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_fleet_text(summary), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
