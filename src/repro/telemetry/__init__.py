"""Structured telemetry for the SNBC pipeline.

Zero-dependency (stdlib-only) observability layer: hierarchical span
tracing, a metrics registry, run manifests, and a trace-report CLI.

Three entry levels:

* **Library users** pay nothing: the default :class:`Telemetry` instance
  is disabled (null sink) and every instrumentation point degrades to a
  cheap no-op.
* **Harnesses** (the Table 1 benchmarks) call :func:`session` to route
  spans and metrics into a JSONL trace plus a JSON run manifest under
  ``results/``.
* **Humans** render a trace with ``python -m repro.telemetry.report
  trace.jsonl`` — per-phase time breakdown and metric summaries — or
  aggregate a whole results tree with ``python -m repro.telemetry.fleet
  results/``.

Deeper instrumentation lives alongside: :mod:`repro.telemetry.profiler`
(a stdlib sampling profiler writing collapsed stacks + per-phase
self-time) and :mod:`repro.telemetry.store` (the cross-run fleet index
behind the fleet CLI).

The span/metric event schema is documented in :mod:`repro.telemetry.spans`.
"""

from repro.telemetry.manifest import RunManifest, collect_git_sha, platform_info
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import SamplingProfiler
from repro.telemetry.runtime import (
    Telemetry,
    configure,
    disable,
    get_telemetry,
    session,
)
from repro.telemetry.spans import (
    InMemorySink,
    JSONLSink,
    NullSink,
    Span,
    Tracer,
    load_events,
)
from repro.telemetry.store import RunRecord, fleet_summary, load_run, scan_runs

__all__ = [
    "InMemorySink",
    "JSONLSink",
    "MetricsRegistry",
    "NullSink",
    "RunManifest",
    "RunRecord",
    "SamplingProfiler",
    "Span",
    "Telemetry",
    "Tracer",
    "collect_git_sha",
    "configure",
    "disable",
    "fleet_summary",
    "get_telemetry",
    "load_events",
    "load_run",
    "platform_info",
    "scan_runs",
    "session",
]
