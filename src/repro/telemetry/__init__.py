"""Structured telemetry for the SNBC pipeline.

Zero-dependency (stdlib-only) observability layer: hierarchical span
tracing, a metrics registry, run manifests, and a trace-report CLI.

Three entry levels:

* **Library users** pay nothing: the default :class:`Telemetry` instance
  is disabled (null sink) and every instrumentation point degrades to a
  cheap no-op.
* **Harnesses** (the Table 1 benchmarks) call :func:`session` to route
  spans and metrics into a JSONL trace plus a JSON run manifest under
  ``results/``.
* **Humans** render a trace with ``python -m repro.telemetry.report
  trace.jsonl`` — per-phase time breakdown and metric summaries — or
  aggregate a whole results tree with ``python -m repro.telemetry.fleet
  results/``.

Deeper instrumentation lives alongside: :mod:`repro.telemetry.profiler`
(a stdlib sampling profiler writing collapsed stacks + per-phase
self-time) and :mod:`repro.telemetry.store` (the cross-run fleet index
behind the fleet CLI).

Cross-process runs are first-class: :mod:`repro.telemetry.context`
propagates a :class:`TraceContext` (one ``trace_id`` per run) into pool
workers and merges their JSONL shards back into the parent trace, and
:mod:`repro.telemetry.status` maintains an atomically-written
``status.json`` heartbeat per run that ``python -m repro.telemetry.tail``
follows live (single run or ``--fleet`` board).

The span/metric event schema is documented in :mod:`repro.telemetry.spans`.
"""

from repro.telemetry.context import (
    TraceContext,
    capture,
    merge_shard,
    merge_shard_events,
    worker_session,
)
from repro.telemetry.manifest import RunManifest, collect_git_sha, platform_info
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import (
    SamplingProfiler,
    get_active_profiler,
    reset_active_profiler,
    set_active_profiler,
)
from repro.telemetry.runtime import (
    Telemetry,
    configure,
    disable,
    get_telemetry,
    session,
)
from repro.telemetry.spans import (
    InMemorySink,
    JSONLSink,
    NullSink,
    Span,
    Tracer,
    load_events,
)
from repro.telemetry.status import StatusWriter, read_status
from repro.telemetry.store import RunRecord, fleet_summary, load_run, scan_runs

__all__ = [
    "InMemorySink",
    "JSONLSink",
    "MetricsRegistry",
    "NullSink",
    "RunManifest",
    "RunRecord",
    "SamplingProfiler",
    "Span",
    "StatusWriter",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "capture",
    "collect_git_sha",
    "configure",
    "disable",
    "fleet_summary",
    "get_active_profiler",
    "get_telemetry",
    "load_events",
    "load_run",
    "merge_shard",
    "merge_shard_events",
    "platform_info",
    "read_status",
    "reset_active_profiler",
    "scan_runs",
    "session",
    "set_active_profiler",
    "worker_session",
]
