"""Trace-context propagation across process pools.

One run — one ``trace_id``.  When a harness fans work out to a
``ProcessPoolExecutor`` (the verifier's per-condition pool, the bench
``--jobs`` pool), the parent captures a :class:`TraceContext` — the
run's ``trace_id``, the span the submission happened under, the run
name, and a shard index — and ships it with the submission.  The worker
activates a :func:`worker_session` that writes a JSONL *shard* file;
after the pool drains, the parent calls :func:`merge_shard` per shard to
fold everything back into its own trace:

* **span-id remapping** — worker span ids are rebased into a block
  reserved from the parent tracer (:meth:`Tracer.reserve_ids`), so ids
  stay unique in the merged trace;
* **parent linkage** — worker root spans are re-parented under the
  parent-process span recorded in the context, so the merged trace is
  one tree;
* **clock-skew annotation** — ``perf_counter()`` is per-process, so the
  worker's anchor (``t_perf``, ``t_wall``) pair is used to shift worker
  span times onto the parent's monotonic timeline; the applied shift is
  stamped on every migrated span as ``clock_skew_s``;
* **metrics + profiler fold** — the worker's raw metric export merges
  into the parent registry (:meth:`MetricsRegistry.merge_raw`) and its
  profiler samples into the context-active profiler
  (:meth:`SamplingProfiler.absorb`), so ``repro.telemetry.report`` and
  the fleet store see cross-process totals.

Everything is off unless telemetry is on: :func:`capture` returns
``None`` outside a session, workers then run exactly the pre-existing
code path, and the default single-process behavior stays bitwise
identical.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.telemetry import runtime
from repro.telemetry.profiler import (
    SamplingProfiler,
    get_active_profiler,
)
from repro.telemetry.runtime import Telemetry, get_telemetry
from repro.telemetry.spans import JSONLSink

TRACE_CONTEXT_SCHEMA_VERSION = 1

#: event types private to the shard protocol — consumed by the merge,
#: never re-emitted into the parent trace
_PROTOCOL_TYPES = {"trace_context", "worker_metrics", "profile_samples", "metrics"}


@dataclass(frozen=True)
class TraceContext:
    """What a pool submission needs to join its run's trace."""

    trace_id: str
    parent_span_id: Optional[int]
    run_name: str
    shard_index: int
    profile: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["schema_version"] = TRACE_CONTEXT_SCHEMA_VERSION
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            parent_span_id=data.get("parent_span_id"),
            run_name=str(data.get("run_name", "run")),
            shard_index=int(data.get("shard_index", 0)),
            profile=bool(data.get("profile", False)),
        )


def capture(shard_index: int = 0, profile: bool = False) -> Optional[TraceContext]:
    """Snapshot the current context for a pool submission.

    Returns ``None`` when telemetry is disabled or the active instance
    has no ``trace_id`` (no session) — callers then submit exactly what
    they submitted before this module existed, keeping the default path
    bitwise-identical.
    """
    tel = get_telemetry()
    if not tel.enabled or tel.trace_id is None:
        return None
    current = tel.tracer.current_span
    name = tel.manifest.name if tel.manifest is not None else "run"
    return TraceContext(
        trace_id=tel.trace_id,
        parent_span_id=current.span_id if current is not None else None,
        run_name=name,
        shard_index=int(shard_index),
        profile=bool(profile),
    )


@contextmanager
def worker_session(
    ctx: TraceContext,
    shard_path: str,
    profile_interval_s: float = 0.01,
) -> Iterator[Telemetry]:
    """Activate telemetry inside a pool worker, writing a shard file.

    Lighter than :func:`~repro.telemetry.runtime.session`: no manifest,
    no status file — just a :class:`JSONLSink` on ``shard_path`` whose
    first line is a ``trace_context`` anchor (this process's
    ``perf_counter``/wall clock pair, pid, shard index, parent span) and
    whose last lines are the worker's raw metrics export and — when
    ``ctx.profile`` — its profiler samples, both consumed by
    :func:`merge_shard` in the parent.
    """
    sink = JSONLSink(shard_path)
    sink.emit({
        "type": "trace_context",
        "schema_version": TRACE_CONTEXT_SCHEMA_VERSION,
        "trace_id": ctx.trace_id,
        "run_name": ctx.run_name,
        "shard_index": ctx.shard_index,
        "parent_span_id": ctx.parent_span_id,
        "pid": os.getpid(),
        "t_perf": time.perf_counter(),
        "t_wall": time.time(),
    })
    tel = Telemetry(sink, trace_id=ctx.trace_id)
    profiler: Optional[SamplingProfiler] = None
    if ctx.profile:
        profiler = SamplingProfiler(interval=profile_interval_s).start()
    token = runtime._active.set(tel)
    try:
        yield tel
    finally:
        runtime._active.reset(token)
        if profiler is not None:
            profiler.stop()
            sink.emit({
                "type": "profile_samples",
                "shard_index": ctx.shard_index,
                **profiler.export_samples(),
            })
        sink.emit({
            "type": "worker_metrics",
            "shard_index": ctx.shard_index,
            "raw": tel.metrics.raw(),
        })
        sink.close()


def load_shard_events(path: str) -> List[Dict[str, Any]]:
    """Read a shard (or any JSONL trace) tolerantly: malformed lines —
    e.g. the torn last line of a killed worker — are skipped."""
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    return events


def merge_shard_events(
    tel: Telemetry,
    events: List[Dict[str, Any]],
    profiler: Optional[SamplingProfiler] = None,
) -> Dict[str, Any]:
    """Fold one shard's events into ``tel``; returns merge stats.

    Span ids are rebased into a reserved block, worker root spans are
    re-parented under the submission span, span times are shifted onto
    the parent's monotonic timeline (shift recorded as ``clock_skew_s``),
    and every migrated event is stamped with the shard's ``trace_id``,
    ``shard`` index, and worker ``pid``.  Protocol events fold into the
    parent registry / active profiler instead of being re-emitted.
    """
    stats = {"events": 0, "spans": 0, "shard": None, "clock_skew_s": 0.0}
    if not events:
        return stats
    anchor: Dict[str, Any] = {}
    for event in events:
        if event.get("type") == "trace_context":
            anchor = event
            break
    skew = 0.0
    if "t_perf" in anchor and "t_wall" in anchor:
        # worker wall = anchor.t_wall + (tp - anchor.t_perf); mapping that
        # wall time back through the parent's own (wall - perf) offset
        # gives the parent-perf equivalent tp + skew:
        skew = (
            (float(anchor["t_wall"]) - float(anchor["t_perf"]))
            - (time.time() - time.perf_counter())
        )
    shard = anchor.get("shard_index")
    trace_id = anchor.get("trace_id", tel.trace_id)
    parent_span_id = anchor.get("parent_span_id")
    pid = anchor.get("pid")
    stats["shard"] = shard
    stats["clock_skew_s"] = skew

    max_id = 0
    for event in events:
        if event.get("type") == "span" and isinstance(event.get("span_id"), int):
            max_id = max(max_id, event["span_id"])
    base = tel.tracer.reserve_ids(max_id) if max_id else 0

    def _remap(span_id: Any) -> Any:
        if isinstance(span_id, int) and 1 <= span_id <= max_id:
            return base + span_id - 1
        return span_id

    for event in events:
        etype = event.get("type")
        if etype == "worker_metrics":
            tel.metrics.merge_raw(event.get("raw") or {})
            continue
        if etype == "profile_samples":
            target = profiler if profiler is not None else get_active_profiler()
            if target is not None:
                target.absorb(event)
            continue
        if etype in _PROTOCOL_TYPES:
            continue
        migrated = dict(event)
        migrated["trace_id"] = trace_id
        migrated["shard"] = shard
        if pid is not None:
            migrated.setdefault("pid", pid)
        if etype == "span":
            migrated["span_id"] = _remap(event.get("span_id"))
            old_parent = event.get("parent_id")
            migrated["parent_id"] = (
                parent_span_id if old_parent is None else _remap(old_parent)
            )
            for key in ("t_start", "t_end"):
                if isinstance(event.get(key), (int, float)):
                    migrated[key] = event[key] + skew
            migrated["clock_skew_s"] = skew
            stats["spans"] += 1
        tel.sink.emit(migrated)
        stats["events"] += 1
    return stats


def merge_shard(
    tel: Telemetry,
    shard_path: str,
    profiler: Optional[SamplingProfiler] = None,
    keep: bool = False,
) -> Dict[str, Any]:
    """Merge the shard file at ``shard_path`` into ``tel`` and (unless
    ``keep``) delete it.  Missing/empty shards merge as zero events —
    a crashed worker must never take the parent trace down."""
    stats = merge_shard_events(tel, load_shard_events(shard_path), profiler)
    if not keep:
        try:
            os.remove(shard_path)
        except OSError:
            pass
    return stats
