"""Hierarchical span tracing with pluggable sinks.

Every finished span becomes one event dict::

    {"type": "span", "name": "snbc.learning", "span_id": 7, "parent_id": 3,
     "thread": 140234, "t_start": 1.234, "t_end": 2.345, "duration": 1.111,
     "wall_start": 1722873600.0, "attrs": {"phase": "learning", ...}}

``t_start``/``t_end`` come from ``time.perf_counter()`` (monotonic,
comparable within one process); ``wall_start`` is epoch seconds for
cross-run correlation.  Sinks receive plain dicts, so any sink doubles as
a serialization boundary.

The tracer *always* times spans (callers read ``Span.duration`` to fill
result structs like ``PhaseTimings``) but only forwards events to the
sink when enabled — the disabled path is two ``perf_counter()`` calls.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, TextIO


class NullSink:
    """Swallows every event; the default for library users."""

    def emit(self, event: Dict[str, Any]) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class InMemorySink:
    """Collects events in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:
        pass

    # -- convenience filters -------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [e for e in self.events if e.get("type") == "span"]
        if name is not None:
            out = [e for e in out if e.get("name") == name]
        return out

    def phases(self) -> List[str]:
        """Distinct ``phase`` attributes in emission order."""
        seen: List[str] = []
        for e in self.spans():
            ph = e.get("attrs", {}).get("phase")
            if ph and ph not in seen:
                seen.append(ph)
        return seen


class JSONLSink:
    """Appends one JSON object per line to ``path`` (thread-safe).

    ``max_bytes`` (optional) bounds the file so long sweeps cannot fill
    the disk silently: the first event that would cross the limit is
    dropped and replaced by a ``{"type": "trace_truncated", ...}`` marker
    at the cut point; every later event is counted but not written, and
    :meth:`close` appends a final marker carrying the total drop count.
    A bounded trace therefore always says — in-band — that and how much
    it is missing.

    ``flush_every`` controls line-granular durability: the file is
    flushed after every ``flush_every``-th line (default 1, i.e. after
    each line) so a live ``tail`` and crash post-mortems always see a
    trace ending on a complete JSON line.  Pass 0 to restore buffered
    writes (flush only on close).
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        flush_every: int = 1,
    ) -> None:
        self.path = str(path)
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.flush_every = max(0, int(flush_every))
        self._fh: Optional[TextIO] = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._bytes_written = 0
        self._lines_since_flush = 0
        self._dropped = 0

    @property
    def truncated(self) -> bool:
        """True once the byte bound has been hit."""
        with self._lock:
            return self._dropped > 0

    @property
    def dropped_events(self) -> int:
        """Events counted but not written because of ``max_bytes``."""
        with self._lock:
            return self._dropped

    def _write_line(self, line: str) -> None:
        assert self._fh is not None
        self._fh.write(line + "\n")
        self._bytes_written += len(line.encode("utf-8")) + 1
        if self.flush_every:
            self._lines_since_flush += 1
            if self._lines_since_flush >= self.flush_every:
                self._fh.flush()
                self._lines_since_flush = 0

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=_json_default, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                return
            if self._dropped:
                self._dropped += 1
                return
            nbytes = len(line.encode("utf-8")) + 1
            if (
                self.max_bytes is not None
                and self._bytes_written + nbytes > self.max_bytes
            ):
                self._write_line(json.dumps(
                    {
                        "type": "trace_truncated",
                        "max_bytes": self.max_bytes,
                        "bytes_written": self._bytes_written,
                    },
                    separators=(",", ":"),
                ))
                self._dropped = 1
                return
            self._write_line(line)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                if self._dropped:
                    self._write_line(json.dumps(
                        {
                            "type": "trace_truncated",
                            "max_bytes": self.max_bytes,
                            "dropped_events": self._dropped,
                        },
                        separators=(",", ":"),
                    ))
                self._fh.flush()
                self._fh.close()
                self._fh = None


def _json_default(obj: Any) -> Any:
    """Best-effort serialization for numpy scalars/arrays without
    importing numpy (telemetry stays stdlib-only)."""
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


def load_events(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class Span:
    """One timed region.  Created by :meth:`Tracer.span`."""

    name: str
    span_id: int
    parent_id: Optional[int]
    t_start: float
    wall_start: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    t_end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now if the span is still open)."""
        end = self.t_end if self.t_end is not None else time.perf_counter()
        return end - self.t_start

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def set_attrs(self, **kv: Any) -> None:
        self.attrs.update(kv)

    def to_event(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": threading.get_ident(),
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "wall_start": self.wall_start,
            "attrs": self.attrs,
        }


class Tracer:
    """Context-manager span API with a per-thread parent stack."""

    def __init__(self, sink: Optional[Any] = None, enabled: bool = True) -> None:
        self.sink = sink or NullSink()
        self.enabled = bool(enabled)
        self._id_lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    def _new_id(self) -> int:
        with self._id_lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def reserve_ids(self, count: int) -> int:
        """Reserve a contiguous block of ``count`` span ids and return the
        first one.  Used when merging worker shard traces: worker span ids
        are remapped into a reserved block so they can never collide with
        ids the parent tracer hands out later."""
        count = max(0, int(count))
        with self._id_lock:
            base = self._next_id
            self._next_id += count
            return base

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; always yields a timed :class:`Span` even
        when tracing is disabled (so callers can read ``duration``)."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        sp = Span(
            name=name,
            span_id=self._new_id(),
            parent_id=parent,
            t_start=time.perf_counter(),
            wall_start=time.time(),
            attrs=dict(attrs) if attrs else {},
        )
        stack.append(sp)
        try:
            yield sp
        except Exception as exc:
            sp.set_attr("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            sp.t_end = time.perf_counter()
            stack.pop()
            if self.enabled:
                self.sink.emit(sp.to_event())

    def emit_event(self, event_type: str, **payload: Any) -> None:
        """Emit a free-form event (not a span) to the sink."""
        if not self.enabled:
            return
        self.sink.emit({"type": event_type, "wall": time.time(), **payload})
