"""The process-default Telemetry instance and harness sessions.

Instrumented library code calls :func:`get_telemetry` at use time, so a
harness that installs a session *after* objects were constructed is
still picked up.  The default instance is disabled: spans still time
(callers rely on durations) but nothing is recorded or written.

Session activation is **per-context** (a :mod:`contextvars` variable),
not a process global: two runs started in different threads each see
their own sink, so a multi-run harness (the bench ``--jobs`` thread
path, pytest-parallel, notebooks) cannot interleave events into one
trace.  Threads spawned *inside* a session start from a fresh context
and therefore fall back to the process default — pass the session's
``Telemetry`` handle explicitly if a worker thread should record into
it.  :func:`configure`/:func:`disable` still manage the process-wide
fallback for single-run scripts.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import JSONLSink, NullSink, Tracer
from repro.telemetry.status import StatusWriter


class Telemetry:
    """A tracer + metrics registry + optional manifest, as one handle."""

    def __init__(
        self,
        sink: Optional[Any] = None,
        enabled: bool = True,
        manifest: Optional[RunManifest] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.sink = sink or NullSink()
        self.enabled = bool(enabled) and not isinstance(self.sink, NullSink)
        self.tracer = Tracer(self.sink, enabled=self.enabled)
        self.metrics = MetricsRegistry(enabled=self.enabled)
        self.manifest = manifest
        #: stable id shared by every process contributing to this run's
        #: trace; None on the disabled default instance
        self.trace_id = trace_id
        #: optional StatusWriter (sessions attach one); None elsewhere
        self.status: Optional[StatusWriter] = None

    # -- span/metric passthrough ---------------------------------------
    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, event_type: str, **payload: Any) -> None:
        self.tracer.emit_event(event_type, **payload)

    def status_update(self, force: bool = False, **fields: Any) -> None:
        """Heartbeat hook: merge ``fields`` into this run's status.json.
        A no-op (attribute check only) when no StatusWriter is attached,
        so library hooks can call it unconditionally."""
        if self.status is not None:
            self.status.update(force=force, **fields)

    def status_worker(self, shard: Any, **fields: Any) -> None:
        """Worker-lane liveness hook; no-op without a StatusWriter."""
        if self.status is not None:
            self.status.worker_update(shard, **fields)

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Emit the metrics summary as a trailing trace event."""
        if self.enabled:
            self.sink.emit({"type": "metrics", "summary": self.metrics.summary()})

    def close(self) -> None:
        self.flush()
        self.sink.close()


_lock = threading.Lock()
_default = Telemetry(NullSink(), enabled=False)

#: the session active in the *current* context (thread / task); sessions
#: in sibling contexts do not see each other's sinks
_active: "contextvars.ContextVar[Optional[Telemetry]]" = contextvars.ContextVar(
    "repro_active_telemetry", default=None
)


def get_telemetry() -> Telemetry:
    """The active session's instance for this context, else the
    process-default (a disabled no-op unless configured)."""
    tel = _active.get()
    if tel is not None:
        return tel
    return _default


def configure(sink: Optional[Any] = None, manifest: Optional[RunManifest] = None) -> Telemetry:
    """Install a new default Telemetry writing to ``sink``; returns it."""
    global _default
    with _lock:
        _default = Telemetry(sink, enabled=sink is not None, manifest=manifest)
        return _default


def disable() -> None:
    """Reset the default instance to the disabled no-op."""
    global _default
    with _lock:
        _default = Telemetry(NullSink(), enabled=False)


@contextmanager
def session(
    trace_path: str,
    name: str = "run",
    config: Any = None,
    seed: Optional[int] = None,
    manifest_path: Optional[str] = None,
    max_bytes: Optional[int] = None,
    trace_context: Any = None,
    status: bool = True,
    **extra: Any,
) -> Iterator[Telemetry]:
    """Route telemetry for *this context* into ``trace_path``.

    Writes a JSONL trace, appends the metrics summary on exit, and — when
    ``manifest_path`` is given (default: ``<trace>.manifest.json``) — a
    run manifest.  Activation uses a :mod:`contextvars` token, so
    concurrent sessions in different threads each keep their own sink
    and the previous state is restored on exit — nested/parallel harness
    code cannot leak a sink or interleave into a sibling's trace.

    ``max_bytes`` bounds the trace file (see
    :class:`~repro.telemetry.spans.JSONLSink`); ``None`` means unbounded.

    Every session carries a ``trace_id``: a fresh ``uuid4`` hex, or —
    when ``trace_context`` (a :class:`~repro.telemetry.context
    .TraceContext` from a parent process) is given — the parent run's
    id, so a fan-out of pool workers shares one id end to end.  The
    first trace event is a ``trace_context`` anchor recording this
    process's (perf_counter, wall) clock pair, which the parent's merge
    uses to annotate monotonic-clock skew.

    Unless ``status=False``, a live ``<base>.status.json`` heartbeat
    (see :class:`~repro.telemetry.status.StatusWriter`) is attached and
    finished with the manifest outcome — this is what
    ``python -m repro.telemetry.tail`` watches.

    The manifest outcome defaults to ``success``/``error``; set
    ``telemetry.manifest.finish(...)`` inside the block to override.
    """
    os.makedirs(os.path.dirname(os.path.abspath(trace_path)), exist_ok=True)
    base = trace_path[:-6] if trace_path.endswith(".jsonl") else trace_path
    if manifest_path is None:
        manifest_path = base + ".manifest.json"
    ctx = trace_context
    trace_id = getattr(ctx, "trace_id", None) or uuid.uuid4().hex
    if ctx is not None:
        extra.setdefault("trace_context", ctx.to_dict())
    extra.setdefault("trace_id", trace_id)
    manifest = RunManifest.create(
        name, config=config, seed=seed, trace_path=trace_path, **extra
    )
    tel = Telemetry(
        JSONLSink(trace_path, max_bytes=max_bytes),
        manifest=manifest,
        trace_id=trace_id,
    )
    anchor = {
        "type": "trace_context",
        "trace_id": trace_id,
        "name": name,
        "pid": os.getpid(),
        "t_perf": time.perf_counter(),
        "t_wall": time.time(),
    }
    if ctx is not None:
        anchor["parent_span_id"] = getattr(ctx, "parent_span_id", None)
        anchor["shard_index"] = getattr(ctx, "shard_index", None)
        anchor["run_name"] = getattr(ctx, "run_name", None)
    tel.sink.emit(anchor)
    if status:
        tel.status = StatusWriter(
            base + ".status.json", name=name, trace_id=trace_id
        )
    token = _active.set(tel)
    try:
        yield tel
        if manifest.outcome is None:
            manifest.finish("success")
    except BaseException as exc:
        if manifest.outcome is None:
            manifest.finish("error", error=f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _active.reset(token)
        if ctx is not None and tel.enabled:
            # a raw (unreduced) metrics export so the parent process can
            # fold this run's observations into its own registry when it
            # merges this trace as a shard
            tel.sink.emit({
                "type": "worker_metrics",
                "shard_index": getattr(ctx, "shard_index", None),
                "raw": tel.metrics.raw(),
            })
        if tel.status is not None:
            tel.status.finish(manifest.outcome or "unknown")
        tel.close()
        manifest.write(manifest_path)
