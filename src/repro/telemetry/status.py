"""Atomically-written per-run ``status.json`` heartbeat.

A :class:`StatusWriter` holds one flat state dict for a run — current
phase, CEGIS iteration, IPM iteration and convergence health class,
counterexample counts, recovery-ladder rung, remaining time budget, and
per-worker liveness — and rewrites ``<base>.status.json`` whenever the
state changes.  Writes are atomic (temp file + ``os.replace``) so a
reader (``python -m repro.telemetry.tail``) never sees a torn file, and
throttled (``min_interval_s``) so per-IPM-iteration updates from hot
loops cost one ``perf_counter()`` call most of the time.

The file doubles as a dead-man switch: every write stamps
``heartbeat_wall`` with the current epoch time, so a fleet board can
classify a run as stalled (heartbeat old) or dead (heartbeat ancient,
or outcome never written) without talking to the process.

Everything here is stdlib-only, like the rest of :mod:`repro.telemetry`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, Optional

STATUS_SCHEMA_VERSION = 1

#: fields whose change always forces an immediate write, bypassing the
#: throttle — these are the transitions a live watcher must not miss
_FORCE_FIELDS = ("phase", "outcome", "ipm_convergence", "recovery_rung")


class StatusWriter:
    """Maintains one run's ``status.json`` with throttled atomic writes."""

    def __init__(
        self,
        path: str,
        name: str = "run",
        trace_id: Optional[str] = None,
        min_interval_s: float = 0.2,
    ) -> None:
        self.path = str(path)
        self.min_interval_s = float(min_interval_s)
        self._last_write = float("-inf")
        self._closed = False
        self.state: Dict[str, Any] = {
            "schema_version": STATUS_SCHEMA_VERSION,
            "name": name,
            "trace_id": trace_id,
            "pid": os.getpid(),
            "started_wall": time.time(),
            "heartbeat_wall": None,
            "phase": None,
            "outcome": None,
            "workers": {},
        }
        self._write()

    # -- updates --------------------------------------------------------
    def update(self, force: bool = False, **fields: Any) -> None:
        """Merge ``fields`` into the state and write if due.

        A write happens when ``force`` is set, when a force-field (phase,
        outcome, convergence class, recovery rung) changes value, or when
        ``min_interval_s`` has elapsed since the last write.  Unwritten
        updates are not lost — they ride along with the next write.
        """
        if self._closed:
            return
        changed_force = any(
            key in _FORCE_FIELDS and self.state.get(key) != value
            for key, value in fields.items()
        )
        self.state.update(fields)
        now = time.perf_counter()
        if force or changed_force or now - self._last_write >= self.min_interval_s:
            self._write(now)

    def worker_update(self, shard: Any, **fields: Any) -> None:
        """Merge liveness fields for one worker lane (keyed by shard)."""
        if self._closed:
            return
        lane = self.state["workers"].setdefault(str(shard), {})
        lane.update(fields)
        lane["heartbeat_wall"] = time.time()
        now = time.perf_counter()
        if now - self._last_write >= self.min_interval_s:
            self._write(now)

    def finish(self, outcome: str, **fields: Any) -> None:
        """Record the final outcome and write unconditionally."""
        if self._closed:
            return
        self.state.update(fields)
        self.state["outcome"] = outcome
        self._write()
        self._closed = True

    # -- IO -------------------------------------------------------------
    def _write(self, now: Optional[float] = None) -> None:
        self.state["heartbeat_wall"] = time.time()
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".status-", suffix=".tmp", dir=directory
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.state, fh, separators=(",", ":"), default=str)
            os.replace(tmp, self.path)
        except OSError:
            # a heartbeat must never take a run down (read-only results
            # tree, disk full); the run carries on without one
            return
        self._last_write = time.perf_counter() if now is None else now


def read_status(path: str) -> Optional[Dict[str, Any]]:
    """Read one ``status.json``; None when missing or (transiently)
    malformed — callers treat both as 'no heartbeat yet'."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
