"""Run manifests: the "what exactly ran" record next to each trace.

A manifest captures everything needed to interpret (and re-run) a trace:
the configuration echo, the seed, the git commit if available, platform
facts, start/end wall times, and the outcome.  It is deliberately a flat
JSON document so diffs between two runs are greppable.
"""

from __future__ import annotations

import dataclasses
import json
import platform as _platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, Optional

MANIFEST_SCHEMA_VERSION = 1


def collect_git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit hash, or ``None`` outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except Exception:
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def platform_info() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "implementation": _platform.python_implementation(),
        "system": _platform.system(),
        "release": _platform.release(),
        "machine": _platform.machine(),
    }


def _config_echo(config: Any) -> Any:
    """Recursively convert dataclasses/tuples to JSON-friendly values."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: _config_echo(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, dict):
        return {str(k): _config_echo(v) for k, v in config.items()}
    if isinstance(config, (list, tuple)):
        return [_config_echo(v) for v in config]
    if isinstance(config, (str, int, float, bool)) or config is None:
        return config
    if hasattr(config, "item"):  # numpy scalar
        return config.item()
    return repr(config)


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat()


@dataclass
class RunManifest:
    """Provenance record for one run; written next to its trace."""

    name: str
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    trace_path: Optional[str] = None
    git_sha: Optional[str] = field(default_factory=collect_git_sha)
    platform: Dict[str, str] = field(default_factory=platform_info)
    started_at: str = field(default_factory=_utc_now)
    finished_at: Optional[str] = None
    outcome: Optional[str] = None
    elapsed_seconds: Optional[float] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = MANIFEST_SCHEMA_VERSION
    _t0: float = field(default_factory=time.perf_counter, repr=False, compare=False)

    @classmethod
    def create(
        cls,
        name: str,
        config: Any = None,
        seed: Optional[int] = None,
        trace_path: Optional[str] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Start a manifest, echoing ``config`` (dataclasses welcome)."""
        return cls(
            name=name,
            seed=seed,
            config=_config_echo(config) if config is not None else {},
            trace_path=str(trace_path) if trace_path else None,
            extra=dict(extra),
        )

    def finish(self, outcome: str, **extra: Any) -> "RunManifest":
        """Stamp the end time and outcome (e.g. ``success``/``failure``)."""
        self.finished_at = _utc_now()
        self.outcome = str(outcome)
        self.elapsed_seconds = time.perf_counter() - self._t0
        self.extra.update(extra)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out.pop("_t0", None)
        return out

    def write(self, path: str) -> str:
        """Serialize to ``path`` as pretty JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        return str(path)

    @staticmethod
    def load(path: str) -> Dict[str, Any]:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
