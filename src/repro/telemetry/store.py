"""Cross-run fleet telemetry store.

One run leaves an artifact family on disk (``<base>.jsonl`` trace,
``<base>.manifest.json``, ``<base>.audit.json``); a results tree
accumulates many.  This module indexes every family under a root into
:class:`RunRecord` rows and folds them into one deterministic,
JSON-ready :func:`fleet_summary` — per-system iteration counts,
phase-time totals, cache hit rates, SDP recovery engagement, and
IPM-convergence-class histograms across runs.  It is the query substrate
the future service tier aggregates per-user requests into; today it is
the ``python -m repro.telemetry.fleet`` CLI.

Everything here reads static files and tolerates partial families:
a trace with no manifest, or whose manifest never recorded an outcome
(the process died mid-run), indexes with the explicit outcome
``incomplete`` and ``incomplete: true`` on the record; malformed JSONL
lines are skipped the same way the report CLIs skip them, and artifacts
written before a given schema addition simply leave the corresponding
fields empty.  Bench-parent traces (the merged ``bench-<scale>.jsonl``
written by ``--jobs`` drivers, manifest ``extra.role ==
"bench_parent"``) are indexed but excluded from the per-system
aggregates so their merged copies of run spans never double-count.
The summary is a pure function of file contents — no clocks — so
committed fixtures can pin it with a golden test; *live* staleness
detection (heartbeat age) belongs to ``repro.telemetry.tail``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.report import cache_rates, metrics_summary, phase_totals

FLEET_SCHEMA_VERSION = 1


def _round(x: Optional[float], digits: int = 6) -> Optional[float]:
    if x is None:
        return None
    v = float(x)
    if not math.isfinite(v):
        return None
    return round(v, digits)


@dataclass
class RunRecord:
    """One indexed run: the cheap-to-query projection of its artifacts."""

    base: str                      # artifact family path relative to the root
    name: str = "unknown"          # manifest name, e.g. "table1/C1"
    system: str = "unknown"        # benchmark system id parsed from the name
    scale: str = "unknown"         # smoke / paper when derivable
    outcome: str = "unknown"
    #: no manifest, or a manifest with no recorded outcome: the run died
    #: (or is still running) before ``session`` finalized its artifacts
    incomplete: bool = False
    #: manifest ``extra.role`` — ``bench_parent`` marks a merged bench
    #: driver trace, excluded from per-system aggregates
    role: Optional[str] = None
    seed: Optional[int] = None
    git_sha: Optional[str] = None
    started_at: Optional[str] = None
    elapsed_seconds: Optional[float] = None
    iterations: Optional[int] = None
    phases: Dict[str, float] = field(default_factory=dict)
    caches: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    convergence: Dict[str, int] = field(default_factory=dict)
    recovery_engaged: int = 0
    recovery_successes: int = 0
    truncated: bool = False
    n_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base,
            "name": self.name,
            "system": self.system,
            "scale": self.scale,
            "outcome": self.outcome,
            "incomplete": self.incomplete,
            "role": self.role,
            "seed": self.seed,
            "git_sha": self.git_sha,
            "started_at": self.started_at,
            "elapsed_seconds": _round(self.elapsed_seconds),
            "iterations": self.iterations,
            "phases": {k: _round(v) for k, v in sorted(self.phases.items())},
            "caches": self.caches,
            "convergence": dict(sorted(self.convergence.items())),
            "recovery_engaged": self.recovery_engaged,
            "recovery_successes": self.recovery_successes,
            "truncated": self.truncated,
            "n_events": self.n_events,
        }


def _read_events(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Tolerant JSONL read (same policy as the report CLIs)."""
    events: List[Dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    return events, skipped


def _load_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            out = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return out if isinstance(out, dict) else None


def _system_and_scale(name: str, base: str) -> Tuple[str, str]:
    """Best-effort (system, scale) from a manifest name or file base.

    ``table1/C1`` → (``C1``, scale from the file base's ``-smoke`` /
    ``-paper`` suffix when present); a bare base like ``C3-paper`` parses
    directly.
    """
    system = name.rsplit("/", 1)[-1] if name and name != "unknown" else ""
    stem = os.path.basename(base)
    scale = "unknown"
    if "-" in stem:
        head, tail = stem.rsplit("-", 1)
        if tail in ("smoke", "paper"):
            scale = tail
            if not system:
                system = head
    if not system:
        system = stem or "unknown"
    return system, scale


def _convergence_histogram(events: Sequence[Dict[str, Any]],
                           audit: Optional[Dict[str, Any]]) -> Dict[str, int]:
    """Convergence-class counts for one run.

    Prefers the per-solve ``sdp.ipm_trace`` events (one per IPM solve);
    falls back to ``sdp.solve`` span attrs, then to the audit's
    per-condition verdicts — so pre-tracing artifacts still contribute
    whatever they recorded (possibly nothing).
    """
    hist: Dict[str, int] = {}

    def bump(value: Any) -> None:
        if value:
            hist[str(value)] = hist.get(str(value), 0) + 1

    for e in events:
        if e.get("type") == "sdp.ipm_trace":
            bump(e.get("convergence"))
    if hist:
        return hist
    for e in events:
        if e.get("type") == "span" and e.get("name") == "sdp.solve":
            bump(e.get("attrs", {}).get("convergence"))
    if hist:
        return hist
    for c in (audit or {}).get("conditions", []):
        bump((c.get("sdp") or {}).get("convergence"))
    return hist


def load_run(trace_path: str, root: Optional[str] = None) -> Optional[RunRecord]:
    """Index one trace (plus its sibling manifest/audit) into a record.

    Returns ``None`` when the trace is unreadable or contains no valid
    JSON lines at all (e.g. a stray non-trace ``.jsonl``).
    """
    try:
        events, skipped = _read_events(trace_path)
    except OSError:
        return None
    if not events and skipped:
        return None

    base = trace_path[:-6] if trace_path.endswith(".jsonl") else trace_path
    rel_base = os.path.relpath(base, root) if root else base
    rec = RunRecord(base=rel_base.replace(os.sep, "/"), n_events=len(events))

    manifest = _load_json(base + ".manifest.json")
    if manifest:
        rec.name = str(manifest.get("name") or "unknown")
        outcome = manifest.get("outcome")
        # a manifest without an outcome means session() never finalized:
        # the run crashed, was killed, or is still going — mark explicitly
        # rather than degrading to the pre-tracing "unknown"
        rec.outcome = str(outcome) if outcome else "incomplete"
        rec.incomplete = not outcome
        role = (manifest.get("extra") or {}).get("role")
        rec.role = str(role) if role else None
        seed = manifest.get("seed")
        rec.seed = int(seed) if isinstance(seed, int) else None
        rec.git_sha = manifest.get("git_sha")
        rec.started_at = manifest.get("started_at")
        elapsed = manifest.get("elapsed_seconds")
        rec.elapsed_seconds = float(elapsed) if elapsed is not None else None
        iterations = (manifest.get("extra") or {}).get("iterations")
        rec.iterations = int(iterations) if isinstance(iterations, int) else None
        scale = (manifest.get("config") or {}).get("scale")
    else:
        # trace with no manifest at all: a partially-written family
        rec.outcome = "incomplete"
        rec.incomplete = True
        scale = None
    if rec.iterations is None:
        n = sum(1 for e in events if e.get("type") == "cegis.iteration")
        rec.iterations = n or None

    rec.system, file_scale = _system_and_scale(rec.name, base)
    rec.scale = str(scale) if scale else file_scale

    audit = _load_json(base + ".audit.json")
    rec.phases = phase_totals(events)
    counters = metrics_summary(events).get("counters", {})
    rec.caches = {
        name: {"hits": hits, "misses": misses, "rate": _round(rate)}
        for name, hits, misses, rate in cache_rates(counters)
    }
    rec.convergence = _convergence_histogram(events, audit)
    rec.recovery_engaged = int(counters.get("sdp.recovery.engaged", 0))
    rec.recovery_successes = int(sum(
        v for k, v in counters.items()
        if k.startswith("sdp.recovery.") and k.endswith(".successes")
    ))
    rec.truncated = any(e.get("type") == "trace_truncated" for e in events)
    return rec


def scan_runs(root: str) -> List[RunRecord]:
    """Walk ``root`` and index every ``*.jsonl`` trace found.

    Sorted by relative base path, so the result (and everything derived
    from it) is independent of filesystem iteration order.
    """
    trace_paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for fname in sorted(filenames):
            if fname.endswith(".jsonl"):
                trace_paths.append(os.path.join(dirpath, fname))
    records = []
    for path in sorted(trace_paths):
        rec = load_run(path, root=root)
        if rec is not None:
            records.append(rec)
    records.sort(key=lambda r: r.base)
    return records


def _mean(values: Sequence[float]) -> Optional[float]:
    vals = [float(v) for v in values if v is not None and math.isfinite(float(v))]
    return sum(vals) / len(vals) if vals else None


def fleet_summary(records: Sequence[RunRecord]) -> Dict[str, Any]:
    """Fold run records into the one aggregate document.

    Deterministic given the records (no clocks, no randomness): keys are
    sorted, floats rounded to 6 digits — suitable for golden tests.
    """
    # bench-parent traces hold merged *copies* of each row's spans and
    # metrics; aggregating them alongside the per-run traces would count
    # every phase second and cache hit twice.  They stay in the ``runs``
    # listing (they are real artifacts) but out of every aggregate.
    aggregated = [r for r in records if r.role != "bench_parent"]

    systems: Dict[str, List[RunRecord]] = {}
    for rec in aggregated:
        systems.setdefault(rec.system, []).append(rec)

    outcome_hist: Dict[str, int] = {}
    convergence_total: Dict[str, int] = {}
    cache_totals: Dict[str, Dict[str, int]] = {}
    for rec in aggregated:
        outcome_hist[rec.outcome] = outcome_hist.get(rec.outcome, 0) + 1
        for cls, n in rec.convergence.items():
            convergence_total[cls] = convergence_total.get(cls, 0) + n
        for name, c in rec.caches.items():
            agg = cache_totals.setdefault(name, {"hits": 0, "misses": 0})
            agg["hits"] += int(c.get("hits", 0))
            agg["misses"] += int(c.get("misses", 0))

    system_rows: Dict[str, Any] = {}
    for system, recs in sorted(systems.items()):
        phase_acc: Dict[str, List[float]] = {}
        for rec in recs:
            for phase, seconds in rec.phases.items():
                phase_acc.setdefault(phase, []).append(seconds)
        conv: Dict[str, int] = {}
        for rec in recs:
            for cls, n in rec.convergence.items():
                conv[cls] = conv.get(cls, 0) + n
        iterations = [r.iterations for r in recs if r.iterations is not None]
        hits = sum(int(c.get("hits", 0)) for r in recs for c in r.caches.values())
        misses = sum(
            int(c.get("misses", 0)) for r in recs for c in r.caches.values()
        )
        system_rows[system] = {
            "runs": len(recs),
            "scales": sorted({r.scale for r in recs}),
            "outcomes": {
                o: sum(1 for r in recs if r.outcome == o)
                for o in sorted({r.outcome for r in recs})
            },
            "iterations": {
                "min": min(iterations) if iterations else None,
                "max": max(iterations) if iterations else None,
                "mean": _round(_mean(iterations)),
            },
            "elapsed_seconds": {
                "mean": _round(_mean(
                    [r.elapsed_seconds for r in recs
                     if r.elapsed_seconds is not None]
                )),
                "total": _round(sum(
                    r.elapsed_seconds for r in recs
                    if r.elapsed_seconds is not None
                )),
            },
            "phase_seconds": {
                phase: {
                    "mean": _round(_mean(vals)),
                    "total": _round(sum(vals)),
                }
                for phase, vals in sorted(phase_acc.items())
            },
            "cache_hit_rate": _round(
                hits / (hits + misses) if (hits + misses) else None
            ) if (hits + misses) else None,
            "convergence": dict(sorted(conv.items())),
            "sdp_recovery": {
                "engaged": sum(r.recovery_engaged for r in recs),
                "successes": sum(r.recovery_successes for r in recs),
            },
        }

    return {
        "schema_version": FLEET_SCHEMA_VERSION,
        "kind": "fleet_summary",
        "n_runs": len(aggregated),
        "n_parent_traces": len(records) - len(aggregated),
        "n_incomplete": sum(1 for r in aggregated if r.incomplete),
        "n_systems": len(systems),
        "outcomes": dict(sorted(outcome_hist.items())),
        "convergence": dict(sorted(convergence_total.items())),
        "caches": {
            name: {
                "hits": agg["hits"],
                "misses": agg["misses"],
                "rate": _round(
                    agg["hits"] / (agg["hits"] + agg["misses"])
                ) if (agg["hits"] + agg["misses"]) else None,
            }
            for name, agg in sorted(cache_totals.items())
        },
        "systems": system_rows,
        "runs": [r.to_dict() for r in records],
    }
