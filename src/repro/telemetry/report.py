"""Render a telemetry trace as a human-readable report.

    python -m repro.telemetry.report results/telemetry/C1-smoke.jsonl
    python -m repro.telemetry.report trace.jsonl --format markdown
    python -m repro.telemetry.report trace.jsonl --format json
    python -m repro.telemetry.report trace.jsonl --manifest run.manifest.json

Sections:

* **Phases** — total seconds per pipeline phase (spans carrying a
  ``phase`` attribute: inclusion / learning / verification /
  counterexample), with share-of-total.  These totals match
  ``SNBCResult.timings`` because both are filled from the same spans.
* **Spans** — per-span-name aggregate (count, total, self, mean, max);
  *self* is exclusive time (total minus direct-child spans), so nested
  spans do not double-count.
* **IPM sub-phases** — solver time attributed inside the interior-point
  iteration (Z factorization, Schur assembly, Schur factorization, line
  search), aggregated from the per-iteration timers every
  ``sdp.ipm_trace`` event carries.
* **Metrics** — counters, gauges, and histogram summaries from the
  trailing ``metrics`` event.
* **Caches** — hit rates derived from paired ``<name>.hits`` /
  ``<name>.misses`` counters (workspace cache, compile-field cache,
  field-value cache, ...).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.spans import load_events

#: canonical pipeline order for the phase table
PHASE_ORDER = ["inclusion", "learning", "verification", "counterexample"]


def phase_totals(events: Sequence[Dict[str, Any]]) -> Dict[str, float]:
    """Sum span durations per ``phase`` attribute.

    Only spans that *carry* the attribute count, so nested helper spans
    (e.g. SDP solves inside a verification span) are not double-counted.
    """
    totals: Dict[str, float] = {}
    for e in events:
        if e.get("type") != "span":
            continue
        phase = e.get("attrs", {}).get("phase")
        if phase:
            totals[phase] = totals.get(phase, 0.0) + float(e.get("duration", 0.0))
    return totals


def span_self_times(events: Sequence[Dict[str, Any]]) -> Dict[int, float]:
    """Exclusive (self) seconds per span id: duration minus the summed
    durations of its *direct* children, floored at 0 (clock jitter can
    make children sum past the parent by nanoseconds).

    Only children from the *same process shard* subtract (a merged trace
    stamps worker spans with a ``shard`` key; parent-process spans have
    none).  A worker root span linked under the parent's submission span
    ran in a different process — concurrently with the parent — so its
    duration is not time the parent span spent in children, and the
    merged trace's self-time totals stay equal to the sum of the
    per-process traces' totals.
    """
    by_id: Dict[int, Dict[str, Any]] = {
        e["span_id"]: e
        for e in events
        if e.get("type") == "span" and e.get("span_id") is not None
    }
    child_sum: Dict[int, float] = {}
    for e in by_id.values():
        parent = e.get("parent_id")
        if parent is None:
            continue
        parent_event = by_id.get(parent)
        if parent_event is not None and (
            parent_event.get("shard") != e.get("shard")
        ):
            continue
        child_sum[parent] = child_sum.get(parent, 0.0) + float(
            e.get("duration", 0.0)
        )
    return {
        span_id: max(
            0.0, float(e.get("duration", 0.0)) - child_sum.get(span_id, 0.0)
        )
        for span_id, e in by_id.items()
    }


def span_aggregates(
    events: Sequence[Dict[str, Any]],
) -> List[Tuple[str, int, float, float, float, float]]:
    """Per-name (count, total, self, mean, max) rows sorted by total desc.

    ``total`` is inclusive wall time; ``self`` excludes time attributed
    to child spans, so nested spans (``snbc.verification`` wrapping
    ``sdp.solve``) no longer double-count in a "where did the time go"
    reading.
    """
    selfs = span_self_times(events)
    acc: Dict[str, List[float]] = {}
    self_acc: Dict[str, float] = {}
    for e in events:
        if e.get("type") == "span":
            name = e["name"]
            acc.setdefault(name, []).append(float(e.get("duration", 0.0)))
            self_acc[name] = self_acc.get(name, 0.0) + selfs.get(
                e.get("span_id"), float(e.get("duration", 0.0))
            )
    rows = [
        (name, len(ds), sum(ds), self_acc.get(name, 0.0), sum(ds) / len(ds),
         max(ds))
        for name, ds in acc.items()
    ]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def worker_lanes(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-shard rollup of a merged trace's worker-origin spans.

    ``seconds`` sums each lane's *root* spans (spans whose parent lives
    in another shard or the parent process), i.e. the wall time the lane
    was busy; ``clock_skew_s`` is the monotonic-clock shift the merge
    applied to that worker's timestamps.  Single-process traces have no
    ``shard``-stamped spans and return an empty list.
    """
    by_id: Dict[int, Dict[str, Any]] = {
        e["span_id"]: e
        for e in events
        if e.get("type") == "span" and e.get("span_id") is not None
    }
    lanes: Dict[Any, Dict[str, Any]] = {}
    for e in by_id.values():
        shard = e.get("shard")
        if shard is None:
            continue
        lane = lanes.setdefault(shard, {
            "shard": shard,
            "pid": e.get("pid"),
            "spans": 0,
            "seconds": 0.0,
            "clock_skew_s": float(e.get("clock_skew_s") or 0.0),
        })
        lane["spans"] += 1
        parent = by_id.get(e.get("parent_id"))
        if parent is None or parent.get("shard") != shard:
            lane["seconds"] += float(e.get("duration", 0.0))
    return sorted(lanes.values(), key=lambda lane: str(lane["shard"]))


#: solver sub-phase keys in per-iteration IPM trace records, in
#: iteration order (see :mod:`repro.sdp.trace`)
IPM_SUBPHASES = ("t_z_factor", "t_schur_assembly", "t_schur_factor",
                 "t_line_search")


def ipm_subphase_totals(
    events: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Aggregate solver sub-phase timers across all ``sdp.ipm_trace``
    events (one per solve, carrying per-iteration records).

    Returns one row per sub-phase with total seconds, the number of
    iterations that recorded the phase, and mean seconds per iteration —
    attributing time *inside* the IPM instead of to the solve span as a
    whole.  Empty when no solve emitted timed records (e.g. traces from
    before the timers existed).
    """
    totals = {k: 0.0 for k in IPM_SUBPHASES}
    counts = {k: 0 for k in IPM_SUBPHASES}
    for e in events:
        if e.get("type") != "sdp.ipm_trace":
            continue
        for rec in e.get("records") or []:
            for k in IPM_SUBPHASES:
                v = rec.get(k)
                if isinstance(v, (int, float)) and v == v:  # skip nan/None
                    totals[k] += float(v)
                    counts[k] += 1
    return [
        {
            "phase": k[2:],
            "seconds": totals[k],
            "iterations": counts[k],
            "mean_s": totals[k] / counts[k] if counts[k] else 0.0,
        }
        for k in IPM_SUBPHASES
        if counts[k]
    ]


def metrics_summary(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The last ``metrics`` event's summary (empty if none was emitted)."""
    summary: Dict[str, Any] = {}
    for e in events:
        if e.get("type") == "metrics":
            summary = e.get("summary", {})
    return summary


def cache_rates(counters: Dict[str, float]) -> List[Tuple[str, int, int, float]]:
    """Pair ``<name>.hits`` / ``<name>.misses`` counters into hit rates.

    A cache shows up as soon as either counter exists (a cold run has
    only misses); returns ``(name, hits, misses, rate)`` rows sorted by
    name.
    """
    names = {
        k[: -len(suffix)]
        for k in counters
        for suffix in (".hits", ".misses")
        if k.endswith(suffix)
    }
    rows = []
    for name in sorted(names):
        hits = int(counters.get(name + ".hits", 0))
        misses = int(counters.get(name + ".misses", 0))
        total = hits + misses
        rows.append((name, hits, misses, hits / total if total else 0.0))
    return rows


def _fmt(x: float) -> str:
    return f"{x:.4g}" if abs(x) < 1e-3 or abs(x) >= 1e5 else f"{x:.3f}"


def _table(
    header: Sequence[str], rows: Sequence[Sequence[str]], markdown: bool
) -> List[str]:
    if markdown:
        out = ["| " + " | ".join(header) + " |",
               "|" + "|".join("---" for _ in header) + "|"]
        out += ["| " + " | ".join(r) + " |" for r in rows]
        return out
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [line, "-" * len(line)]
    out += ["  ".join(r[i].ljust(widths[i]) for i in range(len(header))) for r in rows]
    return out


def render_report(
    events: Sequence[Dict[str, Any]],
    fmt: str = "text",
    manifest: Optional[Dict[str, Any]] = None,
    max_span_rows: int = 20,
) -> str:
    """Build the full report string (``fmt``: ``text`` or ``markdown``)."""
    markdown = fmt == "markdown"
    h = (lambda s: f"## {s}") if markdown else (lambda s: f"== {s} ==")
    lines: List[str] = []

    if manifest:
        lines.append(h("Run"))
        for key in ("name", "outcome", "seed", "git_sha", "started_at",
                    "finished_at", "elapsed_seconds"):
            if manifest.get(key) is not None:
                lines.append(f"- {key}: {manifest[key]}")
        trace_id = (manifest.get("extra") or {}).get("trace_id")
        if trace_id:
            lines.append(f"- trace_id: {trace_id}")
        lines.append("")

    totals = phase_totals(events)
    if totals:
        grand = sum(totals.values())
        ordered = [p for p in PHASE_ORDER if p in totals]
        ordered += sorted(set(totals) - set(ordered))
        rows = [
            [p, f"{totals[p]:.3f}", f"{100.0 * totals[p] / grand:.1f}%"]
            for p in ordered
        ]
        rows.append(["total", f"{grand:.3f}", "100.0%"])
        lines.append(h("Phases"))
        lines += _table(["phase", "seconds", "share"], rows, markdown)
        lines.append("")

    span_rows = span_aggregates(events)
    if span_rows:
        rows = [
            [name, str(count), f"{total:.3f}", f"{self_total:.3f}",
             f"{mean:.4f}", f"{mx:.4f}"]
            for name, count, total, self_total, mean, mx
            in span_rows[:max_span_rows]
        ]
        lines.append(h("Spans"))
        lines += _table(["span", "count", "total s", "self s", "mean s",
                         "max s"], rows, markdown)
        if len(span_rows) > max_span_rows:
            lines.append(f"... {len(span_rows) - max_span_rows} more span names")
        lines.append("")

    lanes = worker_lanes(events)
    if lanes:
        rows = [
            [str(lane["shard"]),
             str(lane["pid"]) if lane["pid"] is not None else "-",
             str(lane["spans"]), f"{lane['seconds']:.3f}",
             f"{lane['clock_skew_s']:+.4f}"]
            for lane in lanes
        ]
        lines.append(h("Workers"))
        lines += _table(["shard", "pid", "spans", "busy s", "clock skew s"],
                        rows, markdown)
        lines.append("")

    subphases = ipm_subphase_totals(events)
    if subphases:
        grand = sum(r["seconds"] for r in subphases)
        rows = [
            [r["phase"], f"{r['seconds']:.3f}", str(r["iterations"]),
             _fmt(r["mean_s"]),
             f"{100.0 * r['seconds'] / grand:.1f}%" if grand else "-"]
            for r in subphases
        ]
        lines.append(h("IPM sub-phases"))
        lines += _table(
            ["phase", "seconds", "iterations", "mean s/it", "share"],
            rows, markdown,
        )
        lines.append("")

    summary = metrics_summary(events)
    counters = summary.get("counters", {})
    gauges = summary.get("gauges", {})
    hists = summary.get("histograms", {})
    if counters or gauges:
        rows = [[k, "counter", _fmt(v)] for k, v in sorted(counters.items())]
        rows += [[k, "gauge", _fmt(v)] for k, v in sorted(gauges.items())]
        lines.append(h("Metrics"))
        lines += _table(["metric", "kind", "value"], rows, markdown)
        lines.append("")
    caches = cache_rates(counters)
    if caches:
        rows = [
            [name, str(hits), str(misses), f"{100.0 * rate:.1f}%"]
            for name, hits, misses, rate in caches
        ]
        lines.append(h("Caches"))
        lines += _table(["cache", "hits", "misses", "hit rate"], rows, markdown)
        lines.append("")
    if hists:
        rows = [
            [k, str(int(s["count"])), _fmt(s["mean"]), _fmt(s["p50"]),
             _fmt(s["p95"]), _fmt(s["max"])]
            for k, s in sorted(hists.items())
        ]
        lines.append(h("Histograms"))
        lines += _table(["metric", "count", "mean", "p50", "p95", "max"],
                        rows, markdown)
        lines.append("")

    if not lines:
        lines.append("(empty trace)")
    return "\n".join(lines).rstrip() + "\n"


def report_payload(
    events: Sequence[Dict[str, Any]],
    manifest: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Machine-readable report: the same aggregates the text report shows."""
    summary = metrics_summary(events)
    return {
        "manifest": manifest,
        "phases": phase_totals(events),
        "spans": [
            {"name": name, "count": count, "total": total, "self": self_total,
             "mean": mean, "max": mx}
            for name, count, total, self_total, mean, mx
            in span_aggregates(events)
        ],
        "workers": worker_lanes(events),
        "ipm_subphases": ipm_subphase_totals(events),
        "metrics": summary,
        "caches": [
            {"name": name, "hits": hits, "misses": misses, "hit_rate": rate}
            for name, hits, misses, rate in cache_rates(
                summary.get("counters", {})
            )
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument("--format", choices=["text", "markdown", "json"],
                        default="text")
    parser.add_argument("--manifest", default=None,
                        help="run manifest JSON to include (auto-detected "
                             "from <trace>.manifest.json when present)")
    parser.add_argument("--max-span-rows", type=int, default=20)
    args = parser.parse_args(argv)

    # tolerate truncated/corrupt lines: a crashed run leaves a partial
    # final record, and its trace is exactly the one worth reading
    events: List[Dict[str, Any]] = []
    skipped = 0
    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    skipped += 1
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if skipped and not events:
        print(
            f"error: all {skipped} line(s) of the trace are malformed",
            file=sys.stderr,
        )
        return 1
    if skipped:
        print(f"warning: skipped {skipped} malformed line(s)", file=sys.stderr)
    manifest: Optional[Dict[str, Any]] = None
    manifest_path = args.manifest
    if manifest_path is None:
        base = args.trace[:-6] if args.trace.endswith(".jsonl") else args.trace
        candidate = base + ".manifest.json"
        import os
        if os.path.exists(candidate):
            manifest_path = candidate
    if manifest_path:
        from repro.telemetry.manifest import RunManifest
        manifest = RunManifest.load(manifest_path)

    if args.format == "json":
        print(json.dumps(report_payload(events, manifest=manifest),
                         indent=2, sort_keys=True))
        return 0
    print(render_report(events, fmt=args.format, manifest=manifest,
                        max_span_rows=args.max_span_rows), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
