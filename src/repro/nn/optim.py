"""First-order optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def load_state_dict(self, state: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data = p.data + v

    def state_dict(self) -> Dict[str, Any]:
        return {"velocity": [v.tolist() for v in self._velocity]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        vel = [np.asarray(v, dtype=float) for v in state["velocity"]]
        if len(vel) != len(self._velocity):
            raise ValueError(
                f"state has {len(vel)} velocity buffers, "
                f"optimizer has {len(self._velocity)}"
            )
        self._velocity = [
            v.reshape(old.shape) for v, old in zip(vel, self._velocity)
        ]


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / (1.0 - b1 ** self._t)
            v_hat = v / (1.0 - b2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "t": self._t,
            "m": [m.tolist() for m in self._m],
            "v": [v.tolist() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        m = [np.asarray(a, dtype=float) for a in state["m"]]
        v = [np.asarray(a, dtype=float) for a in state["v"]]
        if len(m) != len(self._m) or len(v) != len(self._v):
            raise ValueError(
                f"state has {len(m)}/{len(v)} moment buffers, "
                f"optimizer has {len(self._m)}"
            )
        self._m = [a.reshape(old.shape) for a, old in zip(m, self._m)]
        self._v = [a.reshape(old.shape) for a, old in zip(v, self._v)]
        self._t = int(state["t"])
