"""Neural network layers, optimizers and the paper's special architectures.

* :mod:`repro.nn.layers` / :mod:`repro.nn.optim` — generic MLP building
  blocks on the :mod:`repro.autodiff` engine (torch substitute);
* :mod:`repro.nn.quadratic` — the cross-product ("quadratic") network of
  §4.1 whose output is *exactly* a polynomial of degree ``2^l``;
* :mod:`repro.nn.multiplier` — the linear multiplier network for
  ``lambda(x)`` (and the constant variant marked ``c`` in Table 1);
* :mod:`repro.nn.lipschitz` — Lipschitz constant bounds for NN controllers
  (needed by Theorem 2's inclusion error bound).
"""

from repro.nn.layers import Dense, LeakyReLU, Module, Parameter, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.optim import SGD, Adam
from repro.nn.mlp import MLP
from repro.nn.quadratic import QuadraticNetwork, SquareNetwork
from repro.nn.multiplier import ConstantMultiplier, LinearMultiplier
from repro.nn.io import load_network, network_from_dict, network_to_dict, save_network
from repro.nn.lipschitz import (
    empirical_lipschitz_lower_bound,
    spectral_lipschitz_bound,
)

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "Tanh",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Sequential",
    "SGD",
    "Adam",
    "MLP",
    "QuadraticNetwork",
    "SquareNetwork",
    "ConstantMultiplier",
    "LinearMultiplier",
    "spectral_lipschitz_bound",
    "empirical_lipschitz_lower_bound",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]
