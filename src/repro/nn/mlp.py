"""A standard multilayer perceptron used for NN controllers."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Dense, LeakyReLU, Module, ReLU, Sequential, Sigmoid, Tanh

_ACTIVATIONS = {
    "tanh": Tanh,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
}


class MLP(Module):
    """A fully connected network, e.g. the controller ``k(x)``.

    Parameters
    ----------
    layer_sizes:
        ``[n_in, h_1, ..., h_k, n_out]`` — matches the paper's
        ``n-h-...-1`` network-shape notation.
    activation:
        Hidden-layer nonlinearity name.
    output_scale:
        When set, the output becomes ``output_scale * tanh(raw)`` —
        the standard DDPG actor saturation bounding the control input.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        activation: str = "tanh",
        output_scale: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; options: {sorted(_ACTIVATIONS)}"
            )
        rng = rng or np.random.default_rng()
        self.layer_sizes = list(layer_sizes)
        self.activation = activation
        self.output_scale = output_scale
        mods: List[Module] = []
        for i in range(len(layer_sizes) - 1):
            mods.append(Dense(layer_sizes[i], layer_sizes[i + 1], rng=rng))
            if i < len(layer_sizes) - 2:
                mods.append(_ACTIVATIONS[activation]())
        self.net = Sequential(*mods)

    def forward(self, x: Tensor) -> Tensor:
        out = self.net(x)
        if self.output_scale is not None:
            out = out.tanh() * self.output_scale
        return out

    def __repr__(self) -> str:
        shape = "-".join(str(s) for s in self.layer_sizes)
        return f"MLP({shape}, activation={self.activation})"
