"""Quadratic (cross-product) networks — the neural BC architecture of §4.1.

Each hidden layer computes the Hadamard product of two affine maps,

    x^(i) = (W1^(i) x^(i-1) + b1^(i)) (*) (W2^(i) x^(i-1) + b2^(i)),

so a network with ``l`` hidden layers outputs *exactly* a polynomial of
degree ``2^l`` in the input — which is what lets the Verifier consume the
learned candidate symbolically.  Compared to the Square activation
``(W x + b)^2`` (kept here as :class:`SquareNetwork` for the ablation
study), the cross-product doubles the parameters at equal output degree and
removes the nonnegativity restriction of each unit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.nn.layers import Module, Parameter
from repro.poly import Polynomial


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class QuadraticNetwork(Module):
    """Cross-product activated network producing a scalar polynomial output.

    Parameters
    ----------
    layer_sizes:
        ``[n_in, h_1, ..., h_l]`` — input width followed by one width per
        hidden layer; a Table 1 entry like ``3-5-1`` is
        ``layer_sizes=[3, 5]`` (the trailing 1 is the linear output).
    output_bias:
        Include a constant offset in the output layer (adds the degree-0
        coefficient of ``B``).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        output_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need an input width and at least one hidden layer")
        rng = rng or np.random.default_rng()
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.W1: List[Parameter] = []
        self.b1: List[Parameter] = []
        self.W2: List[Parameter] = []
        self.b2: List[Parameter] = []
        for n_in, n_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            self.W1.append(Parameter(_glorot(rng, n_in, n_out)))
            self.b1.append(Parameter(rng.uniform(-0.1, 0.1, size=n_out)))
            self.W2.append(Parameter(_glorot(rng, n_in, n_out)))
            self.b2.append(Parameter(rng.uniform(-0.1, 0.1, size=n_out)))
        self.W_out = Parameter(_glorot(rng, self.layer_sizes[-1], 1))
        self.b_out = Parameter(np.zeros(1)) if output_bias else None

    # ------------------------------------------------------------------
    @property
    def n_hidden_layers(self) -> int:
        return len(self.W1)

    @property
    def output_degree(self) -> int:
        """Polynomial degree of the output: ``2^l``."""
        return 2 ** self.n_hidden_layers

    def init_from_quadratic_form(
        self,
        P: np.ndarray,
        constant: float,
        noise: float = 1e-2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Warm-start a one-hidden-layer net to ``B(x) = constant - x^T P x``.

        Each eigencomponent ``lambda_i (v_i . x)^2`` of ``P`` maps onto one
        cross-product unit via ``W1_col = v_i``, ``W2_col = -lambda_i v_i``.
        Spare units (width beyond ``n``) get small random weights so they
        stay trainable.  A Lyapunov-shaped start drastically reduces CEGIS
        rounds in higher dimensions (used by :class:`repro.cegis.SNBC`).
        """
        if self.n_hidden_layers != 1:
            raise ValueError("warm start supports exactly one hidden layer")
        if self.b_out is None:
            raise ValueError("warm start needs an output bias for the constant")
        rng = rng or np.random.default_rng(0)
        n, h = self.layer_sizes[0], self.layer_sizes[1]
        P = np.asarray(P, dtype=float)
        if P.shape != (n, n):
            raise ValueError(f"P must be {n}x{n}")
        eigvals, eigvecs = np.linalg.eigh(0.5 * (P + P.T))
        order = np.argsort(-np.abs(eigvals))
        W1 = noise * rng.normal(size=(n, h))
        W2 = noise * rng.normal(size=(n, h))
        for j, idx in enumerate(order[: min(h, n)]):
            W1[:, j] = eigvecs[:, idx]
            W2[:, j] = -float(eigvals[idx]) * eigvecs[:, idx]
        self.W1[0].data = W1
        self.W2[0].data = W2
        self.b1[0].data = np.zeros(h)
        self.b2[0].data = np.zeros(h)
        self.W_out.data = np.ones((h, 1))
        self.b_out.data = np.array([float(constant)])

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        """Evaluate ``B(x)`` for a batch; returns shape ``(batch,)``."""
        z = x
        for W1, b1, W2, b2 in zip(self.W1, self.b1, self.W2, self.b2):
            z = (z @ W1 + b1) * (z @ W2 + b2)
        out = z @ self.W_out
        if self.b_out is not None:
            out = out + self.b_out
        return out.reshape(-1)

    def forward_with_tangent(self, x: Tensor, xdot: Tensor) -> Tuple[Tensor, Tensor]:
        """Jointly evaluate ``B(x)`` and the directional derivative
        ``L_f B(x) = grad B(x) . xdot``.

        The tangent is propagated through the same recursion
        (``zdot -> adot * b + a * bdot``), so the result is an explicit
        first-order computation in the parameters: backprop through it
        trains the Lie-derivative loss term without second-order autodiff.
        """
        z, zdot = x, xdot
        for W1, b1, W2, b2 in zip(self.W1, self.b1, self.W2, self.b2):
            a = z @ W1 + b1
            bb = z @ W2 + b2
            adot = zdot @ W1
            bbdot = zdot @ W2
            z = a * bb
            zdot = adot * bb + a * bbdot
        out = z @ self.W_out
        if self.b_out is not None:
            out = out + self.b_out
        lie = zdot @ self.W_out
        return out.reshape(-1), lie.reshape(-1)

    def gradient(self, points: np.ndarray) -> np.ndarray:
        """Input-gradient ``grad B`` at a batch of points (numpy, no graph).

        Uses the closed-form layer recursion (paper's equation (9)).
        """
        with no_grad():
            pts = np.atleast_2d(np.asarray(points, dtype=float))
            batch, n = pts.shape
            z = pts
            # J holds dz/dx, shape (batch, width, n)
            J = np.broadcast_to(np.eye(n), (batch, n, n)).copy()
            for W1, b1, W2, b2 in zip(self.W1, self.b1, self.W2, self.b2):
                a = z @ W1.data + b1.data
                bb = z @ W2.data + b2.data
                Ja = np.einsum("io,bin->bon", W1.data, J)
                Jb = np.einsum("io,bin->bon", W2.data, J)
                J = a[:, :, None] * Jb + bb[:, :, None] * Ja
                z = a * bb
            grad = np.einsum("bon,oq->bnq", J, self.W_out.data)[:, :, 0]
        return grad

    # ------------------------------------------------------------------
    def to_polynomial(self) -> Polynomial:
        """Exact symbolic expansion of the network output."""
        n = self.layer_sizes[0]
        z: List[Polynomial] = list(Polynomial.variables(n))
        for W1, b1, W2, b2 in zip(self.W1, self.b1, self.W2, self.b2):
            new_z: List[Polynomial] = []
            for j in range(W1.data.shape[1]):
                a = Polynomial.constant(n, float(b1.data[j]))
                b = Polynomial.constant(n, float(b2.data[j]))
                for i, zi in enumerate(z):
                    a = a + zi * float(W1.data[i, j])
                    b = b + zi * float(W2.data[i, j])
                new_z.append(a * b)
            z = new_z
        out = Polynomial.constant(n, float(self.b_out.data[0]) if self.b_out is not None else 0.0)
        for j, zj in enumerate(z):
            out = out + zj * float(self.W_out.data[j, 0])
        return out

    def __repr__(self) -> str:
        shape = "-".join(str(s) for s in self.layer_sizes + [1])
        return f"QuadraticNetwork({shape}, degree={self.output_degree})"


class SquareNetwork(Module):
    """Square-activation network ``x^(i) = (W x^(i-1) + b)^2`` (ablation).

    Same output degree ``2^l`` as :class:`QuadraticNetwork` with half the
    parameters, but every hidden unit is nonnegative, which restricts the
    function class (the paper's motivation for the cross-product form).
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        output_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need an input width and at least one hidden layer")
        rng = rng or np.random.default_rng()
        self.layer_sizes = list(int(s) for s in layer_sizes)
        self.W: List[Parameter] = []
        self.b: List[Parameter] = []
        for n_in, n_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            self.W.append(Parameter(_glorot(rng, n_in, n_out)))
            self.b.append(Parameter(rng.uniform(-0.1, 0.1, size=n_out)))
        self.W_out = Parameter(_glorot(rng, self.layer_sizes[-1], 1))
        self.b_out = Parameter(np.zeros(1)) if output_bias else None

    @property
    def output_degree(self) -> int:
        return 2 ** len(self.W)

    def init_from_quadratic_form(
        self,
        P: np.ndarray,
        constant: float,
        noise: float = 1e-2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Warm-start to ``constant - x^T P x``; the sign-indefinite part
        lands in the output weights since squared units are nonnegative."""
        if len(self.W) != 1:
            raise ValueError("warm start supports exactly one hidden layer")
        if self.b_out is None:
            raise ValueError("warm start needs an output bias for the constant")
        rng = rng or np.random.default_rng(0)
        n, h = self.layer_sizes[0], self.layer_sizes[1]
        P = np.asarray(P, dtype=float)
        if P.shape != (n, n):
            raise ValueError(f"P must be {n}x{n}")
        eigvals, eigvecs = np.linalg.eigh(0.5 * (P + P.T))
        order = np.argsort(-np.abs(eigvals))
        W = noise * rng.normal(size=(n, h))
        W_out = noise * rng.normal(size=(h, 1))
        for j, idx in enumerate(order[: min(h, n)]):
            W[:, j] = eigvecs[:, idx]
            W_out[j, 0] = -float(eigvals[idx])
        self.W[0].data = W
        self.b[0].data = np.zeros(h)
        self.W_out.data = W_out
        self.b_out.data = np.array([float(constant)])

    def forward(self, x: Tensor) -> Tensor:
        z = x
        for W, b in zip(self.W, self.b):
            pre = z @ W + b
            z = pre * pre
        out = z @ self.W_out
        if self.b_out is not None:
            out = out + self.b_out
        return out.reshape(-1)

    def forward_with_tangent(self, x: Tensor, xdot: Tensor) -> Tuple[Tensor, Tensor]:
        z, zdot = x, xdot
        for W, b in zip(self.W, self.b):
            pre = z @ W + b
            predot = zdot @ W
            z = pre * pre
            zdot = 2.0 * pre * predot
        out = z @ self.W_out
        if self.b_out is not None:
            out = out + self.b_out
        return out.reshape(-1), (zdot @ self.W_out).reshape(-1)

    def to_polynomial(self) -> Polynomial:
        n = self.layer_sizes[0]
        z: List[Polynomial] = list(Polynomial.variables(n))
        for W, b in zip(self.W, self.b):
            new_z = []
            for j in range(W.data.shape[1]):
                pre = Polynomial.constant(n, float(b.data[j]))
                for i, zi in enumerate(z):
                    pre = pre + zi * float(W.data[i, j])
                new_z.append(pre * pre)
            z = new_z
        out = Polynomial.constant(n, float(self.b_out.data[0]) if self.b_out is not None else 0.0)
        for j, zj in enumerate(z):
            out = out + zj * float(self.W_out.data[j, 0])
        return out

    def __repr__(self) -> str:
        shape = "-".join(str(s) for s in self.layer_sizes + [1])
        return f"SquareNetwork({shape}, degree={self.output_degree})"
