"""Generic feedforward layers on the autodiff engine."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, no_grad


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad``)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: tracks parameters through attribute discovery."""

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        seen = set()

        def collect(obj) -> None:
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    params.append(obj)
            elif isinstance(obj, Module):
                for v in vars(obj).values():
                    collect(v)
            elif isinstance(obj, (list, tuple)):
                for v in obj:
                    collect(v)
            elif isinstance(obj, dict):
                for v in obj.values():
                    collect(v)

        collect(self)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Graph-free numpy inference on a batch of points."""
        with no_grad():
            out = self.forward(Tensor(np.atleast_2d(points)))
        return out.numpy()

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def state_dict(self) -> List[np.ndarray]:
        """Snapshot of parameter values (ordered as :meth:`parameters`)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: Sequence[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError("state size mismatch")
        for p, s in zip(params, state):
            if p.data.shape != s.shape:
                raise ValueError("parameter shape mismatch")
            p.data = s.copy()


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Dense(Module):
    """Affine layer ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.W = Parameter(_glorot(rng, in_features, out_features))
        self.b = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.W
        if self.b is not None:
            out = out + self.b
        return out


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Chain of modules."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for m in self.modules:
            x = m(x)
        return x

    def __iter__(self) -> Iterable[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
