"""Saving and loading network weights (JSON, human-inspectable).

Controllers are long-lived artifacts in a verification workflow: train
once (DDPG or cloning), archive, re-verify later.  These helpers persist
an architecture description plus all parameters and rebuild the module.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.multiplier import ConstantMultiplier, LinearMultiplier
from repro.nn.quadratic import QuadraticNetwork, SquareNetwork


def _arch_of(net) -> Dict[str, Any]:
    if isinstance(net, MLP):
        return {
            "kind": "mlp",
            "layer_sizes": list(net.layer_sizes),
            "activation": net.activation,
            "output_scale": net.output_scale,
        }
    if isinstance(net, QuadraticNetwork):
        return {
            "kind": "quadratic",
            "layer_sizes": list(net.layer_sizes),
            "output_bias": net.b_out is not None,
        }
    if isinstance(net, SquareNetwork):
        return {
            "kind": "square",
            "layer_sizes": list(net.layer_sizes),
            "output_bias": net.b_out is not None,
        }
    if isinstance(net, LinearMultiplier):
        return {"kind": "linear_multiplier", "layer_sizes": list(net.layer_sizes)}
    if isinstance(net, ConstantMultiplier):
        return {"kind": "constant_multiplier", "n_vars": net.n_vars}
    raise TypeError(f"cannot serialize network of type {type(net).__name__}")


def network_to_dict(net) -> Dict[str, Any]:
    """JSON-safe encoding: architecture + ordered parameter arrays."""
    return {
        "architecture": _arch_of(net),
        "parameters": [
            {"shape": list(p.shape), "data": p.ravel().tolist()}
            for p in net.state_dict()
        ],
    }


def network_from_dict(data: Dict[str, Any]):
    """Rebuild a network saved with :func:`network_to_dict`."""
    try:
        arch = data["architecture"]
        kind = arch["kind"]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed network payload: {exc}") from exc
    if kind == "mlp":
        net = MLP(
            arch["layer_sizes"],
            activation=arch["activation"],
            output_scale=arch["output_scale"],
        )
    elif kind == "quadratic":
        net = QuadraticNetwork(arch["layer_sizes"], output_bias=arch["output_bias"])
    elif kind == "square":
        net = SquareNetwork(arch["layer_sizes"], output_bias=arch["output_bias"])
    elif kind == "linear_multiplier":
        net = LinearMultiplier(arch["layer_sizes"])
    elif kind == "constant_multiplier":
        net = ConstantMultiplier(arch["n_vars"])
    else:
        raise ValueError(f"unknown network kind {kind!r}")
    state = [
        np.asarray(p["data"], dtype=float).reshape(p["shape"])
        for p in data["parameters"]
    ]
    net.load_state_dict(state)
    return net


def save_network(net, path: str) -> None:
    """Write a network to a JSON file."""
    with open(path, "w") as fh:
        json.dump(network_to_dict(net), fh)


def load_network(path: str):
    """Load a network written by :func:`save_network`."""
    with open(path) as fh:
        return network_from_dict(json.load(fh))
