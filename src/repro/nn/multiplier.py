"""Multiplier networks for the auxiliary polynomial ``lambda(x)``.

The paper trains ``lambda(x)`` with a *linear* NN (Table 1 column
``NN_lambda``, e.g. ``5-5(2)-1``); a stack of bias-carrying linear layers
collapses to a single affine function, so :meth:`to_polynomial` returns a
degree-1 polynomial exactly.  The ``c`` entries of Table 1 use
:class:`ConstantMultiplier`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Dense, Module, Parameter, Sequential
from repro.poly import Polynomial


class LinearMultiplier(Module):
    """Linear (activation-free) network; exactly an affine function."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        init_output: Optional[float] = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if layer_sizes[-1] != 1:
            raise ValueError("multiplier network must have scalar output")
        rng = rng or np.random.default_rng()
        self.layer_sizes = list(layer_sizes)
        self.net = Sequential(
            *[
                Dense(layer_sizes[i], layer_sizes[i + 1], rng=rng)
                for i in range(len(layer_sizes) - 1)
            ]
        )
        if init_output is not None:
            # start near the constant function `init_output`: shrink the
            # final layer's slope and set its bias to the target
            last = self.net.modules[-1]
            last.W.data = 0.1 * last.W.data
            last.b.data = np.array([float(init_output)])

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x).reshape(-1)

    def affine_coefficients(self) -> "tuple[np.ndarray, float]":
        """Collapse the layer stack: returns ``(w, c)`` with
        ``lambda(x) = w . x + c``."""
        n = self.layer_sizes[0]
        W_eff = np.eye(n)
        b_eff = np.zeros(n)
        for layer in self.net:
            W_eff = W_eff @ layer.W.data
            b_eff = b_eff @ layer.W.data + layer.b.data
        return W_eff[:, 0], float(b_eff[0])

    def to_polynomial(self) -> Polynomial:
        """The affine polynomial realized by the network."""
        w, c = self.affine_coefficients()
        n = self.layer_sizes[0]
        p = Polynomial.constant(n, c)
        for i in range(n):
            p = p + Polynomial.variable(n, i) * float(w[i])
        return p

    def __repr__(self) -> str:
        shape = "-".join(str(s) for s in self.layer_sizes)
        return f"LinearMultiplier({shape})"


class ConstantMultiplier(Module):
    """A single trainable constant (Table 1's ``c`` multiplier)."""

    def __init__(self, n_vars: int, init: float = -1.0):
        self.n_vars = int(n_vars)
        self.value = Parameter(np.array([float(init)]))

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        ones = Tensor(np.ones((batch, 1)))
        return (ones @ self.value.reshape(1, 1)).reshape(-1)

    def to_polynomial(self) -> Polynomial:
        return Polynomial.constant(self.n_vars, float(self.value.data[0]))

    def __repr__(self) -> str:
        return f"ConstantMultiplier(value={float(self.value.data[0]):.4g})"
