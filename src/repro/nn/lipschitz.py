"""Lipschitz constant estimation for NN controllers.

Theorem 2 bounds the controller-inclusion gap by ``sL/2`` where ``L`` is a
Lipschitz constant of ``k(x)``.  The paper cites Fazlyab et al. (LipSDP);
here we provide the classical sound *upper* bound — the product of layer
spectral norms times activation slopes — plus a sampling-based *lower*
bound used in tests to sandwich the truth.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dense, Module, Sequential
from repro.nn.mlp import MLP

#: maximum derivative of each supported activation
_ACTIVATION_SLOPES = {
    "tanh": 1.0,
    "relu": 1.0,
    "leaky_relu": 1.0,
    "sigmoid": 0.25,
}


def spectral_norm(matrix: np.ndarray, n_iterations: int = 50) -> float:
    """Largest singular value via power iteration (exact-enough for bounds)."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size == 0:
        return 0.0
    v = np.ones(matrix.shape[1]) / np.sqrt(matrix.shape[1])
    for _ in range(n_iterations):
        u = matrix @ v
        nu = np.linalg.norm(u)
        if nu == 0:
            return 0.0
        u /= nu
        v = matrix.T @ u
        nv = np.linalg.norm(v)
        if nv == 0:
            return 0.0
        v /= nv
    return float(np.linalg.norm(matrix @ v))


def spectral_lipschitz_bound(network: MLP) -> float:
    """Sound Lipschitz upper bound: product of ``||W_i||_2`` and slopes.

    For an MLP with 1-Lipschitz activations this is the standard
    ``prod_i ||W_i||_2`` bound; an ``output_scale`` saturation multiplies by
    its scale (derivative of ``s tanh`` is at most ``s``).
    """
    if not isinstance(network, MLP):
        raise TypeError("spectral_lipschitz_bound expects an MLP controller")
    slope = _ACTIVATION_SLOPES[network.activation]
    bound = 1.0
    n_hidden_activations = 0
    for module in network.net:
        if isinstance(module, Dense):
            bound *= spectral_norm(module.W.data)
        else:
            n_hidden_activations += 1
    bound *= slope ** n_hidden_activations
    if network.output_scale is not None:
        bound *= float(network.output_scale)
    return float(bound)


def lipsdp_lipschitz_bound(
    network: MLP,
    options=None,
) -> float:
    """LipSDP-Neuron bound (Fazlyab et al. 2019) for one-hidden-layer MLPs.

    For ``f(x) = W1 phi(W0 x + b0) + b1`` with activation slope-restricted
    to ``[0, beta]``, the smallest ``rho`` with

        [[rho I,        -beta W0^T T],
         [-beta T W0,   2 T - W1^T W1]]  PSD,   T = diag(t) >= 0

    gives the Lipschitz bound ``sqrt(rho)`` — typically noticeably tighter
    than the spectral product, which shrinks the paper's inclusion error
    ``sigma* = sigma~ + sL/2``.  Solved with :func:`repro.sdp.solve_lmi`.

    Raises ``ValueError`` for architectures other than Dense-act-Dense.
    """
    from repro.sdp import solve_lmi

    if not isinstance(network, MLP):
        raise TypeError("lipsdp_lipschitz_bound expects an MLP")
    modules = list(network.net)
    if len(modules) != 3 or not isinstance(modules[0], Dense) or not isinstance(
        modules[2], Dense
    ):
        raise ValueError("LipSDP-Neuron here supports exactly one hidden layer")
    beta = _ACTIVATION_SLOPES[network.activation]
    W0 = modules[0].W.data.T  # (h, n)
    W1 = modules[2].W.data.T  # (m, h)
    h, n = W0.shape
    m = W1.shape[0]
    dim = n + h

    F0 = np.zeros((dim, dim))
    F0[n:, n:] = -W1.T @ W1
    F_rho = np.zeros((dim, dim))
    F_rho[:n, :n] = np.eye(n)
    F_list = [F_rho]
    c = [1.0]
    for j in range(h):
        Fj = np.zeros((dim, dim))
        Fj[n + j, n + j] = 2.0
        Fj[:n, n + j] = -beta * W0[j, :]
        Fj[n + j, :n] = -beta * W0[j, :]
        F_list.append(Fj)
        c.append(0.0)
    result = solve_lmi(F0, F_list, c, options=options)
    if not result.ok or result.y is None or result.y[0] < 0:
        raise RuntimeError(f"LipSDP solve failed: {result.status} {result.message}")
    bound = float(np.sqrt(max(result.y[0], 0.0)))
    if network.output_scale is not None:
        bound *= float(network.output_scale)
    return bound


def empirical_lipschitz_lower_bound(
    network: Module,
    lo: np.ndarray,
    hi: np.ndarray,
    n_pairs: int = 2000,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Sampling-based lower bound ``max |k(x)-k(y)| / |x-y|`` on a box.

    Used to sanity-check the spectral bound (lower <= true <= spectral).
    """
    rng = rng or np.random.default_rng()
    lo = np.asarray(lo, dtype=float)
    hi = np.asarray(hi, dtype=float)
    xs = rng.uniform(lo, hi, size=(n_pairs, lo.shape[0]))
    # pair each point with a nearby perturbation to probe local slopes
    scale = 1e-3 * np.max(hi - lo)
    ys = np.clip(xs + rng.normal(scale=scale, size=xs.shape), lo, hi)
    fx = network.predict(xs).reshape(n_pairs, -1)
    fy = network.predict(ys).reshape(n_pairs, -1)
    num = np.linalg.norm(fx - fy, axis=1)
    den = np.linalg.norm(xs - ys, axis=1)
    mask = den > 1e-12
    if not np.any(mask):
        return 0.0
    return float(np.max(num[mask] / den[mask]))
