"""Crash-safe write-ahead job journal (append-only JSONL).

Every job state transition is appended to ``journal.jsonl`` *before*
the supervisor acts on it, so a SIGKILLed supervisor resumes its queue
exactly: replaying the journal reconstructs, per job key, the request,
attempt/redelivery counts, and terminal status.  Jobs with a recorded
``complete``/``dead_letter`` are never re-executed (their results live
in the content-addressed cache); everything else is requeued.

Torn writes are expected, not fatal: a crash (or the
``service.journal_torn_write`` fault) can leave a half-written last
line.  Replay decodes line by line and **skips** undecodable records,
counting them in :attr:`JournalState.torn_records` — the write-ahead
discipline makes a lost trailing record safe (the worst case is one
job re-executing, which the cache+journal dedupe then collapses).

Appends are newline-terminated and flushed to the OS per record, which
survives process SIGKILL (the acceptance mode); :meth:`JobJournal.sync`
additionally ``fsync``\\ s for machine-crash durability.  ``compact``
rewrites the journal as one snapshot record per live job via the
atomic tmp+rename pattern shared with checkpoints and status files.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.faults import fired

JOURNAL_KIND = "service_journal"
JOURNAL_SCHEMA_VERSION = 1

#: journal operations, in lifecycle order
OPS = (
    "submit",       # job accepted (record carries the request manifest)
    "cache_hit",    # served from the verified cache, no execution
    "start",        # handed to a worker (attempt number, worker id)
    "retry",        # transient failure; re-queued with backoff
    "redeliver",    # worker died/stalled mid-job; re-queued
    "complete",     # terminal success (payload cached under the key)
    "dead_letter",  # terminal failure (classified error attached)
    "snapshot",     # compaction record (full per-job state)
)


@dataclass
class JournalState:
    """Everything replay reconstructs from a journal file."""

    #: per-key state: request, attempts, redeliveries, status, error
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: undecodable (torn/corrupt) lines skipped during replay
    torn_records: int = 0
    #: total well-formed records replayed
    records: int = 0

    def pending(self) -> List[str]:
        """Keys that must be (re-)executed after a restart."""
        return [
            key
            for key, job in self.jobs.items()
            if job.get("status") not in ("complete", "dead_letter")
        ]

    def completed(self) -> List[str]:
        return [
            key
            for key, job in self.jobs.items()
            if job.get("status") == "complete"
        ]


def _apply(state: JournalState, record: Dict[str, Any]) -> None:
    op = record.get("op")
    key = record.get("key")
    if op not in OPS or not isinstance(key, str):
        state.torn_records += 1
        return
    state.records += 1
    job = state.jobs.setdefault(
        key,
        {"request": None, "attempts": 0, "redeliveries": 0,
         "status": "pending", "error": None},
    )
    if op == "snapshot":
        job.update({
            "request": record.get("request", job["request"]),
            "attempts": int(record.get("attempts", job["attempts"])),
            "redeliveries": int(
                record.get("redeliveries", job["redeliveries"])
            ),
            "status": str(record.get("status", job["status"])),
            "error": record.get("error", job["error"]),
        })
    elif op == "submit":
        job["request"] = record.get("request", job["request"])
        if job["status"] == "pending":
            job["status"] = "pending"
    elif op == "cache_hit":
        job["status"] = "complete"
        job["from_cache"] = True
    elif op == "start":
        job["attempts"] = max(
            job["attempts"], int(record.get("attempt", job["attempts"] + 1))
        )
        job["status"] = "running"
    elif op == "retry":
        job["status"] = "pending"
        job["error"] = record.get("error", job["error"])
    elif op == "redeliver":
        job["redeliveries"] = int(
            record.get("redeliveries", job["redeliveries"] + 1)
        )
        job["status"] = "pending"
    elif op == "complete":
        job["status"] = "complete"
    elif op == "dead_letter":
        job["status"] = "dead_letter"
        job["error"] = record.get("error", job["error"])


def replay_journal(path: str) -> JournalState:
    """Reconstruct queue state from ``path``; an absent file is an empty
    journal (fresh service root)."""
    state = JournalState()
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return state
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                state.torn_records += 1
                continue
            if not isinstance(record, dict):
                state.torn_records += 1
                continue
            _apply(state, record)
    return state


class JobJournal:
    """Append-side handle for one service root's ``journal.jsonl``."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._repair_framing()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _repair_framing(self) -> None:
        """Terminate a torn trailing line left by a crash mid-append, so
        the next record starts on its own line (replay then loses only
        the torn record, never the one after it)."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() == 0:
                    return
                fh.seek(-1, os.SEEK_END)
                last = fh.read(1)
        except OSError:
            return
        if last != b"\n":
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("\n")

    # -- writes ---------------------------------------------------------
    def append(self, op: str, key: str, **fields: Any) -> None:
        """Write one record ahead of acting on it.

        The ``service.journal_torn_write`` fault simulates a crash mid-
        write: only a prefix of the line (no newline) reaches the file —
        exactly what replay must tolerate.
        """
        if op not in OPS:
            raise ValueError(f"unknown journal op {op!r}")
        record = {"op": op, "key": key}
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        if fired("service.journal_torn_write"):
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            return
        self._fh.write(line + "\n")
        self._fh.flush()

    def sync(self) -> None:
        """``fsync`` the journal (machine-crash durability point)."""
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass

    # -- maintenance ----------------------------------------------------
    def compact(self, state: Optional[JournalState] = None) -> JournalState:
        """Atomically rewrite the journal as one snapshot per job.

        Bounds journal growth across long-lived services; safe at any
        point because the snapshot is built from a full replay and lands
        via tmp+rename (a crash mid-compaction leaves the old journal).
        """
        self._fh.flush()
        state = state or replay_journal(self.path)
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".",
            suffix=".tmp",
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for key, job in sorted(state.jobs.items()):
                record = {
                    "op": "snapshot",
                    "key": key,
                    "request": job.get("request"),
                    "attempts": job.get("attempts", 0),
                    "redeliveries": job.get("redeliveries", 0),
                    "status": job.get("status", "pending"),
                    "error": job.get("error"),
                }
                fh.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        return state
