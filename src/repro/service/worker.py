"""Process-worker loop: pipe protocol + heartbeat + fault sites.

Each worker is one OS process holding one end of a duplex
:func:`multiprocessing.Pipe`.  The supervisor sends ``job`` messages
(request manifest + attempt number) and ``stop``; the worker answers
with ``started`` (assignment acknowledged — the supervisor's redelivery
bookkeeping keys off this), then ``done`` (deterministic payload) or
``error`` (a JSON-safe classified failure the retry policy judges in
the supervisor).

Liveness is a file, not a message: a daemon thread rewrites the
worker's ``worker-<id>.status.json`` (the PR 7 :class:`StatusWriter`)
every ``heartbeat_interval_s`` even while a job blocks the main loop,
so the supervisor — and ``python -m repro.telemetry.tail --fleet`` —
can classify a wedged worker as STALLED/DEAD from heartbeat age alone.

The ``service.worker_kill_mid_job`` fault fires *inside* the worker
after it has acknowledged a job and calls ``os._exit(137)`` — the
moral equivalent of an OOM SIGKILL mid-job, taking the heartbeat
thread down with it.  Fault specs travel from the supervisor as plain
dicts (fault plans are per-process; the parent's plan does not reach
a spawned child).
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.resilience.errors import ReproError
from repro.resilience.faults import FaultPlan, FaultSpec, fired
from repro.service import jobs as service_jobs
from repro.telemetry.status import StatusWriter

#: exit code a fault-killed worker dies with (mirrors SIGKILL's 128+9)
KILLED_EXIT_CODE = 137


def install_fault_specs(specs: List[Dict[str, Any]]) -> None:
    """Arm a fault plan from serialized specs (worker-process side)."""
    if not specs:
        return
    from repro.resilience import faults

    plan = FaultPlan()
    for doc in specs:
        plan.add(
            FaultSpec(
                site=str(doc["site"]),
                at_call=int(doc.get("at_call", 1)),
                times=int(doc.get("times", 1)),
            )
        )
    # direct install: the worker owns its whole lifetime, no nesting
    faults._plan = plan


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """JSON-safe classified failure for the supervisor's retry policy."""
    if isinstance(exc, ReproError):
        doc = exc.to_dict()
    else:
        doc = {
            "kind": type(exc).__name__,
            "message": str(exc),
            "phase": "service.job",
        }
    doc["traceback"] = traceback.format_exc(limit=8)
    return doc


class _Heartbeat(threading.Thread):
    """Daemon thread beating the worker's status file at a fixed cadence.

    Doubles as the orphan watch: a SIGKILLed supervisor cannot reap its
    children (``daemon=True`` only acts on a *clean* parent exit), so
    the thread also polls ``os.getppid()`` and hard-exits the worker the
    moment it is reparented — an orphan must not keep computing, and
    must not complete a job whose completion nobody can journal."""

    #: parent-death poll cadence (independent of the status interval)
    PPID_POLL_S = 0.1

    def __init__(self, status: StatusWriter, lock: threading.Lock,
                 interval_s: float) -> None:
        super().__init__(daemon=True, name="service-worker-heartbeat")
        self._status = status
        self._lock = lock
        self._interval = max(0.05, float(interval_s))
        self._stop = threading.Event()
        self._parent = os.getppid()

    def run(self) -> None:
        since_beat = 0.0
        tick = min(self.PPID_POLL_S, self._interval)
        while not self._stop.wait(tick):
            if os.getppid() != self._parent:
                os._exit(1)  # orphaned: die before finishing anything
            since_beat += tick
            if since_beat >= self._interval:
                since_beat = 0.0
                with self._lock:
                    self._status.update(force=True)

    def stop(self) -> None:
        self._stop.set()


def worker_main(
    worker_id: int,
    conn: Any,
    heartbeat_path: str,
    workdir: Optional[str] = None,
    fault_specs: Optional[List[Dict[str, Any]]] = None,
    heartbeat_interval_s: float = 0.5,
) -> None:
    """Entry point of one pool worker (runs until ``stop`` or death)."""
    install_fault_specs(fault_specs or [])
    status = StatusWriter(
        heartbeat_path, name=f"service-worker-{worker_id}"
    )
    lock = threading.Lock()
    with lock:
        status.update(force=True, phase="idle", worker_id=worker_id)
    beat = _Heartbeat(status, lock, heartbeat_interval_s)
    beat.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # supervisor went away: die quietly
            op = message.get("op")
            if op == "stop":
                break
            if op != "job":
                continue
            key = str(message["key"])
            attempt = int(message.get("attempt", 1))
            with lock:
                status.update(
                    force=True, phase="running", job=key[:16],
                    attempt=attempt,
                )
            conn.send({"op": "started", "key": key, "attempt": attempt})
            if fired("service.worker_kill_mid_job"):
                # simulate an OOM/SIGKILL after taking the job: no
                # goodbye message, no status outcome, hard exit
                os._exit(KILLED_EXIT_CODE)
            t0 = time.perf_counter()
            try:
                payload = service_jobs.execute_job(
                    message["request"], workdir=workdir, attempt=attempt
                )
            except BaseException as exc:
                conn.send({
                    "op": "error",
                    "key": key,
                    "attempt": attempt,
                    "error": error_payload(exc),
                    "elapsed_s": time.perf_counter() - t0,
                })
            else:
                conn.send({
                    "op": "done",
                    "key": key,
                    "attempt": attempt,
                    "payload": payload,
                    "elapsed_s": time.perf_counter() - t0,
                })
            with lock:
                status.update(force=True, phase="idle", job=None)
    finally:
        beat.stop()
        with lock:
            status.finish("stopped")
        try:
            conn.close()
        except OSError:
            pass
