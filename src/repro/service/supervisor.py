"""The asyncio supervision tree over the certification worker pool.

One :class:`CertificationService` owns a service *root* directory::

    <root>/journal.jsonl          write-ahead job journal
    <root>/cache/                 content-addressed certificate store
    <root>/work/                  per-job checkpoints (PR 4 protocol)
    <root>/service.status.json    supervisor heartbeat (tail --fleet)
    <root>/worker-<i>.status.json worker-lane heartbeats

and drives every submitted request to a terminal state:

* **cache first** — a verified hit (digest + exact recheck) is served
  without touching a worker and journaled as ``cache_hit``;
* **work-stealing pool** — one logical queue feeds however many process
  workers are alive; an idle worker takes the oldest ready job;
* **retry with backoff** — failures reported by a live worker are
  classified by the shared :class:`~repro.resilience.RetryPolicy`
  (transient → exponential backoff + deterministic jitter, terminal →
  fail fast to the dead-letter record);
* **dead/stalled workers** — a worker whose process died, or whose
  heartbeat aged past ``worker_stall_timeout_s`` while it held a job,
  is killed and respawned and its job requeued (``redeliver``), at most
  ``max_redeliveries`` times before the job dead-letters;
* **graceful degradation** — when the pool cannot be (re)built, the
  supervisor falls back to serial in-process execution of the same
  queue (same journal, cache, and retry policy);
* **crash-safe restart** — :meth:`recover` replays the journal:
  completed jobs are served from the verified cache (and **re-executed
  only if** their cache entry is gone or fails verification), everything
  else is requeued with its attempt/redelivery counts intact, so a
  SIGKILLed supervisor finishes its batch without running any job to
  completion twice.

Counters (``service.retries``, ``service.redeliveries``,
``service.cache.{hits,misses,evictions}``, ``service.dead_letters``,
``service.workers.respawned``) land in the active telemetry session,
and the supervisor's ``status.json`` carries a ``service`` block the
fleet board renders (queue depth, in-flight, retries, dead-letters).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.errors import BudgetExhausted, WorkerCrash
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.service.cache import CertificateCache
from repro.service.jobs import execute_job
from repro.service.journal import JobJournal, replay_journal
from repro.service.queue import Job, JobQueue, JobStatus
from repro.service.request import CertificationRequest
from repro.service.worker import error_payload, worker_main
from repro.telemetry import get_telemetry
from repro.telemetry.status import StatusWriter


@dataclass(frozen=True)
class ServiceConfig:
    """Supervision policy for one service run."""

    #: process workers; 0 selects serial in-process execution outright
    workers: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: worker deaths/stalls one job survives before dead-lettering
    max_redeliveries: int = 2
    #: heartbeat age after which a job-holding worker is presumed wedged
    #: and killed (requeue-on-deadline); generous by default — workers
    #: beat from a thread even while computing
    worker_stall_timeout_s: float = 60.0
    #: hard per-attempt wall bound enforced by the supervisor (fail fast
    #: to dead-letter, per the BudgetExhausted policy); None disables —
    #: certify jobs should prefer their internal ``time_budget_s``,
    #: which ends in a clean ``timeout`` payload instead
    job_deadline_s: Optional[float] = None
    tick_s: float = 0.02
    heartbeat_interval_s: float = 0.5
    serial_fallback: bool = True
    verify_cache_on_read: bool = True
    cache_max_denominator: Optional[int] = None
    #: serialized FaultSpec dicts armed inside workers (chaos testing)
    worker_faults: Tuple[Dict[str, Any], ...] = ()
    #: worker slots that receive ``worker_faults`` (initial spawn only
    #: when ``worker_faults_once`` — a respawned worker starts clean, so
    #: an injected kill cannot loop forever)
    worker_fault_slots: Tuple[int, ...] = (0,)
    worker_faults_once: bool = True
    #: multiprocessing start method (None = platform default)
    mp_start_method: Optional[str] = None
    compact_journal_on_finish: bool = True


class _WorkerHandle:
    """Supervisor-side view of one pool slot."""

    def __init__(self, slot: int, proc: Any, conn: Any,
                 heartbeat_path: str) -> None:
        self.slot = slot
        self.proc = proc
        self.conn = conn
        self.heartbeat_path = heartbeat_path
        #: key of the job this slot owns (set at dispatch, cleared on
        #: done/error — a dead worker with a key triggers redelivery)
        self.current_key: Optional[str] = None
        self.jobs_done = 0


class CertificationService:
    """Supervised async job engine over a service root directory."""

    def __init__(self, root: str, config: Optional[ServiceConfig] = None):
        self.root = str(root)
        self.config = config or ServiceConfig()
        os.makedirs(self.root, exist_ok=True)
        self.workdir = os.path.join(self.root, "work")
        os.makedirs(self.workdir, exist_ok=True)
        self.journal = JobJournal(os.path.join(self.root, "journal.jsonl"))
        self.cache = CertificateCache(
            os.path.join(self.root, "cache"),
            verify_on_read=self.config.verify_cache_on_read,
            max_denominator=self.config.cache_max_denominator,
        )
        self.queue = JobQueue()
        self.status = StatusWriter(
            os.path.join(self.root, "service.status.json"),
            name="service",
        )
        self.counts: Dict[str, int] = {
            "submitted": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "retries": 0,
            "redeliveries": 0,
            "dead_letters": 0,
            "workers_respawned": 0,
            "workers_killed_stalled": 0,
            "serial_fallbacks": 0,
        }
        self._workers: Dict[int, _WorkerHandle] = {}
        self._serial_mode = self.config.workers <= 0
        self._fault_generation = 0
        self._mp = (
            multiprocessing.get_context(self.config.mp_start_method)
            if self.config.mp_start_method
            else multiprocessing.get_context()
        )

    # -- intake ---------------------------------------------------------
    def submit(
        self, request: "CertificationRequest | Dict[str, Any]"
    ) -> Job:
        """Accept a request: journal it, then serve from cache or queue.

        Duplicate keys coalesce — within a batch and across restarts.
        """
        if not isinstance(request, CertificationRequest):
            request = CertificationRequest.from_dict(dict(request))
        job = self.queue.jobs.get(request.key())
        if job is not None:
            return job
        job = self.queue.submit(request, submitted_at=time.monotonic())
        self.counts["submitted"] += 1
        self.journal.append(
            "submit", job.key, request=request.manifest()
        )
        cached = self.cache.get(request)
        if cached is not None:
            self.counts["cache_hits"] += 1
            self.journal.append("cache_hit", job.key)
            self.queue.mark_done(
                job, cached, time.monotonic(), from_cache=True
            )
        else:
            self.counts["cache_misses"] += 1
        return job

    def recover(self) -> int:
        """Replay the journal into the queue (call before ``run`` on a
        restarted root).  Returns the number of jobs requeued."""
        state = replay_journal(self.journal.path)
        requeued = 0
        for key, record in state.jobs.items():
            manifest = record.get("request")
            if manifest is None:
                continue  # submit record lost to a torn write
            request = CertificationRequest.from_dict(dict(manifest))
            job = self.queue.submit(request, submitted_at=time.monotonic())
            job.attempts = int(record.get("attempts", 0))
            job.redeliveries = int(record.get("redeliveries", 0))
            status = record.get("status")
            if status == "complete":
                cached = self.cache.get(request)
                if cached is not None:
                    self.counts["cache_hits"] += 1
                    self.queue.mark_done(
                        job, cached, time.monotonic(), from_cache=True
                    )
                    continue
                # journal says done but the cache cannot prove it:
                # recompute (never serve an unverifiable claim)
                requeued += 1
            elif status == "dead_letter":
                self.queue.mark_dead_letter(
                    job, record.get("error"), time.monotonic()
                )
                continue
            else:
                requeued += 1
        return requeued

    # -- worker pool ----------------------------------------------------
    def _spawn_worker(self, slot: int) -> Optional[_WorkerHandle]:
        fault_point("service.pool_spawn")
        specs: List[Dict[str, Any]] = []
        if (
            self.config.worker_faults
            and slot in self.config.worker_fault_slots
            and not (self.config.worker_faults_once
                     and self._fault_generation > 0)
        ):
            specs = [dict(s) for s in self.config.worker_faults]
        parent_conn, child_conn = self._mp.Pipe()
        heartbeat_path = os.path.join(
            self.root, f"worker-{slot}.status.json"
        )
        proc = self._mp.Process(
            target=worker_main,
            args=(slot, child_conn, heartbeat_path, self.workdir, specs,
                  self.config.heartbeat_interval_s),
            daemon=True,
            name=f"repro-service-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(slot, proc, parent_conn, heartbeat_path)

    def _build_pool(self) -> None:
        if self._serial_mode:
            return
        for slot in range(self.config.workers):
            try:
                handle = self._spawn_worker(slot)
            except Exception:
                handle = None
            if handle is not None:
                self._workers[slot] = handle
        self._fault_generation += 1
        if not self._workers and self.config.serial_fallback:
            self.counts["serial_fallbacks"] += 1
            self._serial_mode = True

    def _respawn(self, slot: int) -> None:
        try:
            handle = self._spawn_worker(slot)
        except Exception:
            handle = None
        if handle is not None:
            self._workers[slot] = handle
            self.counts["workers_respawned"] += 1
            get_telemetry().metrics.inc("service.workers.respawned")
            return
        self._workers.pop(slot, None)
        if not self._workers and self.config.serial_fallback:
            # the pool is gone and cannot come back: degrade, don't hang
            self.counts["serial_fallbacks"] += 1
            self._serial_mode = True

    def _stop_pool(self) -> None:
        for handle in self._workers.values():
            try:
                handle.conn.send({"op": "stop"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in self._workers.values():
            handle.proc.join(max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                handle.proc.terminate()
                handle.proc.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._workers.clear()

    # -- failure handling ------------------------------------------------
    def _fail_job(self, job: Job, error: Dict[str, Any]) -> None:
        """Route a classified failure through the retry policy."""
        policy = self.config.retry
        if policy.should_retry_kind(error.get("kind"), job.attempts):
            delay = policy.delay_s(job.attempts, token=job.key)
            self.counts["retries"] += 1
            get_telemetry().metrics.inc("service.retries")
            self.journal.append(
                "retry", job.key, attempt=job.attempts,
                delay_s=round(delay, 6),
                error={k: v for k, v in error.items() if k != "traceback"},
            )
            self.queue.mark_retry(job, error, time.monotonic() + delay)
        else:
            self._dead_letter(job, error)

    def _dead_letter(self, job: Job, error: Dict[str, Any]) -> None:
        self.counts["dead_letters"] += 1
        get_telemetry().metrics.inc("service.dead_letters")
        self.journal.append(
            "dead_letter", job.key,
            error={k: v for k, v in error.items() if k != "traceback"},
        )
        self.queue.mark_dead_letter(job, error, time.monotonic())

    def _redeliver(self, job: Job, reason: str) -> None:
        """A worker died or stalled while holding ``job``."""
        crash = WorkerCrash(
            f"worker lost mid-job ({reason})", system=job.key[:16]
        ).to_dict()
        if job.redeliveries >= self.config.max_redeliveries:
            self._dead_letter(job, crash)
            return
        self.counts["redeliveries"] += 1
        get_telemetry().metrics.inc("service.redeliveries")
        delay = self.config.retry.delay_s(
            job.redeliveries + 1, token=job.key
        )
        self.journal.append(
            "redeliver", job.key, redeliveries=job.redeliveries + 1,
            reason=reason, delay_s=round(delay, 6),
        )
        self.queue.mark_redelivered(job, time.monotonic() + delay)

    def _complete_job(self, job: Job, payload: Dict[str, Any]) -> None:
        self.cache.put(job.request, payload)
        self.journal.append("complete", job.key)
        self.queue.mark_done(job, payload, time.monotonic())

    # -- pool event handling ---------------------------------------------
    def _drain_worker_messages(self) -> bool:
        progressed = False
        for handle in list(self._workers.values()):
            while True:
                try:
                    if not handle.conn.poll():
                        break
                    message = handle.conn.recv()
                except (EOFError, OSError, BrokenPipeError):
                    break  # death handled by liveness check
                progressed = True
                op = message.get("op")
                key = message.get("key")
                job = self.queue.jobs.get(key) if key else None
                if op == "started" or job is None:
                    continue
                if op == "done":
                    handle.current_key = None
                    handle.jobs_done += 1
                    self._complete_job(job, message.get("payload") or {})
                    self.status.worker_update(
                        handle.slot, state="idle", job=None,
                        done=handle.jobs_done,
                    )
                elif op == "error":
                    handle.current_key = None
                    self._fail_job(job, message.get("error") or {})
                    self.status.worker_update(
                        handle.slot, state="idle", job=None,
                    )
        return progressed

    def _heartbeat_age(self, handle: _WorkerHandle, now_wall: float) -> float:
        from repro.telemetry.status import read_status

        status = read_status(handle.heartbeat_path)
        if not status:
            return 0.0  # just spawned: no file yet is not a stall
        beat = status.get("heartbeat_wall")
        if not isinstance(beat, (int, float)):
            return 0.0
        return max(0.0, now_wall - float(beat))

    def _check_worker_liveness(self) -> None:
        now_wall = time.time()
        now = time.monotonic()
        for slot, handle in list(self._workers.items()):
            if not handle.proc.is_alive():
                key = handle.current_key
                if key and key in self.queue.jobs:
                    self._redeliver(
                        self.queue.jobs[key],
                        f"worker {slot} died "
                        f"(exitcode={handle.proc.exitcode})",
                    )
                self.status.worker_update(slot, state="dead")
                self._respawn(slot)
                continue
            if handle.current_key:
                job = self.queue.jobs.get(handle.current_key)
                stalled = (
                    self._heartbeat_age(handle, now_wall)
                    > self.config.worker_stall_timeout_s
                )
                overdue = (
                    self.config.job_deadline_s is not None
                    and job is not None
                    and job.started_at is not None
                    and now - job.started_at > self.config.job_deadline_s
                )
                if not stalled and not overdue:
                    continue
                handle.proc.terminate()
                handle.proc.join(1.0)
                if handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(1.0)
                if overdue and job is not None:
                    # fail fast: a spent deadline is not retryable
                    self._dead_letter(
                        job,
                        BudgetExhausted(
                            "service job deadline "
                            f"({self.config.job_deadline_s}s) exceeded",
                            system=job.key[:16],
                        ).to_dict(),
                    )
                elif job is not None:
                    self.counts["workers_killed_stalled"] += 1
                    self._redeliver(job, f"worker {slot} stalled")
                self.status.worker_update(
                    slot, state="killed",
                    reason="deadline" if overdue else "stalled",
                )
                self._respawn(slot)

    def _dispatch(self) -> bool:
        progressed = False
        now = time.monotonic()
        for handle in self._workers.values():
            if handle.current_key is not None or not handle.proc.is_alive():
                continue
            job = self.queue.next_ready(now)
            if job is None:
                break
            self.queue.mark_running(job, handle.slot, now)
            handle.current_key = job.key
            self.journal.append(
                "start", job.key, attempt=job.attempts, worker=handle.slot
            )
            try:
                handle.conn.send({
                    "op": "job",
                    "key": job.key,
                    "attempt": job.attempts,
                    "request": job.request.manifest(),
                })
            except (OSError, ValueError, BrokenPipeError):
                # worker died between liveness check and send: requeue
                handle.current_key = None
                self._redeliver(job, f"worker {handle.slot} send failed")
                continue
            self.status.worker_update(
                handle.slot, state="running", job=job.key[:16],
                attempt=job.attempts,
            )
            progressed = True
        return progressed

    def _run_one_serial(self) -> bool:
        """Degraded mode: execute the next ready job in-process."""
        now = time.monotonic()
        job = self.queue.next_ready(now)
        if job is None:
            return False
        self.queue.mark_running(job, -1, now)
        self.journal.append(
            "start", job.key, attempt=job.attempts, worker=-1
        )
        try:
            payload = execute_job(
                job.request, workdir=self.workdir, attempt=job.attempts
            )
        except BaseException as exc:
            self._fail_job(job, error_payload(exc))
        else:
            self._complete_job(job, payload)
        return True

    # -- status ----------------------------------------------------------
    def _service_block(self) -> Dict[str, Any]:
        counts = self.queue.counts()
        return {
            "queue_depth": counts[JobStatus.PENDING]
            + counts[JobStatus.RETRY_WAIT],
            "in_flight": counts[JobStatus.RUNNING],
            "done": counts[JobStatus.DONE],
            "dead_letters": counts[JobStatus.DEAD_LETTER],
            "total": len(self.queue.jobs),
            "retries": self.counts["retries"],
            "redeliveries": self.counts["redeliveries"],
            "cache_hits": self.counts["cache_hits"],
            "cache_evictions": len(self.cache.eviction_log),
            "workers": len(self._workers),
            "serial_mode": self._serial_mode,
        }

    def _update_status(self, force: bool = False) -> None:
        self.status.update(
            force=force, phase="serving", service=self._service_block()
        )

    # -- main loop --------------------------------------------------------
    async def run(self) -> Dict[str, Any]:
        """Drive every submitted job to a terminal state; returns
        :meth:`results`.  Idempotent across restarts when :meth:`recover`
        was called first."""
        self._build_pool()
        self._update_status(force=True)
        try:
            while not self.queue.all_terminal():
                progressed = False
                if self._workers:
                    progressed |= self._drain_worker_messages()
                    self._check_worker_liveness()
                    progressed |= self._dispatch()
                if self._serial_mode:
                    progressed |= self._run_one_serial()
                elif not self._workers:
                    # no pool and no serial fallback permitted: the
                    # remaining jobs can never run — dead-letter them
                    for job in list(self.queue.jobs.values()):
                        if not job.terminal:
                            self._dead_letter(
                                job,
                                WorkerCrash(
                                    "worker pool unavailable and serial "
                                    "fallback disabled",
                                ).to_dict(),
                            )
                self._update_status()
                if not progressed:
                    await asyncio.sleep(self.config.tick_s)
        finally:
            self._stop_pool()
            self.journal.sync()
            if self.config.compact_journal_on_finish:
                try:
                    self.journal.compact()
                except OSError:
                    pass
            outcome = (
                "success"
                if all(
                    j.status == JobStatus.DONE
                    for j in self.queue.jobs.values()
                )
                else "partial"
            )
            self.status.update(force=True, service=self._service_block())
            self.status.finish(outcome)
        return self.results()

    def close(self) -> None:
        self._stop_pool()
        self.journal.close()

    # -- results ----------------------------------------------------------
    def results(self) -> Dict[str, Any]:
        jobs = {}
        for key, job in self.queue.jobs.items():
            row = job.summary()
            if job.result is not None:
                row["outcome"] = job.result.get("outcome")
            jobs[key] = row
        return {
            "jobs": jobs,
            "counts": dict(self.counts),
            "cache_evictions": [
                {"key": k, "layer": layer, "message": msg}
                for k, layer, msg in self.cache.eviction_log
            ],
            "all_terminal": self.queue.all_terminal(),
        }

    def payload(self, key: str) -> Optional[Dict[str, Any]]:
        job = self.queue.jobs.get(key)
        return job.result if job is not None else None


def run_service(
    root: str,
    requests: List["CertificationRequest | Dict[str, Any]"],
    config: Optional[ServiceConfig] = None,
    recover: bool = True,
) -> Dict[str, Any]:
    """Synchronous convenience driver: recover the root, submit
    ``requests``, run to completion, return the results document."""
    service = CertificationService(root, config)
    try:
        if recover:
            service.recover()
        for request in requests:
            service.submit(request)
        return asyncio.run(service.run())
    finally:
        service.close()
