"""Job runners executed by service workers.

``execute_job`` maps a :class:`~repro.service.request
.CertificationRequest` to a JSON-safe payload dict.  Payloads are
**deterministic**: no wall-clock timings, hostnames, or PIDs — a
payload is a pure function of the request manifest, which is what makes
content-addressed caching and the chaos suite's "bitwise-identical to a
fault-free serial run" assertion meaningful.  (Run *descriptions* —
latency, attempts, worker id — live in the supervisor's job records and
BENCH output, never inside the cached payload.)

Runners
-------

``verify``
    Single-shot SOS verification of a parametrized 2-state contraction
    family (``system="decay"``): build the CCDS from the request's
    parameters, verify a quadratic barrier, capture the
    :class:`CertificateBundle`, and re-prove it over ℚ before the
    payload leaves the worker.  Milliseconds per job — the load
    generator's and chaos suite's workhorse.

``certify``
    A full CEGIS/SNBC run on a named Table-1 benchmark, honoring the
    PR 4 checkpoint protocol: the worker passes a per-key checkpoint
    path, so a preempted job resumes bit-identically instead of
    restarting.

``custom``
    Resolve ``entry`` (``module:function``) and call it with
    ``(request_dict, workdir, attempt)`` — the extension/test hook.

``problem_for`` rebuilds the CCDS a cached certificate was produced
for, so the cache can run the exact recheck on *read* without trusting
anything but the request manifest and rational arithmetic.
"""

from __future__ import annotations

import dataclasses
import importlib
import os
from typing import Any, Dict, Optional

from repro.service.request import CertificationRequest, request_key

#: bounded parameter ranges of the ``verify`` family — chosen so every
#: member admits the quadratic barrier below with a healthy margin
_VERIFY_DEFAULTS = {
    "level": 1.0,       # barrier level c in B = c - 0.5 |x|^2
    "rate": 1.0,        # contraction rate k in f = -k x
    "theta_hw": 0.3,    # init box half-width
    "xi_lo": 1.5,       # unsafe corner box
    "xi_hi": 2.0,
    "psi_hw": 2.0,      # workspace half-width
}


def _u(seed: int, salt: str) -> float:
    """Deterministic uniform in [0, 1) from (seed, salt) — stdlib only,
    stable across platforms/processes (no RNG object state)."""
    import hashlib

    digest = hashlib.sha256(f"{seed}:{salt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


def make_verify_request(seed: int, **overrides: Any) -> CertificationRequest:
    """A distinct-keyed member of the ``verify`` family for ``seed``.

    Parameters are sampled from ranges where the family provably stays
    certifiable (level < 1.4 < 0.5 * xi_lo^2 * 2 keeps the unsafe
    condition strict), so load generators can mint thousands of
    successful jobs without per-job tuning.
    """
    config = {
        "level": round(1.0 + 0.35 * _u(seed, "level"), 12),
        "rate": round(0.8 + 0.4 * _u(seed, "rate"), 12),
        "theta_hw": round(0.2 + 0.15 * _u(seed, "theta"), 12),
        "xi_lo": _VERIFY_DEFAULTS["xi_lo"],
        "xi_hi": _VERIFY_DEFAULTS["xi_hi"],
        "psi_hw": _VERIFY_DEFAULTS["psi_hw"],
    }
    config.update(overrides)
    return CertificationRequest(
        kind="verify", system="decay", seed=int(seed), config=config
    )


def _verify_family_problem(config: Dict[str, Any]):
    from repro.dynamics import CCDS, ControlAffineSystem
    from repro.poly import Polynomial
    from repro.sets import Box

    params = dict(_VERIFY_DEFAULTS)
    params.update({k: v for k, v in config.items() if k in params})
    x, y = Polynomial.variables(2)
    rate = float(params["rate"])
    system = ControlAffineSystem.autonomous([-rate * x, -rate * y])
    return CCDS(
        system,
        theta=Box.cube(
            2, -float(params["theta_hw"]), float(params["theta_hw"]),
            name="theta",
        ),
        psi=Box.cube(
            2, -float(params["psi_hw"]), float(params["psi_hw"]), name="psi"
        ),
        xi=Box.cube(
            2, float(params["xi_lo"]), float(params["xi_hi"]), name="xi"
        ),
        name="decay",
    )


def problem_for(request: CertificationRequest):
    """The CCDS a cached certificate for ``request`` must be rechecked
    against, or ``None`` when the kind has no reconstructible problem
    (``custom`` payloads carry no certificates)."""
    if request.kind == "verify":
        return _verify_family_problem(request.config)
    if request.kind == "certify":
        from repro.benchmarks import get_benchmark

        return get_benchmark(request.system).make_problem()
    return None


def _stable_soundness_dict(report) -> Dict[str, Any]:
    """SoundnessReport as a dict with wall-clock fields zeroed, so equal
    certificates yield bitwise-equal payloads."""
    doc = report.to_dict()
    doc["elapsed_seconds"] = 0.0
    for cond in doc.get("conditions", []):
        cond["elapsed_seconds"] = 0.0
    return doc


def _run_verify(request: CertificationRequest) -> Dict[str, Any]:
    from repro.poly import Polynomial
    from repro.soundness import bundle_to_dict, check_certificate
    from repro.verifier import SOSVerifier

    problem = _verify_family_problem(request.config)
    level = float(request.config.get("level", _VERIFY_DEFAULTS["level"]))
    x, y = Polynomial.variables(2)
    barrier = Polynomial.constant(2, level) - 0.5 * (x * x + y * y)
    verification = SOSVerifier(problem, []).verify(barrier)
    payload: Dict[str, Any] = {
        "kind": "verify",
        "outcome": "success" if verification.ok else "failure",
        "ok": bool(verification.ok),
    }
    if verification.ok and verification.certificate is not None:
        report = check_certificate(problem, verification.certificate)
        payload["bundle"] = bundle_to_dict(verification.certificate)
        payload["soundness"] = _stable_soundness_dict(report)
        payload["proven"] = bool(report.ok)
    return payload


def _run_certify(
    request: CertificationRequest, workdir: Optional[str]
) -> Dict[str, Any]:
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC
    from repro.diagnostics import result_outcome
    from repro.soundness import bundle_to_dict

    spec = get_benchmark(request.system)
    config = request.config
    scale = str(config.get("scale", "smoke"))
    snbc_config = spec.snbc_config(scale)
    overrides: Dict[str, Any] = {"seed": int(request.seed)}
    for key in ("max_iterations", "time_budget_s", "iteration_budget_s"):
        if config.get(key) is not None:
            overrides[key] = config[key]
    checkpoint_path = resume_from = None
    if workdir:
        checkpoint_path = os.path.join(
            workdir, f"{request_key(request)[:16]}.ckpt.json"
        )
        if os.path.exists(checkpoint_path):
            resume_from = checkpoint_path
        overrides["checkpoint_path"] = checkpoint_path
    snbc_config = dataclasses.replace(snbc_config, **overrides)
    snbc = SNBC(
        spec.make_problem(),
        controller=spec.make_controller(),
        learner_config=spec.learner_config(),
        config=snbc_config,
    )
    result = snbc.run(resume_from=resume_from)
    payload: Dict[str, Any] = {
        "kind": "certify",
        "outcome": result_outcome(result),
        "ok": bool(result.success),
        "iterations": int(result.iterations),
        "d_B": (
            int(result.barrier.degree) if result.barrier is not None else None
        ),
    }
    certificate = (
        result.verification.certificate
        if result.verification is not None
        else None
    )
    if result.success and certificate is not None:
        payload["bundle"] = bundle_to_dict(certificate)
    if result.soundness is not None:
        payload["soundness"] = _stable_soundness_dict(result.soundness)
        payload["proven"] = bool(result.soundness.ok)
    if result.error is not None:
        payload["error"] = dict(result.error)
    return payload


def _run_custom(
    request: CertificationRequest, workdir: Optional[str], attempt: int
) -> Dict[str, Any]:
    module_name, _, func_name = (request.entry or "").partition(":")
    if not module_name or not func_name:
        raise ValueError(
            f"custom entry must be 'module:function', got {request.entry!r}"
        )
    func = getattr(importlib.import_module(module_name), func_name)
    payload = func(request.to_dict(), workdir, attempt)
    if not isinstance(payload, dict):
        raise TypeError(
            f"custom runner {request.entry!r} returned "
            f"{type(payload).__name__}, expected dict"
        )
    return payload


def execute_job(
    request: "CertificationRequest | Dict[str, Any]",
    workdir: Optional[str] = None,
    attempt: int = 1,
) -> Dict[str, Any]:
    """Run one request to completion; returns its deterministic payload.

    Raises whatever the runner raises — classification and retry policy
    are the supervisor's concern, not the runner's.
    """
    if not isinstance(request, CertificationRequest):
        request = CertificationRequest.from_dict(dict(request))
    if request.kind == "verify":
        return _run_verify(request)
    if request.kind == "certify":
        return _run_certify(request, workdir)
    return _run_custom(request, workdir, attempt)
