"""Custom job runners for service tests and chaos drills.

These are wired through the ``custom`` request kind (``entry`` names a
``module:function``), so tests can exercise the supervisor's failure
machinery with jobs whose behavior is scripted — slow jobs for stall
and deadline handling, flaky jobs for the retry policy, and an
execution log for exactly-once accounting across supervisor crashes.

Runners receive ``(request_manifest, workdir, attempt)`` and must
return a JSON-safe payload dict.  Everything stateful goes through
files under the request's ``config`` (the worker may be a different
process every attempt).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from repro.resilience.errors import SolverNumericalError


def _append_event(path: Optional[str], event: Dict[str, Any]) -> None:
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        fh.flush()


def read_events(path: str) -> list:
    """Events appended by runners (empty when the file is absent)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]
    except OSError:
        return []


def echo_job(request: Dict[str, Any], workdir: Optional[str],
             attempt: int) -> Dict[str, Any]:
    """Deterministic no-op: payload echoes the config."""
    config = request.get("config", {})
    _append_event(config.get("log"), {
        "op": "run", "seed": request.get("seed"), "attempt": attempt,
    })
    return {
        "kind": "custom",
        "outcome": "success",
        "echo": config.get("value"),
        "seed": request.get("seed"),
    }


def slow_job(request: Dict[str, Any], workdir: Optional[str],
             attempt: int) -> Dict[str, Any]:
    """Sleeps ``config.sleep_s`` (heartbeats keep flowing from the
    worker's daemon thread); used for deadline and in-flight tests."""
    config = request.get("config", {})
    _append_event(config.get("log"), {
        "op": "start", "seed": request.get("seed"), "attempt": attempt,
    })
    time.sleep(float(config.get("sleep_s", 1.0)))
    _append_event(config.get("log"), {
        "op": "finish", "seed": request.get("seed"), "attempt": attempt,
    })
    return {"kind": "custom", "outcome": "success",
            "slept_s": float(config.get("sleep_s", 1.0))}


def flaky_job(request: Dict[str, Any], workdir: Optional[str],
              attempt: int) -> Dict[str, Any]:
    """Raises a transient :class:`SolverNumericalError` until attempt
    ``config.succeed_on`` — the canonical retry-with-backoff customer."""
    config = request.get("config", {})
    succeed_on = int(config.get("succeed_on", 2))
    _append_event(config.get("log"), {
        "op": "attempt", "seed": request.get("seed"), "attempt": attempt,
    })
    if attempt < succeed_on:
        raise SolverNumericalError(
            f"synthetic transient failure (attempt {attempt} < "
            f"{succeed_on})",
            attempt=attempt,
        )
    return {"kind": "custom", "outcome": "success", "attempt_won": attempt}


def terminal_job(request: Dict[str, Any], workdir: Optional[str],
                 attempt: int) -> Dict[str, Any]:
    """Always fails terminally (BudgetExhausted) — the dead-letter path."""
    from repro.resilience.errors import BudgetExhausted

    raise BudgetExhausted("synthetic terminal failure", attempt=attempt)


def pid_job(request: Dict[str, Any], workdir: Optional[str],
            attempt: int) -> Dict[str, Any]:
    """Records the executing PID; proves process-pool distribution."""
    config = request.get("config", {})
    _append_event(config.get("log"), {
        "op": "pid", "seed": request.get("seed"), "pid": os.getpid(),
    })
    return {"kind": "custom", "outcome": "success",
            "seed": request.get("seed")}
