"""``python -m repro.service`` — drive a certification service root.

Subcommands::

    run     submit a batch (from --jobs-file or --verify-seeds) and run
            the supervisor until every job is terminal; prints the
            results document as JSON
    status  one-shot summary of a root: journal replay + cache keys
    resume  alias of ``run`` with no new submissions — finish whatever
            the journal says is still pending (the post-SIGKILL path)

A jobs file is JSONL, one request manifest per line (the format
:meth:`CertificationRequest.manifest` emits); ``--verify-seeds N``
instead generates the deterministic cheap verify family used by the
chaos bench.  Exit code 0 when every job succeeded, 3 when any job
dead-lettered (the batch still *terminated* — that is the service's
contract), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.journal import replay_journal
from repro.service.jobs import make_verify_request
from repro.service.request import CertificationRequest
from repro.service.supervisor import ServiceConfig, run_service


def _load_jobs_file(path: str) -> List[CertificationRequest]:
    requests: List[CertificationRequest] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                doc = json.loads(line)
            except ValueError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: undecodable request: {exc}"
                )
            requests.append(CertificationRequest.from_dict(doc))
    return requests


def _config_from_args(args: argparse.Namespace) -> ServiceConfig:
    worker_faults = []
    for spec in args.worker_fault or []:
        # site[:at_call] — e.g. service.worker_kill_mid_job:2
        site, _, at_call = spec.partition(":")
        worker_faults.append(
            {"site": site, "at_call": int(at_call) if at_call else 1}
        )
    return ServiceConfig(
        workers=args.workers,
        max_redeliveries=args.max_redeliveries,
        worker_stall_timeout_s=args.stall_timeout_s,
        job_deadline_s=args.job_deadline_s,
        serial_fallback=not args.no_serial_fallback,
        verify_cache_on_read=not args.no_verify_cache,
        worker_faults=tuple(worker_faults),
    )


def _cmd_run(args: argparse.Namespace, resume_only: bool = False) -> int:
    requests: List[CertificationRequest] = []
    if not resume_only:
        if args.jobs_file:
            requests.extend(_load_jobs_file(args.jobs_file))
        for seed in range(args.verify_seeds or 0):
            requests.append(make_verify_request(seed=seed))
        if not requests and not getattr(args, "recover", False):
            print(
                "no jobs: pass --jobs-file or --verify-seeds "
                "(or use `resume`)",
                file=sys.stderr,
            )
            return 2
    results = run_service(
        args.root,
        requests,
        config=_config_from_args(args),
        recover=getattr(args, "recover", False) or resume_only,
    )
    json.dump(results, sys.stdout, indent=2, default=str)
    print()
    statuses = [row["status"] for row in results["jobs"].values()]
    return 0 if all(s == "success" for s in statuses) else 3


def _cmd_status(args: argparse.Namespace) -> int:
    state = replay_journal(f"{args.root}/journal.jsonl")
    from repro.service.cache import CertificateCache

    cache = CertificateCache(f"{args.root}/cache", verify_on_read=False)
    doc: Dict[str, Any] = {
        "root": args.root,
        "journal_records": state.records,
        "torn_records": state.torn_records,
        "jobs": {
            key: {
                "status": job.get("status"),
                "attempts": job.get("attempts"),
                "redeliveries": job.get("redeliveries"),
            }
            for key, job in sorted(state.jobs.items())
        },
        "pending": state.pending(),
        "cached_keys": cache.keys(),
    }
    json.dump(doc, sys.stdout, indent=2)
    print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="fault-tolerant certification service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", required=True,
                       help="service root directory (journal/cache/work)")
        p.add_argument("--workers", type=int, default=2,
                       help="pool size; 0 = serial in-process")
        p.add_argument("--max-redeliveries", type=int, default=2)
        p.add_argument("--stall-timeout-s", type=float, default=60.0)
        p.add_argument("--job-deadline-s", type=float, default=None)
        p.add_argument("--no-serial-fallback", action="store_true")
        p.add_argument("--no-verify-cache", action="store_true",
                       help="skip the exact recheck on cache reads")
        p.add_argument("--worker-fault", action="append", metavar="SITE[:N]",
                       help="arm a worker fault site (chaos testing)")

    run_p = sub.add_parser("run", help="submit a batch and run it")
    add_run_options(run_p)
    run_p.add_argument("--jobs-file", help="JSONL of request manifests")
    run_p.add_argument("--verify-seeds", type=int, metavar="N",
                       help="submit N deterministic cheap verify jobs")
    run_p.add_argument("--recover", action="store_true",
                       help="also requeue pending jobs from the journal")

    resume_p = sub.add_parser(
        "resume", help="finish the journal's pending jobs (post-crash)"
    )
    add_run_options(resume_p)

    status_p = sub.add_parser("status", help="summarize a service root")
    status_p.add_argument("--root", required=True)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_run(args, resume_only=True)
    if args.command == "status":
        return _cmd_status(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
