"""Certification requests and their canonical content-address.

A request is the service's unit of work *and* its cache key material:
two requests with the same canonical manifest are the same computation
(the pipeline is seeded and deterministic end to end — PR 1's
determinism regression test is what makes content-addressing sound), so
a repeat submission from any client is a cache hit.

The key is ``sha256`` over a *canonical* JSON rendering: keys sorted,
no whitespace, floats via Python's shortest-repr (bit-faithful for
IEEE doubles), config echoed through the same normalization as run
manifests (:func:`repro.telemetry.manifest._config_echo` semantics:
dataclasses → dicts, tuples → lists, numpy scalars → Python scalars).
Insertion order, dict/tuple distinctions, and float formatting can
therefore never split or alias cache entries.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.telemetry.manifest import _config_echo

REQUEST_SCHEMA_VERSION = 1

#: request kinds the service knows how to execute (see
#: :mod:`repro.service.jobs`)
REQUEST_KINDS = ("verify", "certify", "custom")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text for hashing: sorted keys, no whitespace,
    normalized scalars.  Raises ``TypeError`` on non-JSON-able input so
    an unhashable request fails loudly instead of aliasing."""
    return json.dumps(
        _config_echo(obj),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


@dataclass(frozen=True)
class CertificationRequest:
    """One unit of certification work.

    ``kind`` selects the runner (:mod:`repro.service.jobs`):

    * ``"verify"`` — single-shot SOS verification + certificate capture
      + exact recheck of a parametrized small system (``system`` names
      the family, ``config`` its parameters);
    * ``"certify"`` — a full CEGIS/SNBC run on a named Table-1 benchmark
      (``system`` e.g. ``"C1"``), with ``config`` overriding the spec
      (``seed``, ``scale``, ``time_budget_s``, ``max_iterations``);
    * ``"custom"`` — ``entry`` is a ``module:function`` dotted path
      resolved inside the worker (test/extension hook).

    ``seed`` is part of the manifest even when a runner ignores it, so
    load generators can mint distinct-keyed copies of one shape.
    """

    kind: str = "verify"
    system: str = "decay"
    seed: int = 0
    config: Dict[str, Any] = field(default_factory=dict)
    entry: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r} "
                f"(expected one of {REQUEST_KINDS})"
            )
        if self.kind == "custom" and not self.entry:
            raise ValueError("custom requests need an entry dotted path")

    # -- manifest / hashing ---------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """The canonical key material (everything that selects the
        computation; nothing that merely describes the run)."""
        return {
            "schema_version": REQUEST_SCHEMA_VERSION,
            "kind": self.kind,
            "system": self.system,
            "seed": int(self.seed),
            "config": _config_echo(self.config),
            "entry": self.entry,
        }

    def key(self) -> str:
        return request_key(self)

    # -- (de)serialization ----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return self.manifest()

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CertificationRequest":
        version = doc.get("schema_version", REQUEST_SCHEMA_VERSION)
        if version != REQUEST_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported request schema_version {version!r}"
            )
        return cls(
            kind=str(doc.get("kind", "verify")),
            system=str(doc.get("system", "decay")),
            seed=int(doc.get("seed", 0)),
            config=dict(doc.get("config") or {}),
            entry=doc.get("entry"),
        )


def request_key(request: "CertificationRequest | Dict[str, Any]") -> str:
    """Content address of a request: sha256 hex of its canonical manifest."""
    manifest = (
        request.manifest()
        if isinstance(request, CertificationRequest)
        else CertificationRequest.from_dict(dict(request)).manifest()
    )
    return hashlib.sha256(
        canonical_json(manifest).encode("utf-8")
    ).hexdigest()
