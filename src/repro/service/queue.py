"""In-memory job state machine with backoff-aware scheduling.

The queue is the supervisor's single source of truth between journal
records: jobs move ``PENDING → RUNNING → DONE`` on the happy path, take
the ``RETRY_WAIT`` detour on transient failures (eligible again only
after their backoff deadline), and land in ``DEAD_LETTER`` when the
retry policy, the redelivery bound, or a terminal classification gives
up.  ``next_ready`` hands out the oldest eligible job — one shared
logical queue across all workers is what makes the pool work-stealing:
a fast worker that drains its job simply takes the next ready one,
regardless of which worker a redelivered job came from.

Pure data structure: no I/O, no clocks of its own (callers pass ``now``
from ``time.monotonic()``), trivially unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.request import CertificationRequest, request_key


class JobStatus:
    """String states (kept as plain strings for JSON friendliness)."""

    PENDING = "pending"
    RUNNING = "running"
    RETRY_WAIT = "retry_wait"
    DONE = "done"
    DEAD_LETTER = "dead_letter"

    TERMINAL = (DONE, DEAD_LETTER)


@dataclass
class Job:
    """One submitted request plus its scheduling state."""

    key: str
    request: CertificationRequest
    status: str = JobStatus.PENDING
    #: executions started (first try included)
    attempts: int = 0
    #: times pulled back from a dead/stalled worker
    redeliveries: int = 0
    #: monotonic time before which the job must not be handed out
    not_before: float = 0.0
    #: FIFO tiebreaker (submission order)
    sequence: int = 0
    #: worker id currently executing the job (RUNNING only)
    worker: Optional[int] = None
    #: monotonic time the current attempt started (RUNNING only)
    started_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    from_cache: bool = False
    #: wall-clock latency from submission to terminal state
    submitted_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.status in JobStatus.TERMINAL

    def summary(self) -> Dict[str, Any]:
        """JSON row for service results / BENCH output."""
        out: Dict[str, Any] = {
            "status": (
                "success" if self.status == JobStatus.DONE else self.status
            ),
            "attempts": self.attempts,
            "redeliveries": self.redeliveries,
            "from_cache": self.from_cache,
        }
        if self.submitted_at is not None and self.finished_at is not None:
            out["latency_s"] = round(self.finished_at - self.submitted_at, 6)
        if self.error is not None:
            out["error"] = self.error
        return out


class JobQueue:
    """All jobs of one service run, keyed by content address."""

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self._sequence = 0

    # -- intake ---------------------------------------------------------
    def submit(
        self, request: CertificationRequest, submitted_at: float = 0.0
    ) -> Job:
        """Add a request; duplicate keys coalesce onto the same job."""
        key = request_key(request)
        existing = self.jobs.get(key)
        if existing is not None:
            return existing
        self._sequence += 1
        job = Job(
            key=key,
            request=request,
            sequence=self._sequence,
            submitted_at=submitted_at,
        )
        self.jobs[key] = job
        return job

    # -- scheduling -----------------------------------------------------
    def next_ready(self, now: float) -> Optional[Job]:
        """Oldest PENDING/RETRY_WAIT job whose backoff deadline passed."""
        best: Optional[Job] = None
        for job in self.jobs.values():
            if job.status not in (JobStatus.PENDING, JobStatus.RETRY_WAIT):
                continue
            if job.not_before > now:
                continue
            if best is None or job.sequence < best.sequence:
                best = job
        return best

    def next_deadline(self) -> Optional[float]:
        """Earliest backoff deadline among waiting jobs (idle wakeup)."""
        deadlines = [
            job.not_before
            for job in self.jobs.values()
            if job.status in (JobStatus.PENDING, JobStatus.RETRY_WAIT)
            and job.not_before > 0.0
        ]
        return min(deadlines) if deadlines else None

    # -- transitions ----------------------------------------------------
    def mark_running(self, job: Job, worker: int, now: float) -> None:
        job.status = JobStatus.RUNNING
        job.worker = worker
        job.attempts += 1
        job.started_at = now

    def mark_done(
        self,
        job: Job,
        result: Optional[Dict[str, Any]],
        finished_at: float,
        from_cache: bool = False,
    ) -> None:
        job.status = JobStatus.DONE
        job.result = result
        job.from_cache = from_cache
        job.worker = None
        job.finished_at = finished_at
        job.error = None

    def mark_retry(
        self, job: Job, error: Optional[Dict[str, Any]], not_before: float
    ) -> None:
        job.status = JobStatus.RETRY_WAIT
        job.error = error
        job.worker = None
        job.not_before = not_before

    def mark_redelivered(self, job: Job, not_before: float = 0.0) -> None:
        job.status = JobStatus.PENDING
        job.redeliveries += 1
        job.worker = None
        job.not_before = not_before

    def mark_dead_letter(
        self, job: Job, error: Optional[Dict[str, Any]], finished_at: float
    ) -> None:
        job.status = JobStatus.DEAD_LETTER
        job.error = error
        job.worker = None
        job.finished_at = finished_at

    # -- aggregate views ------------------------------------------------
    def running(self) -> List[Job]:
        return [
            j for j in self.jobs.values() if j.status == JobStatus.RUNNING
        ]

    def depth(self, now: Optional[float] = None) -> int:
        """Jobs waiting for a worker (backoff-eligible or not)."""
        return sum(
            1
            for j in self.jobs.values()
            if j.status in (JobStatus.PENDING, JobStatus.RETRY_WAIT)
        )

    def all_terminal(self) -> bool:
        return all(j.terminal for j in self.jobs.values())

    def counts(self) -> Dict[str, int]:
        out = {
            JobStatus.PENDING: 0,
            JobStatus.RETRY_WAIT: 0,
            JobStatus.RUNNING: 0,
            JobStatus.DONE: 0,
            JobStatus.DEAD_LETTER: 0,
        }
        for job in self.jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out
