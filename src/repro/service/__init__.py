"""Fault-tolerant certification service.

``repro.service`` turns one-shot harness runs into a supervised job
engine: certification requests (system, controller config, seed) are
hashed into content-addressed cache keys, journaled to a write-ahead
log, sharded across a pool of process workers with work-stealing, and
retried/redelivered per the shared
:class:`~repro.resilience.RetryPolicy` until every job lands in a
terminal state (``success`` or ``dead_letter``) — surviving worker
crashes, stalls, cache corruption, and even a SIGKILL of the supervisor
itself (the journal replays on restart; completed jobs are served from
the cache, never re-executed).

Layers, bottom-up:

* :mod:`repro.service.request` — request manifests + canonical hashing
  (the cache key material, following PR 1's run manifests);
* :mod:`repro.service.journal` — the crash-safe write-ahead job journal;
* :mod:`repro.service.cache` — the self-verifying content-addressed
  certificate store (digest check + exact rational recheck on read);
* :mod:`repro.service.queue` — in-memory job state machine with
  backoff-aware scheduling;
* :mod:`repro.service.jobs` — job runners (cheap single-shot SOS
  ``verify`` family, full SNBC ``certify``, dotted-path ``custom``);
* :mod:`repro.service.worker` — the process-worker loop (heartbeat +
  pipe protocol);
* :mod:`repro.service.supervisor` — the asyncio supervision tree;
* :mod:`repro.service.cli` — ``python -m repro.service``.

See ``docs/service.md`` for the architecture and failure matrix.
"""

from repro.service.cache import CacheEntryError, CertificateCache
from repro.service.journal import (
    JOURNAL_KIND,
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    JournalState,
    replay_journal,
)
from repro.service.jobs import execute_job, make_verify_request, problem_for
from repro.service.queue import Job, JobQueue, JobStatus
from repro.service.request import (
    REQUEST_SCHEMA_VERSION,
    CertificationRequest,
    canonical_json,
    request_key,
)
from repro.service.supervisor import (
    CertificationService,
    ServiceConfig,
    run_service,
)

__all__ = [
    "CacheEntryError",
    "CertificationRequest",
    "CertificationService",
    "CertificateCache",
    "JOURNAL_KIND",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobStatus",
    "JournalState",
    "REQUEST_SCHEMA_VERSION",
    "ServiceConfig",
    "canonical_json",
    "execute_job",
    "make_verify_request",
    "problem_for",
    "replay_journal",
    "request_key",
    "run_service",
]
