"""Self-verifying content-addressed certificate store.

Entries live at ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
sha256 of the request's canonical manifest
(:func:`repro.service.request.request_key`).  Writes are atomic
(tmp+rename).  Every cached answer is a *safety claim*, so a hit is
never served on trust — reads re-establish integrity in three layers,
cheapest first:

1. **Envelope**: kind/schema/key fields must match the request (a file
   renamed or cross-wired between keys is rejected);
2. **Digest**: the payload's canonical-JSON sha256 must equal the
   recorded ``payload_sha256`` (bit rot, torn writes, truncation);
3. **Exact recheck**: when the payload carries a
   :class:`CertificateBundle`, it is deserialized and re-proven over ℚ
   with :func:`repro.soundness.check_certificate` against the problem
   rebuilt from the request manifest — a corrupted-but-self-consistent
   bundle (flipped Gram bits *and* a recomputed digest, i.e. a bug or
   an adversarial write, not just rot) still cannot get out.

Any layer failing **evicts** the entry and reports a miss, so the
caller recomputes; a corrupt result is never returned.  Counters land
in the active telemetry session as ``service.cache.hits`` /
``.misses`` / ``.evictions``.

The ``service.cache_corrupt_bundle`` fault site corrupts the
deserialized bundle in memory between layers 2 and 3, deterministically
exercising the recheck-eviction path end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from repro.resilience.faults import fired
from repro.service.request import CertificationRequest, canonical_json, request_key
from repro.telemetry import get_telemetry

CACHE_KIND = "repro_certificate_cache_entry"
CACHE_SCHEMA_VERSION = 1


class CacheEntryError(Exception):
    """An entry failed an integrity layer (recorded on the eviction)."""


def payload_digest(payload: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON of a payload."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


class CertificateCache:
    """Content-addressed result store for one service root."""

    def __init__(
        self,
        root: str,
        verify_on_read: bool = True,
        max_denominator: Optional[int] = None,
    ) -> None:
        self.root = str(root)
        self.verify_on_read = bool(verify_on_read)
        self.max_denominator = max_denominator
        os.makedirs(self.root, exist_ok=True)
        #: integrity failures seen by this handle, newest last:
        #: ``(key, layer, message)`` — surfaced in service results
        self.eviction_log: list = []

    # -- layout ---------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _count(self, name: str) -> None:
        get_telemetry().metrics.inc(f"service.cache.{name}")

    # -- writes ---------------------------------------------------------
    def put(
        self,
        request: "CertificationRequest | Dict[str, Any]",
        payload: Dict[str, Any],
    ) -> str:
        """Atomically store ``payload`` under the request's key."""
        if not isinstance(request, CertificationRequest):
            request = CertificationRequest.from_dict(dict(request))
        key = request_key(request)
        entry = {
            "kind": CACHE_KIND,
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "request": request.manifest(),
            "payload": payload,
            "payload_sha256": payload_digest(payload),
        }
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=f"{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    def evict(self, key: str, layer: str = "", message: str = "") -> None:
        """Delete an entry (idempotent) and record why."""
        try:
            os.unlink(self.path_for(key))
        except OSError:
            pass
        self.eviction_log.append((key, layer, message))
        self._count("evictions")

    # -- reads ----------------------------------------------------------
    def get(
        self, request: "CertificationRequest | Dict[str, Any]"
    ) -> Optional[Dict[str, Any]]:
        """The verified payload for ``request``, or ``None`` (miss).

        A failed integrity layer evicts and returns ``None`` — the
        caller's only move on a bad entry is to recompute.
        """
        if not isinstance(request, CertificationRequest):
            request = CertificationRequest.from_dict(dict(request))
        key = request_key(request)
        try:
            payload = self._read_verified(request, key)
        except CacheEntryError:
            self._count("misses")
            return None
        if payload is None:
            self._count("misses")
            return None
        self._count("hits")
        return payload

    def _read_verified(
        self, request: CertificationRequest, key: str
    ) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            return None  # plain miss: no entry
        except ValueError as exc:
            self.evict(key, "decode", f"undecodable entry: {exc}")
            raise CacheEntryError(str(exc))
        # layer 1: envelope
        if (
            not isinstance(entry, dict)
            or entry.get("kind") != CACHE_KIND
            or entry.get("schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            self.evict(key, "envelope", "kind/schema/key mismatch")
            raise CacheEntryError("envelope mismatch")
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            self.evict(key, "envelope", "payload missing")
            raise CacheEntryError("payload missing")
        # layer 2: content digest
        digest = payload_digest(payload)
        if digest != entry.get("payload_sha256"):
            self.evict(
                key, "digest",
                f"payload digest {digest[:12]} != recorded "
                f"{str(entry.get('payload_sha256'))[:12]}",
            )
            raise CacheEntryError("digest mismatch")
        # layer 3: exact recheck of the stored certificate
        if self.verify_on_read and payload.get("bundle") is not None:
            self._recheck_bundle(request, key, payload)
        return payload

    def _recheck_bundle(
        self, request: CertificationRequest, key: str, payload: Dict[str, Any]
    ) -> None:
        from repro.service.jobs import problem_for
        from repro.soundness import (
            SoundnessConfig,
            bundle_from_dict,
            check_certificate,
        )

        problem = problem_for(request)
        if problem is None:
            return  # no reconstructible problem: digest layer is the gate
        try:
            bundle = bundle_from_dict(payload["bundle"])
        except Exception as exc:
            self.evict(key, "bundle", f"bundle deserialization: {exc}")
            raise CacheEntryError(str(exc))
        if fired("service.cache_corrupt_bundle") and bundle.conditions:
            # deterministic chaos: inflate the first condition's claimed
            # strictness margin.  Gram-entry bit flips are *repaired* by
            # the checker's residual absorption (the Gram is only a
            # witness), but a stronger claim than the barrier supports
            # forces absorption to push the slack Gram off PSD — a
            # corruption the digest cannot see and only the exact
            # recheck can reject
            bundle.conditions[0].margin = (
                float(bundle.conditions[0].margin) + 10.0
            )
        config = (
            SoundnessConfig(max_denominator=self.max_denominator)
            if self.max_denominator is not None
            else None
        )
        try:
            report = check_certificate(problem, bundle, config)
        except Exception as exc:
            self.evict(key, "recheck", f"recheck raised: {exc}")
            raise CacheEntryError(str(exc))
        if not report.ok:
            self.evict(
                key, "recheck",
                "exact recheck rejected cached certificate "
                f"(failed: {report.failed_conditions()})",
            )
            raise CacheEntryError("exact recheck failed")

    # -- introspection --------------------------------------------------
    def keys(self) -> list:
        out = []
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".json"):
                    out.append(filename[: -len(".json")])
        return out

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))
