"""JSON (de)serialization for certificates and synthesis results.

A certified barrier is a long-lived artifact: these helpers let a
verification run be archived and the certificate re-checked later (see
``tests/test_serialize.py`` for the round-trip through a fresh
:class:`~repro.verifier.SOSVerifier`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.poly import Polynomial


def polynomial_to_dict(p: Polynomial) -> Dict[str, Any]:
    """Lossless JSON-safe encoding of a polynomial."""
    return {
        "n_vars": p.n_vars,
        "terms": [
            {"exponents": list(alpha), "coefficient": c} for alpha, c in p.terms()
        ],
    }


def polynomial_from_dict(data: Dict[str, Any]) -> Polynomial:
    """Inverse of :func:`polynomial_to_dict`."""
    try:
        n_vars = int(data["n_vars"])
        coeffs = {
            tuple(int(e) for e in term["exponents"]): float(term["coefficient"])
            for term in data["terms"]
        }
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed polynomial payload: {exc}") from exc
    return Polynomial(n_vars, coeffs)


def snbc_result_to_dict(result) -> Dict[str, Any]:
    """Archive an :class:`~repro.cegis.SNBCResult` (certificate + metadata)."""
    payload: Dict[str, Any] = {
        "problem": result.problem_name,
        "success": result.success,
        "iterations": result.iterations,
        "timings": {
            "inclusion": result.timings.inclusion,
            "learning": result.timings.learning,
            "counterexample": result.timings.counterexample,
            "verification": result.timings.verification,
            "total": result.timings.total,
        },
        "barrier": polynomial_to_dict(result.barrier) if result.barrier else None,
        "lambda": (
            polynomial_to_dict(result.lambda_poly) if result.lambda_poly else None
        ),
    }
    if result.inclusion is not None:
        payload["inclusion"] = {
            "polynomials": [
                polynomial_to_dict(h) for h in result.inclusion.polynomials
            ],
            "sigma_tilde": list(result.inclusion.sigma_tilde),
            "sigma_star": list(result.inclusion.sigma_star),
            "spacing": result.inclusion.spacing,
            "lipschitz": result.inclusion.lipschitz,
        }
    return payload


def save_certificate(result, path: str) -> None:
    """Write an SNBC result to a JSON file."""
    with open(path, "w") as fh:
        json.dump(snbc_result_to_dict(result), fh, indent=2)


def load_certificate(path: str) -> Dict[str, Any]:
    """Load an archived result; polynomials are decoded back to objects.

    Returns a dict with ``barrier``/``lambda`` as :class:`Polynomial` (or
    ``None``) plus the stored metadata.
    """
    with open(path) as fh:
        data = json.load(fh)
    out = dict(data)
    if data.get("barrier"):
        out["barrier"] = polynomial_from_dict(data["barrier"])
    if data.get("lambda"):
        out["lambda"] = polynomial_from_dict(data["lambda"])
    if data.get("inclusion"):
        inc = dict(data["inclusion"])
        inc["polynomials"] = [
            polynomial_from_dict(h) for h in inc.get("polynomials", [])
        ]
        out["inclusion"] = inc
    return out
