"""Cross-cutting utilities: serialization of certificates and results."""

from repro.utils.serialize import (
    load_certificate,
    polynomial_from_dict,
    polynomial_to_dict,
    save_certificate,
    snbc_result_to_dict,
)

__all__ = [
    "polynomial_to_dict",
    "polynomial_from_dict",
    "snbc_result_to_dict",
    "save_certificate",
    "load_certificate",
]
