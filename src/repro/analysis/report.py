"""Markdown report generation for the Table 1 reproduction.

``build_table1_report`` runs SNBC (and optionally the baselines) over the
benchmark registry and renders a markdown section in the layout of the
paper's Table 1 — the engine behind the numbers recorded in
EXPERIMENTS.md and a reproducibility artifact in its own right:

    python -m repro.analysis.report --scale smoke --output report.md
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import Table, format_table
from repro.benchmarks import get_benchmark, list_benchmarks

logger = logging.getLogger(__name__)


@dataclass
class Table1Row:
    """Measured SNBC results for one benchmark system."""

    name: str
    n_x: int
    d_f: int
    nn_b: str
    nn_lambda: str
    success: bool
    d_b: Optional[int]
    iterations: int
    t_learn: float
    t_cex: float
    t_verify: float
    t_total: float


def run_snbc_rows(
    systems: Optional[Sequence[str]] = None,
    scale: str = "smoke",
    progress=None,
) -> List[Table1Row]:
    """Run SNBC over the registry and collect Table 1 rows."""
    from repro.cegis import SNBC

    rows: List[Table1Row] = []
    for name in systems or [n for n in list_benchmarks() if n != "example1"]:
        spec = get_benchmark(name)
        problem = spec.make_problem()
        controller = spec.make_controller()
        result = SNBC(
            problem,
            controller=controller,
            learner_config=spec.learner_config(),
            config=spec.snbc_config(scale),
        ).run()
        meta = spec.table_row()
        rows.append(
            Table1Row(
                name=name,
                n_x=meta["n_x"],
                d_f=meta["d_f"],
                nn_b=meta["NN_B"],
                nn_lambda=meta["NN_lambda"],
                success=result.success,
                d_b=result.barrier.degree if result.success else None,
                iterations=result.iterations,
                t_learn=result.timings.learning,
                t_cex=result.timings.counterexample,
                t_verify=result.timings.verification,
                t_total=result.timings.total,
            )
        )
        logger.info(
            "%s: %s in %.2fs (%d iterations)",
            name,
            "ok" if result.success else "FAIL",
            result.timings.total,
            result.iterations,
        )
        if progress is not None:
            progress(rows[-1])
    return rows


def render_markdown(rows: Sequence[Table1Row], scale: str) -> str:
    """Render collected rows as a markdown table plus summary lines."""
    lines = [
        f"### Table 1 / SNBC columns (measured, scale={scale})",
        "",
        "| Ex. | n_x | d_f | NN_B | NN_lambda | d_B | I_s | T_l (s) | T_c (s) | T_v (s) | T_e (s) |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        lines.append(
            f"| {r.name} | {r.n_x} | {r.d_f} | {r.nn_b} | {r.nn_lambda} | "
            f"{r.d_b if r.success else 'x'} | {r.iterations} | "
            f"{r.t_learn:.3f} | {r.t_cex:.3f} | {r.t_verify:.3f} | {r.t_total:.3f} |"
        )
    solved = sum(r.success for r in rows)
    lines += [
        "",
        f"Solved: **{solved}/{len(rows)}** systems "
        f"(paper: SNBC solves 14/14, d_B = 2 throughout).",
    ]
    if solved:
        mean_total = sum(r.t_total for r in rows if r.success) / solved
        lines.append(f"Mean T_e over solved systems: {mean_total:.3f} s.")
    return "\n".join(lines)


def render_text(rows: Sequence[Table1Row], scale: str) -> str:
    """Plain-text rendering (for terminals / bench logs)."""
    table = Table(
        columns=["Ex.", "n_x", "d_f", "NN_B", "NN_lambda", "d_B", "I_s",
                 "T_l", "T_c", "T_v", "T_e"],
        title=f"Table 1 / SNBC columns (scale={scale})",
    )
    for r in rows:
        table.add_row(
            **{
                "Ex.": r.name,
                "n_x": r.n_x,
                "d_f": r.d_f,
                "NN_B": r.nn_b,
                "NN_lambda": r.nn_lambda,
                "d_B": r.d_b,
                "I_s": r.iterations,
                "T_l": r.t_learn,
                "T_c": r.t_cex,
                "T_v": r.t_verify,
                "T_e": r.t_total,
            }
        )
    return format_table(table)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["smoke", "paper"], default="smoke")
    parser.add_argument("--systems", nargs="*", default=None)
    parser.add_argument("--output", default=None, help="markdown output path")
    args = parser.parse_args(argv)

    def progress(row: Table1Row) -> None:
        status = "ok" if row.success else "FAIL"
        print(f"  {row.name}: {status} in {row.t_total:.2f}s "
              f"({row.iterations} iterations)", flush=True)

    rows = run_snbc_rows(args.systems, scale=args.scale, progress=progress)
    print()
    print(render_text(rows, args.scale))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(render_markdown(rows, args.scale) + "\n")
        print(f"\nmarkdown written to {args.output}")
    return 0 if all(r.success for r in rows) else 1


if __name__ == "__main__":
    sys.exit(main())
