"""Result-table assembly and ASCII rendering for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Table:
    """A simple column-ordered result table."""

    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        if name not in self.columns:
            raise ValueError(f"no column {name!r}")
        return [row.get(name) for row in self.rows]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(table: Table) -> str:
    """Monospace rendering with a header rule, Table 1 style."""
    widths = {c: len(c) for c in table.columns}
    rendered_rows = []
    for row in table.rows:
        rendered = {c: _fmt(row.get(c)) for c in table.columns}
        for c, text in rendered.items():
            widths[c] = max(widths[c], len(text))
        rendered_rows.append(rendered)
    header = "  ".join(c.ljust(widths[c]) for c in table.columns)
    rule = "-" * len(header)
    lines = []
    if table.title:
        lines.append(table.title)
    lines.extend([header, rule])
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[c].ljust(widths[c]) for c in table.columns))
    return "\n".join(lines)
