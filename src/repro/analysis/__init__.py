"""Analysis utilities: simulation, certification checks, figures, tables.

* :mod:`repro.analysis.simulate` — closed-loop trajectory integration
  (scipy RK45) and empirical safety checking;
* :mod:`repro.analysis.phase_portrait` — the data behind Figure 3:
  trajectories from Theta, the zero level set of ``B``, counterexample
  points;
* :mod:`repro.analysis.tables` — Table 1-style result assembly and ASCII
  rendering for the benchmark harness.
"""

from repro.analysis.simulate import SimulationResult, check_empirical_safety, simulate
from repro.analysis.phase_portrait import PhasePortraitData, phase_portrait
from repro.analysis.tables import Table, format_table
from repro.analysis.reachability import ReachabilityReport, ReachTube, estimate_reachability

__all__ = [
    "simulate",
    "SimulationResult",
    "check_empirical_safety",
    "phase_portrait",
    "PhasePortraitData",
    "Table",
    "format_table",
    "estimate_reachability",
    "ReachabilityReport",
    "ReachTube",
]
