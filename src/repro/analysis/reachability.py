"""Monte-Carlo reachability estimation for closed-loop systems.

A statistical complement to the formal certificates: sample many initial
states, integrate the true closed loop, and summarize where the flow goes —
per-time axis-aligned bounds (an empirical reach tube), distance to the
unsafe set, and the certificate's margin along the flow.  Used by
integration tests to confirm that a certified instance also *looks* safe,
and by users to size Theta/Psi/Xi when building new problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.simulate import ControlLaw, simulate
from repro.dynamics import CCDS
from repro.poly import Polynomial


@dataclass
class ReachTube:
    """Empirical reach tube: per-time-bucket axis-aligned state bounds."""

    times: np.ndarray  # bucket centers, (k,)
    lower: np.ndarray  # (k, n)
    upper: np.ndarray  # (k, n)

    @property
    def final_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.lower[-1], self.upper[-1]

    def contains(self, t: float, x: np.ndarray) -> bool:
        """Is ``x`` inside the tube's bucket covering time ``t``?"""
        idx = int(np.clip(np.searchsorted(self.times, t), 0, len(self.times) - 1))
        return bool(
            np.all(x >= self.lower[idx] - 1e-12)
            and np.all(x <= self.upper[idx] + 1e-12)
        )


@dataclass
class ReachabilityReport:
    """Summary of a Monte-Carlo reachability run."""

    n_trajectories: int
    n_unsafe: int
    n_exited_domain: int
    tube: ReachTube
    min_unsafe_distance: float
    min_barrier_value: Optional[float] = None

    @property
    def empirically_safe(self) -> bool:
        return self.n_unsafe == 0


def estimate_reachability(
    problem: CCDS,
    controller: ControlLaw = None,
    n_trajectories: int = 50,
    t_final: float = 10.0,
    n_buckets: int = 20,
    barrier: Optional[Polynomial] = None,
    rng: Optional[np.random.Generator] = None,
) -> ReachabilityReport:
    """Sample trajectories from Theta and summarize the reachable flow.

    ``barrier`` (when given) is evaluated along all in-domain states and
    the minimum recorded — a certified ``B`` must keep it nonnegative.
    """
    if n_trajectories < 1 or n_buckets < 1:
        raise ValueError("n_trajectories and n_buckets must be positive")
    rng = rng or np.random.default_rng(0)
    starts = problem.theta.sample(n_trajectories, rng=rng)
    edges = np.linspace(0.0, t_final, n_buckets + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    n = problem.n_vars
    lower = np.full((n_buckets, n), np.inf)
    upper = np.full((n_buckets, n), -np.inf)

    n_unsafe = 0
    n_exited = 0
    min_dist = np.inf
    min_b = np.inf
    xi_center = None
    if problem.xi.bounding_box is not None:
        lo_xi, hi_xi = problem.xi.bounding_box
        xi_center = 0.5 * (np.asarray(lo_xi) + np.asarray(hi_xi))

    for x0 in starts:
        sim = simulate(problem, x0, controller=controller, t_final=t_final)
        n_unsafe += int(sim.entered_unsafe)
        n_exited += int(sim.exited_domain)
        idx = np.clip(np.digitize(sim.times, edges) - 1, 0, n_buckets - 1)
        for b in np.unique(idx):
            pts = sim.states[idx == b]
            lower[b] = np.minimum(lower[b], pts.min(axis=0))
            upper[b] = np.maximum(upper[b], pts.max(axis=0))
        if xi_center is not None:
            min_dist = min(
                min_dist,
                float(np.min(np.linalg.norm(sim.states - xi_center, axis=1))),
            )
        if barrier is not None:
            inside = problem.psi.contains(sim.states)
            if np.any(inside):
                min_b = min(min_b, float(np.min(barrier(sim.states[inside]))))

    # empty buckets (trajectories stopped early): collapse to predecessors
    for b in range(n_buckets):
        if not np.all(np.isfinite(lower[b])):
            src = max(0, b - 1)
            lower[b] = lower[src]
            upper[b] = upper[src]

    return ReachabilityReport(
        n_trajectories=n_trajectories,
        n_unsafe=n_unsafe,
        n_exited_domain=n_exited,
        tube=ReachTube(times=centers, lower=lower, upper=upper),
        min_unsafe_distance=float(min_dist),
        min_barrier_value=None if barrier is None else float(min_b),
    )
