"""Figure 3 data: trajectories, barrier level set, counterexample points.

The paper's Figure 3 shows (a) a false candidate with the two worst
counterexamples and (b) the final barrier's zero level set separating the
unsafe cube from all trajectories.  This module computes the underlying
data series; rendering is left to the caller (no plotting dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.simulate import ControlLaw, check_empirical_safety
from repro.dynamics import CCDS
from repro.poly import Polynomial


@dataclass
class PhasePortraitData:
    """All series needed to render a Figure 3-style phase portrait."""

    trajectories: List[np.ndarray]
    level_set_points: np.ndarray  # points with B(x) ~ 0
    counterexample_points: np.ndarray
    barrier_grid: Optional[np.ndarray] = None  # (m, n+1): coords + B value
    any_trajectory_unsafe: bool = False

    def summary(self) -> str:
        return (
            f"{len(self.trajectories)} trajectories, "
            f"{len(self.level_set_points)} level-set points, "
            f"{len(self.counterexample_points)} counterexamples, "
            f"unsafe={self.any_trajectory_unsafe}"
        )


def _level_set_sampling(
    B: Polynomial,
    lo: np.ndarray,
    hi: np.ndarray,
    n_samples: int,
    tol_quantile: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample points near the zero level set of ``B`` inside a box.

    Draws a large uniform cloud, keeps the fraction with the smallest
    ``|B|`` and refines each kept point by a few bisection steps along the
    local gradient direction.
    """
    cloud = rng.uniform(lo, hi, size=(n_samples * 20, lo.shape[0]))
    vals = np.abs(B(cloud))
    keep = cloud[np.argsort(vals)[:n_samples]]
    grads = B.grad()
    pts = keep.copy()
    for _ in range(8):
        v = B(pts)
        g = np.stack([gp(pts) for gp in grads], axis=1)
        norms = np.sum(g * g, axis=1)
        norms[norms < 1e-12] = 1.0
        pts = pts - (v / norms)[:, None] * g  # Newton step toward B = 0
        pts = np.clip(pts, lo, hi)
    final = pts[np.abs(B(pts)) < np.quantile(np.abs(B(pts)), tol_quantile)]
    return final if len(final) else pts


def phase_portrait(
    problem: CCDS,
    B: Polynomial,
    controller: ControlLaw = None,
    counterexamples: Sequence[np.ndarray] = (),
    n_trajectories: int = 15,
    t_final: float = 10.0,
    n_level_points: int = 400,
    rng: Optional[np.random.Generator] = None,
) -> PhasePortraitData:
    """Assemble the Figure 3 data for a (candidate or final) barrier."""
    rng = rng or np.random.default_rng(0)
    sims = check_empirical_safety(
        problem, controller, n_trajectories=n_trajectories, t_final=t_final, rng=rng
    )
    lo, hi = problem.psi.bounding_box
    level = _level_set_sampling(B, lo, hi, n_level_points, 0.9, rng)
    grid = rng.uniform(lo, hi, size=(2000, problem.n_vars))
    grid_vals = np.column_stack([grid, B(grid)])
    cex = (
        np.vstack([np.atleast_2d(c) for c in counterexamples])
        if len(counterexamples)
        else np.zeros((0, problem.n_vars))
    )
    return PhasePortraitData(
        trajectories=[s.states for s in sims],
        level_set_points=level,
        counterexample_points=cex,
        barrier_grid=grid_vals,
        any_trajectory_unsafe=any(s.entered_unsafe for s in sims),
    )
