"""Closed-loop simulation and empirical safety checking.

Complements the formal certificates: integrates trajectories of the true
NN-controlled system (not the polynomial inclusion) and checks that none
enters the unsafe set — the sanity check behind Figure 3's trajectory
bundle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np
from scipy.integrate import solve_ivp

from repro.controllers import NNController
from repro.dynamics import CCDS
from repro.poly import Polynomial

ControlLaw = Union[NNController, Callable[[np.ndarray], np.ndarray], None]


@dataclass
class SimulationResult:
    """One integrated trajectory."""

    times: np.ndarray
    states: np.ndarray  # (len(times), n)
    exited_domain: bool
    entered_unsafe: bool

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1]


def _control_values(controller: ControlLaw, x: np.ndarray, n_inputs: int) -> np.ndarray:
    if controller is None or n_inputs == 0:
        return np.zeros(n_inputs)
    u = np.asarray(controller(x), dtype=float).reshape(-1)
    if u.shape != (n_inputs,):
        raise ValueError(f"controller returned shape {u.shape}, expected ({n_inputs},)")
    return u


def simulate(
    problem: CCDS,
    x0: np.ndarray,
    controller: ControlLaw = None,
    t_final: float = 10.0,
    max_step: float = 0.05,
) -> SimulationResult:
    """Integrate the closed loop from ``x0`` with RK45.

    Integration stops early when the trajectory leaves the domain ``Psi``
    (the safety definition only constrains behaviour while inside).
    """
    system = problem.system
    x0 = np.asarray(x0, dtype=float)
    if x0.shape != (system.n_vars,):
        raise ValueError(f"x0 must have shape ({system.n_vars},)")

    def rhs(_t: float, x: np.ndarray) -> np.ndarray:
        u = _control_values(controller, x, system.n_inputs)
        return system.rhs(x[None, :], u[None, :])[0]

    def exit_event(_t: float, x: np.ndarray) -> float:
        return float(problem.psi.violation(x)) - 1e-9

    exit_event.terminal = True  # type: ignore[attr-defined]
    exit_event.direction = 1.0  # type: ignore[attr-defined]

    sol = solve_ivp(
        rhs,
        (0.0, t_final),
        x0,
        max_step=max_step,
        events=[exit_event],
        rtol=1e-6,
        atol=1e-8,
        dense_output=False,
    )
    states = sol.y.T
    entered_unsafe = bool(np.any(problem.xi.contains(states)))
    exited = bool(sol.status == 1)
    return SimulationResult(
        times=sol.t, states=states, exited_domain=exited, entered_unsafe=entered_unsafe
    )


def check_empirical_safety(
    problem: CCDS,
    controller: ControlLaw = None,
    n_trajectories: int = 20,
    t_final: float = 10.0,
    rng: Optional[np.random.Generator] = None,
) -> List[SimulationResult]:
    """Simulate a bundle of trajectories from Theta; returns all results.

    A certificate claim is suspect if any trajectory here enters Xi — used
    in integration tests to cross-check the formal pipeline.
    """
    rng = rng or np.random.default_rng(0)
    starts = problem.theta.sample(n_trajectories, rng=rng)
    return [
        simulate(problem, x0, controller=controller, t_final=t_final)
        for x0 in starts
    ]


def barrier_along_trajectory(B: Polynomial, result: SimulationResult) -> np.ndarray:
    """Evaluate the certificate along a trajectory (should stay >= 0 while
    the trajectory stays in the domain)."""
    return B(result.states)
