"""Per-iteration IPM trace records and the convergence classifier.

The interior-point loop in :mod:`repro.sdp.ipm` performs dense Cholesky
factorizations and Schur assemblies every iteration, so recording a small
dict of scalars per iteration is noise-level overhead.  Records flow into
an :class:`IPMTrace` ring buffer (bounded memory even for runaway solves)
and, when telemetry is enabled, out through the trace sink as one
``sdp.ipm_trace`` event per solve.

Each record is a plain dict (JSON-ready) with the keys:

``iteration``
    1-based IPM iteration index.
``mu``
    Complementarity measure ``<X, Z> / n``.
``rel_gap`` / ``primal_residual`` / ``dual_residual``
    The normalized optimality measures the termination test uses.
``primal_objective`` / ``dual_objective``
    Objective values at the top of the iteration.
``step_primal`` / ``step_dual`` / ``sigma``
    Accepted step lengths and the Mehrotra centering parameter
    (``nan`` when the iteration broke before computing them).
``z_cholesky_ok`` / ``schur_cholesky_ok``
    Whether the Z-block and Schur-complement factorizations succeeded
    (a failed Schur Cholesky falls back to least-squares — the solve
    continues, but the flag marks the conditioning cliff).
``schur_diag_ratio``
    ``max|diag(M)| / min|diag(M)|`` of the Schur complement — a cheap
    conditioning proxy (the true condition number would cost an extra
    factorization per iteration).
``t``
    Seconds since the start of the iteration loop (wall-clock; excluded
    from determinism comparisons).
``t_z_factor`` / ``t_schur_assembly`` / ``t_schur_factor`` / ``t_line_search``
    Wall-clock seconds spent in each solver sub-phase of the iteration
    (``nan`` when the iteration broke before reaching the phase; also
    excluded from determinism comparisons).  These feed the "IPM
    sub-phases" section of the telemetry report CLI, attributing time
    *inside* the solve instead of to ``ipm.solve`` as a whole.

:func:`classify_convergence` reduces a record sequence to one of
``healthy`` / ``stalling`` / ``diverging`` / ``ill_conditioned`` (or
``unknown`` when there is nothing to classify), mirroring the CEGIS-level
``detect_stall`` heuristic one layer down the stack.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

#: default ring-buffer capacity; covers every non-pathological solve
#: (the IPM default ``max_iterations`` is 100, typical solves take < 40)
DEFAULT_TRACE_CAPACITY = 128

#: the closed vocabulary :func:`classify_convergence` emits
CONVERGENCE_CLASSES = (
    "healthy",
    "stalling",
    "diverging",
    "ill_conditioned",
    "unknown",
)

#: Schur diagonal ratio beyond which the system is treated as numerically
#: rank-deficient in double precision
ILL_CONDITIONED_DIAG_RATIO = 1e13

#: per-iteration geometric mu reduction slower than this counts as a stall
STALL_MU_DECAY = 0.85

#: both step lengths below this (over the trailing window) counts as a stall
STALL_STEP_FLOOR = 1e-2

#: mu growth factor over its running minimum that counts as divergence
DIVERGENCE_MU_GROWTH = 100.0


def make_record(
    iteration: int,
    mu: float,
    rel_gap: float,
    primal_residual: float,
    dual_residual: float,
    primal_objective: float,
    dual_objective: float,
    t: float,
) -> Dict[str, Any]:
    """A fresh iteration record with the late-stage fields defaulted.

    The IPM loop fills ``step_primal``/``step_dual``/``sigma`` and the
    factorization diagnostics as it reaches them; a record that still has
    the defaults broke out of the iteration early.
    """
    return {
        "iteration": int(iteration),
        "mu": float(mu),
        "rel_gap": float(rel_gap),
        "primal_residual": float(primal_residual),
        "dual_residual": float(dual_residual),
        "primal_objective": float(primal_objective),
        "dual_objective": float(dual_objective),
        "step_primal": float("nan"),
        "step_dual": float("nan"),
        "sigma": float("nan"),
        "z_cholesky_ok": True,
        "schur_cholesky_ok": True,
        "schur_diag_ratio": float("nan"),
        "t": float(t),
        "t_z_factor": float("nan"),
        "t_schur_assembly": float("nan"),
        "t_schur_factor": float("nan"),
        "t_line_search": float("nan"),
    }


class IPMTrace:
    """Bounded ring buffer of iteration records.

    Keeps the most recent ``capacity`` records and counts how many were
    evicted, so the trailing window (what the classifier needs) is always
    intact while memory stays O(capacity) no matter how long the solve
    runs.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.capacity = max(1, int(capacity))
        self._buf: deque = deque(maxlen=self.capacity)
        self.total = 0

    def add(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append ``record`` (evicting the oldest when full); returns it."""
        self._buf.append(record)
        self.total += 1
        return record

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return max(0, self.total - len(self._buf))

    def records(self) -> List[Dict[str, Any]]:
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


def _finite(values: Sequence[float]) -> List[float]:
    return [float(v) for v in values if isinstance(v, (int, float)) and math.isfinite(v)]


def classify_convergence(
    records: Sequence[Dict[str, Any]],
    tolerance: float = 1e-8,
) -> str:
    """Classify an IPM iteration-record sequence.

    The rules are checked in severity order — the first match wins:

    1. ``unknown`` — no records (solve failed before the first iteration).
    2. ``ill_conditioned`` — a Z or Schur Cholesky failed, the Schur
       diagonal ratio exceeded :data:`ILL_CONDITIONED_DIAG_RATIO`, or the
       final ``mu`` is non-finite/negative.
    3. ``healthy`` — the final record meets ``tolerance`` on gap and both
       residuals (the solve converged; nothing else matters).
    4. ``diverging`` — ``mu`` grew by :data:`DIVERGENCE_MU_GROWTH` over
       its running minimum without returning (the iterates are moving
       away from the central path).
    5. ``stalling`` — the trailing steps collapsed below
       :data:`STALL_STEP_FLOOR`, or the geometric per-iteration ``mu``
       decay over the trailing window is slower than
       :data:`STALL_MU_DECAY` while the gap is still above tolerance.
    6. ``healthy`` — otherwise (still making progress).
    """
    if not records:
        return "unknown"
    last = records[-1]

    # -- rule 2: numerical breakdown ------------------------------------
    for rec in records:
        if not rec.get("z_cholesky_ok", True) or not rec.get("schur_cholesky_ok", True):
            return "ill_conditioned"
    ratios = _finite([r.get("schur_diag_ratio", float("nan")) for r in records])
    if ratios and max(ratios) > ILL_CONDITIONED_DIAG_RATIO:
        return "ill_conditioned"
    last_mu = float(last.get("mu", float("nan")))
    if not math.isfinite(last_mu) or last_mu < 0:
        return "ill_conditioned"

    # -- rule 3: converged ---------------------------------------------
    if (
        float(last.get("rel_gap", math.inf)) < tolerance
        and float(last.get("primal_residual", math.inf)) < tolerance
        and float(last.get("dual_residual", math.inf)) < tolerance
    ):
        return "healthy"

    mus = _finite([r.get("mu", float("nan")) for r in records])

    # -- rule 4: diverging ---------------------------------------------
    if len(mus) >= 3:
        running_min = min(mus[:-1])
        if running_min > 0 and mus[-1] > DIVERGENCE_MU_GROWTH * running_min:
            return "diverging"

    # -- rule 5: stalling ----------------------------------------------
    window = min(3, len(records))
    tail = records[-window:]
    tail_steps = [
        max(float(r.get("step_primal", float("nan"))), float(r.get("step_dual", float("nan"))))
        for r in tail
    ]
    tail_steps = _finite(tail_steps)
    if tail_steps and all(s < STALL_STEP_FLOOR for s in tail_steps):
        return "stalling"
    if len(mus) >= 4:
        k = min(5, len(mus) - 1)
        ref = mus[-1 - k]
        if ref > 0 and mus[-1] > 0:
            per_iteration_decay = (mus[-1] / ref) ** (1.0 / k)
            if per_iteration_decay > STALL_MU_DECAY:
                return "stalling"

    return "healthy"


def summarize_trace(
    trace: Optional[IPMTrace],
    tolerance: float = 1e-8,
) -> Dict[str, Any]:
    """JSON-ready summary payload for the ``sdp.ipm_trace`` event."""
    if trace is None:
        return {"n_records": 0, "dropped": 0, "records": [], "convergence": "unknown"}
    records = trace.records()
    return {
        "n_records": len(records),
        "dropped": trace.dropped,
        "records": records,
        "convergence": classify_convergence(records, tolerance=tolerance),
    }
