"""Primal-dual interior-point method for block-diagonal SDPs.

Implements the HKM (Helmberg-Kojima-Monteiro) search direction with a
Mehrotra predictor-corrector, the classic algorithm behind CSDP/SDPA.  For
the problem

    min  <C, X>   s.t.  A(X) = b,  X PSD (block diagonal)

each iteration linearizes the perturbed complementarity ``X Z = sigma mu I``
as ``dX Z + X dZ = K`` and eliminates ``dX`` and ``dZ`` through the Schur
complement ``M`` with entries ``M_ij = tr(A_i X A_j Z^{-1})``.

Solver fast path
----------------
The per-iteration loop lives in :class:`_IPMState` so the serial driver
(:func:`solve_sdp`) and the lockstep batch driver (:func:`solve_sdp_batch`)
share the arithmetic verbatim.  Three layers of speedup sit on top of the
textbook loop:

* ``fast_kernels`` (default on, **bitwise identical** to the legacy scipy
  path — enforced by the identity suite): raw LAPACK calls
  (``dpotrf``/``dpotrs``/``dtrtrs``) instead of the scipy wrappers whose
  per-call overhead dominates on the small blocks SOS programs produce,
  one Cholesky of X and Z per iteration reused across both line-search
  calls (the iterates do not change in between), and the per-block Schur
  assembly collapsed into two reshaped GEMMs instead of ``m`` batched
  3-tensor matmuls.
* ``schur_mode="structured"`` (opt-in, *not* bitwise): assemble the Schur
  complement as an exact congruence ``M = Q Q^T`` with rows
  ``vec(L^{-1} A_i R)`` where ``X = R R^T`` and ``Z = L L^T`` — one
  triangular solve + two GEMMs per block, and ``M`` is exactly symmetric
  PSD by construction.
* warm starts (opt-in via the ``warm_start`` argument, *not* bitwise):
  start from a previous solve's primal/dual point pushed back into the
  interior; see :class:`WarmStart`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky, solve_triangular
from scipy.linalg import lapack as _lapack

from repro.resilience.faults import fault_point, fired
from repro.sdp.problem import PresolveInfo, SDPProblem
from repro.sdp.result import SDPResult, SDPStatus
from repro.sdp.svec import smat, smat_batch, svec, sym
from repro.sdp.trace import (
    DEFAULT_TRACE_CAPACITY,
    IPMTrace,
    classify_convergence,
    make_record,
)
from repro.telemetry import get_telemetry

logger = logging.getLogger(__name__)

#: accepted values for :attr:`InteriorPointOptions.schur_mode`
SCHUR_MODES = ("gemm", "structured")


@dataclass
class InteriorPointOptions:
    """Tuning knobs for :func:`solve_sdp`."""

    max_iterations: int = 100
    tolerance: float = 1e-8
    #: fraction-to-boundary factor keeping iterates strictly interior
    step_fraction: float = 0.98
    #: dual objective beyond which the primal is declared infeasible
    infeasibility_threshold: float = 1e8
    #: initial scaling floor for X and Z
    init_scale: float = 10.0
    #: log per-iteration progress at INFO instead of DEBUG
    verbose: bool = False
    #: wall-clock cap on the iteration loop; ``None`` disarms.  Checked
    #: once per IPM iteration, so one iteration may overshoot — the cap
    #: is cooperative, like the pipeline-level ``TimeBudget``
    time_limit_s: Optional[float] = None
    #: ring-buffer capacity for per-iteration trace records (the most
    #: recent window is kept; recording is always on — it is noise-level
    #: next to the per-iteration dense factorizations)
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    #: use raw LAPACK kernels, per-iteration factorization reuse and the
    #: single-GEMM Schur assembly.  Bitwise result-identical to the
    #: legacy scipy-wrapper path (``False``), which is kept as the
    #: benchmark reference and regression oracle.
    fast_kernels: bool = True
    #: Schur assembly strategy under ``fast_kernels``: ``"gemm"``
    #: (default; bitwise-identical to the legacy loop) or
    #: ``"structured"`` (factored congruence ``M = Q Q^T``; exactly
    #: symmetric but *not* bitwise — opt-in).  Ignored when
    #: ``fast_kernels`` is off.
    schur_mode: str = "gemm"
    #: interior push applied to a warm-start point, as a fraction of the
    #: cold-start scales ``xi``/``eta``: ``X0 = X_prev + push*xi*I``.
    #: Small values trust the previous iterate more (fewer iterations on
    #: nearby problems) at the cost of robustness on large moves; a
    #: retryable warm failure gets one cold re-solve (``cold_restart``)
    #: before the recovery ladder engages.
    warm_start_push: float = 1e-3


@dataclass
class WarmStart:
    """A primal/dual point to start the IPM from (see ``warm_start`` on
    :func:`solve_sdp`).

    ``y`` is indexed by the *original* (pre-presolve) constraint rows —
    exactly how :class:`SDPResult` reports it — and is restricted to the
    presolved row subset internally.  A warm start whose shapes do not
    match the problem (the SOS template changed size between CEGIS
    iterations) is silently dropped in favor of a cold start, counted in
    the ``sdp.warm_start.rejected`` metric.
    """

    X: List[np.ndarray]
    y: np.ndarray
    Z: List[np.ndarray]

    @classmethod
    def from_result(cls, result: SDPResult) -> Optional["WarmStart"]:
        """Capture a solve's final iterate; ``None`` when the result has
        no usable (finite, complete) primal-dual point."""
        if result.y is None or not result.X or not result.Z:
            return None
        if len(result.X) != len(result.Z):
            return None
        arrays = list(result.X) + list(result.Z) + [result.y]
        if not all(np.all(np.isfinite(a)) for a in arrays):
            return None
        return cls(
            X=[np.array(x, dtype=float) for x in result.X],
            y=np.array(result.y, dtype=float),
            Z=[np.array(z, dtype=float) for z in result.Z],
        )


# ----------------------------------------------------------------------
# raw LAPACK kernels (bitwise-identical to the scipy wrappers they
# replace — asserted by tests/test_perf_identity.py — minus the per-call
# python overhead that dominates on SOS-sized blocks)
# ----------------------------------------------------------------------
def _chol_lower_or_none(M: np.ndarray) -> Optional[np.ndarray]:
    """Lower Cholesky factor, or ``None`` when ``M`` is not PD / not
    finite (the legacy line search treated both as a zero step)."""
    if not np.all(np.isfinite(M)):
        return None
    c, info = _lapack.dpotrf(M, lower=1, clean=1)
    return c if info == 0 else None


def _potrf_upper(M: np.ndarray) -> np.ndarray:
    """Upper Cholesky factor a la ``cho_factor`` (raises on non-PD)."""
    c, info = _lapack.dpotrf(M, lower=0, clean=0)
    if info != 0:
        raise np.linalg.LinAlgError(
            f"matrix is not positive definite (dpotrf info={info})"
        )
    return c


def _potrs_upper(c: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve with an upper factor from :func:`_potrf_upper`."""
    x, info = _lapack.dpotrs(c, B, lower=0)
    if info != 0:
        raise np.linalg.LinAlgError(f"dpotrs failed (info={info})")
    return x


def _potrs_lower(c: np.ndarray, B: np.ndarray) -> np.ndarray:
    x, info = _lapack.dpotrs(c, B, lower=1)
    if info != 0:
        raise np.linalg.LinAlgError(f"dpotrs failed (info={info})")
    return x


def _solve_lower(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Forward substitution ``L x = B`` (lower triangular)."""
    x, info = _lapack.dtrtrs(L, B, lower=1)
    if info != 0:
        raise np.linalg.LinAlgError(f"dtrtrs failed (info={info})")
    return x


def _schur_regularization(M: np.ndarray, m: int) -> float:
    """Diagonal jitter for the Schur Cholesky.

    Healthy Schur complements (positive finite trace) get exactly the
    historical ``1e-14 * tr(M) / m`` value — same float operations, so
    default-on solves stay bitwise.  The guards fix the degenerate
    cases: ``m == 0`` and a zero/negative/non-finite trace used to
    produce a nan/zero jitter, turning a recoverable least-squares
    fallback into either a crash (``cho_factor`` raising ``ValueError``
    on nan) or a misleading ``schur_cholesky_ok=False``.
    """
    if m <= 0:
        return 0.0
    tr = float(np.trace(M))
    if np.isfinite(tr) and tr > 0.0:
        return 1e-14 * tr / m
    diag = np.abs(np.diag(M))
    fallback = (
        float(np.max(diag)) if diag.size and bool(np.all(np.isfinite(diag))) else 0.0
    )
    return 1e-14 * max(1.0, fallback)


class _BlockData:
    """Per-block dense constraint tensors used by the Schur assembly.

    Built once per solve from the (static) svec constraint rows; the
    layouts below are what make the per-iteration assembly pure BLAS-3:

    ``dense``
        ``(m, n, n)`` stack of the constraint matrices ``A_i``.
    ``dense_h``
        ``(n, m*n)`` horizontal concatenation ``[A_1 | A_2 | ...]`` —
        one GEMM ``X @ dense_h`` computes every ``X A_i`` product.
    """

    def __init__(self, n: int, svec_rows: np.ndarray):
        self.n = n
        self.svecs = svec_rows  # (m, s)
        m = svec_rows.shape[0]
        if m:
            self.dense = smat_batch(svec_rows, n)
            self.dense_h = np.ascontiguousarray(
                self.dense.transpose(1, 0, 2).reshape(n, m * n)
            )
        else:
            self.dense = np.zeros((0, n, n))
            self.dense_h = np.zeros((n, 0))
        self.norm = float(np.linalg.norm(svec_rows)) if m else 0.0


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def solve_sdp(
    problem: SDPProblem,
    options: Optional[InteriorPointOptions] = None,
    rung: str = "base",
    warm_start: Optional[WarmStart] = None,
) -> SDPResult:
    """Solve a block-diagonal standard-form SDP.

    The problem is presolved to full row rank first.  Returns an
    :class:`SDPResult`; callers that only need feasibility should check
    ``result.status.ok`` *and* run their own a-posteriori validation of the
    primal blocks (see :mod:`repro.sos.validate`).

    ``rung`` labels which recovery-ladder strategy this solve belongs to
    (``"base"`` for a plain first attempt); it is stamped on the result
    and the emitted trace so cross-run analysis can attribute iterations
    to ladder rungs.

    ``warm_start`` (optional) seeds the IPM from a previous solve's
    primal/dual point, pushed back into the interior by
    ``options.warm_start_push``.  Incompatible shapes fall back to a
    cold start; ``result.warm_started`` records whether the point was
    used.  Warm-started solves follow a different central path, so they
    are *not* bitwise-comparable to cold solves — callers wanting the
    bitwise guarantee must not pass a warm start.
    """
    opts = options or InteriorPointOptions()
    _check_options(opts)
    tel = get_telemetry()
    with tel.span(
        "sdp.solve",
        n_constraints=problem.n_constraints,
        n_blocks=len(problem.block_dims),
        total_dim=problem.total_dim,
        rung=rung,
    ) as span:
        if fired("sdp.nonconvergence"):
            result = _injected_nonconvergence(opts, rung)
            span.set_attr("status", result.status.value)
            return result
        reduced, info = problem.presolved()
        if info.inconsistent:
            span.set_attr("status", SDPStatus.INCONSISTENT.value)
            return SDPResult(
                status=SDPStatus.INCONSISTENT,
                message="equality constraints are inconsistent (presolve)",
                recovery_rung=rung,
            )
        try:
            fault_point("sdp.solve")
            warm = _restrict_warm(problem, warm_start, info, opts, tel)
            result = _solve_reduced(reduced, opts, warm=warm)
        except (np.linalg.LinAlgError, FloatingPointError) as exc:
            # dense linear algebra can still throw outside the guarded
            # factorizations (e.g. eigvalsh non-convergence); classify it
            # as a numerical failure instead of leaking a traceback
            tel.metrics.inc("sdp.status.exception")
            result = SDPResult(
                status=SDPStatus.NUMERICAL_ERROR,
                message=f"solver exception: {type(exc).__name__}: {exc}",
                convergence_class="ill_conditioned",
            )
        _finish_solve(problem, info, result, rung, tel)
        span.set_attrs(
            status=result.status.value,
            iterations=result.iterations,
            gap=result.gap,
            primal_residual=result.primal_residual,
            dual_residual=result.dual_residual,
            convergence=result.convergence_class,
        )
    return result


def solve_sdp_batch(
    problems: Sequence[SDPProblem],
    options: Optional[InteriorPointOptions] = None,
    rung: str = "base",
    warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
) -> List[SDPResult]:
    """Solve several independent SDPs as one lockstep block solve.

    This is the structure-exploiting way to solve the block-diagonal
    composition of ``problems`` (see
    :func:`repro.sdp.problem.compose_block_diagonal`): because the lanes
    share no blocks and no constraint rows, the joint Schur complement
    is block-diagonal and each lane's central path is independent — so
    the composed solve decomposes *exactly* into per-lane iterations,
    which this driver advances round-robin.  Each lane performs the same
    float operations in the same order as a standalone
    :func:`solve_sdp` call, so per-lane results are **bitwise
    identical** to serial solves; the win is shared Python/dispatch
    overhead and a single traversal for telemetry.

    ``warm_starts`` (optional, one entry per lane, ``None`` entries OK)
    applies per-lane warm starts with the same semantics as
    :func:`solve_sdp`.
    """
    opts = options or InteriorPointOptions()
    _check_options(opts)
    tel = get_telemetry()
    n_lanes = len(problems)
    warms: List[Optional[WarmStart]] = (
        list(warm_starts) if warm_starts is not None else [None] * n_lanes
    )
    if len(warms) != n_lanes:
        raise ValueError("warm_starts must have one entry per problem")
    results: List[Optional[SDPResult]] = [None] * n_lanes
    states: List[Optional[_IPMState]] = [None] * n_lanes
    infos: List[Optional[PresolveInfo]] = [None] * n_lanes
    with tel.span("sdp.solve_batch", n_lanes=n_lanes, rung=rung) as span:
        for i, problem in enumerate(problems):
            # per-lane setup mirrors the serial pre-loop path
            if fired("sdp.nonconvergence"):
                results[i] = _injected_nonconvergence(opts, rung)
                continue
            reduced, info = problem.presolved()
            infos[i] = info
            if info.inconsistent:
                results[i] = SDPResult(
                    status=SDPStatus.INCONSISTENT,
                    message="equality constraints are inconsistent (presolve)",
                    recovery_rung=rung,
                )
                continue
            try:
                fault_point("sdp.solve")
                if reduced.n_constraints == 0:
                    results[i] = _zero_constraint_result(reduced)
                    continue
                states[i] = _IPMState(
                    reduced,
                    opts,
                    warm=_restrict_warm(problem, warms[i], info, opts, tel),
                )
            except (np.linalg.LinAlgError, FloatingPointError) as exc:
                results[i] = _exception_result(exc, tel)
        # lockstep rounds: every live lane advances one IPM iteration per
        # round, in lane order, until all lanes terminate
        live = [i for i in range(n_lanes) if states[i] is not None]
        while live:
            still_live = []
            for i in live:
                st = states[i]
                try:
                    st.step()
                except (np.linalg.LinAlgError, FloatingPointError) as exc:
                    results[i] = _exception_result(exc, tel)
                    states[i] = None
                    continue
                if st.finished or st.iteration >= opts.max_iterations:
                    results[i] = st.finalize()
                    states[i] = None
                else:
                    still_live.append(i)
            live = still_live
        out: List[SDPResult] = []
        for i, problem in enumerate(problems):
            result = results[i]
            assert result is not None
            if infos[i] is not None and result.status is not SDPStatus.INCONSISTENT:
                _finish_solve(problem, infos[i], result, rung, tel)
            else:
                result.recovery_rung = rung
            out.append(result)
        span.set_attrs(
            statuses=",".join(r.status.value for r in out),
            iterations=sum(r.iterations for r in out),
        )
    return out


def _check_options(opts: InteriorPointOptions) -> None:
    if opts.schur_mode not in SCHUR_MODES:
        raise ValueError(
            f"schur_mode must be one of {SCHUR_MODES}, got {opts.schur_mode!r}"
        )


def _injected_nonconvergence(opts: InteriorPointOptions, rung: str) -> SDPResult:
    return SDPResult(
        status=SDPStatus.MAX_ITERATIONS,
        iterations=opts.max_iterations,
        message="injected non-convergence",
        recovery_rung=rung,
    )


def _exception_result(exc: BaseException, tel) -> SDPResult:
    tel.metrics.inc("sdp.status.exception")
    return SDPResult(
        status=SDPStatus.NUMERICAL_ERROR,
        message=f"solver exception: {type(exc).__name__}: {exc}",
        convergence_class="ill_conditioned",
    )


def _restrict_warm(
    problem: SDPProblem,
    warm: Optional[WarmStart],
    info: PresolveInfo,
    opts: InteriorPointOptions,
    tel,
) -> Optional[Tuple[List[np.ndarray], np.ndarray, List[np.ndarray]]]:
    """Validate a warm start against ``problem`` and restrict its dual
    vector to the presolved row subset; ``None`` on any mismatch."""
    if warm is None:
        return None
    dims = problem.block_dims
    ok = (
        len(warm.X) == len(dims)
        and len(warm.Z) == len(dims)
        and warm.y.shape == (problem.n_constraints,)
        and all(x.shape == (n, n) for x, n in zip(warm.X, dims))
        and all(z.shape == (n, n) for z, n in zip(warm.Z, dims))
    )
    if not ok:
        tel.metrics.inc("sdp.warm_start.rejected")
        return None
    kept = np.asarray(info.kept_rows, dtype=int)
    y_red = warm.y[kept] if info.dropped_rows else warm.y.copy()
    tel.metrics.inc("sdp.warm_start.used")
    return ([x for x in warm.X], y_red, [z for z in warm.Z])


def _finish_solve(
    problem: SDPProblem,
    info: PresolveInfo,
    result: SDPResult,
    rung: str,
    tel,
) -> None:
    """Shared post-solve bookkeeping: rung stamp, dual expansion back to
    the original constraint indexing, and telemetry emission."""
    result.recovery_rung = rung
    if result.y is not None and info.dropped_rows:
        y_full = np.zeros(problem.n_constraints)
        y_full[np.asarray(info.kept_rows, dtype=int)] = result.y
        result.y = y_full
    tel.status_update(
        ipm_convergence=result.convergence_class, recovery_rung=rung
    )
    if tel.enabled:
        tel.metrics.observe("sdp.iterations", result.iterations)
        tel.metrics.observe("sdp.final_gap", result.gap)
        tel.metrics.observe("sdp.primal_residual", result.primal_residual)
        tel.metrics.observe("sdp.dual_residual", result.dual_residual)
        tel.metrics.inc(f"sdp.status.{result.status.value}")
        tel.metrics.inc(f"sdp.convergence.{result.convergence_class}")
        tel.event(
            "sdp.ipm_trace",
            status=result.status.value,
            convergence=result.convergence_class,
            rung=rung,
            iterations=result.iterations,
            n_records=len(result.ipm_trace),
            dropped=result.ipm_trace_dropped,
            records=result.ipm_trace,
        )


def _zero_constraint_result(problem: SDPProblem) -> SDPResult:
    dims = problem.block_dims
    return SDPResult(
        status=SDPStatus.OPTIMAL,
        X=[np.zeros((n, n)) for n in dims],
        y=np.zeros(0),
        Z=[c.copy() for c in problem.C],
        primal_objective=0.0,
        dual_objective=0.0,
        gap=0.0,
        primal_residual=0.0,
        dual_residual=0.0,
        message="no constraints; returning X = 0",
        convergence_class="healthy",
    )


def _solve_reduced(
    problem: SDPProblem,
    opts: InteriorPointOptions,
    warm: Optional[Tuple[List[np.ndarray], np.ndarray, List[np.ndarray]]] = None,
) -> SDPResult:
    if problem.n_constraints == 0:
        return _zero_constraint_result(problem)
    state = _IPMState(problem, opts, warm=warm)
    while not state.finished and state.iteration < opts.max_iterations:
        state.step()
    return state.finalize()


# ----------------------------------------------------------------------
# the iteration engine
# ----------------------------------------------------------------------
class _IPMState:
    """One lane of the predictor-corrector iteration.

    Both drivers advance lanes exclusively through :meth:`step`, so a
    lane's float-operation sequence is identical whether it runs alone
    (:func:`solve_sdp`) or interleaved with others
    (:func:`solve_sdp_batch`) — the bitwise guarantee of the batched
    tri-condition solve rests on exactly this.

    The per-iteration work is split into named ``_phase`` methods so the
    sampling profiler attributes time to solver sub-phases instead of
    one opaque frame; the same boundaries feed the ``t_*`` sub-phase
    timers in the trace records (see :mod:`repro.sdp.trace`).
    """

    def __init__(
        self,
        problem: SDPProblem,
        opts: InteriorPointOptions,
        warm: Optional[
            Tuple[List[np.ndarray], np.ndarray, List[np.ndarray]]
        ] = None,
    ):
        self.opts = opts
        self.dims = problem.block_dims
        self.n_blocks = len(self.dims)
        self.m = problem.n_constraints
        self.b = problem.rhs()
        self.C = [c.copy() for c in problem.C]
        A_full = problem.constraint_matrix()
        self.blocks: List[_BlockData] = []
        start = 0
        for n in self.dims:
            s = n * (n + 1) // 2
            self.blocks.append(_BlockData(n, A_full[:, start : start + s]))
            start += s
        self.total_n = problem.total_dim
        self.norm_b = float(np.linalg.norm(self.b))
        self.norm_C = float(
            np.sqrt(sum(np.linalg.norm(c) ** 2 for c in self.C))
        )

        # -- initialization (CSDP-style magnitude heuristics)
        row_norms = np.linalg.norm(A_full, axis=1)
        xi = max(
            opts.init_scale,
            float(np.max(np.abs(self.b) / (1.0 + row_norms))) * max(self.dims)
            if self.m
            else 0.0,
        )
        eta = max(opts.init_scale, self.norm_C)
        self.warm_started = False
        if warm is not None:
            Xw, yw, Zw = warm
            push_x = opts.warm_start_push * xi
            push_z = opts.warm_start_push * eta
            self.X = [sym(Xw[k]) + push_x * np.eye(n) for k, n in enumerate(self.dims)]
            self.Z = [sym(Zw[k]) + push_z * np.eye(n) for k, n in enumerate(self.dims)]
            self.y = yw.copy()
            self.warm_started = True
        else:
            self.X = [xi * np.eye(n) for n in self.dims]
            self.Z = [eta * np.eye(n) for n in self.dims]
            self.y = np.zeros(self.m)

        self.status = SDPStatus.MAX_ITERATIONS
        self.message = ""
        self.iteration = 0
        self.rel_gap = np.inf
        self.prim_res = np.inf
        self.dual_res = np.inf
        self.t_start = time.perf_counter()
        self.trace = IPMTrace(capacity=opts.trace_capacity)
        self.finished = False
        self.tel = get_telemetry()
        # per-iteration scratch
        self.rp: Optional[np.ndarray] = None
        self.Rd: List[np.ndarray] = []
        self.mu = np.inf
        self.Zinv: List[np.ndarray] = []
        self._ls_X: Optional[List[Optional[np.ndarray]]] = None
        self._ls_Z: Optional[List[Optional[np.ndarray]]] = None

    # -- operators ------------------------------------------------------
    def _operator_A(self, Xb: Sequence[np.ndarray]) -> np.ndarray:
        out = np.zeros(self.m)
        for blk, Xk in zip(self.blocks, Xb):
            out += blk.svecs @ svec(Xk)
        return out

    def _operator_AT(self, yv: np.ndarray) -> List[np.ndarray]:
        return [smat(blk.svecs.T @ yv, blk.n) for blk in self.blocks]

    @staticmethod
    def _inner(Ab: Sequence[np.ndarray], Bb: Sequence[np.ndarray]) -> float:
        return float(sum(np.sum(a * bmat) for a, bmat in zip(Ab, Bb)))

    def _stop(self, status: SDPStatus, message: str) -> None:
        self.status = status
        self.message = message
        self.finished = True

    # -- sub-phases -----------------------------------------------------
    def _phase_residuals(self, rec: dict) -> bool:
        """Residuals, objectives and the termination tests; fills the
        head of the trace record.  Returns False when the solve ended."""
        opts = self.opts
        self.rp = self.b - self._operator_A(self.X)
        ATy = self._operator_AT(self.y)
        self.Rd = [
            self.C[k] - ATy[k] - self.Z[k] for k in range(self.n_blocks)
        ]
        mu = self._inner(self.X, self.Z) / self.total_n
        if fired("sdp.ipm.mu"):
            mu = float("nan")
        self.mu = mu
        pobj = self._inner(self.C, self.X)
        dobj = float(self.b @ self.y)
        self.rel_gap = self._inner(self.X, self.Z) / (
            1.0 + abs(pobj) + abs(dobj)
        )
        self.prim_res = float(np.linalg.norm(self.rp)) / (1.0 + self.norm_b)
        self.dual_res = float(
            np.sqrt(sum(np.linalg.norm(r) ** 2 for r in self.Rd))
        ) / (1.0 + self.norm_C)
        rec.update(
            mu=float(mu),
            rel_gap=float(self.rel_gap),
            primal_residual=float(self.prim_res),
            dual_residual=float(self.dual_res),
            primal_objective=float(pobj),
            dual_objective=float(dobj),
        )

        logger.log(
            logging.INFO if opts.verbose else logging.DEBUG,
            "ipm it=%3d mu=%9.2e gap=%9.2e pres=%9.2e dres=%9.2e pobj=%+.6e",
            self.iteration, mu, self.rel_gap, self.prim_res, self.dual_res,
            pobj,
        )

        if not np.isfinite(mu) or mu < 0:
            self._stop(SDPStatus.NUMERICAL_ERROR, "mu became invalid")
            return False
        if (
            self.rel_gap < opts.tolerance
            and self.prim_res < opts.tolerance
            and self.dual_res < opts.tolerance
        ):
            self._stop(SDPStatus.OPTIMAL, "converged")
            return False
        if (
            dobj > opts.infeasibility_threshold * (1.0 + self.norm_C)
            and self.dual_res < 1e-4
        ):
            self._stop(
                SDPStatus.PRIMAL_INFEASIBLE,
                "dual objective diverging; primal likely infeasible",
            )
            return False
        if (
            pobj < -opts.infeasibility_threshold * (1.0 + self.norm_b)
            and self.prim_res < 1e-4
        ):
            self._stop(
                SDPStatus.DUAL_INFEASIBLE,
                "primal objective diverging; dual likely infeasible",
            )
            return False
        return True

    def _phase_z_factor(self, rec: dict) -> bool:
        """Factor the Z blocks and form ``Z^{-1}``; False on breakdown."""
        opts = self.opts
        t0 = time.perf_counter()
        self.Zinv = []
        self._ls_Z = None
        structured = opts.fast_kernels and opts.schur_mode == "structured"
        if structured:
            ls_Z: List[Optional[np.ndarray]] = []
        failed = False
        for Zk in self.Z:
            try:
                fault_point("sdp.ipm.z_cholesky")
                if not opts.fast_kernels:
                    cf = cho_factor(Zk)
                elif structured:
                    # one lower factor, shared by Zinv, the structured
                    # Schur congruence and the line search
                    L = _chol_lower_or_none(Zk)
                    if L is None:
                        raise np.linalg.LinAlgError("Z not positive definite")
                else:
                    cf = _potrf_upper(Zk)
            except np.linalg.LinAlgError:
                failed = True
                break
            if not opts.fast_kernels:
                self.Zinv.append(cho_solve(cf, np.eye(Zk.shape[0])))
            elif structured:
                ls_Z.append(L)
                self.Zinv.append(_potrs_lower(L, np.eye(Zk.shape[0])))
            else:
                self.Zinv.append(_potrs_upper(cf, np.eye(Zk.shape[0])))
        rec["t_z_factor"] = time.perf_counter() - t0
        if failed:
            rec["z_cholesky_ok"] = False
            self._stop(
                SDPStatus.NUMERICAL_ERROR, "Z lost positive definiteness"
            )
            return False
        if structured:
            self._ls_Z = ls_Z
        return True

    def _phase_schur_assembly(self, rec: dict) -> Optional[np.ndarray]:
        """Assemble the Schur complement ``M_ij = tr(A_i X A_j Z^{-1})``."""
        opts = self.opts
        t0 = time.perf_counter()
        m = self.m
        M = np.zeros((m, m))
        structured = opts.fast_kernels and opts.schur_mode == "structured"
        if structured:
            self._ls_X = []
        for k, blk in enumerate(self.blocks):
            if blk.n == 0 or blk.svecs.size == 0:
                if structured:
                    self._ls_X.append(_chol_lower_or_none(self.X[k]))
                continue
            n = blk.n
            if not opts.fast_kernels:
                # legacy loop: per-block batched 3-tensor matmuls
                U = self.X[k][None, :, :] @ blk.dense @ self.Zinv[k][None, :, :]
                U = 0.5 * (U + np.transpose(U, (0, 2, 1)))
                SU = svec(U)  # (m, s)
                M += SU @ blk.svecs.T
                continue
            Rx = None
            if structured:
                Rx = _chol_lower_or_none(self.X[k])
                self._ls_X.append(Rx)
            if structured and Rx is not None and self._ls_Z is not None:
                # exact congruence: M += Q Q^T with rows vec(L^{-1} A_i R)
                Lz = self._ls_Z[k]
                W_h = _solve_lower(Lz, blk.dense_h)  # (n, m*n)
                W_v = np.ascontiguousarray(
                    W_h.reshape(n, m, n).transpose(1, 0, 2)
                ).reshape(m * n, n)
                Qm = (W_v @ Rx).reshape(m, n * n)
                M += Qm @ Qm.T
                continue
            # fast default: the legacy per-block computation collapsed
            # into two reshaped GEMMs (bitwise-identical — the broadcast
            # matmuls above dispatch to the same dgemm per slice)
            T = (self.X[k] @ blk.dense_h).reshape(n, m, n).transpose(1, 0, 2)
            U = (np.ascontiguousarray(T).reshape(m * n, n) @ self.Zinv[k]).reshape(
                m, n, n
            )
            U = 0.5 * (U + np.transpose(U, (0, 2, 1)))
            SU = svec(U)
            M += SU @ blk.svecs.T
        M = 0.5 * (M + M.T)
        abs_diag = np.abs(np.diag(M))
        max_diag = float(np.max(abs_diag)) if m else 0.0
        min_diag = float(np.min(abs_diag)) if m else 0.0
        rec["schur_diag_ratio"] = (
            max_diag / min_diag if min_diag > 0.0 else float("inf")
        )
        rec["t_schur_assembly"] = time.perf_counter() - t0
        if not np.all(np.isfinite(M)):
            # legacy behavior was a ValueError escaping the solver; a
            # clean numerical-error verdict keeps the recovery ladder in
            # play (see _schur_regularization)
            rec["schur_cholesky_ok"] = False
            self._stop(
                SDPStatus.NUMERICAL_ERROR, "Schur complement lost finiteness"
            )
            return None
        return M

    def _phase_schur_factor(self, M: np.ndarray, rec: dict):
        """Regularized Cholesky of ``M`` (least-squares fallback marker)."""
        t0 = time.perf_counter()
        jitter = _schur_regularization(M, self.m)
        try:
            if self.opts.fast_kernels:
                M_factor = _potrf_upper(M + jitter * np.eye(self.m))
            else:
                M_factor = cho_factor(M + jitter * np.eye(self.m))
        except np.linalg.LinAlgError:
            M_factor = None
            rec["schur_cholesky_ok"] = False
        rec["t_schur_factor"] = time.perf_counter() - t0
        return M_factor

    def _solve_M(self, M, M_factor, rhs_vec: np.ndarray) -> np.ndarray:
        if M_factor is not None:
            if self.opts.fast_kernels:
                return _potrs_upper(M_factor, rhs_vec)
            return cho_solve(M_factor, rhs_vec)
        return np.linalg.lstsq(M, rhs_vec, rcond=None)[0]

    def _direction(
        self, M, M_factor, Kterm: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], np.ndarray, List[np.ndarray]]:
        """Solve the Newton system for complementarity target ``Kterm``.

        ``dX Z + X dZ = Kterm - X Z`` together with the two feasibility
        equations; returns (dX, dy, dZ).
        """
        assert self.rp is not None
        rhs = self.b.copy()
        for k in range(self.n_blocks):
            rhs -= self.blocks[k].svecs @ svec(sym(Kterm[k] @ self.Zinv[k]))
            rhs += self.blocks[k].svecs @ svec(
                sym(self.X[k] @ self.Rd[k] @ self.Zinv[k])
            )
        dy = self._solve_M(M, M_factor, rhs)
        ATdy = self._operator_AT(dy)
        dZ = [self.Rd[k] - ATdy[k] for k in range(self.n_blocks)]
        dX = [
            sym(
                Kterm[k] @ self.Zinv[k]
                - self.X[k]
                - self.X[k] @ dZ[k] @ self.Zinv[k]
            )
            for k in range(self.n_blocks)
        ]
        return dX, dy, dZ

    # -- line search ----------------------------------------------------
    def _max_step_legacy(
        self, Mb: Sequence[np.ndarray], dMb: Sequence[np.ndarray]
    ) -> float:
        """Largest alpha with M + alpha dM still PSD (per-block minimum);
        the reference scipy-wrapper path (``fast_kernels=False``)."""
        alpha = np.inf
        for Mk, dMk in zip(Mb, dMb):
            if not np.all(np.isfinite(dMk)):
                return 0.0
            try:
                L = cholesky(Mk, lower=True)
            except (np.linalg.LinAlgError, ValueError):
                return 0.0
            W = solve_triangular(L, dMk, lower=True)
            W = solve_triangular(L, W.T, lower=True)
            lam_min = float(np.linalg.eigvalsh(sym(W))[0])
            if lam_min < 0:
                alpha = min(alpha, -1.0 / lam_min)
        return float(alpha)

    @staticmethod
    def _max_step_factored(
        factors: Sequence[Optional[np.ndarray]], dMb: Sequence[np.ndarray]
    ) -> float:
        """Fast-kernel line search against precomputed lower factors
        (``None`` factor == failed Cholesky == zero step, exactly the
        legacy semantics)."""
        alpha = np.inf
        for L, dMk in zip(factors, dMb):
            if not np.all(np.isfinite(dMk)):
                return 0.0
            if L is None:
                return 0.0
            W = _solve_lower(L, dMk)
            W = _solve_lower(L, W.T)
            lam_min = float(np.linalg.eigvalsh(sym(W))[0])
            if lam_min < 0:
                alpha = min(alpha, -1.0 / lam_min)
        return float(alpha)

    def _line_search_factors(self) -> None:
        """One Cholesky of X and Z per iteration, shared by both
        line-search calls (the iterates do not change in between — the
        legacy path factored them twice with identical results)."""
        if self._ls_X is None:
            self._ls_X = [_chol_lower_or_none(Xk) for Xk in self.X]
        if self._ls_Z is None:
            self._ls_Z = [_chol_lower_or_none(Zk) for Zk in self.Z]

    def _max_step(
        self,
        which: str,
        Mb: Sequence[np.ndarray],
        dMb: Sequence[np.ndarray],
    ) -> float:
        if not self.opts.fast_kernels:
            return self._max_step_legacy(Mb, dMb)
        self._line_search_factors()
        factors = self._ls_X if which == "X" else self._ls_Z
        assert factors is not None
        return self._max_step_factored(factors, dMb)

    # -- one iteration --------------------------------------------------
    def step(self) -> None:
        """Advance one predictor-corrector iteration (or terminate)."""
        opts = self.opts
        self.iteration += 1
        # heartbeat: StatusWriter throttles, so this is one perf_counter
        # read per iteration on runs with a status file, a no-op otherwise
        self.tel.status_update(ipm_iteration=self.iteration)
        if (
            opts.time_limit_s is not None
            and time.perf_counter() - self.t_start > opts.time_limit_s
        ):
            self._stop(
                SDPStatus.MAX_ITERATIONS,
                f"time limit of {opts.time_limit_s:.3f}s reached",
            )
            return
        # a partially-filled record still lands in the trace on every
        # stop path below, so the classifier sees how the solve ended
        rec = self.trace.add(make_record(
            self.iteration, np.nan, np.nan, np.nan, np.nan, np.nan, np.nan,
            t=0.0,
        ))
        # per-iteration scratch reset (line-search factor cache)
        self._ls_X = None
        self._ls_Z = None
        try:
            if not self._phase_residuals(rec):
                return
            if not self._phase_z_factor(rec):
                return
            M = self._phase_schur_assembly(rec)
            if M is None:
                return
            M_factor = self._phase_schur_factor(M, rec)

            # predictor (affine scaling)
            K_aff = [np.zeros((n, n)) for n in self.dims]
            dX_aff, dy_aff, dZ_aff = self._direction(M, M_factor, K_aff)
            if fired("sdp.ipm.direction"):
                dy_aff = np.full_like(dy_aff, np.nan)
            if not all(
                np.all(np.isfinite(d)) for d in dX_aff + dZ_aff
            ) or not np.all(np.isfinite(dy_aff)):
                self._stop(
                    SDPStatus.NUMERICAL_ERROR, "non-finite search direction"
                )
                return
            t_ls = time.perf_counter()
            ap_aff = min(
                1.0, opts.step_fraction * self._max_step("X", self.X, dX_aff)
            )
            ad_aff = min(
                1.0, opts.step_fraction * self._max_step("Z", self.Z, dZ_aff)
            )
            rec["t_line_search"] = time.perf_counter() - t_ls
            gap_now = self._inner(self.X, self.Z)
            gap_aff = self._inner(
                [self.X[k] + ap_aff * dX_aff[k] for k in range(self.n_blocks)],
                [self.Z[k] + ad_aff * dZ_aff[k] for k in range(self.n_blocks)],
            )
            gap_aff = max(gap_aff, 0.0)
            sigma = min(1.0, max((gap_aff / max(gap_now, 1e-300)) ** 3, 1e-8))
            rec["sigma"] = float(sigma)

            # corrector
            K_corr = [
                sigma * self.mu * np.eye(self.dims[k])
                - dX_aff[k] @ dZ_aff[k]
                for k in range(self.n_blocks)
            ]
            dX, dy, dZ = self._direction(M, M_factor, K_corr)
            if not all(
                np.all(np.isfinite(d)) for d in dX + dZ
            ) or not np.all(np.isfinite(dy)):
                self._stop(
                    SDPStatus.NUMERICAL_ERROR, "non-finite search direction"
                )
                return
            t_ls = time.perf_counter()
            ap = min(1.0, opts.step_fraction * self._max_step("X", self.X, dX))
            ad = min(1.0, opts.step_fraction * self._max_step("Z", self.Z, dZ))
            rec["t_line_search"] += time.perf_counter() - t_ls
            if fired("sdp.ipm.step"):
                ap = ad = 0.0
            rec["step_primal"] = float(ap)
            rec["step_dual"] = float(ad)
            if ap <= 1e-12 and ad <= 1e-12:
                self._stop(
                    SDPStatus.NUMERICAL_ERROR,
                    "step lengths collapsed (stalled)",
                )
                return

            self.X = [
                self.X[k] + ap * dX[k] for k in range(self.n_blocks)
            ]
            self.y = self.y + ad * dy
            self.Z = [
                self.Z[k] + ad * dZ[k] for k in range(self.n_blocks)
            ]
        finally:
            rec["t"] = time.perf_counter() - self.t_start

    def finalize(self) -> SDPResult:
        pobj = self._inner(self.C, self.X)
        dobj = float(self.b @ self.y)
        status, message = self.status, self.message
        # Loose-tolerance acceptance: if we stopped on iterations/stall but
        # the iterate is essentially optimal, report it as such.
        if status in (SDPStatus.MAX_ITERATIONS, SDPStatus.NUMERICAL_ERROR):
            tol = self.opts.tolerance
            if (
                self.rel_gap < 1e5 * tol
                and self.prim_res < 1e5 * tol
                and self.dual_res < 1e5 * tol
            ):
                status = SDPStatus.OPTIMAL
                message = (message + "; accepted at loose tolerance").strip("; ")
        return SDPResult(
            status=status,
            X=self.X,
            y=self.y,
            Z=self.Z,
            primal_objective=pobj,
            dual_objective=dobj,
            gap=self.rel_gap,
            primal_residual=self.prim_res,
            dual_residual=self.dual_res,
            iterations=self.iteration,
            message=message,
            convergence_class=classify_convergence(
                self.trace.records(), tolerance=self.opts.tolerance
            ),
            ipm_trace=self.trace.records(),
            ipm_trace_dropped=self.trace.dropped,
            warm_started=self.warm_started,
        )
