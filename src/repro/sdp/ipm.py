"""Primal-dual interior-point method for block-diagonal SDPs.

Implements the HKM (Helmberg-Kojima-Monteiro) search direction with a
Mehrotra predictor-corrector, the classic algorithm behind CSDP/SDPA.  For
the problem

    min  <C, X>   s.t.  A(X) = b,  X PSD (block diagonal)

each iteration linearizes the perturbed complementarity ``X Z = sigma mu I``
as ``dX Z + X dZ = K`` and eliminates ``dX`` and ``dZ`` through the Schur
complement ``M`` with entries ``M_ij = tr(A_i X A_j Z^{-1})``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, cholesky, solve_triangular

from repro.resilience.faults import fault_point, fired
from repro.sdp.problem import SDPProblem
from repro.sdp.result import SDPResult, SDPStatus
from repro.sdp.svec import smat, svec, sym
from repro.sdp.trace import (
    DEFAULT_TRACE_CAPACITY,
    IPMTrace,
    classify_convergence,
    make_record,
)
from repro.telemetry import get_telemetry

logger = logging.getLogger(__name__)


@dataclass
class InteriorPointOptions:
    """Tuning knobs for :func:`solve_sdp`."""

    max_iterations: int = 100
    tolerance: float = 1e-8
    #: fraction-to-boundary factor keeping iterates strictly interior
    step_fraction: float = 0.98
    #: dual objective beyond which the primal is declared infeasible
    infeasibility_threshold: float = 1e8
    #: initial scaling floor for X and Z
    init_scale: float = 10.0
    #: log per-iteration progress at INFO instead of DEBUG
    verbose: bool = False
    #: wall-clock cap on the iteration loop; ``None`` disarms.  Checked
    #: once per IPM iteration, so one iteration may overshoot — the cap
    #: is cooperative, like the pipeline-level ``TimeBudget``
    time_limit_s: Optional[float] = None
    #: ring-buffer capacity for per-iteration trace records (the most
    #: recent window is kept; recording is always on — it is noise-level
    #: next to the per-iteration dense factorizations)
    trace_capacity: int = DEFAULT_TRACE_CAPACITY


class _BlockData:
    """Per-block dense constraint tensors used by the Schur assembly."""

    def __init__(self, n: int, svec_rows: np.ndarray):
        self.n = n
        self.svecs = svec_rows  # (m, s)
        m = svec_rows.shape[0]
        self.dense = np.stack([smat(svec_rows[i], n) for i in range(m)]) if m else (
            np.zeros((0, n, n))
        )
        self.norm = float(np.linalg.norm(svec_rows)) if m else 0.0


def solve_sdp(
    problem: SDPProblem,
    options: Optional[InteriorPointOptions] = None,
    rung: str = "base",
) -> SDPResult:
    """Solve a block-diagonal standard-form SDP.

    The problem is presolved to full row rank first.  Returns an
    :class:`SDPResult`; callers that only need feasibility should check
    ``result.status.ok`` *and* run their own a-posteriori validation of the
    primal blocks (see :mod:`repro.sos.validate`).

    ``rung`` labels which recovery-ladder strategy this solve belongs to
    (``"base"`` for a plain first attempt); it is stamped on the result
    and the emitted trace so cross-run analysis can attribute iterations
    to ladder rungs.
    """
    opts = options or InteriorPointOptions()
    tel = get_telemetry()
    with tel.span(
        "sdp.solve",
        n_constraints=problem.n_constraints,
        n_blocks=len(problem.block_dims),
        total_dim=problem.total_dim,
        rung=rung,
    ) as span:
        if fired("sdp.nonconvergence"):
            result = SDPResult(
                status=SDPStatus.MAX_ITERATIONS,
                iterations=opts.max_iterations,
                message="injected non-convergence",
                recovery_rung=rung,
            )
            span.set_attr("status", result.status.value)
            return result
        reduced, info = problem.presolved()
        if info.inconsistent:
            span.set_attr("status", SDPStatus.INCONSISTENT.value)
            return SDPResult(
                status=SDPStatus.INCONSISTENT,
                message="equality constraints are inconsistent (presolve)",
                recovery_rung=rung,
            )
        try:
            fault_point("sdp.solve")
            result = _solve_reduced(reduced, opts)
        except (np.linalg.LinAlgError, FloatingPointError) as exc:
            # dense linear algebra can still throw outside the guarded
            # factorizations (e.g. eigvalsh non-convergence); classify it
            # as a numerical failure instead of leaking a traceback
            tel.metrics.inc("sdp.status.exception")
            result = SDPResult(
                status=SDPStatus.NUMERICAL_ERROR,
                message=f"solver exception: {type(exc).__name__}: {exc}",
                convergence_class="ill_conditioned",
            )
        result.recovery_rung = rung
        # Expand dual variables back to the original constraint indexing.
        if result.y is not None and info.dropped_rows:
            y_full = np.zeros(problem.n_constraints)
            y_full[np.asarray(info.kept_rows, dtype=int)] = result.y
            result.y = y_full
        span.set_attrs(
            status=result.status.value,
            iterations=result.iterations,
            gap=result.gap,
            primal_residual=result.primal_residual,
            dual_residual=result.dual_residual,
            convergence=result.convergence_class,
        )
        tel.status_update(
            ipm_convergence=result.convergence_class, recovery_rung=rung
        )
        if tel.enabled:
            tel.metrics.observe("sdp.iterations", result.iterations)
            tel.metrics.observe("sdp.final_gap", result.gap)
            tel.metrics.observe("sdp.primal_residual", result.primal_residual)
            tel.metrics.observe("sdp.dual_residual", result.dual_residual)
            tel.metrics.inc(f"sdp.status.{result.status.value}")
            tel.metrics.inc(f"sdp.convergence.{result.convergence_class}")
            tel.event(
                "sdp.ipm_trace",
                status=result.status.value,
                convergence=result.convergence_class,
                rung=rung,
                iterations=result.iterations,
                n_records=len(result.ipm_trace),
                dropped=result.ipm_trace_dropped,
                records=result.ipm_trace,
            )
    return result


def _solve_reduced(problem: SDPProblem, opts: InteriorPointOptions) -> SDPResult:
    dims = problem.block_dims
    m = problem.n_constraints
    b = problem.rhs()
    C = [c.copy() for c in problem.C]
    A_full = problem.constraint_matrix()
    blocks: List[_BlockData] = []
    start = 0
    for n in dims:
        s = n * (n + 1) // 2
        blocks.append(_BlockData(n, A_full[:, start : start + s]))
        start += s

    if m == 0:
        X = [np.zeros((n, n)) for n in dims]
        return SDPResult(
            status=SDPStatus.OPTIMAL,
            X=X,
            y=np.zeros(0),
            Z=C,
            primal_objective=0.0,
            dual_objective=0.0,
            gap=0.0,
            primal_residual=0.0,
            dual_residual=0.0,
            message="no constraints; returning X = 0",
            convergence_class="healthy",
        )

    total_n = problem.total_dim
    norm_b = float(np.linalg.norm(b))
    norm_C = float(np.sqrt(sum(np.linalg.norm(c) ** 2 for c in C)))

    # -- initialization (CSDP-style magnitude heuristics)
    row_norms = np.linalg.norm(A_full, axis=1)
    xi = max(
        opts.init_scale,
        float(np.max(np.abs(b) / (1.0 + row_norms))) * max(dims) if m else 0.0,
    )
    X = [xi * np.eye(n) for n in dims]
    eta = max(opts.init_scale, norm_C)
    Z = [eta * np.eye(n) for n in dims]
    y = np.zeros(m)

    def operator_A(Xb: Sequence[np.ndarray]) -> np.ndarray:
        out = np.zeros(m)
        for blk, Xk in zip(blocks, Xb):
            out += blk.svecs @ svec(Xk)
        return out

    def operator_AT(yv: np.ndarray) -> List[np.ndarray]:
        return [smat(blk.svecs.T @ yv, blk.n) for blk in blocks]

    def inner(Ab: Sequence[np.ndarray], Bb: Sequence[np.ndarray]) -> float:
        return float(sum(np.sum(a * bmat) for a, bmat in zip(Ab, Bb)))

    def max_step(Mb: Sequence[np.ndarray], dMb: Sequence[np.ndarray]) -> float:
        """Largest alpha with M + alpha dM still PSD (per-block minimum)."""
        alpha = np.inf
        for Mk, dMk in zip(Mb, dMb):
            if not np.all(np.isfinite(dMk)):
                return 0.0
            try:
                L = cholesky(Mk, lower=True)
            except (np.linalg.LinAlgError, ValueError):
                return 0.0
            W = solve_triangular(L, dMk, lower=True)
            W = solve_triangular(L, W.T, lower=True)
            lam_min = float(np.linalg.eigvalsh(sym(W))[0])
            if lam_min < 0:
                alpha = min(alpha, -1.0 / lam_min)
        return float(alpha)

    status = SDPStatus.MAX_ITERATIONS
    message = ""
    iteration = 0
    rel_gap = np.inf
    prim_res = np.inf
    dual_res = np.inf
    t_start = time.perf_counter()
    trace = IPMTrace(capacity=opts.trace_capacity)
    rec = None
    tel = get_telemetry()

    for iteration in range(1, opts.max_iterations + 1):
        # heartbeat: StatusWriter throttles, so this is one perf_counter
        # read per iteration on runs with a status file, a no-op otherwise
        tel.status_update(ipm_iteration=iteration)
        if (
            opts.time_limit_s is not None
            and time.perf_counter() - t_start > opts.time_limit_s
        ):
            status = SDPStatus.MAX_ITERATIONS
            message = f"time limit of {opts.time_limit_s:.3f}s reached"
            break
        # residuals
        rp = b - operator_A(X)
        ATy = operator_AT(y)
        Rd = [C[k] - ATy[k] - Z[k] for k in range(len(dims))]
        mu = inner(X, Z) / total_n
        if fired("sdp.ipm.mu"):
            mu = float("nan")
        pobj = inner(C, X)
        dobj = float(b @ y)
        rel_gap = inner(X, Z) / (1.0 + abs(pobj) + abs(dobj))
        prim_res = float(np.linalg.norm(rp)) / (1.0 + norm_b)
        dual_res = float(
            np.sqrt(sum(np.linalg.norm(r) ** 2 for r in Rd))
        ) / (1.0 + norm_C)
        # a partially-filled record still lands in the trace on every
        # break path below, so the classifier sees how the solve ended
        rec = trace.add(make_record(
            iteration, mu, rel_gap, prim_res, dual_res, pobj, dobj,
            t=time.perf_counter() - t_start,
        ))

        logger.log(
            logging.INFO if opts.verbose else logging.DEBUG,
            "ipm it=%3d mu=%9.2e gap=%9.2e pres=%9.2e dres=%9.2e pobj=%+.6e",
            iteration, mu, rel_gap, prim_res, dual_res, pobj,
        )

        if not np.isfinite(mu) or mu < 0:
            status, message = SDPStatus.NUMERICAL_ERROR, "mu became invalid"
            break
        if rel_gap < opts.tolerance and prim_res < opts.tolerance and dual_res < opts.tolerance:
            status, message = SDPStatus.OPTIMAL, "converged"
            break
        if dobj > opts.infeasibility_threshold * (1.0 + norm_C) and dual_res < 1e-4:
            status = SDPStatus.PRIMAL_INFEASIBLE
            message = "dual objective diverging; primal likely infeasible"
            break
        if pobj < -opts.infeasibility_threshold * (1.0 + norm_b) and prim_res < 1e-4:
            status = SDPStatus.DUAL_INFEASIBLE
            message = "primal objective diverging; dual likely infeasible"
            break

        # factor Z blocks
        Zinv: List[np.ndarray] = []
        failed = False
        for Zk in Z:
            try:
                fault_point("sdp.ipm.z_cholesky")
                cf = cho_factor(Zk)
            except np.linalg.LinAlgError:
                failed = True
                break
            Zinv.append(cho_solve(cf, np.eye(Zk.shape[0])))
        if failed:
            status, message = SDPStatus.NUMERICAL_ERROR, "Z lost positive definiteness"
            rec["z_cholesky_ok"] = False
            break

        # Schur complement M_ij = sum_k tr(A_i X A_j Zinv)
        M = np.zeros((m, m))
        for k, blk in enumerate(blocks):
            if blk.n == 0 or blk.svecs.size == 0:
                continue
            U = X[k][None, :, :] @ blk.dense @ Zinv[k][None, :, :]
            U = 0.5 * (U + np.transpose(U, (0, 2, 1)))
            SU = svec(U)  # (m, s)
            M += SU @ blk.svecs.T
        M = 0.5 * (M + M.T)
        abs_diag = np.abs(np.diag(M))
        max_diag = float(np.max(abs_diag)) if m else 0.0
        min_diag = float(np.min(abs_diag)) if m else 0.0
        rec["schur_diag_ratio"] = (
            max_diag / min_diag if min_diag > 0.0 else float("inf")
        )

        try:
            M_factor = cho_factor(M + 1e-14 * np.trace(M) / m * np.eye(m))
        except np.linalg.LinAlgError:
            M_factor = None
            rec["schur_cholesky_ok"] = False

        def solve_M(rhs_vec: np.ndarray) -> np.ndarray:
            if M_factor is not None:
                return cho_solve(M_factor, rhs_vec)
            return np.linalg.lstsq(M, rhs_vec, rcond=None)[0]

        def direction(
            Kterm: List[np.ndarray],
        ) -> Tuple[List[np.ndarray], np.ndarray, List[np.ndarray]]:
            """Solve the Newton system for complementarity target ``Kterm``.

            ``dX Z + X dZ = Kterm - X Z`` together with the two feasibility
            equations; returns (dX, dy, dZ).
            """
            rhs = b.copy()
            for k in range(len(dims)):
                rhs -= blocks[k].svecs @ svec(sym(Kterm[k] @ Zinv[k]))
                rhs += blocks[k].svecs @ svec(sym(X[k] @ Rd[k] @ Zinv[k]))
            dy = solve_M(rhs)
            ATdy = operator_AT(dy)
            dZ = [Rd[k] - ATdy[k] for k in range(len(dims))]
            dX = [
                sym(Kterm[k] @ Zinv[k] - X[k] - X[k] @ dZ[k] @ Zinv[k])
                for k in range(len(dims))
            ]
            return dX, dy, dZ

        # predictor (affine scaling)
        K_aff = [np.zeros((n, n)) for n in dims]
        dX_aff, dy_aff, dZ_aff = direction(K_aff)
        if fired("sdp.ipm.direction"):
            dy_aff = np.full_like(dy_aff, np.nan)
        if not all(
            np.all(np.isfinite(d)) for d in dX_aff + dZ_aff
        ) or not np.all(np.isfinite(dy_aff)):
            status, message = SDPStatus.NUMERICAL_ERROR, "non-finite search direction"
            break
        ap_aff = min(1.0, opts.step_fraction * max_step(X, dX_aff))
        ad_aff = min(1.0, opts.step_fraction * max_step(Z, dZ_aff))
        gap_now = inner(X, Z)
        gap_aff = inner(
            [X[k] + ap_aff * dX_aff[k] for k in range(len(dims))],
            [Z[k] + ad_aff * dZ_aff[k] for k in range(len(dims))],
        )
        gap_aff = max(gap_aff, 0.0)
        sigma = min(1.0, max((gap_aff / max(gap_now, 1e-300)) ** 3, 1e-8))
        rec["sigma"] = float(sigma)

        # corrector
        K_corr = [
            sigma * mu * np.eye(dims[k]) - dX_aff[k] @ dZ_aff[k]
            for k in range(len(dims))
        ]
        dX, dy, dZ = direction(K_corr)
        if not all(
            np.all(np.isfinite(d)) for d in dX + dZ
        ) or not np.all(np.isfinite(dy)):
            status, message = SDPStatus.NUMERICAL_ERROR, "non-finite search direction"
            break
        ap = min(1.0, opts.step_fraction * max_step(X, dX))
        ad = min(1.0, opts.step_fraction * max_step(Z, dZ))
        if fired("sdp.ipm.step"):
            ap = ad = 0.0
        rec["step_primal"] = float(ap)
        rec["step_dual"] = float(ad)
        if ap <= 1e-12 and ad <= 1e-12:
            status, message = (
                SDPStatus.NUMERICAL_ERROR,
                "step lengths collapsed (stalled)",
            )
            break

        X = [X[k] + ap * dX[k] for k in range(len(dims))]
        y = y + ad * dy
        Z = [Z[k] + ad * dZ[k] for k in range(len(dims))]

    pobj = inner(C, X)
    dobj = float(b @ y)
    # Loose-tolerance acceptance: if we stopped on iterations/stall but the
    # iterate is essentially optimal, report it as such.
    if status in (SDPStatus.MAX_ITERATIONS, SDPStatus.NUMERICAL_ERROR):
        if rel_gap < 1e5 * opts.tolerance and prim_res < 1e5 * opts.tolerance and (
            dual_res < 1e5 * opts.tolerance
        ):
            status = SDPStatus.OPTIMAL
            message = (message + "; accepted at loose tolerance").strip("; ")

    return SDPResult(
        status=status,
        X=X,
        y=y,
        Z=Z,
        primal_objective=pobj,
        dual_objective=dobj,
        gap=rel_gap,
        primal_residual=prim_res,
        dual_residual=dual_res,
        iterations=iteration,
        message=message,
        convergence_class=classify_convergence(
            trace.records(), tolerance=opts.tolerance
        ),
        ipm_trace=trace.records(),
        ipm_trace_dropped=trace.dropped,
    )
