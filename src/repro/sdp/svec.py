"""Symmetric vectorization (svec) utilities.

``svec`` maps a symmetric ``n x n`` matrix to a vector of length
``n (n + 1) / 2`` with off-diagonal entries scaled by ``sqrt(2)`` so that the
Frobenius inner product becomes an ordinary dot product:

    <A, B> = svec(A) . svec(B).

All constraint data inside the interior-point solver lives in svec
coordinates, which turns Schur-complement assembly into dense matmuls.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

_SQRT2 = float(np.sqrt(2.0))


def svec_dim(n: int) -> int:
    """Length of the svec of an ``n x n`` symmetric matrix."""
    return n * (n + 1) // 2


@lru_cache(maxsize=None)
def _triu_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    return np.triu_indices(n)


@lru_cache(maxsize=None)
def _svec_scale(n: int) -> np.ndarray:
    rows, cols = _triu_indices(n)
    scale = np.where(rows == cols, 1.0, _SQRT2)
    return scale


def svec(mat: np.ndarray) -> np.ndarray:
    """Symmetric vectorization of one matrix ``(n, n)`` or a batch ``(m, n, n)``."""
    mat = np.asarray(mat, dtype=float)
    batched = mat.ndim == 3
    if not batched:
        mat = mat[None]
    n = mat.shape[-1]
    if mat.shape[-2] != n:
        raise ValueError("svec expects square matrices")
    rows, cols = _triu_indices(n)
    out = mat[:, rows, cols] * _svec_scale(n)
    return out if batched else out[0]


def smat(vec: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`svec`: rebuild the symmetric matrix."""
    vec = np.asarray(vec, dtype=float)
    if vec.shape != (svec_dim(n),):
        raise ValueError(
            f"svec vector for n={n} must have length {svec_dim(n)}, got {vec.shape}"
        )
    rows, cols = _triu_indices(n)
    mat = np.zeros((n, n))
    vals = vec / _svec_scale(n)
    mat[rows, cols] = vals
    mat[cols, rows] = vals
    return mat


def smat_batch(vecs: np.ndarray, n: int) -> np.ndarray:
    """Batched :func:`smat`: rebuild ``(m, n, n)`` matrices from ``(m, s)``.

    One fancy-index scatter instead of ``m`` python-level calls; each row
    produces bitwise the same matrix as ``smat(row, n)`` (same division by
    the same scale vector, same placements).
    """
    vecs = np.asarray(vecs, dtype=float)
    if vecs.ndim != 2 or vecs.shape[1] != svec_dim(n):
        raise ValueError(
            f"svec batch for n={n} must have shape (m, {svec_dim(n)}), "
            f"got {vecs.shape}"
        )
    rows, cols = _triu_indices(n)
    vals = vecs / _svec_scale(n)
    out = np.zeros((vecs.shape[0], n, n))
    out[:, rows, cols] = vals
    out[:, cols, rows] = vals
    return out


def sym(mat: np.ndarray) -> np.ndarray:
    """Symmetric part ``(M + M^T) / 2``."""
    return 0.5 * (mat + mat.T)
