"""Semidefinite programming from scratch.

A primal-dual interior-point solver for block-diagonal standard-form SDPs

    min  sum_k <C_k, X_k>
    s.t. sum_k <A_{i,k}, X_k> = b_i   (i = 1..m)
         X_k >= 0 (PSD),

implementing the HKM search direction with a Mehrotra predictor-corrector,
the same algorithm family as SDPA/CSDP that backs SOSTOOLS in the paper.
This is the engine behind every LMI feasibility test in
:mod:`repro.sos` and :mod:`repro.verifier`.
"""

from repro.sdp.svec import smat, svec, svec_dim
from repro.sdp.problem import SDPProblem
from repro.sdp.result import SDPResult, SDPStatus
from repro.sdp.trace import IPMTrace, classify_convergence
from repro.sdp.ipm import InteriorPointOptions, solve_sdp
from repro.sdp.lmi import LMIResult, solve_lmi

__all__ = [
    "SDPProblem",
    "SDPResult",
    "SDPStatus",
    "IPMTrace",
    "classify_convergence",
    "InteriorPointOptions",
    "solve_sdp",
    "solve_lmi",
    "LMIResult",
    "svec",
    "smat",
    "svec_dim",
]
