"""Semidefinite programming from scratch.

A primal-dual interior-point solver for block-diagonal standard-form SDPs

    min  sum_k <C_k, X_k>
    s.t. sum_k <A_{i,k}, X_k> = b_i   (i = 1..m)
         X_k >= 0 (PSD),

implementing the HKM search direction with a Mehrotra predictor-corrector,
the same algorithm family as SDPA/CSDP that backs SOSTOOLS in the paper.
This is the engine behind every LMI feasibility test in
:mod:`repro.sos` and :mod:`repro.verifier`.
"""

from repro.sdp.svec import smat, smat_batch, svec, svec_dim
from repro.sdp.problem import (
    BlockComposition,
    SDPProblem,
    compose_block_diagonal,
)
from repro.sdp.result import SDPResult, SDPStatus
from repro.sdp.trace import IPMTrace, classify_convergence
from repro.sdp.ipm import (
    InteriorPointOptions,
    WarmStart,
    solve_sdp,
    solve_sdp_batch,
)
from repro.sdp.lmi import LMIResult, solve_lmi

__all__ = [
    "SDPProblem",
    "SDPResult",
    "SDPStatus",
    "BlockComposition",
    "compose_block_diagonal",
    "IPMTrace",
    "classify_convergence",
    "InteriorPointOptions",
    "WarmStart",
    "solve_sdp",
    "solve_sdp_batch",
    "solve_lmi",
    "LMIResult",
    "svec",
    "smat",
    "smat_batch",
    "svec_dim",
]
