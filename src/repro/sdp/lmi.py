"""Inequality-form LMI solving on top of the primal interior-point solver.

Solves

    min  c^T y   s.t.  F(y) = F0 + sum_i y_i F_i  is PSD

by passing the problem to :func:`repro.sdp.solve_sdp` as the *dual* of the
standard primal form: with ``C = F0``, ``A_i = -F_i``, ``b_i = -c_i`` the
primal ``min <C, X> s.t. <A_i, X> = b_i`` has dual
``max b^T y s.t. C - sum y_i A_i PSD``, i.e. exactly the LMI above with
objective ``-c^T y`` maximized.  The solver's dual iterate ``y`` is the
answer.

Used by the LipSDP Lipschitz-bound estimator (:mod:`repro.nn.lipschitz`)
and available as a general library facility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sdp.ipm import InteriorPointOptions, solve_sdp
from repro.sdp.problem import SDPProblem
from repro.sdp.result import SDPStatus
from repro.sdp.svec import sym


@dataclass
class LMIResult:
    """Solution of an inequality-form LMI program."""

    status: SDPStatus
    y: Optional[np.ndarray]
    objective: float
    #: smallest eigenvalue of F(y) at the solution (>= -tol when feasible)
    slack_eigenvalue: float
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.status.ok


def solve_lmi(
    F0: np.ndarray,
    F_list: Sequence[np.ndarray],
    c: Sequence[float],
    options: Optional[InteriorPointOptions] = None,
) -> LMIResult:
    """Minimize ``c . y`` subject to ``F0 + sum_i y_i F_i`` PSD.

    All matrices must be symmetric and share one size.  Feasibility
    problems can pass ``c = 0`` (the analytic-center-ish point returned is
    strictly feasible when one exists).
    """
    F0 = sym(np.asarray(F0, dtype=float))
    n = F0.shape[0]
    if F0.shape != (n, n):
        raise ValueError("F0 must be square")
    mats = []
    for F in F_list:
        F = sym(np.asarray(F, dtype=float))
        if F.shape != (n, n):
            raise ValueError("all F_i must match F0's shape")
        mats.append(F)
    c = np.asarray(c, dtype=float)
    if c.shape != (len(mats),):
        raise ValueError("c must have one entry per F_i")

    prob = SDPProblem([n])
    prob.set_objective([F0])
    for F, ci in zip(mats, c):
        prob.add_constraint([-F], -float(ci))
    result = solve_sdp(prob, options)
    if result.y is None or not result.status.ok:
        return LMIResult(
            status=result.status,
            y=None,
            objective=float("nan"),
            slack_eigenvalue=float("-inf"),
            message=result.message or "solver failed",
        )
    y = np.asarray(result.y, dtype=float)
    F_val = F0 + sum(yi * F for yi, F in zip(y, mats))
    lam_min = float(np.linalg.eigvalsh(F_val)[0])
    return LMIResult(
        status=result.status,
        y=y,
        objective=float(c @ y),
        slack_eigenvalue=lam_min,
        message=result.message,
    )
