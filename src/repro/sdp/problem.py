"""Block-diagonal standard-form SDP problem container and presolve."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sdp.svec import svec, svec_dim, sym


class SDPProblem:
    """A block-diagonal standard-form SDP.

        min  sum_k <C_k, X_k>
        s.t. sum_k <A_{i,k}, X_k> = b_i,   X_k PSD.

    Constraint data is stored per block as an ``(m, svec_dim(n_k))`` matrix in
    svec coordinates (so row ``i`` is ``svec(A_{i,k})``).

    Build either directly from those matrices or incrementally via
    :meth:`add_constraint` with dense symmetric matrices.
    """

    def __init__(self, block_dims: Sequence[int]):
        if not block_dims or any(int(n) < 1 for n in block_dims):
            raise ValueError("block_dims must be a nonempty list of positive ints")
        self.block_dims: Tuple[int, ...] = tuple(int(n) for n in block_dims)
        self._svec_dims = [svec_dim(n) for n in self.block_dims]
        self.C: List[np.ndarray] = [np.zeros((n, n)) for n in self.block_dims]
        self._A_rows: List[List[np.ndarray]] = []  # per constraint: svec per block
        self._b: List[float] = []
        # memoized stacked constraint matrix; valid while its row count
        # matches len(_A_rows) (appends invalidate it implicitly)
        self._A_matrix: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return len(self.block_dims)

    @property
    def n_constraints(self) -> int:
        return len(self._b)

    @property
    def total_dim(self) -> int:
        """Sum of block sizes (the ``n`` entering the duality gap)."""
        return sum(self.block_dims)

    # ------------------------------------------------------------------
    def set_objective(self, C_blocks: Sequence[Optional[np.ndarray]]) -> None:
        """Set per-block objective matrices (``None`` keeps a zero block)."""
        if len(C_blocks) != self.n_blocks:
            raise ValueError("one objective matrix per block required")
        for k, C in enumerate(C_blocks):
            if C is None:
                continue
            C = np.asarray(C, dtype=float)
            n = self.block_dims[k]
            if C.shape != (n, n):
                raise ValueError(f"objective block {k} must be {n}x{n}")
            self.C[k] = sym(C)

    def set_trace_objective(self, weight: float = 1.0) -> None:
        """Objective ``weight * sum_k tr(X_k)`` — the default for feasibility runs."""
        self.C = [weight * np.eye(n) for n in self.block_dims]

    def add_constraint(
        self, A_blocks: Sequence[Optional[np.ndarray]], rhs: float
    ) -> None:
        """Append one equality constraint given dense per-block matrices."""
        if len(A_blocks) != self.n_blocks:
            raise ValueError("one matrix (or None) per block required")
        row = []
        for k, A in enumerate(A_blocks):
            n = self.block_dims[k]
            if A is None:
                row.append(np.zeros(self._svec_dims[k]))
                continue
            A = np.asarray(A, dtype=float)
            if A.shape != (n, n):
                raise ValueError(f"constraint block {k} must be {n}x{n}")
            row.append(svec(sym(A)))
        self._A_rows.append(row)
        self._b.append(float(rhs))

    def add_constraint_svec(self, svec_blocks: Sequence[np.ndarray], rhs: float) -> None:
        """Append one constraint already in svec coordinates (no copies checked)."""
        if len(svec_blocks) != self.n_blocks:
            raise ValueError("one svec per block required")
        row = []
        for k, v in enumerate(svec_blocks):
            v = np.asarray(v, dtype=float)
            if v.shape != (self._svec_dims[k],):
                raise ValueError(
                    f"svec block {k} must have length {self._svec_dims[k]}"
                )
            row.append(v)
        self._A_rows.append(row)
        self._b.append(float(rhs))

    def add_constraints_from_matrix(
        self, A: np.ndarray, b: np.ndarray
    ) -> None:
        """Bulk-append constraints from a stacked ``(m, S)`` svec matrix.

        One call replaces ``m`` :meth:`add_constraint_svec` calls (same
        row data, so downstream solves are bitwise-identical); when the
        problem had no constraints yet, ``A`` also seeds the
        :meth:`constraint_matrix` memo, skipping the per-row
        re-concatenation entirely.  The caller must not mutate ``A``
        afterwards.
        """
        A = np.asarray(A, dtype=float)
        b = np.asarray(b, dtype=float)
        S = sum(self._svec_dims)
        if A.ndim != 2 or A.shape[1] != S:
            raise ValueError(f"constraint matrix must be (m, {S}), got {A.shape}")
        if b.shape != (A.shape[0],):
            raise ValueError("rhs must have one entry per constraint row")
        seed_cache = not self._A_rows
        splits = np.cumsum(self._svec_dims)[:-1]
        for i in range(A.shape[0]):
            self._A_rows.append(np.split(A[i], splits))
        self._b.extend(float(v) for v in b)
        if seed_cache:
            self._A_matrix = A

    # ------------------------------------------------------------------
    def constraint_matrix(self) -> np.ndarray:
        """Stacked constraint matrix over concatenated svec coordinates, (m, S)."""
        if (
            self._A_matrix is not None
            and self._A_matrix.shape[0] == len(self._A_rows)
        ):
            return self._A_matrix
        if not self._A_rows:
            return np.zeros((0, sum(self._svec_dims)))
        self._A_matrix = np.array([np.concatenate(row) for row in self._A_rows])
        return self._A_matrix

    def rhs(self) -> np.ndarray:
        """Right-hand-side vector b."""
        return np.asarray(self._b, dtype=float)

    def split_svec(self, flat: np.ndarray) -> List[np.ndarray]:
        """Split a concatenated svec vector into per-block svecs."""
        out = []
        start = 0
        for s in self._svec_dims:
            out.append(flat[start : start + s])
            start += s
        return out

    # ------------------------------------------------------------------
    def presolved(
        self, tol: float = 1e-10
    ) -> Tuple["SDPProblem", "PresolveInfo"]:
        """Drop linearly dependent constraint rows (keeping consistency info).

        Coefficient-matching constraints generated by the SOS compiler are
        frequently rank-deficient; the Schur complement in the IPM needs a
        full-row-rank system.  Returns a new problem with an independent row
        subset plus bookkeeping about dropped/inconsistent rows.
        """
        A = self.constraint_matrix()
        b = self.rhs()
        m = A.shape[0]
        if m == 0:
            return self, PresolveInfo(kept_rows=[], dropped_rows=[], inconsistent=False)
        # Greedy row selection by rank via QR on the transpose.
        kept: List[int] = []
        basis: List[np.ndarray] = []  # orthonormal basis of kept row space
        dropped: List[int] = []
        inconsistent = False
        scale = max(1.0, float(np.max(np.abs(A))))
        for i in range(m):
            r = A[i].copy()
            rhs_i = b[i]
            for q, bi in basis:
                proj = q @ r
                r = r - proj * q
                rhs_i = rhs_i - proj * bi
            nrm = np.linalg.norm(r)
            if nrm > tol * scale:
                basis.append((r / nrm, rhs_i / nrm))
                kept.append(i)
            else:
                dropped.append(i)
                if abs(rhs_i) > 1e-6 * max(1.0, float(np.max(np.abs(b)))):
                    inconsistent = True
        reduced = SDPProblem(self.block_dims)
        reduced.C = [c.copy() for c in self.C]
        for i in kept:
            reduced._A_rows.append(self._A_rows[i])
            reduced._b.append(self._b[i])
        return reduced, PresolveInfo(kept, dropped, inconsistent)


@dataclass
class PresolveInfo:
    """Outcome of :meth:`SDPProblem.presolved`."""

    kept_rows: List[int]
    dropped_rows: List[int]
    inconsistent: bool = False
    notes: str = field(default="")


def compose_block_diagonal(
    problems: Sequence[SDPProblem],
) -> Tuple[SDPProblem, "BlockComposition"]:
    """Stack independent SDPs into one block-diagonal problem.

    The composed problem's block list is the concatenation of the input
    problems' blocks and each constraint row touches only its own
    problem's blocks (zero svecs elsewhere), so the composed constraint
    matrix, Schur complement and feasible set are exactly block-diagonal
    over the inputs — the structure :func:`repro.sdp.ipm.solve_sdp_batch`
    exploits.  Zero-copy: objective blocks and constraint svecs are the
    *same array objects* as in the inputs (one shared zero vector per
    block position pads foreign rows), which is what makes lanes
    recovered via :meth:`BlockComposition.subproblems` bitwise-equal to
    the originals.
    """
    if not problems:
        raise ValueError("compose_block_diagonal needs at least one problem")
    dims: List[int] = []
    block_slices: List[slice] = []
    for p in problems:
        block_slices.append(slice(len(dims), len(dims) + p.n_blocks))
        dims.extend(p.block_dims)
    composed = SDPProblem(dims)
    composed.C = [c for p in problems for c in p.C]
    zeros = [np.zeros(svec_dim(n)) for n in dims]
    row_slices: List[slice] = []
    r0 = 0
    for gi, p in enumerate(problems):
        bs = block_slices[gi]
        for row, rhs in zip(p._A_rows, p._b):
            full = list(zeros)
            full[bs.start : bs.stop] = row
            composed._A_rows.append(full)
            composed._b.append(float(rhs))
        row_slices.append(slice(r0, r0 + p.n_constraints))
        r0 += p.n_constraints
    return composed, BlockComposition(
        block_slices=tuple(block_slices),
        row_slices=tuple(row_slices),
        group_dims=tuple(tuple(p.block_dims) for p in problems),
    )


@dataclass(frozen=True)
class BlockComposition:
    """Bookkeeping from :func:`compose_block_diagonal`: which composed
    blocks / constraint rows belong to which input problem ("group")."""

    block_slices: Tuple[slice, ...]
    row_slices: Tuple[slice, ...]
    group_dims: Tuple[Tuple[int, ...], ...]

    @property
    def n_groups(self) -> int:
        return len(self.block_slices)

    def subproblems(self, composed: SDPProblem) -> List[SDPProblem]:
        """Recover the per-group problems from the composed one.

        Because composition is zero-copy, each recovered problem's
        objective blocks and constraint svecs are the same array objects
        as the corresponding input problem's — solving them performs
        bit-for-bit the arithmetic of solving the originals.
        """
        if composed.block_dims != tuple(
            n for dims in self.group_dims for n in dims
        ):
            raise ValueError("composed problem does not match this composition")
        out: List[SDPProblem] = []
        for bs, rs, dims in zip(self.block_slices, self.row_slices, self.group_dims):
            sub = SDPProblem(dims)
            sub.C = list(composed.C[bs.start : bs.stop])
            for i in range(rs.start, rs.stop):
                sub._A_rows.append(composed._A_rows[i][bs.start : bs.stop])
                sub._b.append(composed._b[i])
            out.append(sub)
        return out

    def split_blocks(self, blocks: Sequence[np.ndarray]) -> List[List[np.ndarray]]:
        """Split a composed per-block list (e.g. ``result.X``) by group."""
        return [list(blocks[bs.start : bs.stop]) for bs in self.block_slices]

    def split_dual(self, y: np.ndarray) -> List[np.ndarray]:
        """Split a composed dual vector by group (original row order)."""
        return [np.asarray(y)[rs.start : rs.stop] for rs in self.row_slices]
