"""Result containers for the SDP solver."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


class SDPStatus(enum.Enum):
    """Termination status of the interior-point solver."""

    OPTIMAL = "optimal"
    PRIMAL_INFEASIBLE = "primal_infeasible"
    DUAL_INFEASIBLE = "dual_infeasible"
    MAX_ITERATIONS = "max_iterations"
    NUMERICAL_ERROR = "numerical_error"
    INCONSISTENT = "inconsistent_constraints"

    @property
    def ok(self) -> bool:
        """True when a (near-)optimal primal-dual pair was produced."""
        return self is SDPStatus.OPTIMAL


@dataclass
class SDPResult:
    """Primal-dual solution returned by :func:`repro.sdp.solve_sdp`.

    Attributes
    ----------
    status:
        Termination status.
    X:
        Primal PSD blocks (empty on hard failure).
    y:
        Dual multipliers for the equality constraints of the *presolved*
        problem, expanded back to the original row count (dropped rows get 0).
    Z:
        Dual slack blocks.
    primal_objective / dual_objective:
        Objective values at termination.
    gap:
        Normalized duality gap ``<X, Z> / (1 + |p_obj| + |d_obj|)``.
    primal_residual / dual_residual:
        Normalized equality / dual feasibility residuals.
    iterations:
        IPM iterations performed.
    """

    status: SDPStatus
    X: List[np.ndarray] = field(default_factory=list)
    y: Optional[np.ndarray] = None
    Z: List[np.ndarray] = field(default_factory=list)
    primal_objective: float = float("nan")
    dual_objective: float = float("nan")
    gap: float = float("inf")
    primal_residual: float = float("inf")
    dual_residual: float = float("inf")
    iterations: int = 0
    message: str = ""

    @property
    def feasible(self) -> bool:
        """Convenience alias for ``status.ok``."""
        return self.status.ok

    def min_eigenvalues(self) -> List[float]:
        """Smallest eigenvalue of each primal block (diagnostics)."""
        return [float(np.linalg.eigvalsh(Xk)[0]) for Xk in self.X]
