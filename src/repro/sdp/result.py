"""Result containers for the SDP solver."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


class SDPStatus(enum.Enum):
    """Termination status of the interior-point solver."""

    OPTIMAL = "optimal"
    PRIMAL_INFEASIBLE = "primal_infeasible"
    DUAL_INFEASIBLE = "dual_infeasible"
    MAX_ITERATIONS = "max_iterations"
    NUMERICAL_ERROR = "numerical_error"
    INCONSISTENT = "inconsistent_constraints"

    @property
    def ok(self) -> bool:
        """True when a (near-)optimal primal-dual pair was produced."""
        return self is SDPStatus.OPTIMAL


@dataclass
class SDPResult:
    """Primal-dual solution returned by :func:`repro.sdp.solve_sdp`.

    Attributes
    ----------
    status:
        Termination status.
    X:
        Primal PSD blocks (empty on hard failure).
    y:
        Dual multipliers for the equality constraints of the *presolved*
        problem, expanded back to the original row count (dropped rows get 0).
    Z:
        Dual slack blocks.
    primal_objective / dual_objective:
        Objective values at termination.
    gap:
        Normalized duality gap ``<X, Z> / (1 + |p_obj| + |d_obj|)``.
    primal_residual / dual_residual:
        Normalized equality / dual feasibility residuals.
    iterations:
        IPM iterations performed.
    convergence_class:
        Verdict of :func:`repro.sdp.trace.classify_convergence` over the
        per-iteration trace (``healthy`` / ``stalling`` / ``diverging`` /
        ``ill_conditioned`` / ``unknown``).
    recovery_rung:
        Which recovery-ladder rung produced this result (``"base"`` for
        the unmodified first solve; see
        :func:`repro.resilience.recovery.solve_sdp_resilient`).
    ipm_trace:
        Per-IPM-iteration records from the ring buffer (most recent
        window; see :mod:`repro.sdp.trace` for the record schema).
    ipm_trace_dropped:
        Records evicted by the ring bound before termination.
    warm_started:
        True when the solve started from a caller-provided
        :class:`repro.sdp.ipm.WarmStart` point (False for cold starts
        and for warm starts rejected on shape mismatch).
    """

    status: SDPStatus
    X: List[np.ndarray] = field(default_factory=list)
    y: Optional[np.ndarray] = None
    Z: List[np.ndarray] = field(default_factory=list)
    primal_objective: float = float("nan")
    dual_objective: float = float("nan")
    gap: float = float("inf")
    primal_residual: float = float("inf")
    dual_residual: float = float("inf")
    iterations: int = 0
    message: str = ""
    convergence_class: str = "unknown"
    recovery_rung: str = "base"
    ipm_trace: List[Dict[str, Any]] = field(default_factory=list)
    ipm_trace_dropped: int = 0
    warm_started: bool = False

    @property
    def feasible(self) -> bool:
        """Convenience alias for ``status.ok``."""
        return self.status.ok

    def min_eigenvalues(self) -> List[float]:
        """Smallest eigenvalue of each primal block (diagnostics)."""
        return [float(np.linalg.eigvalsh(Xk)[0]) for Xk in self.X]
