"""SOS/LMI verification of barrier-certificate conditions."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics import CCDS
from repro.poly import Polynomial, lie_derivative
from repro.sdp import InteriorPointOptions
from repro.sets import SemialgebraicSet
from repro.sos import SOSExpr, SOSProgram, validate_sos_identity
from repro.telemetry import get_telemetry

#: paper numbering of the three sub-problem families (conditions (13)-(15))
PAPER_CONDITION_NUMBERS = {"init": 13, "unsafe": 14, "lie": 15}


@dataclass
class VerifierConfig:
    """Knobs for the LMI feasibility sub-problems.

    ``eps_unsafe`` and ``eps_lie`` are the paper's strictness margins
    ``epsilon_1`` / ``epsilon_2``; ``eps_init`` adds a tiny margin to the
    non-strict condition (i) so the numerical validation has headroom.

    ``multiplier_degree`` is a *floor*: each SOS multiplier additionally
    gets at least the degree needed for its product to reach the target
    expression degree.  The default floor of 0 yields the S-procedure
    (constant multipliers) for quadratic certificates on quadratic sets —
    the cheapest sound choice, which matters in high dimension.
    """

    multiplier_degree: int = 0
    lambda_degree: int = 1
    eps_init: float = 1e-4
    eps_unsafe: float = 1e-4
    eps_lie: float = 1e-4
    validate: bool = True
    psd_tolerance: float = 1e-6
    sdp_options: InteriorPointOptions = field(
        default_factory=lambda: InteriorPointOptions(max_iterations=100, tolerance=1e-8)
    )


@dataclass
class ConditionReport:
    """Outcome of one sub-problem (13), (14) or (15).

    Beyond the pass/fail verdict, the report carries the numerical state
    of the certificate: the a-posteriori validation numbers
    (``residual_bound``, ``min_gram_eigenvalue``) and the interior-point
    solver's final iterate (``sdp_gap`` / ``sdp_primal_residual`` /
    ``sdp_dual_residual`` / ``sdp_iterations``) so the certificate audit
    can report how close each sub-problem sits to the PSD boundary.
    """

    name: str
    feasible: bool
    validated: bool
    elapsed_seconds: float
    message: str = ""
    residual_bound: float = float("nan")
    min_gram_eigenvalue: float = float("nan")
    sdp_status: str = ""
    sdp_iterations: int = 0
    sdp_gap: float = float("nan")
    sdp_primal_residual: float = float("nan")
    sdp_dual_residual: float = float("nan")

    @property
    def ok(self) -> bool:
        return self.feasible and self.validated


@dataclass
class VerificationResult:
    """Aggregate outcome across all sub-problems.

    ``lambda_polys`` maps each Lie sub-problem name to the multiplier the
    SDP found for it.  A *different* lambda per inclusion-error endpoint is
    sound: the invariance argument only needs ``Bdot > 0`` on the zero
    level set of ``B``, where the ``lambda B`` term vanishes, and there the
    affine-in-``w`` derivative is positive at both endpoints hence for all
    intermediate ``w``.
    """

    ok: bool
    conditions: List[ConditionReport]
    elapsed_seconds: float
    lambda_poly: Optional[Polynomial] = None
    lambda_polys: Optional[dict] = None

    def failed_conditions(self) -> List[str]:
        return [c.name for c in self.conditions if not c.ok]


class SOSVerifier:
    """Checks Theorem 1's conditions for a *known* candidate ``B``.

    Parameters
    ----------
    problem:
        The CCDS safety instance (system + Theta/Psi/Xi).
    controller_polys:
        Polynomial inclusion ``h`` of the NN controller (one per input).
    sigma_star:
        Inclusion error bounds per input; the Lie condition is certified at
        every sign combination of the endpoints (2^m LMIs; m is 1 in all
        Table 1 benchmarks).
    """

    def __init__(
        self,
        problem: CCDS,
        controller_polys: Sequence[Polynomial],
        sigma_star: Optional[Sequence[float]] = None,
        config: Optional[VerifierConfig] = None,
    ):
        self.problem = problem
        self.controller_polys = list(controller_polys)
        m = problem.system.n_inputs
        if len(self.controller_polys) != m:
            raise ValueError(f"need {m} controller polynomials")
        self.sigma_star = (
            [0.0] * m if sigma_star is None else [float(s) for s in sigma_star]
        )
        if len(self.sigma_star) != m:
            raise ValueError("sigma_star length mismatch")
        if m > 4 and any(s > 0 for s in self.sigma_star):
            raise ValueError(
                "endpoint enumeration over >4 inputs is intractable; tighten "
                "the inclusion to sigma*=0 or reduce inputs"
            )
        self.config = config or VerifierConfig()

    # ------------------------------------------------------------------
    def _multiplier_degree(self, target: int, g: Polynomial) -> int:
        """Degree for an SOS multiplier of constraint ``g`` so the product
        reaches (at least) the target degree, floored by the config."""
        need = max(0, target - g.degree)
        need += need % 2  # SOS degrees are even
        return max(self.config.multiplier_degree, need)

    def _putinar_check(
        self,
        name: str,
        expr_known: Polynomial,
        region: SemialgebraicSet,
        margin: float,
        free_lambda_times: Optional[Polynomial] = None,
    ) -> Tuple[ConditionReport, Optional[Polynomial]]:
        """Feasibility of ``expr - sum sigma_i g_i - margin (+ lambda * B) in SOS``.

        When ``free_lambda_times`` is given (the candidate ``B``), a free
        polynomial ``lambda`` of ``config.lambda_degree`` multiplies it and
        is returned with the report (sub-problem (15)).
        """
        t0 = time.perf_counter()
        cfg = self.config
        tel = get_telemetry()
        base = "lie" if name.startswith("lie") else name
        with tel.span(
            "verifier.condition",
            condition=name,
            paper_condition=PAPER_CONDITION_NUMBERS.get(base),
        ) as span:
            n = self.problem.n_vars
            prog = SOSProgram(n)
            target_deg = expr_known.degree
            if free_lambda_times is not None:
                target_deg = max(
                    target_deg, cfg.lambda_degree + free_lambda_times.degree
                )
            expr = SOSExpr.from_polynomial(expr_known - margin)
            multipliers = []
            for g in region.constraints:
                s = prog.sos_poly(self._multiplier_degree(target_deg, g), label="sigma")
                multipliers.append(s)
                expr = expr - s * g
            lam_expr = None
            if free_lambda_times is not None:
                lam_expr = prog.free_poly(cfg.lambda_degree, label="lambda")
                expr = expr - lam_expr * free_lambda_times
            # the slack degree must cover the full expression including the
            # multiplier products sigma_i * g_i (expr.degree accounts for them)
            slack = prog.require_sos(expr)
            sol = prog.solve(cfg.sdp_options)
            elapsed = time.perf_counter() - t0
            sdp = sol.sdp_result
            sdp_stats = dict(
                sdp_status=sdp.status.value,
                sdp_iterations=sdp.iterations,
                sdp_gap=float(sdp.gap),
                sdp_primal_residual=float(sdp.primal_residual),
                sdp_dual_residual=float(sdp.dual_residual),
            )
            if not sol.feasible:
                message = f"SDP status: {sol.status.value} ({sol.sdp_result.message})"
                span.set_attrs(feasible=False, validated=False, message=message)
                tel.metrics.inc(f"verifier.infeasible.{base}")
                return (
                    ConditionReport(
                        name=name,
                        feasible=False,
                        validated=False,
                        elapsed_seconds=elapsed,
                        message=message,
                        **sdp_stats,
                    ),
                    None,
                )
            lam_poly = sol.value(lam_expr) if lam_expr is not None else None
            if not cfg.validate:
                span.set_attrs(feasible=True, validated=True)
                return (
                    ConditionReport(
                        name, True, True, elapsed, "validation skipped",
                        **sdp_stats,
                    ),
                    lam_poly,
                )
            # rebuild the fully-substituted LHS and validate the identity
            realized = expr_known - margin
            for s, g in zip(multipliers, region.constraints):
                realized = realized - sol.value(s) * g
            if lam_poly is not None:
                realized = realized - lam_poly * free_lambda_times
            if region.bounding_box is not None:
                lo, hi = region.bounding_box
            else:  # pragma: no cover - all paper sets are bounded
                lo, hi = -np.ones(n) * 1e3, np.ones(n) * 1e3
            report = validate_sos_identity(
                realized,
                slack,
                sol.gram(slack.block_id),
                lo,
                hi,
                margin=margin if margin > 0 else 1e-6,
                psd_tolerance=cfg.psd_tolerance,
                extra_grams=[sol.gram(b.block_id) for b in prog._blocks if b is not slack],
            )
            elapsed = time.perf_counter() - t0
            span.set_attrs(
                feasible=True, validated=report.ok, message=report.notes
            )
            if not report.ok:
                tel.metrics.inc(f"verifier.validation_failed.{base}")
            return (
                ConditionReport(
                    name=name,
                    feasible=True,
                    validated=report.ok,
                    elapsed_seconds=elapsed,
                    message=report.notes,
                    residual_bound=report.residual_bound,
                    min_gram_eigenvalue=report.min_eigenvalue,
                    **sdp_stats,
                ),
                lam_poly,
            )

    # ------------------------------------------------------------------
    def verify(self, B: Polynomial) -> VerificationResult:
        """Run all sub-problems for candidate ``B``; all must pass.

        ``B`` is normalized to unit max-coefficient first — barrier
        conditions are scale-invariant and learned candidates can carry
        badly-scaled coefficients that stall the interior-point solver.
        """
        if B.n_vars != self.problem.n_vars:
            raise ValueError("candidate dimension mismatch")
        from repro.poly import linf_norm

        scale = linf_norm(B)
        if scale > 0:
            B = B * (1.0 / scale)
        t0 = time.perf_counter()
        cfg = self.config
        reports: List[ConditionReport] = []
        lambda_poly: Optional[Polynomial] = None
        lambda_polys: dict = {}

        # (13): B >= 0 on Theta
        rep, _ = self._putinar_check(
            "init", B, self.problem.theta, margin=cfg.eps_init
        )
        reports.append(rep)

        # (14): B < 0 on Xi  <=>  -B - eps1 >= 0
        if rep.ok:
            rep_u, _ = self._putinar_check(
                "unsafe", -1.0 * B, self.problem.xi, margin=cfg.eps_unsafe
            )
            reports.append(rep_u)
        else:
            reports.append(
                ConditionReport("unsafe", False, False, 0.0, "skipped (init failed)")
            )

        # (15): Lie condition at every inclusion-error endpoint
        if all(r.ok for r in reports):
            endpoints = self._error_endpoints()
            for idx, w in enumerate(endpoints):
                field_polys = self.problem.system.closed_loop(
                    self.controller_polys, error=list(w)
                )
                lfb = lie_derivative(B, field_polys)
                name = "lie" if len(endpoints) == 1 else f"lie[w={np.round(w, 6).tolist()}]"
                rep_l, lam = self._putinar_check(
                    name,
                    lfb,
                    self.problem.psi,
                    margin=cfg.eps_lie,
                    free_lambda_times=B,
                )
                reports.append(rep_l)
                if lam is not None:
                    lambda_polys[name] = lam
                    if lambda_poly is None:
                        lambda_poly = lam
                if not rep_l.ok:
                    break
        else:
            reports.append(
                ConditionReport("lie", False, False, 0.0, "skipped (earlier failure)")
            )

        ok = all(r.ok for r in reports)
        tel = get_telemetry()
        tel.metrics.inc("verifier.verifications")
        if not ok:
            tel.metrics.inc("verifier.rejections")
        return VerificationResult(
            ok=ok,
            conditions=reports,
            elapsed_seconds=time.perf_counter() - t0,
            lambda_poly=lambda_poly,
            lambda_polys=lambda_polys or None,
        )

    def _error_endpoints(self) -> List[Tuple[float, ...]]:
        """Sign combinations of the inclusion error endpoints (vertices of
        the ``w`` box); a single ``(0, ..., 0)`` when all errors vanish."""
        m = self.problem.system.n_inputs
        if m == 0 or all(s == 0.0 for s in self.sigma_star):
            return [tuple([0.0] * m)]
        out: List[Tuple[float, ...]] = []

        def rec(prefix: List[float], j: int) -> None:
            if j == m:
                out.append(tuple(prefix))
                return
            s = self.sigma_star[j]
            if s == 0.0:
                rec(prefix + [0.0], j + 1)
            else:
                rec(prefix + [-s], j + 1)
                rec(prefix + [+s], j + 1)

        rec([], 0)
        return out
