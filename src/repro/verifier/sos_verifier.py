"""SOS/LMI verification of barrier-certificate conditions."""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics import CCDS
from repro.poly import Polynomial, lie_derivative
from repro.resilience.faults import fault_point
from repro.resilience.recovery import (
    RecoveryPolicy,
    solve_sdp_batch_resilient,
    solve_sdp_resilient,
)
from repro.sdp import InteriorPointOptions, SDPProblem, SDPResult, WarmStart
from repro.sdp.svec import svec
from repro.sets import SemialgebraicSet
from repro.sos import SOSExpr, SOSProgram, validate_sos_identity
from repro.sos.program import GramBlock, SOSSolution
from repro.sos.workspace import ConditionWorkspace
from repro.soundness.certificate import (
    CertificateBundle,
    ConditionCertificate,
    MultiplierCertificate,
)
from repro.telemetry import get_telemetry
from repro.telemetry.context import (
    TraceContext,
    capture as capture_trace_context,
    merge_shard,
    worker_session,
)
from repro.telemetry.profiler import get_active_profiler


def _solve_sdp_task(
    sdp: SDPProblem,
    options: Optional[InteriorPointOptions],
    policy: Optional[RecoveryPolicy] = None,
    trace_ctx: Optional["TraceContext"] = None,
    shard_path: Optional[str] = None,
    warm_start: Optional[WarmStart] = None,
) -> SDPResult:
    """Process-pool worker: solve one compiled SDP (module-level so it
    pickles).  The recovery ladder runs inside the worker so a pool solve
    degrades exactly like a serial one.

    When the parent run is traced it ships a :class:`TraceContext` and a
    shard path: the solve then runs inside a worker-side telemetry
    session whose spans/metrics (and profiler samples, when the parent
    is profiling) land in the shard file for the parent to merge.  With
    ``trace_ctx=None`` (telemetry off) the pre-existing untraced path
    runs unchanged.
    """
    if trace_ctx is None or shard_path is None:
        return solve_sdp_resilient(sdp, options, policy, warm_start=warm_start)
    with worker_session(trace_ctx, shard_path):
        return solve_sdp_resilient(sdp, options, policy, warm_start=warm_start)

#: paper numbering of the three sub-problem families (conditions (13)-(15))
PAPER_CONDITION_NUMBERS = {"init": 13, "unsafe": 14, "lie": 15}


def _condition_base(name: str) -> str:
    """Family of a condition name: ``init``/``unsafe``/``lie``.

    Strips both endpoint tags (``lie[w=...]``) and per-cell suffixes
    (``init[cell1]``, ``lie[w=...][cell0]``) added for decomposed
    regions.
    """
    return name.split("[", 1)[0]


def _cell_name(name: str, idx: int, n_cells: int) -> str:
    """Per-cell condition name; single-cell regions keep the bare name
    so basic-set verifications are reported (and cached) exactly as
    before the region algebra existed."""
    return name if n_cells == 1 else f"{name}[cell{idx}]"


def _ws_key(base: str, idx: int, n_cells: int) -> Optional[str]:
    """Workspace-cache key for one cell of a condition's region.

    Single-cell regions keep the bare family key (``init``/``unsafe``/
    ``lie``) — the pre-region-algebra cache layout, byte for byte;
    decomposed regions get one workspace per cell because cells carry
    different constraint polynomials."""
    return None if n_cells == 1 else f"{base}#c{idx}"


@dataclass
class VerifierConfig:
    """Knobs for the LMI feasibility sub-problems.

    ``eps_unsafe`` and ``eps_lie`` are the paper's strictness margins
    ``epsilon_1`` / ``epsilon_2``; ``eps_init`` adds a tiny margin to the
    non-strict condition (i) so the numerical validation has headroom.

    ``multiplier_degree`` is a *floor*: each SOS multiplier additionally
    gets at least the degree needed for its product to reach the target
    expression degree.  The default floor of 0 yields the S-procedure
    (constant multipliers) for quadratic certificates on quadratic sets —
    the cheapest sound choice, which matters in high dimension.
    """

    multiplier_degree: int = 0
    lambda_degree: int = 1
    eps_init: float = 1e-4
    eps_unsafe: float = 1e-4
    eps_lie: float = 1e-4
    validate: bool = True
    psd_tolerance: float = 1e-6
    sdp_options: InteriorPointOptions = field(
        default_factory=lambda: InteriorPointOptions(max_iterations=100, tolerance=1e-8)
    )
    #: reuse the structural SOS workspace (monomial bases, Gram block
    #: layout, multiplier constraint rows) across CEGIS iterations; per
    #: candidate only the affine data is refreshed.  Result-identical to
    #: a fresh :class:`SOSProgram` build (see ``repro.sos.workspace``).
    workspace_cache: bool = True
    #: solve the independent condition SDPs (13)/(14)/(15-endpoints) in a
    #: process pool.  The serial path's skip/short-circuit semantics are
    #: reconstructed afterwards so the :class:`VerificationResult` is
    #: identical; falls back to the serial path when no pool is available.
    parallel: bool = False
    #: worker count for ``parallel`` (``None``: one per condition, capped
    #: at the CPU count)
    max_workers: Optional[int] = None
    #: SDP recovery ladder engaged when a condition solve ends in
    #: ``NUMERICAL_ERROR``/``MAX_ITERATIONS`` (see
    #: :mod:`repro.resilience.recovery`).  Healthy solves are untouched,
    #: so default-on recovery is bit-identical on converging instances.
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: attach a :class:`~repro.soundness.certificate.CertificateBundle`
    #: (Gram matrices, multipliers, lambda, margins, boxes) to passing
    #: verifications so :mod:`repro.soundness.checker` can re-prove the
    #: Putinar identities over ℚ.  Capture is pure bookkeeping — it never
    #: changes verdicts or solver behavior.
    capture_certificate: bool = True
    #: solve the three condition LMIs (13)/(14)/(15-endpoints) as one
    #: block-diagonal batch (:func:`repro.sdp.problem.compose_block_diagonal`
    #: + the lockstep driver :func:`repro.sdp.ipm.solve_sdp_batch`).
    #: Per-condition solves are bitwise-identical to the serial path —
    #: only Python/dispatch overhead is shared — and skip/short-circuit
    #: semantics are reconstructed, so the :class:`VerificationResult`
    #: matches the serial one field for field (wall-clock aside).
    #: Ignored when ``parallel`` dispatches to a process pool.
    batch_conditions: bool = False
    #: seed each condition's IPM from its previous successful solve
    #: (the learner moves the candidate only slightly between CEGIS
    #: iterations, so the old primal/dual point is near the new central
    #: path).  Dimension changes and non-convergence fall back to a cold
    #: start through the recovery ladder's ``cold_restart`` rung.  NOT
    #: bitwise-comparable to cold solves (different central path), hence
    #: off by default; verdicts and a-posteriori validation are
    #: unaffected.
    warm_start: bool = False


@dataclass
class ConditionReport:
    """Outcome of one sub-problem (13), (14) or (15).

    Beyond the pass/fail verdict, the report carries the numerical state
    of the certificate: the a-posteriori validation numbers
    (``residual_bound``, ``min_gram_eigenvalue``) and the interior-point
    solver's final iterate (``sdp_gap`` / ``sdp_primal_residual`` /
    ``sdp_dual_residual`` / ``sdp_iterations``) so the certificate audit
    can report how close each sub-problem sits to the PSD boundary.
    """

    name: str
    feasible: bool
    validated: bool
    elapsed_seconds: float
    message: str = ""
    residual_bound: float = float("nan")
    min_gram_eigenvalue: float = float("nan")
    sdp_status: str = ""
    sdp_iterations: int = 0
    sdp_gap: float = float("nan")
    sdp_primal_residual: float = float("nan")
    sdp_dual_residual: float = float("nan")
    #: verdict of the IPM convergence classifier over the per-iteration
    #: trace (see :mod:`repro.sdp.trace`)
    sdp_convergence: str = ""
    #: which recovery-ladder rung produced the accepted solve
    sdp_recovery_rung: str = ""

    @property
    def ok(self) -> bool:
        return self.feasible and self.validated


@dataclass
class VerificationResult:
    """Aggregate outcome across all sub-problems.

    ``lambda_polys`` maps each Lie sub-problem name to the multiplier the
    SDP found for it.  A *different* lambda per inclusion-error endpoint is
    sound: the invariance argument only needs ``Bdot > 0`` on the zero
    level set of ``B``, where the ``lambda B`` term vanishes, and there the
    affine-in-``w`` derivative is positive at both endpoints hence for all
    intermediate ``w``.  The same argument covers a different lambda per
    decomposed-region *cell* (``lie[cell0]``, ``lie[cell1]``, ...): the
    pointwise requirement holds on every cell, and the cells cover Psi.
    """

    ok: bool
    conditions: List[ConditionReport]
    elapsed_seconds: float
    lambda_poly: Optional[Polynomial] = None
    lambda_polys: Optional[dict] = None
    #: Gram-level evidence for the exact rational recheck; present on
    #: passing verifications when ``VerifierConfig.capture_certificate``
    certificate: Optional[CertificateBundle] = None

    def failed_conditions(self) -> List[str]:
        return [c.name for c in self.conditions if not c.ok]


@dataclass
class _PreparedCondition:
    """One compiled condition SDP, ready to solve (serially or in a pool)."""

    name: str
    base: str
    expr_known: Polynomial
    region: SemialgebraicSet
    margin: float
    free_lambda_times: Optional[Polynomial]
    prog: SOSProgram
    multipliers: List[SOSExpr]
    lam_expr: Optional[SOSExpr]
    slack: GramBlock
    sdp: SDPProblem
    Bf: np.ndarray
    r: np.ndarray
    G: np.ndarray
    #: inclusion-error endpoint the Lie condition is certified at
    #: (empty for init/unsafe)
    endpoint: Tuple[float, ...] = ()


class SOSVerifier:
    """Checks Theorem 1's conditions for a *known* candidate ``B``.

    Parameters
    ----------
    problem:
        The CCDS safety instance (system + Theta/Psi/Xi).
    controller_polys:
        Polynomial inclusion ``h`` of the NN controller (one per input).
    sigma_star:
        Inclusion error bounds per input; the Lie condition is certified at
        every sign combination of the endpoints (2^m LMIs; m is 1 in all
        Table 1 benchmarks).
    """

    def __init__(
        self,
        problem: CCDS,
        controller_polys: Sequence[Polynomial],
        sigma_star: Optional[Sequence[float]] = None,
        config: Optional[VerifierConfig] = None,
    ):
        self.problem = problem
        self.controller_polys = list(controller_polys)
        m = problem.system.n_inputs
        if len(self.controller_polys) != m:
            raise ValueError(f"need {m} controller polynomials")
        self.sigma_star = (
            [0.0] * m if sigma_star is None else [float(s) for s in sigma_star]
        )
        if len(self.sigma_star) != m:
            raise ValueError("sigma_star length mismatch")
        if m > 4 and any(s > 0 for s in self.sigma_star):
            raise ValueError(
                "endpoint enumeration over >4 inputs is intractable; tighten "
                "the inclusion to sigma*=0 or reduce inputs"
            )
        self.config = config or VerifierConfig()
        #: condition base name -> cached :class:`ConditionWorkspace`
        self._workspaces: Dict[str, ConditionWorkspace] = {}
        #: condition name -> last successful solve's primal/dual point
        #: (populated only under ``config.warm_start``)
        self._warm: Dict[str, WarmStart] = {}

    # ------------------------------------------------------------------
    def _multiplier_degree(self, target: int, g: Polynomial) -> int:
        """Degree for an SOS multiplier of constraint ``g`` so the product
        reaches (at least) the target degree, floored by the config."""
        need = max(0, target - g.degree)
        need += need % 2  # SOS degrees are even
        return max(self.config.multiplier_degree, need)

    def _prepare(
        self,
        name: str,
        expr_known: Polynomial,
        region: SemialgebraicSet,
        margin: float,
        free_lambda_times: Optional[Polynomial] = None,
        endpoint: Tuple[float, ...] = (),
        ws_key: Optional[str] = None,
    ) -> _PreparedCondition:
        """Build the SDP for ``expr - sum sigma_i g_i - margin (+ lambda *
        B) in SOS``, through the cached workspace when enabled.

        ``ws_key`` scopes the workspace cache: cells of a decomposed
        region carry different constraint polynomials, so each cell gets
        its own workspace (endpoints of the same cell still share one).
        """
        cfg = self.config
        tel = get_telemetry()
        base = _condition_base(name)
        n = self.problem.n_vars
        target_deg = expr_known.degree
        if free_lambda_times is not None:
            target_deg = max(
                target_deg, cfg.lambda_degree + free_lambda_times.degree
            )
        mult_degs = [
            self._multiplier_degree(target_deg, g) for g in region.constraints
        ]
        if cfg.workspace_cache:
            lam_deg = cfg.lambda_degree if free_lambda_times is not None else None
            cache_key = ws_key if ws_key is not None else base
            ws = self._workspaces.get(cache_key)
            if ws is None or not ws.matches(mult_degs, lam_deg):
                ws = ConditionWorkspace(n, region.constraints, mult_degs, lam_deg)
                self._workspaces[cache_key] = ws
                tel.metrics.inc("verifier.workspace.misses")
            else:
                tel.metrics.inc("verifier.workspace.hits")
            varying = SOSExpr.from_polynomial(expr_known - margin)
            if ws.lam_expr is not None:
                varying = varying - ws.lam_expr * free_lambda_times
            sdp, Bf, r, G = ws.compile(varying)
            assert ws.slack_block is not None
            return _PreparedCondition(
                name, base, expr_known, region, margin, free_lambda_times,
                ws.program, ws.multipliers, ws.lam_expr, ws.slack_block,
                sdp, Bf, r, G, endpoint,
            )
        prog = SOSProgram(n)
        expr = SOSExpr.from_polynomial(expr_known - margin)
        multipliers = []
        for g, deg in zip(region.constraints, mult_degs):
            s = prog.sos_poly(deg, label="sigma")
            multipliers.append(s)
            expr = expr - s * g
        lam_expr = None
        if free_lambda_times is not None:
            lam_expr = prog.free_poly(cfg.lambda_degree, label="lambda")
            expr = expr - lam_expr * free_lambda_times
        # the slack degree must cover the full expression including the
        # multiplier products sigma_i * g_i (expr.degree accounts for them)
        slack = prog.require_sos(expr)
        sdp, Bf, r, G = prog.compile()
        return _PreparedCondition(
            name, base, expr_known, region, margin, free_lambda_times,
            prog, multipliers, lam_expr, slack, sdp, Bf, r, G, endpoint,
        )

    def _condition_box(
        self, region: SemialgebraicSet
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bounding box the region's validation grid / exact recheck use."""
        if region.bounding_box is not None:
            return region.bounding_box
        n = self.problem.n_vars  # pragma: no cover - all paper sets bounded
        return -np.ones(n) * 1e3, np.ones(n) * 1e3

    def _capture(
        self,
        prep: _PreparedCondition,
        sol: SOSSolution,
        lam_poly: Optional[Polynomial],
    ) -> ConditionCertificate:
        """Snapshot the Gram-level evidence of one passing condition."""
        multipliers: List[MultiplierCertificate] = []
        for s, g in zip(prep.multipliers, prep.region.constraints):
            # every monomial of an sos_poly expression references the same
            # Gram block, so any gram key identifies it
            bid = next(
                bid
                for lc in s.coeffs.values()
                for (bid, _i, _j) in lc.gram
            )
            block = prep.prog._blocks[bid]
            multipliers.append(
                MultiplierCertificate(
                    constraint=g,
                    basis=tuple(block.basis),
                    gram=np.array(sol.gram(bid), dtype=float),
                )
            )
        lo, hi = self._condition_box(prep.region)
        return ConditionCertificate(
            name=prep.name,
            base=prep.base,
            margin=float(prep.margin),
            endpoint=tuple(float(w) for w in prep.endpoint),
            slack_basis=tuple(prep.slack.basis),
            slack_gram=np.array(sol.gram(prep.slack.block_id), dtype=float),
            multipliers=multipliers,
            lambda_poly=lam_poly,
            box_lo=tuple(float(v) for v in lo),
            box_hi=tuple(float(v) for v in hi),
        )

    def _finish(
        self,
        prep: _PreparedCondition,
        result: SDPResult,
        t0: float,
        span=None,
    ) -> Tuple[
        ConditionReport, Optional[Polynomial], Optional[ConditionCertificate]
    ]:
        """Free-variable recovery, a-posteriori validation and reporting
        for one solved condition (mirrors :meth:`SOSProgram.solve`)."""
        cfg = self.config
        tel = get_telemetry()
        name, base, prog = prep.name, prep.base, prep.prog
        free_values = np.zeros(prog._n_free)
        if result.status.ok and prog._n_free > 0:
            q_flat = np.concatenate([svec(X) for X in result.X])
            resid = prep.r - prep.G @ q_flat
            free_values, *_ = np.linalg.lstsq(prep.Bf, resid, rcond=None)
        sol = SOSSolution(prog, result, free_values)
        elapsed = time.perf_counter() - t0
        sdp = sol.sdp_result
        sdp_stats = dict(
            sdp_status=sdp.status.value,
            sdp_iterations=sdp.iterations,
            sdp_gap=float(sdp.gap),
            sdp_primal_residual=float(sdp.primal_residual),
            sdp_dual_residual=float(sdp.dual_residual),
            sdp_convergence=getattr(sdp, "convergence_class", ""),
            sdp_recovery_rung=getattr(sdp, "recovery_rung", ""),
        )
        if span is not None:
            span.set_attrs(
                sdp_convergence=sdp_stats["sdp_convergence"],
                sdp_recovery_rung=sdp_stats["sdp_recovery_rung"],
            )
        if not sol.feasible:
            message = f"SDP status: {sol.status.value} ({sol.sdp_result.message})"
            if span is not None:
                span.set_attrs(feasible=False, validated=False, message=message)
            tel.metrics.inc(f"verifier.infeasible.{base}")
            return (
                ConditionReport(
                    name=name,
                    feasible=False,
                    validated=False,
                    elapsed_seconds=elapsed,
                    message=message,
                    **sdp_stats,
                ),
                None,
                None,
            )
        lam_poly = sol.value(prep.lam_expr) if prep.lam_expr is not None else None
        if not cfg.validate:
            if span is not None:
                span.set_attrs(feasible=True, validated=True)
            cert = (
                self._capture(prep, sol, lam_poly)
                if cfg.capture_certificate
                else None
            )
            return (
                ConditionReport(
                    name, True, True, elapsed, "validation skipped",
                    **sdp_stats,
                ),
                lam_poly,
                cert,
            )
        # rebuild the fully-substituted LHS and validate the identity
        realized = prep.expr_known - prep.margin
        for s, g in zip(prep.multipliers, prep.region.constraints):
            realized = realized - sol.value(s) * g
        if lam_poly is not None:
            realized = realized - lam_poly * prep.free_lambda_times
        lo, hi = self._condition_box(prep.region)
        report = validate_sos_identity(
            realized,
            prep.slack,
            sol.gram(prep.slack.block_id),
            lo,
            hi,
            margin=prep.margin if prep.margin > 0 else 1e-6,
            psd_tolerance=cfg.psd_tolerance,
            extra_grams=[
                sol.gram(b.block_id)
                for b in prog._blocks
                if b.block_id != prep.slack.block_id
            ],
        )
        elapsed = time.perf_counter() - t0
        if span is not None:
            span.set_attrs(
                feasible=True, validated=report.ok, message=report.notes
            )
        if not report.ok:
            tel.metrics.inc(f"verifier.validation_failed.{base}")
        cert = (
            self._capture(prep, sol, lam_poly)
            if (report.ok and cfg.capture_certificate)
            else None
        )
        return (
            ConditionReport(
                name=name,
                feasible=True,
                validated=report.ok,
                elapsed_seconds=elapsed,
                message=report.notes,
                residual_bound=report.residual_bound,
                min_gram_eigenvalue=report.min_eigenvalue,
                **sdp_stats,
            ),
            lam_poly,
            cert,
        )

    def _putinar_check(
        self,
        name: str,
        expr_known: Polynomial,
        region: SemialgebraicSet,
        margin: float,
        free_lambda_times: Optional[Polynomial] = None,
        endpoint: Tuple[float, ...] = (),
        ws_key: Optional[str] = None,
    ) -> Tuple[
        ConditionReport, Optional[Polynomial], Optional[ConditionCertificate]
    ]:
        """Feasibility of ``expr - sum sigma_i g_i - margin (+ lambda * B) in SOS``.

        When ``free_lambda_times`` is given (the candidate ``B``), a free
        polynomial ``lambda`` of ``config.lambda_degree`` multiplies it and
        is returned with the report (sub-problem (15)).
        """
        t0 = time.perf_counter()
        cfg = self.config
        tel = get_telemetry()
        base = _condition_base(name)
        with tel.span(
            "verifier.condition",
            condition=name,
            paper_condition=PAPER_CONDITION_NUMBERS.get(base),
        ) as span:
            prep = self._prepare(
                name, expr_known, region, margin, free_lambda_times,
                endpoint=endpoint, ws_key=ws_key,
            )
            result = solve_sdp_resilient(
                prep.sdp, cfg.sdp_options, cfg.recovery,
                warm_start=self._warm_for(name),
            )
            self._note_warm(name, result)
            return self._finish(prep, result, t0, span=span)

    def _warm_for(self, name: str) -> Optional[WarmStart]:
        """The stored warm-start point for a condition (None when the
        feature is off or no previous successful solve exists)."""
        if not self.config.warm_start:
            return None
        return self._warm.get(name)

    def _note_warm(self, name: str, result: SDPResult) -> None:
        """Update the per-condition warm-start store from a solve.

        Successful solves overwrite the stored point; failed solves drop
        it (a point that just led the IPM astray is worse than a cold
        start next iteration).
        """
        if not self.config.warm_start:
            return
        if result.status.ok:
            ws = WarmStart.from_result(result)
            if ws is not None:
                self._warm[name] = ws
                return
        self._warm.pop(name, None)

    # ------------------------------------------------------------------
    def verify(self, B: Polynomial) -> VerificationResult:
        """Run all sub-problems for candidate ``B``; all must pass.

        ``B`` is normalized to unit max-coefficient first — barrier
        conditions are scale-invariant and learned candidates can carry
        badly-scaled coefficients that stall the interior-point solver.
        """
        if B.n_vars != self.problem.n_vars:
            raise ValueError("candidate dimension mismatch")
        from repro.poly import linf_norm

        scale = linf_norm(B)
        if scale > 0:
            B = B * (1.0 / scale)
        t0 = time.perf_counter()
        cfg = self.config
        if cfg.parallel:
            result = self._verify_parallel(B, t0, scale)
            if result is not None:
                return result
            # pool unavailable -> fall through to the serial path
        elif cfg.batch_conditions:
            return self._verify_batched(B, t0, scale)
        reports: List[ConditionReport] = []
        certs: List[ConditionCertificate] = []
        lambda_poly: Optional[Polynomial] = None
        lambda_polys: dict = {}

        # (13): B >= 0 on Theta — one Putinar certificate per cell; a
        # composite Theta passes only when every cell does (the cells
        # cover the region, so the conjunction implies the condition)
        theta_cells = self.problem.theta.decompose()
        for ci, cell in enumerate(theta_cells):
            rep, _, cert = self._putinar_check(
                _cell_name("init", ci, len(theta_cells)),
                B, cell, margin=cfg.eps_init, ws_key=_ws_key("init", ci, len(theta_cells)),
            )
            reports.append(rep)
            if cert is not None:
                certs.append(cert)
            if not rep.ok:
                break

        # (14): B < 0 on Xi  <=>  -B - eps1 >= 0
        if all(r.ok for r in reports):
            xi_cells = self.problem.xi.decompose()
            for ci, cell in enumerate(xi_cells):
                rep_u, _, cert_u = self._putinar_check(
                    _cell_name("unsafe", ci, len(xi_cells)),
                    -1.0 * B, cell, margin=cfg.eps_unsafe,
                    ws_key=_ws_key("unsafe", ci, len(xi_cells)),
                )
                reports.append(rep_u)
                if cert_u is not None:
                    certs.append(cert_u)
                if not rep_u.ok:
                    break
        else:
            reports.append(
                ConditionReport("unsafe", False, False, 0.0, "skipped (init failed)")
            )

        # (15): Lie condition at every inclusion-error endpoint, per cell
        if all(r.ok for r in reports):
            endpoints = self._error_endpoints()
            psi_cells = self.problem.psi.decompose()
            failed = False
            for idx, w in enumerate(endpoints):
                field_polys = self.problem.system.closed_loop(
                    self.controller_polys, error=list(w)
                )
                lfb = lie_derivative(B, field_polys)
                ename = "lie" if len(endpoints) == 1 else f"lie[w={np.round(w, 6).tolist()}]"
                for ci, cell in enumerate(psi_cells):
                    name = _cell_name(ename, ci, len(psi_cells))
                    rep_l, lam, cert_l = self._putinar_check(
                        name,
                        lfb,
                        cell,
                        margin=cfg.eps_lie,
                        free_lambda_times=B,
                        endpoint=w,
                        ws_key=_ws_key("lie", ci, len(psi_cells)),
                    )
                    reports.append(rep_l)
                    if cert_l is not None:
                        certs.append(cert_l)
                    if lam is not None:
                        lambda_polys[name] = lam
                        if lambda_poly is None:
                            lambda_poly = lam
                    if not rep_l.ok:
                        failed = True
                        break
                if failed:
                    break
        else:
            reports.append(
                ConditionReport("lie", False, False, 0.0, "skipped (earlier failure)")
            )

        ok = all(r.ok for r in reports)
        tel = get_telemetry()
        tel.metrics.inc("verifier.verifications")
        if not ok:
            tel.metrics.inc("verifier.rejections")
        return VerificationResult(
            ok=ok,
            conditions=reports,
            elapsed_seconds=time.perf_counter() - t0,
            lambda_poly=lambda_poly,
            lambda_polys=lambda_polys or None,
            certificate=self._bundle(B, scale, certs) if ok else None,
        )

    def _bundle(
        self,
        B: Polynomial,
        scale: float,
        certs: List[ConditionCertificate],
    ) -> Optional[CertificateBundle]:
        """Assemble the per-candidate bundle from passing-condition
        certificates (``B`` is the normalized candidate they certify)."""
        if not self.config.capture_certificate or not certs:
            return None
        return CertificateBundle(
            barrier=B,
            barrier_scale=float(scale) if scale > 0 else 1.0,
            controller_polys=list(self.controller_polys),
            sigma_star=list(self.sigma_star),
            conditions=certs,
        )

    def _lie_preps(self, B: Polynomial) -> List[_PreparedCondition]:
        """Compile the Lie condition (15) at every inclusion-error
        endpoint, per Psi cell."""
        cfg = self.config
        preps = []
        endpoints = self._error_endpoints()
        psi_cells = self.problem.psi.decompose()
        for w in endpoints:
            field_polys = self.problem.system.closed_loop(
                self.controller_polys, error=list(w)
            )
            lfb = lie_derivative(B, field_polys)
            ename = (
                "lie" if len(endpoints) == 1 else f"lie[w={np.round(w, 6).tolist()}]"
            )
            for ci, cell in enumerate(psi_cells):
                preps.append(
                    self._prepare(
                        _cell_name(ename, ci, len(psi_cells)),
                        lfb, cell, cfg.eps_lie,
                        free_lambda_times=B, endpoint=w,
                        ws_key=_ws_key("lie", ci, len(psi_cells)),
                    )
                )
        return preps

    def _condition_preps(
        self, B: Polynomial
    ) -> Tuple[List[_PreparedCondition], int, int]:
        """Compile every condition SDP (per cell, per endpoint) up front.

        Returns the prep list plus the init/unsafe cell counts so
        :meth:`_assemble` can slice it back into condition groups.
        """
        cfg = self.config
        theta_cells = self.problem.theta.decompose()
        xi_cells = self.problem.xi.decompose()
        preps = [
            self._prepare(
                _cell_name("init", ci, len(theta_cells)), B, cell,
                cfg.eps_init, ws_key=_ws_key("init", ci, len(theta_cells)),
            )
            for ci, cell in enumerate(theta_cells)
        ]
        preps.extend(
            self._prepare(
                _cell_name("unsafe", ci, len(xi_cells)), -1.0 * B, cell,
                cfg.eps_unsafe, ws_key=_ws_key("unsafe", ci, len(xi_cells)),
            )
            for ci, cell in enumerate(xi_cells)
        )
        preps.extend(self._lie_preps(B))
        return preps, len(theta_cells), len(xi_cells)

    def _verify_parallel(
        self, B: Polynomial, t0: float, scale: float
    ) -> Optional[VerificationResult]:
        """Solve all condition SDPs concurrently in a process pool.

        Every condition is compiled and solved up front; the serial path's
        skip/short-circuit semantics (unsafe skipped after an init failure,
        the Lie loop stopping at the first failing endpoint) are then
        reconstructed during assembly, so the returned
        :class:`VerificationResult` matches the serial one field for field
        (wall-clock timings aside).  Returns ``None`` when the pool cannot
        be created or a worker dies — callers fall back to serial.
        """
        cfg = self.config
        tel = get_telemetry()
        preps, n_init, n_unsafe = self._condition_preps(B)

        # trace propagation: when this run is traced, each submission
        # carries a TraceContext and a shard file the worker's session
        # writes; the shards are merged back below (also after a crash,
        # so completed workers' spans survive a broken pool).  Untraced
        # runs submit with ctx=None — the pre-PR worker path, unchanged.
        profile_workers = get_active_profiler() is not None
        shard_dir: Optional[str] = None
        shards: List[Tuple[Optional[TraceContext], Optional[str]]] = []
        if capture_trace_context() is not None:
            import tempfile

            shard_dir = tempfile.mkdtemp(prefix="repro-verify-shards-")
        for i, p in enumerate(preps):
            if shard_dir is None:
                shards.append((None, None))
            else:
                shards.append((
                    capture_trace_context(shard_index=i, profile=profile_workers),
                    os.path.join(shard_dir, f"shard-{i}.jsonl"),
                ))

        def merge_worker_shards() -> None:
            if shard_dir is None:
                return
            for _, shard_path in shards:
                if shard_path is not None:
                    merge_shard(tel, shard_path)
            try:
                os.rmdir(shard_dir)
            except OSError:
                pass

        try:
            import concurrent.futures
            from concurrent.futures.process import BrokenProcessPool

            max_workers = cfg.max_workers or min(len(preps), os.cpu_count() or 1)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=max_workers
            ) as pool:
                futures = []
                for i, (p, (ctx, shard_path)) in enumerate(zip(preps, shards)):
                    tel.status_worker(i, state="submitted", task=p.name)
                    futures.append(pool.submit(
                        _solve_sdp_task, p.sdp, cfg.sdp_options, cfg.recovery,
                        ctx, shard_path, self._warm_for(p.name),
                    ))
                fault_point("verifier.pool")
                results = []
                for i, f in enumerate(futures):
                    results.append(f.result())
                    tel.status_worker(i, state="done")
        except BrokenProcessPool as exc:
            # a worker died mid-solve (e.g. OOM-killed): classify, then
            # degrade to the serial path — same result, just slower
            tel.metrics.inc("verifier.pool.worker_crashes")
            tel.metrics.inc("verifier.pool.fallbacks")
            tel.event(
                "verifier.worker_crash",
                error=f"{type(exc).__name__}: {exc}",
                n_conditions=len(preps),
            )
            merge_worker_shards()
            return None
        except Exception:
            tel.metrics.inc("verifier.pool.fallbacks")
            merge_worker_shards()
            return None
        merge_worker_shards()
        tel.metrics.inc("verifier.pool.tasks", len(preps))
        for p, res in zip(preps, results):
            self._note_warm(p.name, res)
        return self._assemble(preps, results, B, t0, scale, n_init, n_unsafe)

    def _verify_batched(
        self, B: Polynomial, t0: float, scale: float
    ) -> VerificationResult:
        """Solve all condition SDPs as one lockstep block batch.

        The three LMIs (13)-(15) are independent, so their block-diagonal
        composition decomposes exactly (see
        :func:`repro.sdp.problem.compose_block_diagonal`); the lockstep
        driver advances the lanes together, performing per lane the same
        float operations as serial solves — the assembled
        :class:`VerificationResult` is bitwise-identical to the serial
        path's, with skip/short-circuit semantics reconstructed just like
        the pool path.
        """
        cfg = self.config
        preps, n_init, n_unsafe = self._condition_preps(B)
        results = solve_sdp_batch_resilient(
            [p.sdp for p in preps],
            cfg.sdp_options,
            cfg.recovery,
            warm_starts=[self._warm_for(p.name) for p in preps],
        )
        for p, res in zip(preps, results):
            self._note_warm(p.name, res)
        return self._assemble(preps, results, B, t0, scale, n_init, n_unsafe)

    def _assemble(
        self,
        preps: List[_PreparedCondition],
        results: List[SDPResult],
        B: Polynomial,
        t0: float,
        scale: float,
        n_init: int = 1,
        n_unsafe: int = 1,
    ) -> VerificationResult:
        """Turn eagerly-computed per-condition solves into the serial
        path's :class:`VerificationResult`: finish conditions in serial
        order and reconstruct the skip/short-circuit semantics (unsafe
        skipped after an init failure, the Lie loop stopping at the first
        failing endpoint/cell).  ``n_init``/``n_unsafe`` are the Theta/Xi
        cell counts, slicing the flat prep list back into condition
        groups.  Shared by the pool and batched paths."""
        tel = get_telemetry()

        def finish(prep: _PreparedCondition, res: SDPResult):
            with tel.span(
                "verifier.condition",
                condition=prep.name,
                paper_condition=PAPER_CONDITION_NUMBERS.get(prep.base),
            ) as span:
                return self._finish(prep, res, t0, span=span)

        reports: List[ConditionReport] = []
        certs: List[ConditionCertificate] = []
        lambda_poly: Optional[Polynomial] = None
        lambda_polys: dict = {}
        for prep, res in zip(preps[:n_init], results[:n_init]):
            rep_init, _, cert_i = finish(prep, res)
            reports.append(rep_init)
            if cert_i is not None:
                certs.append(cert_i)
            if not rep_init.ok:
                break
        if all(r.ok for r in reports):
            for prep, res in zip(
                preps[n_init:n_init + n_unsafe],
                results[n_init:n_init + n_unsafe],
            ):
                rep_u, _, cert_u = finish(prep, res)
                reports.append(rep_u)
                if cert_u is not None:
                    certs.append(cert_u)
                if not rep_u.ok:
                    break
        else:
            reports.append(
                ConditionReport("unsafe", False, False, 0.0, "skipped (init failed)")
            )
        if all(r.ok for r in reports):
            for prep, res in zip(
                preps[n_init + n_unsafe:], results[n_init + n_unsafe:]
            ):
                rep_l, lam, cert_l = finish(prep, res)
                reports.append(rep_l)
                if cert_l is not None:
                    certs.append(cert_l)
                if lam is not None:
                    lambda_polys[prep.name] = lam
                    if lambda_poly is None:
                        lambda_poly = lam
                if not rep_l.ok:
                    break
        else:
            reports.append(
                ConditionReport("lie", False, False, 0.0, "skipped (earlier failure)")
            )
        ok = all(r.ok for r in reports)
        tel.metrics.inc("verifier.verifications")
        if not ok:
            tel.metrics.inc("verifier.rejections")
        return VerificationResult(
            ok=ok,
            conditions=reports,
            elapsed_seconds=time.perf_counter() - t0,
            lambda_poly=lambda_poly,
            lambda_polys=lambda_polys or None,
            certificate=self._bundle(B, scale, certs) if ok else None,
        )

    def _error_endpoints(self) -> List[Tuple[float, ...]]:
        """Sign combinations of the inclusion error endpoints (vertices of
        the ``w`` box); a single ``(0, ..., 0)`` when all errors vanish."""
        m = self.problem.system.n_inputs
        if m == 0 or all(s == 0.0 for s in self.sigma_star):
            return [tuple([0.0] * m)]
        out: List[Tuple[float, ...]] = []

        def rec(prefix: List[float], j: int) -> None:
            if j == m:
                out.append(tuple(prefix))
                return
            s = self.sigma_star[j]
            if s == 0.0:
                rec(prefix + [0.0], j + 1)
            else:
                rec(prefix + [-s], j + 1)
                rec(prefix + [+s], j + 1)

        rec([], 0)
        return out
