"""An independent, interval-arithmetic verifier for barrier certificates.

Checks the same three conditions as :class:`~repro.verifier.SOSVerifier`
but by branch-and-prune delta-decision instead of LMI feasibility — a
genuinely independent code path (no SDP, no Gram matrices), useful for
cross-checking certificates in tests or auditing a result:

* condition (i)/(ii) are plain polynomial positivity queries;
* condition (iii) needs the multiplier ``lambda`` as an *input* (interval
  reasoning cannot synthesize one), e.g. the ``lambda_polys`` returned by
  the SOS verifier, and is checked at every inclusion-error endpoint.

Expect exponential cost in dimension (this is the engine behind the
Table 1 ``OT`` rows); intended for `n <= 4` cross-checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics import CCDS
from repro.poly import Polynomial, lie_derivative
from repro.sets import SemialgebraicSet
from repro.smt import (
    BranchAndPrune,
    CheckOutcome,
    CheckStatus,
    MeanValueEnclosure,
    contract_box,
    poly_enclosure,
)


@dataclass
class IntervalVerifierConfig:
    """Precision/budget knobs of the interval cross-check."""

    delta: float = 1e-2
    max_boxes_per_check: int = 100_000
    time_limit_per_check: Optional[float] = 60.0
    eps_unsafe: float = 1e-6
    eps_lie: float = 1e-6
    use_contractor: bool = True
    seed: int = 0


@dataclass
class IntervalVerificationResult:
    """Outcome: per-condition branch-and-prune answers."""

    ok: bool
    outcomes: Dict[str, CheckOutcome]
    elapsed_seconds: float

    def failed_conditions(self) -> List[str]:
        return [
            name
            for name, out in self.outcomes.items()
            if out.status is not CheckStatus.PROVED
        ]


class IntervalVerifier:
    """Cross-check a barrier certificate with interval branch-and-prune."""

    def __init__(
        self,
        problem: CCDS,
        controller_polys: Sequence[Polynomial] = (),
        sigma_star: Optional[Sequence[float]] = None,
        config: Optional[IntervalVerifierConfig] = None,
    ):
        self.problem = problem
        self.controller_polys = list(controller_polys)
        m = problem.system.n_inputs
        if len(self.controller_polys) != m:
            raise ValueError(f"need {m} controller polynomials")
        self.sigma_star = (
            [0.0] * m if sigma_star is None else [float(s) for s in sigma_star]
        )
        self.config = config or IntervalVerifierConfig()

    # ------------------------------------------------------------------
    def _engine(self, region: SemialgebraicSet) -> BranchAndPrune:
        cfg = self.config
        contractor = None
        if cfg.use_contractor and region.constraints:
            constraints = list(region.constraints)
            contractor = lambda lo, hi: contract_box(constraints, lo, hi)
        return BranchAndPrune(
            delta=cfg.delta,
            max_boxes=cfg.max_boxes_per_check,
            time_limit=cfg.time_limit_per_check,
            rng=np.random.default_rng(cfg.seed),
            contractor=contractor,
        )

    def _check_cell(
        self, target: Polynomial, cell: SemialgebraicSet
    ) -> CheckOutcome:
        engine = self._engine(cell)
        lo, hi = cell.bounding_box
        enclosure = MeanValueEnclosure(target)
        region_encs = [
            (lambda a, b, g=g: poly_enclosure(g, a, b)) for g in cell.constraints
        ]
        return engine.check_forall(
            enclosure,
            lambda pts: target(pts),
            lo,
            hi,
            region_enclosures=region_encs,
            region_point=lambda pts: cell.contains(pts),
        )

    def _check(self, target: Polynomial, region: SemialgebraicSet) -> CheckOutcome:
        """Branch-and-prune over every basic cell of ``region``.

        Composite regions (unions, differences) decompose into basic
        cells; the contractor runs per cell over that cell's own
        constraints.  The conjunction short-circuits: the first cell
        that is not PROVED decides the outcome (its witness, if any, is
        a genuine counterexample candidate on that cell).  Basic
        regions are their own single cell — identical to the pre-cell
        behavior.
        """
        cells = region.decompose()
        total_boxes = 0
        elapsed = 0.0
        outcome: Optional[CheckOutcome] = None
        for cell in cells:
            outcome = self._check_cell(target, cell)
            total_boxes += outcome.boxes_processed
            elapsed += outcome.elapsed_seconds
            if outcome.status is not CheckStatus.PROVED:
                break
        assert outcome is not None
        if len(cells) == 1:
            return outcome
        return CheckOutcome(
            status=outcome.status,
            witness=outcome.witness,
            witness_value=outcome.witness_value,
            boxes_processed=total_boxes,
            elapsed_seconds=elapsed,
            message=(
                f"{outcome.message} [{len(cells)} cells]"
                if outcome.message
                else f"[{len(cells)} cells]"
            ),
        )

    def _endpoints(self) -> List[Tuple[float, ...]]:
        m = self.problem.system.n_inputs
        if m == 0 or all(s == 0.0 for s in self.sigma_star):
            return [tuple([0.0] * m)]
        out: List[Tuple[float, ...]] = [()]
        for s in self.sigma_star:
            vals = (0.0,) if s == 0.0 else (-s, +s)
            out = [prefix + (v,) for prefix in out for v in vals]
        return out

    # ------------------------------------------------------------------
    def verify(
        self,
        B: Polynomial,
        lambda_poly: Optional[Polynomial] = None,
    ) -> IntervalVerificationResult:
        """Check all conditions; ``lambda_poly`` defaults to zero (then
        condition (iii) is the plain ``L_f B > 0``, which is stricter)."""
        if B.n_vars != self.problem.n_vars:
            raise ValueError("certificate dimension mismatch")
        cfg = self.config
        lam = lambda_poly if lambda_poly is not None else Polynomial.zero(B.n_vars)
        t0 = time.perf_counter()
        outcomes: Dict[str, CheckOutcome] = {}

        outcomes["init"] = self._check(B, self.problem.theta)
        if outcomes["init"].status is CheckStatus.PROVED:
            outcomes["unsafe"] = self._check(
                -1.0 * B - cfg.eps_unsafe, self.problem.xi
            )
        if all(o.status is CheckStatus.PROVED for o in outcomes.values()) and len(
            outcomes
        ) == 2:
            for w in self._endpoints():
                field_w = self.problem.system.closed_loop(
                    self.controller_polys, error=list(w)
                )
                margin = (
                    lie_derivative(B, field_w) - lam * B - cfg.eps_lie
                )
                name = "lie" if len(self._endpoints()) == 1 else f"lie[w={list(w)}]"
                outcomes[name] = self._check(margin, self.problem.psi)
                if outcomes[name].status is not CheckStatus.PROVED:
                    break

        ok = (
            len(outcomes) >= 3
            and all(o.status is CheckStatus.PROVED for o in outcomes.values())
        )
        return IntervalVerificationResult(
            ok=ok,
            outcomes=outcomes,
            elapsed_seconds=time.perf_counter() - t0,
        )
