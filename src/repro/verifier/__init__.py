"""The SNBC Verifier: convex LMI feasibility checks of BC conditions (§4.2).

Because the candidate ``B(x)`` from the Learner is *known*, the bilinear
SOS synthesis problem (12) splits into the three convex sub-problems
(13)-(15), each a small LMI feasibility test.  With a nonzero controller
inclusion error the Lie condition is checked at both interval endpoints
``w = +-sigma*`` (the expression is affine in ``w``), degenerating to the
paper's three sub-problems when ``sigma* = 0``.
"""

from repro.verifier.sos_verifier import (
    ConditionReport,
    SOSVerifier,
    VerificationResult,
    VerifierConfig,
)
from repro.verifier.interval_verifier import (
    IntervalVerificationResult,
    IntervalVerifier,
    IntervalVerifierConfig,
)

__all__ = [
    "SOSVerifier",
    "VerifierConfig",
    "VerificationResult",
    "ConditionReport",
    "IntervalVerifier",
    "IntervalVerifierConfig",
    "IntervalVerificationResult",
]
