"""CEGIS checkpoint serialization (write-atomic, bit-exact JSON).

A checkpoint captures everything the SNBC loop needs to resume
bit-identically after a crash or interruption: learner weights and
optimizer moments, the grown training datasets, counterexample lineage,
iteration history, phase timings, and the exact bit-generator states of
every RNG stream.  Floats survive the JSON round trip exactly (Python
serializes ``float64`` via shortest-repr, which is lossless), so a
resumed run replays the same arithmetic as an uninterrupted one.

The payload schema is owned by :meth:`repro.cegis.SNBC` (which builds
and consumes it); this module provides the envelope: kind/version
checking, atomic writes (tmp + rename — a crash mid-write never
corrupts the previous checkpoint), and RNG state helpers.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict

import numpy as np

from repro.resilience.errors import CheckpointError

CHECKPOINT_KIND = "SNBC_checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1


def rng_state(gen: np.random.Generator) -> Dict[str, Any]:
    """JSON-safe snapshot of a Generator's bit-generator state."""
    return json.loads(json.dumps(gen.bit_generator.state, default=int))


def restore_rng(gen: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a state captured by :func:`rng_state` (in place)."""
    gen.bit_generator.state = state


def save_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write ``payload`` (plus the envelope) to ``path``."""
    doc = {
        "kind": CHECKPOINT_KIND,
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        **payload,
    }
    directory = os.path.dirname(os.path.abspath(path))
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint to {path}: {exc}",
            phase="checkpoint",
            cause=exc,
            path=path,
        ) from exc


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and envelope-check a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}",
            phase="checkpoint",
            cause=exc,
            path=path,
        ) from exc
    if not isinstance(doc, dict) or doc.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_KIND} document", path=path
        )
    if doc.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint schema_version "
            f"{doc.get('schema_version')!r} "
            f"(expected {CHECKPOINT_SCHEMA_VERSION})",
            path=path,
        )
    return doc
