"""Typed error taxonomy for the SNBC pipeline.

Every failure mode the pipeline can hit is classified into one of the
:class:`ReproError` subclasses below, so callers can react per class
(recover, degrade, or report a clean outcome) instead of pattern-matching
on messages or swallowing bare ``Exception``:

* :class:`SolverNumericalError` — the interior-point SDP solver lost
  numerical footing (Cholesky failure, NaN iterates, stalled steps) and
  the recovery ladder (:mod:`repro.resilience.recovery`) was exhausted;
* :class:`LearnerDivergence` — training produced a non-finite loss or
  gradient (NaN/inf), i.e. the candidate is garbage, not merely bad;
* :class:`InclusionError` — the polynomial-inclusion phase failed (LP
  infeasible/unbounded, non-finite controller outputs);
* :class:`BudgetExhausted` — a wall-clock deadline expired
  (:mod:`repro.resilience.budget`); maps to the paper's OOT outcome;
* :class:`WorkerCrash` — a parallel-pool worker died mid-task (e.g.
  OOM-killed); the task is retried serially where possible;
* :class:`CheckpointError` — a CEGIS checkpoint could not be written,
  read, or does not match the run it is resumed into;
* :class:`SamplingError` — rejection sampling of a region exhausted its
  attempt budget (empty or near-measure-zero set).

Each error carries a ``phase`` (pipeline stage) and a free-form
``details`` mapping for telemetry; ``to_dict()`` renders both for
structured logs.  The taxonomy deliberately does **not** subclass
domain exceptions like ``ValueError`` — a ``ReproError`` is an
operational outcome, not an API misuse.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class of all classified pipeline failures."""

    #: pipeline stage the error class belongs to by default; instances
    #: can override via the ``phase`` keyword
    default_phase: str = ""

    def __init__(
        self,
        message: str,
        *,
        phase: Optional[str] = None,
        cause: Optional[BaseException] = None,
        **details: Any,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.phase = phase if phase is not None else self.default_phase
        self.details: Dict[str, Any] = dict(details)
        if cause is not None:
            self.__cause__ = cause

    @property
    def kind(self) -> str:
        """Stable machine-readable class name (for BENCH rows/telemetry)."""
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "message": self.message,
            "phase": self.phase,
        }
        if self.__cause__ is not None:
            out["cause"] = (
                f"{type(self.__cause__).__name__}: {self.__cause__}"
            )
        if self.details:
            out["details"] = {k: _jsonable(v) for k, v in self.details.items()}
        return out

    def __str__(self) -> str:  # keep the phase visible in logs
        if self.phase:
            return f"[{self.phase}] {self.message}"
        return self.message


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe rendering of a detail value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class SolverNumericalError(ReproError):
    """SDP solve failed numerically after all recovery strategies."""

    default_phase = "verification"


class LearnerDivergence(ReproError):
    """Training produced non-finite loss or gradients."""

    default_phase = "learning"


class InclusionError(ReproError):
    """Polynomial inclusion of the controller could not be computed."""

    default_phase = "inclusion"


class BudgetExhausted(ReproError):
    """A wall-clock budget expired (the paper's OOT outcome)."""

    default_phase = "run"


class WorkerCrash(ReproError):
    """A parallel-pool worker died before returning its result."""

    default_phase = "parallel"


class CheckpointError(ReproError):
    """A CEGIS checkpoint is unreadable, unwritable, or mismatched."""

    default_phase = "checkpoint"


class SamplingError(ReproError):
    """Rejection sampling of a region exhausted its attempt budget.

    Raised by :meth:`repro.sets.SemialgebraicSet.sample` (and the region
    algebra built on it) when the acceptance rate is too low — an empty
    or near-measure-zero set, or a difference whose obstacles cover
    almost all of the base.  Carries ``region``, ``requested`` and
    ``attempts`` details for telemetry.
    """

    default_phase = "sampling"
