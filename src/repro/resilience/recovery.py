"""SDP recovery ladder: escalating retry strategies for failed solves.

Interior-point solves of SOS feasibility problems fail numerically in
well-understood ways (ill-scaled constraint rows, degenerate objectives,
bad initial iterates, tolerances tighter than the data supports).  When
:func:`repro.sdp.solve_sdp` ends in ``NUMERICAL_ERROR`` or
``MAX_ITERATIONS``, :func:`solve_sdp_resilient` walks a bounded ladder
of *sound* retry strategies:

``cold_restart`` (warm-started base solves only)
    Re-solve from the default cold initialization before anything else:
    a failed warm start (see :class:`repro.sdp.ipm.WarmStart`) most
    often just means the previous iterate was a bad starting point.
``rescale``
    Row-rescale every equality constraint (and its rhs) to unit norm.
    The feasible set is unchanged — only the Schur system conditioning.
``jitter``
    Add a tiny deterministic diagonal perturbation to the objective
    ``C`` to break degeneracy.  The feasible set is unchanged, so any
    feasible ``X`` found is still a valid certificate (and every
    verifier solution is a-posteriori validated anyway).
``restart``
    Re-solve from a much larger initial scaling (a warm-start reset for
    iterates that collapsed against the PSD boundary).
``relax``
    Loosen the termination tolerance by 1e3 and allow 50% more
    iterations.  Solutions still pass through the verifier's
    independent PSD/residual validation, which is what actually gates
    acceptance.

Definitive verdicts (``OPTIMAL`` or an infeasibility certificate) stop
the ladder.  Every attempt and success is telemetry-visible as
``sdp.recovery.<strategy>.attempts`` / ``.successes``, so a run report
shows exactly which strategies earned their keep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.sdp.problem import SDPProblem
from repro.sdp.result import SDPResult, SDPStatus
from repro.telemetry import get_telemetry

if TYPE_CHECKING:  # runtime import is deferred; see solve_sdp_resilient
    from repro.sdp.ipm import InteriorPointOptions

#: statuses worth retrying — everything else is a definitive verdict
RETRYABLE_STATUSES = (SDPStatus.NUMERICAL_ERROR, SDPStatus.MAX_ITERATIONS)

#: statuses that stop the ladder once a retry produces them
_DEFINITIVE = (
    SDPStatus.OPTIMAL,
    SDPStatus.PRIMAL_INFEASIBLE,
    SDPStatus.DUAL_INFEASIBLE,
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the ladder.  Picklable (travels into pool workers)."""

    enabled: bool = True
    strategies: Tuple[str, ...] = ("rescale", "jitter", "restart", "relax")
    max_attempts: int = 4
    #: objective perturbation magnitude for ``jitter`` (relative to the
    #: objective scale)
    jitter_eps: float = 1e-6
    #: init-scale multiplier for ``restart``
    restart_scale: float = 100.0
    #: tolerance multiplier for ``relax``
    relax_factor: float = 1e3


def _copy_problem(problem: SDPProblem) -> SDPProblem:
    out = SDPProblem(problem.block_dims)
    out.C = [c.copy() for c in problem.C]
    out._A_rows = [list(row) for row in problem._A_rows]
    out._b = list(problem._b)
    return out


def _rescale(problem: SDPProblem) -> SDPProblem:
    """Unit-norm constraint rows; identical feasible set."""
    out = _copy_problem(problem)
    for i, row in enumerate(out._A_rows):
        norm = float(np.sqrt(sum(float(v @ v) for v in row)))
        if norm > 0.0 and np.isfinite(norm):
            out._A_rows[i] = [v / norm for v in row]
            out._b[i] = out._b[i] / norm
    return out


def _jitter(problem: SDPProblem, eps: float) -> SDPProblem:
    """Deterministic diagonal objective perturbation; same feasible set."""
    out = _copy_problem(problem)
    scale = max(1.0, max(float(np.max(np.abs(c))) for c in out.C))
    for k, c in enumerate(out.C):
        n = c.shape[0]
        # graded diagonal (1..2) so the perturbation breaks symmetry too
        out.C[k] = c + eps * scale * np.diag(1.0 + np.arange(n) / max(1, n))
    return out


def _attempt(
    strategy: str,
    problem: SDPProblem,
    options: "InteriorPointOptions",
    policy: RecoveryPolicy,
) -> Tuple[SDPProblem, "InteriorPointOptions"]:
    """The (problem, options) pair a strategy actually solves."""
    if strategy == "rescale":
        return _rescale(problem), options
    if strategy == "jitter":
        return _jitter(problem, policy.jitter_eps), options
    if strategy == "restart":
        return problem, dataclasses.replace(
            options, init_scale=options.init_scale * policy.restart_scale
        )
    if strategy == "relax":
        return problem, dataclasses.replace(
            options,
            tolerance=options.tolerance * policy.relax_factor,
            max_iterations=int(options.max_iterations * 1.5),
        )
    raise ValueError(f"unknown recovery strategy {strategy!r}")


def solve_sdp_resilient(
    problem: SDPProblem,
    options: Optional["InteriorPointOptions"] = None,
    policy: Optional[RecoveryPolicy] = None,
    warm_start=None,
) -> SDPResult:
    """Solve with the recovery ladder on top of :func:`solve_sdp`.

    The base solve runs unchanged; the ladder only engages when its
    status is retryable, so on healthy instances this is bit-identical
    to a plain :func:`solve_sdp` call.  The returned result's
    ``message`` records which strategy (if any) recovered the solve.

    ``warm_start`` (an optional :class:`repro.sdp.ipm.WarmStart`) is
    applied to the base solve only.  A warm-started solve that fails
    retryably first gets one plain *cold* re-solve (rung
    ``cold_restart``) before any problem-mutating strategy runs — the
    warm point itself is the most likely culprit, and a cold solve is
    exactly what the caller would have run without warm starting.
    """
    # deferred to call time: repro.sdp.ipm itself imports
    # repro.resilience.faults, and a module-level import here turned
    # that mutual dependency into an entry-order-sensitive cycle
    from repro.sdp.ipm import InteriorPointOptions, solve_sdp

    policy = policy or RecoveryPolicy()
    options = options or InteriorPointOptions()
    base = solve_sdp(problem, options, rung="base", warm_start=warm_start)
    return _recover(problem, options, policy, base)


def solve_sdp_batch_resilient(
    problems,
    options: Optional["InteriorPointOptions"] = None,
    policy: Optional[RecoveryPolicy] = None,
    warm_starts=None,
) -> list:
    """Batched counterpart of :func:`solve_sdp_resilient`.

    The base solves run as one lockstep batch
    (:func:`repro.sdp.ipm.solve_sdp_batch`, bitwise-equal per lane to
    serial solves); any lane that fails retryably then walks the same
    per-problem recovery ladder serially — recovery is the rare path,
    so it does not need the batch machinery.
    """
    from repro.sdp.ipm import InteriorPointOptions, solve_sdp_batch

    policy = policy or RecoveryPolicy()
    options = options or InteriorPointOptions()
    base_results = solve_sdp_batch(
        problems, options, rung="base", warm_starts=warm_starts
    )
    return [
        _recover(problem, options, policy, base)
        for problem, base in zip(problems, base_results)
    ]


def _recover(
    problem: SDPProblem,
    options: "InteriorPointOptions",
    policy: RecoveryPolicy,
    base: SDPResult,
) -> SDPResult:
    """Walk the ladder for one base result (shared serial/batch tail)."""
    from repro.sdp.ipm import solve_sdp

    if not policy.enabled or base.status not in RETRYABLE_STATUSES:
        return base

    tel = get_telemetry()
    tel.metrics.inc("sdp.recovery.engaged")
    if base.warm_started:
        # warm-start fallback rung: retry cold before mutating anything
        tel.metrics.inc("sdp.recovery.cold_restart.attempts")
        retry = solve_sdp(problem, options, rung="cold_restart")
        if retry.status in _DEFINITIVE:
            tel.metrics.inc("sdp.recovery.cold_restart.successes")
            retry.message = (
                f"{retry.message} (recovered via cold_restart after "
                f"{base.status.value})"
            ).strip()
            return retry
        base = retry
        if base.status not in RETRYABLE_STATUSES:
            return base
    best = base
    for strategy in policy.strategies[: max(0, policy.max_attempts)]:
        tel.metrics.inc(f"sdp.recovery.{strategy}.attempts")
        try:
            mod_problem, mod_options = _attempt(
                strategy, problem, options, policy
            )
            retry = solve_sdp(mod_problem, mod_options, rung=strategy)
        except ValueError:
            raise
        except Exception:  # a strategy must never make things worse
            tel.metrics.inc(f"sdp.recovery.{strategy}.errors")
            continue
        if retry.status in _DEFINITIVE:
            tel.metrics.inc(f"sdp.recovery.{strategy}.successes")
            retry.message = (
                f"{retry.message} (recovered via {strategy} after "
                f"{base.status.value})"
            ).strip()
            return retry
        best = retry  # keep the most recent partial progress for reporting
    tel.metrics.inc("sdp.recovery.exhausted")
    best.message = (
        f"{best.message} (recovery ladder exhausted: "
        f"{', '.join(policy.strategies[: policy.max_attempts])})"
    ).strip()
    return best
