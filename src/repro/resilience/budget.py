"""Wall-clock deadline budgets for the SNBC pipeline.

The paper's Table 1 protocol runs every tool under a wall-clock timeout
and reports OOT when it expires.  :class:`TimeBudget` reproduces that
semantics: a budget is armed with a total allowance (and optionally a
per-iteration cap), the pipeline calls :meth:`check` at phase
boundaries, and an overrun raises :class:`~repro.resilience.errors.
BudgetExhausted` — which the CEGIS loop converts into a clean
``timeout`` outcome instead of a traceback.

Budgets are cooperative: a single long SDP solve is not preempted, but
the interior-point solver accepts its own ``time_limit_s`` (see
:class:`repro.sdp.ipm.InteriorPointOptions`) so the deepest loop also
bails out near the deadline.  An unarmed budget (``total_s=None``)
costs one attribute check per call.

The fault site ``budget.deadline`` (see
:mod:`repro.diagnostics.faultinject`) forces the next :meth:`check` to
report exhaustion, for deterministic timeout-path testing.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.resilience.errors import BudgetExhausted
from repro.resilience.faults import fired


class TimeBudget:
    """Deadline tracking for one run plus optional per-iteration caps."""

    def __init__(
        self,
        total_s: Optional[float] = None,
        iteration_s: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if total_s is not None and total_s <= 0:
            raise ValueError("total_s must be positive (or None to disarm)")
        if iteration_s is not None and iteration_s <= 0:
            raise ValueError("iteration_s must be positive (or None)")
        self._clock = clock
        self.total_s = total_s
        self.iteration_s = iteration_s
        self._t0 = clock()
        self._iter_t0 = self._t0
        self._iteration = 0

    # -- queries --------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self.total_s is not None or self.iteration_s is not None

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def iteration_elapsed(self) -> float:
        return self._clock() - self._iter_t0

    def remaining(self) -> Optional[float]:
        """Seconds left before the tightest armed deadline (None: unarmed)."""
        candidates = []
        if self.total_s is not None:
            candidates.append(self.total_s - self.elapsed())
        if self.iteration_s is not None:
            candidates.append(self.iteration_s - self.iteration_elapsed())
        if not candidates:
            return None
        return min(candidates)

    # -- lifecycle ------------------------------------------------------
    def start_iteration(self, iteration: int) -> None:
        """Reset the per-iteration window (call at each loop top)."""
        self._iteration = iteration
        self._iter_t0 = self._clock()

    def check(self, phase: str = "") -> None:
        """Raise :class:`BudgetExhausted` when a deadline has expired."""
        injected = fired("budget.deadline")
        if not self.armed and not injected:
            return
        if injected:
            raise BudgetExhausted(
                "injected deadline overrun",
                phase=phase or "run",
                budget_s=self.total_s,
                elapsed_s=self.elapsed(),
                iteration=self._iteration,
                injected=True,
            )
        if self.total_s is not None and self.elapsed() > self.total_s:
            raise BudgetExhausted(
                f"run budget of {self.total_s:.3f}s exhausted "
                f"after {self.elapsed():.3f}s",
                phase=phase or "run",
                budget_s=self.total_s,
                elapsed_s=self.elapsed(),
                iteration=self._iteration,
            )
        if (
            self.iteration_s is not None
            and self.iteration_elapsed() > self.iteration_s
        ):
            raise BudgetExhausted(
                f"iteration budget of {self.iteration_s:.3f}s exhausted "
                f"after {self.iteration_elapsed():.3f}s "
                f"(iteration {self._iteration})",
                phase=phase or "iteration",
                budget_s=self.iteration_s,
                elapsed_s=self.iteration_elapsed(),
                iteration=self._iteration,
            )
