"""Deterministic fault-point core (zero repro dependencies).

Pipeline modules mark the places where faults can be injected with two
cheap primitives::

    from repro.resilience.faults import fault_point, fired

    fault_point("sdp.solve")          # raises the armed exception, if any
    if fired("sdp.ipm.mu"):           # boolean trigger for value corruption
        mu = float("nan")

Both are no-ops (a single ``is None`` check) unless a plan is installed,
so the hot path pays nothing in production.  The user-facing harness
lives in :mod:`repro.diagnostics.faultinject`, which arms plans via
:func:`inject`; this module holds only the mechanism so that low-level
packages (``repro.sdp``, ``repro.learner``) can import it without
circular imports.

Firing is deterministic: each site counts its calls and a
:class:`FaultSpec` fires on call numbers ``at_call .. at_call+times-1``
(1-based).  Every firing is appended to ``FaultPlan.log`` so tests can
assert the fault actually triggered.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

ExceptionFactory = Union[BaseException, type, Callable[[], BaseException]]


@dataclass
class FaultSpec:
    """One armed fault: fire at ``site`` on the ``at_call``-th hit.

    ``exception`` (for :func:`fault_point` sites) may be an exception
    class, instance, or zero-argument factory.  Sites consulted through
    :func:`fired` ignore ``exception`` and merely report the trigger.
    """

    site: str
    exception: Optional[ExceptionFactory] = None
    at_call: int = 1
    times: int = 1

    def should_fire(self, call_number: int) -> bool:
        return self.at_call <= call_number < self.at_call + max(1, self.times)

    def make_exception(self) -> BaseException:
        exc = self.exception
        if exc is None:
            exc = RuntimeError(f"injected fault at {self.site!r}")
        if isinstance(exc, BaseException):
            return exc
        return exc()


@dataclass
class FaultPlan:
    """A set of armed specs plus per-site call counters and a fire log."""

    specs: Dict[str, List[FaultSpec]] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)
    log: List[Tuple[str, int]] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> None:
        self.specs.setdefault(spec.site, []).append(spec)

    def hit(self, site: str) -> Optional[FaultSpec]:
        """Record one call at ``site``; return the spec that fires, if any."""
        specs = self.specs.get(site)
        if not specs:
            return None
        n = self.calls.get(site, 0) + 1
        self.calls[site] = n
        for spec in specs:
            if spec.should_fire(n):
                self.log.append((site, n))
                return spec
        return None

    def fired_sites(self) -> List[str]:
        return [site for site, _ in self.log]


_lock = threading.Lock()
_plan: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _plan


def fault_point(site: str) -> None:
    """Raise the armed exception for ``site`` when its turn comes."""
    plan = _plan
    if plan is None:
        return
    spec = plan.hit(site)
    if spec is not None:
        raise spec.make_exception()


def fired(site: str) -> bool:
    """True when an armed (non-raising) fault at ``site`` triggers now."""
    plan = _plan
    if plan is None:
        return False
    return plan.hit(site) is not None


@contextmanager
def inject(*specs: FaultSpec) -> Iterator[FaultPlan]:
    """Install a :class:`FaultPlan` armed with ``specs`` for the block.

    Plans do not nest: installing a new plan while one is active raises,
    so a stray harness cannot silently mask another's faults.
    """
    global _plan
    plan = FaultPlan()
    for spec in specs:
        plan.add(spec)
    with _lock:
        if _plan is not None:
            raise RuntimeError("a fault-injection plan is already active")
        _plan = plan
    try:
        yield plan
    finally:
        with _lock:
            _plan = None


def clear() -> None:
    """Drop any active plan (test-teardown safety valve)."""
    global _plan
    with _lock:
        _plan = None
