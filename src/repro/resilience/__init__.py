"""Resilience layer: typed failures, deadlines, recovery, checkpoints.

Four cooperating pieces turn the SNBC pipeline's failure modes into
classified, recoverable, or gracefully-degraded outcomes:

* :mod:`repro.resilience.errors` — the :class:`ReproError` taxonomy
  every pipeline stage raises instead of bare exceptions;
* :mod:`repro.resilience.budget` — wall-clock :class:`TimeBudget`
  deadlines that convert overruns into the paper's OOT (``timeout``)
  outcome;
* :mod:`repro.resilience.recovery` — the SDP recovery ladder
  (:func:`solve_sdp_resilient`) retrying failed solves with sound,
  escalating strategies;
* :mod:`repro.resilience.checkpoint` — bit-exact CEGIS checkpoints for
  crash/interrupt resume.

:mod:`repro.resilience.faults` holds the fault-point core consulted by
instrumented pipeline code; the user-facing injection harness is
:mod:`repro.diagnostics.faultinject`.  See ``docs/robustness.md``.
"""

from repro.resilience.budget import TimeBudget
from repro.resilience.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA_VERSION,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.errors import (
    BudgetExhausted,
    CheckpointError,
    InclusionError,
    LearnerDivergence,
    ReproError,
    SamplingError,
    SolverNumericalError,
    WorkerCrash,
)
from repro.resilience.recovery import (
    RETRYABLE_STATUSES,
    RecoveryPolicy,
    solve_sdp_resilient,
)
from repro.resilience.retry import (
    TERMINAL,
    TERMINAL_KINDS,
    TRANSIENT,
    TRANSIENT_KINDS,
    RetryPolicy,
)

__all__ = [
    "BudgetExhausted",
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "InclusionError",
    "LearnerDivergence",
    "RETRYABLE_STATUSES",
    "RecoveryPolicy",
    "ReproError",
    "RetryPolicy",
    "SamplingError",
    "SolverNumericalError",
    "TERMINAL",
    "TERMINAL_KINDS",
    "TRANSIENT",
    "TRANSIENT_KINDS",
    "TimeBudget",
    "WorkerCrash",
    "load_checkpoint",
    "restore_rng",
    "rng_state",
    "save_checkpoint",
    "solve_sdp_resilient",
]
