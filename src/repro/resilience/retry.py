"""Shared retry policy: exponential backoff + deterministic jitter.

One :class:`RetryPolicy` answers the three questions every re-execution
site in the repo has to agree on:

1. **Is this failure worth retrying?**  Classification rides on the
   :class:`~repro.resilience.errors.ReproError` taxonomy: worker deaths
   (:class:`WorkerCrash`) and numerically-lost solves
   (:class:`SolverNumericalError`) are *transient* — a fresh process or
   a re-run can genuinely change the outcome — while deadline overruns
   (:class:`BudgetExhausted`) and anything unrecognized are *terminal*
   and fail fast (a deterministic pipeline re-raising the same
   ``ValueError`` three times is three times the cost for zero new
   information).
2. **How many times?**  ``max_attempts`` bounds total executions of one
   job (first try included).
3. **How long to wait?**  Exponential backoff
   (``base_delay_s * multiplier**(attempt-1)``, capped at
   ``max_delay_s``) with *deterministic* jitter: the jitter fraction is
   derived by hashing ``(token, attempt)``, so two runs of the same
   batch produce identical schedules (no hidden RNG) while distinct
   jobs still decorrelate — the usual thundering-herd fix without
   sacrificing reproducibility.

Classification works both on exception *instances* (:meth:`classify`)
and on serialized *kind strings* (:meth:`classify_kind`) because the
service supervisor judges failures that happened in another process and
arrive as ``ReproError.to_dict()`` payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.resilience.errors import ReproError

#: failure kinds a re-execution can plausibly fix (fresh worker, jitter
#: in the recovery ladder's starting point, freed memory)
TRANSIENT_KINDS: Tuple[str, ...] = ("WorkerCrash", "SolverNumericalError")

#: failure kinds retrying cannot fix: deadline overruns would overrun
#: again (and the budget is already spent), checkpoint mismatches are
#: configuration bugs
TERMINAL_KINDS: Tuple[str, ...] = ("BudgetExhausted", "CheckpointError")

#: classification labels
TRANSIENT = "transient"
TERMINAL = "terminal"


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff/classification policy shared by every re-execution site.

    Frozen so a policy can be hashed into manifests and passed across
    processes without aliasing surprises.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.1
    max_delay_s: float = 30.0
    multiplier: float = 2.0
    #: jitter amplitude as a fraction of the raw delay (0 disables);
    #: delay is scaled by a deterministic factor in ``1 ± jitter``
    jitter: float = 0.25
    transient_kinds: Tuple[str, ...] = TRANSIENT_KINDS
    terminal_kinds: Tuple[str, ...] = TERMINAL_KINDS

    # -- classification -------------------------------------------------
    def classify_kind(self, kind: Optional[str]) -> str:
        """``transient`` / ``terminal`` for a serialized error kind.

        Unknown kinds (including plain exception class names) are
        terminal: an unclassified failure is assumed deterministic.
        """
        if kind in self.transient_kinds:
            return TRANSIENT
        return TERMINAL

    def classify(self, error: BaseException) -> str:
        """Classification for an in-process exception instance."""
        if isinstance(error, ReproError):
            return self.classify_kind(error.kind)
        return self.classify_kind(type(error).__name__)

    # -- retry decisions ------------------------------------------------
    def should_retry_kind(self, kind: Optional[str], attempt: int) -> bool:
        """Whether execution number ``attempt`` (1-based) may be followed
        by another, given it failed with ``kind``."""
        return (
            self.classify_kind(kind) == TRANSIENT
            and attempt < self.max_attempts
        )

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        if isinstance(error, ReproError):
            return self.should_retry_kind(error.kind, attempt)
        return self.should_retry_kind(type(error).__name__, attempt)

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before the retry that follows attempt ``attempt``.

        Deterministic: the jitter factor hashes ``(token, attempt)``, so
        replaying a batch replays its exact schedule.  Pass the job key
        as ``token`` so sibling jobs decorrelate.
        """
        raw = self.base_delay_s * (self.multiplier ** max(0, attempt - 1))
        raw = min(self.max_delay_s, raw)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        digest = hashlib.sha256(
            f"{token}:{attempt}".encode("utf-8")
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / float(2**64)  # [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * frac - 1.0))
