"""Fault-injection harness: deterministic failures at pipeline sites.

Arms :class:`~repro.resilience.faults.FaultSpec` plans against the
fault points instrumented throughout the pipeline, so tests (and the CI
fault-injection job) can assert that every failure class degrades per
policy — a classified outcome, never an unhandled traceback, and never
a fabricated ``verified``.

Instrumented sites
------------------

======================  =====================================================
site                    effect when fired
======================  =====================================================
``sdp.solve``           raises the armed exception inside ``solve_sdp`` (the
                        solver converts it to ``NUMERICAL_ERROR``)
``sdp.nonconvergence``  forces a ``MAX_ITERATIONS`` result without iterating
``sdp.ipm.mu``          corrupts the barrier parameter ``mu`` to NaN
``sdp.ipm.z_cholesky``  raises ``LinAlgError`` factoring the dual blocks
``sdp.ipm.direction``   corrupts the Newton direction to NaN
``sdp.ipm.step``        collapses both step lengths to zero (stall)
``learner.gradients``   overwrites every parameter gradient with NaN
``inclusion.lp``        raises inside the Chebyshev LP (wrapped into
                        ``InclusionError``)
``budget.deadline``     the next ``TimeBudget.check`` reports exhaustion
``bench.pool``          raises ``BrokenProcessPool`` collecting a Table-1 row
``verifier.pool``       raises ``BrokenProcessPool`` inside the parallel
                        verifier (exercises the serial fallback)
======================  =====================================================

Service sites (PR 9) — the certification service's chaos surface:

==============================  =============================================
site                            effect when fired
==============================  =============================================
``service.worker_kill_mid_job``  the pool worker hard-exits (``os._exit``,
                                 code 137) right after acknowledging a job —
                                 an OOM-kill mid-job; the supervisor must
                                 redeliver and respawn.  Fires *inside the
                                 worker process*: arm it through
                                 ``ServiceConfig.worker_faults``, not a
                                 parent-side ``inject`` block
``service.cache_corrupt_bundle`` the cache's deserialized bundle gets its
                                 first condition's claimed margin inflated —
                                 a self-consistent corruption only the exact
                                 recheck can reject (and must evict)
``service.journal_torn_write``   the next journal append writes only half
                                 its line and no newline — a crash mid-write
                                 that replay must skip, losing exactly one
                                 record
==============================  =============================================

Usage::

    from repro.diagnostics import faultinject as fi

    with fi.inject(fi.nan_gradients(times=100)) as plan:
        result = SNBC(problem, ...).run()
    assert plan.fired_sites()          # the fault actually triggered
    assert result.outcome != "verified"

Helpers below build the spec for each fault class; arbitrary
:class:`FaultSpec` instances compose with them in one ``inject`` call.
``at_call`` selects the k-th hit of the site (1-based) and ``times``
how many consecutive hits fire — enough to outlast retry ladders when a
*persistent* fault is being modeled.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    clear,
    fault_point,
    fired,
    inject,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "cholesky_failure",
    "clear",
    "deadline_overrun",
    "fault_point",
    "fired",
    "inject",
    "lp_failure",
    "nan_gradients",
    "nan_mu",
    "nan_direction",
    "service_cache_corruption",
    "service_torn_journal_write",
    "service_worker_kill",
    "solver_exception",
    "solver_nonconvergence",
    "step_collapse",
    "verifier_pool_crash",
    "worker_crash",
]


def nan_gradients(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Poison every parameter gradient with NaN after backward."""
    return FaultSpec("learner.gradients", at_call=at_call, times=times)


def cholesky_failure(at_call: int = 1, times: int = 1) -> FaultSpec:
    """``LinAlgError`` while factoring the dual blocks (Z loses PD)."""
    return FaultSpec(
        "sdp.ipm.z_cholesky",
        exception=lambda: np.linalg.LinAlgError("injected Cholesky failure"),
        at_call=at_call,
        times=times,
    )


def solver_exception(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Raise ``LinAlgError`` at the top of ``solve_sdp``."""
    return FaultSpec(
        "sdp.solve",
        exception=lambda: np.linalg.LinAlgError("injected solver crash"),
        at_call=at_call,
        times=times,
    )


def solver_nonconvergence(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Force a ``MAX_ITERATIONS`` outcome without iterating."""
    return FaultSpec("sdp.nonconvergence", at_call=at_call, times=times)


def nan_mu(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Corrupt the IPM barrier parameter ``mu`` to NaN."""
    return FaultSpec("sdp.ipm.mu", at_call=at_call, times=times)


def nan_direction(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Corrupt the IPM Newton direction to NaN."""
    return FaultSpec("sdp.ipm.direction", at_call=at_call, times=times)


def step_collapse(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Collapse both IPM step lengths to zero (stall)."""
    return FaultSpec("sdp.ipm.step", at_call=at_call, times=times)


def lp_failure(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Fail the polynomial-inclusion Chebyshev LP."""
    return FaultSpec(
        "inclusion.lp",
        exception=lambda: RuntimeError("injected Chebyshev LP failure"),
        at_call=at_call,
        times=times,
    )


def deadline_overrun(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Force the next ``TimeBudget.check`` to report exhaustion."""
    return FaultSpec("budget.deadline", at_call=at_call, times=times)


def worker_crash(at_call: int = 1, times: int = 1) -> FaultSpec:
    """``BrokenProcessPool`` while collecting a Table-1 row result."""
    return FaultSpec(
        "bench.pool",
        exception=lambda: BrokenProcessPool("injected worker death"),
        at_call=at_call,
        times=times,
    )


def verifier_pool_crash(at_call: int = 1, times: int = 1) -> FaultSpec:
    """``BrokenProcessPool`` inside the parallel verifier."""
    return FaultSpec(
        "verifier.pool",
        exception=lambda: BrokenProcessPool("injected worker death"),
        at_call=at_call,
        times=times,
    )


def service_worker_kill(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Hard-kill a service pool worker right after it takes a job.

    This site fires in the *worker* process, so hand the spec to the
    supervisor (``ServiceConfig.worker_faults`` takes the dict form,
    e.g. ``{"site": ..., "at_call": 2}``) rather than arming it in the
    parent with :func:`inject`.
    """
    return FaultSpec(
        "service.worker_kill_mid_job", at_call=at_call, times=times
    )


def service_cache_corruption(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Corrupt the next cache read's deserialized certificate bundle
    (inflated margin claim) so only the exact recheck can reject it."""
    return FaultSpec(
        "service.cache_corrupt_bundle", at_call=at_call, times=times
    )


def service_torn_journal_write(at_call: int = 1, times: int = 1) -> FaultSpec:
    """Truncate the next journal append mid-line (crash during write)."""
    return FaultSpec(
        "service.journal_torn_write", at_call=at_call, times=times
    )
