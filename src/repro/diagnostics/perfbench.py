"""The ``BENCH_perf.json`` schema and microbench suite.

Each microbench times one hot path of the pipeline twice — with the
performance layer enabled (``seconds``) and with every optimization
disabled (``reference_seconds``) — and records whether the two paths
produced *identical* results.  The four benches:

* ``train_epoch`` — Learner epochs with/without tape replay and the
  compile-field cache;
* ``verify_iteration`` — repeated candidate verification with the full
  solver fast path (cached SOS workspaces, raw-LAPACK IPM kernels,
  batched tri-condition lockstep solves, per-condition warm starts)
  against the legacy path (fresh symbolic build per call, scipy-wrapper
  kernels, serial cold solves).  Warm starting follows a different
  central path, so identity here is verdict-level (per-condition
  name/feasible/validated agreement) rather than bitwise — the bitwise
  guarantees for the default-on pieces live in
  ``tests/test_perf_identity.py``;
* ``cex_search`` — counterexample ascent with/without compiled batched
  kernels (the one opt-in path: not bitwise, so identity is reported as
  a tolerance check, and the optimization defaults off);
* ``e2e_c1`` — the full C1 CEGIS loop, with the CEGIS outcome,
  iteration count and final certificate compared across variants.

Schema (version 1)::

    {
      "schema_version": 1,
      "kind": "BENCH_perf",
      "scale": "smoke",
      "generated_at": "<iso8601>",
      "git_sha": "<sha or null>",
      "platform": {...},
      "benches": {
        "<name>": {
          "seconds": <optimized>,
          "reference_seconds": <all optimizations off>,
          "speedup": <reference/optimized>,
          "identical": true,          # hard-gated by regress
          "correctness": {...} | null # e2e only: outcome/iterations/...
        }, ...
      }
    }

``python -m repro.diagnostics.regress`` auto-detects the kind and gates
two such documents: loose on timings (they are machine-dependent), hard
on ``identical`` flags and on the e2e correctness row.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.telemetry import collect_git_sha, platform_info

PERF_SCHEMA_VERSION = 1
PERF_KIND = "BENCH_perf"

#: bench names the suite emits (regress warns when one goes missing)
PERF_BENCH_NAMES = ("train_epoch", "verify_iteration", "cex_search", "e2e_c1")


def _timed(fn: Callable[[], Any]) -> Tuple[float, Any]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _row(
    t_opt: float, t_ref: float, identical: bool, correctness: Optional[dict] = None
) -> Dict[str, Any]:
    return {
        "seconds": round(t_opt, 6),
        "reference_seconds": round(t_ref, 6),
        "speedup": round(t_ref / t_opt, 3) if t_opt > 0 else None,
        "identical": bool(identical),
        "correctness": correctness,
    }


# ----------------------------------------------------------------------
# the benches
# ----------------------------------------------------------------------
def bench_train_epoch(epochs: int = 200) -> Dict[str, Any]:
    """Learner epochs on a C1-sized problem: tape replay + compile cache
    vs the per-epoch graph rebuild."""
    from repro.benchmarks import get_benchmark
    from repro.learner import BarrierLearner, LearnerConfig, TrainingData
    from repro.poly import Polynomial
    from repro.poly.fast_eval import clear_compile_cache, set_compile_cache_enabled

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    data = TrainingData.sample(problem, 300, rng=np.random.default_rng(0))
    zero = Polynomial.constant(problem.n_vars, 0.0)
    field = problem.system.closed_loop([zero] * problem.system.n_inputs)

    def run(use_tape: bool, cache: bool):
        old = set_compile_cache_enabled(cache)
        clear_compile_cache()
        try:
            learner = BarrierLearner(
                problem.n_vars,
                config=LearnerConfig(epochs=epochs, seed=3, use_tape=use_tape),
            )
            learner.fit(data, field)
            return learner
        finally:
            set_compile_cache_enabled(old)

    t_opt, a = _timed(lambda: run(True, True))
    t_ref, b = _timed(lambda: run(False, False))
    identical = all(
        np.array_equal(p.data, q.data) for p, q in zip(a._params, b._params)
    ) and [t.total for t in a.loss_history] == [t.total for t in b.loss_history]
    return _row(t_opt, t_ref, identical)


def bench_verify_iteration(repeats: int = 5) -> Dict[str, Any]:
    """Repeated verification of a fixed candidate: the solver fast path
    (workspace cache + fast IPM kernels + batched tri-condition solves +
    warm starts) vs fresh builds with the legacy scipy-kernel solver.

    The warm-up verify outside the clock also seeds the optimized
    verifier's warm-start store, so the measured repeats model the
    steady CEGIS state (candidate moving slightly between iterations).
    Identity is verdict-level (see the module docstring): warm-started
    solves take fewer IPM iterations to the same verdict.
    """
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC
    from repro.sdp import InteriorPointOptions
    from repro.verifier import SOSVerifier, VerifierConfig

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    result = SNBC(problem, controller=spec.make_controller()).run()
    B = result.barrier
    h_polys = result.inclusion.polynomials
    sigma = result.inclusion.sigma_star

    def run(optimized: bool):
        config = (
            VerifierConfig(
                workspace_cache=True,
                batch_conditions=True,
                warm_start=True,
            )
            if optimized
            else VerifierConfig(
                workspace_cache=False,
                sdp_options=InteriorPointOptions(fast_kernels=False),
            )
        )
        v = SOSVerifier(problem, h_polys, sigma, config=config)
        v.verify(B)  # warm workspace/kernels/warm-start store off the clock
        return v

    def measure(v):
        return [v.verify(B) for _ in range(repeats)]

    v_opt, v_ref = run(True), run(False)
    t_opt, rs_a = _timed(lambda: measure(v_opt))
    t_ref, rs_b = _timed(lambda: measure(v_ref))
    identical = all(
        _verification_equivalent(x, y) for x, y in zip(rs_a, rs_b)
    )
    return _row(t_opt, t_ref, identical)


def bench_cex_search(repeats: int = 3) -> Dict[str, Any]:
    """Counterexample ascent on a failing candidate: compiled batched
    kernels vs the sparse per-polynomial loops.  Not bitwise — identity
    here means the worst violation magnitudes agree to 1e-9."""
    from repro.benchmarks import get_benchmark
    from repro.cegis.counterexamples import CexConfig, CounterexampleGenerator
    from repro.poly import Polynomial

    spec = get_benchmark("C1")
    problem = spec.make_problem()
    n = problem.n_vars
    # deliberately bad candidate so every condition yields a search
    B = Polynomial.constant(n, 0.1)
    for i in range(n):
        B = B - 0.8 * Polynomial.variable(n, i) ** 2
    lam = Polynomial.constant(n, -0.1)

    h_zero = [Polynomial.constant(n, 0.0)] * problem.system.n_inputs

    def run(compiled: bool):
        gen = CounterexampleGenerator(
            problem, h_zero, config=CexConfig(seed=0, compiled_kernels=compiled)
        )
        out = []
        for _ in range(repeats):
            out.extend(gen.generate(B, lam, ["init", "unsafe", "lie"]))
        return out

    t_opt, cex_a = _timed(lambda: run(True))
    t_ref, cex_b = _timed(lambda: run(False))
    identical = len(cex_a) == len(cex_b) and all(
        x.condition == y.condition
        and abs(x.worst_violation - y.worst_violation) < 1e-9
        for x, y in zip(cex_a, cex_b)
    )
    return _row(t_opt, t_ref, identical)


def bench_e2e_c1() -> Dict[str, Any]:
    """Full C1 CEGIS loop with the performance layer on vs off; the
    outcome, iteration count and final certificate must agree."""
    from repro.benchmarks import get_benchmark
    from repro.cegis import SNBC
    from repro.learner import LearnerConfig
    from repro.poly.fast_eval import clear_compile_cache, set_compile_cache_enabled
    from repro.sdp import InteriorPointOptions
    from repro.verifier import VerifierConfig

    def run(optimized: bool):
        old = set_compile_cache_enabled(optimized)
        clear_compile_cache()
        try:
            spec = get_benchmark("C1")
            snbc = SNBC(
                spec.make_problem(),
                controller=spec.make_controller(),
                # Only the bitwise-identical solver knobs flip here
                # (fast_kernels); warm starts and batching are exercised
                # by verify_iteration, which uses a verdict-level check.
                verifier_config=VerifierConfig(
                    lambda_degree=1,
                    workspace_cache=optimized,
                    sdp_options=InteriorPointOptions(fast_kernels=optimized),
                ),
                learner_config=LearnerConfig(
                    seed=0,
                    use_tape=optimized,
                    incremental_field_values=optimized,
                ),
            )
            return snbc.run()
        finally:
            set_compile_cache_enabled(old)

    t_opt, r_opt = _timed(lambda: run(True))
    t_ref, r_ref = _timed(lambda: run(False))
    identical = (
        r_opt.success == r_ref.success
        and r_opt.iterations == r_ref.iterations
        and (r_opt.barrier is None) == (r_ref.barrier is None)
        and (
            r_opt.barrier is None
            or r_opt.barrier.coeffs == r_ref.barrier.coeffs
        )
        and _verification_identical(r_opt.verification, r_ref.verification)
    )
    correctness = {
        "outcome": "success" if r_opt.success else "failure",
        "reference_outcome": "success" if r_ref.success else "failure",
        "iterations": int(r_opt.iterations),
        "reference_iterations": int(r_ref.iterations),
        "certificate_identical": bool(
            r_opt.barrier is not None
            and r_ref.barrier is not None
            and r_opt.barrier.coeffs == r_ref.barrier.coeffs
        ),
    }
    return _row(t_opt, t_ref, identical, correctness)


def _verification_equivalent(a: Any, b: Any) -> bool:
    """Verdict-level VerificationResult agreement: same overall verdict
    and per-condition name/feasible/validated.  Used where the optimized
    path is legitimately non-bitwise (warm starts change iteration
    counts and final iterates but must not change verdicts)."""
    if a is None or b is None:
        return a is b
    if a.ok != b.ok or len(a.conditions) != len(b.conditions):
        return False
    return all(
        x.name == y.name
        and x.feasible == y.feasible
        and x.validated == y.validated
        for x, y in zip(a.conditions, b.conditions)
    )


def _verification_identical(a: Any, b: Any) -> bool:
    """Field-by-field VerificationResult equality, timings aside."""
    if a is None or b is None:
        return a is b
    if a.ok != b.ok or len(a.conditions) != len(b.conditions):
        return False
    for x, y in zip(a.conditions, b.conditions):
        if (
            x.name != y.name
            or x.feasible != y.feasible
            or x.validated != y.validated
            or x.message != y.message
            or x.sdp_status != y.sdp_status
            or x.sdp_iterations != y.sdp_iterations
        ):
            return False
        for f in (
            "residual_bound",
            "min_gram_eigenvalue",
            "sdp_gap",
            "sdp_primal_residual",
            "sdp_dual_residual",
        ):
            xa, ya = getattr(x, f), getattr(y, f)
            if not (xa == ya or (np.isnan(xa) and np.isnan(ya))):
                return False
    return True


# ----------------------------------------------------------------------
# document assembly / IO
# ----------------------------------------------------------------------
def run_suite(scale: str = "smoke") -> Dict[str, Any]:
    """Run every microbench; returns the full BENCH_perf document."""
    benches = {
        "train_epoch": bench_train_epoch(),
        "verify_iteration": bench_verify_iteration(),
        "cex_search": bench_cex_search(),
        "e2e_c1": bench_e2e_c1(),
    }
    return perf_document(benches, scale=scale)


def perf_document(
    benches: Dict[str, Dict[str, Any]], scale: str = "smoke", **extra: Any
) -> Dict[str, Any]:
    return {
        "schema_version": PERF_SCHEMA_VERSION,
        "kind": PERF_KIND,
        "scale": scale,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": collect_git_sha(),
        "platform": platform_info(),
        "benches": dict(benches),
        **extra,
    }


def write_perf(path: str, doc: Dict[str, Any]) -> Dict[str, Any]:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return doc


def load_perf(path: str) -> Dict[str, Any]:
    """Read and schema-check a BENCH_perf document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != PERF_KIND:
        raise ValueError(f"{path}: not a {PERF_KIND} document")
    if doc.get("schema_version") != PERF_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version "
            f"{doc.get('schema_version')!r} (expected {PERF_SCHEMA_VERSION})"
        )
    if not isinstance(doc.get("benches"), dict):
        raise ValueError(f"{path}: missing 'benches' mapping")
    return doc
