"""Convergence diagnostics for the CEGIS loop.

The SNBC loop is a fixpoint search: each round the Learner repairs the
violations the Verifier found, and progress shows up as a *decreasing*
worst counterexample violation.  A round whose worst violation did not
drop below the previous round's means the retraining failed to absorb the
counterexamples — several such rounds in a row is a stall, and the run is
unlikely to converge by iterating further (the levers are epochs, network
width, or sample budgets, not more rounds).

Everything here works on plain floats/dicts so it can consume either live
:class:`~repro.cegis.snbc.IterationRecord` objects or the ``cegis.*``
events read back from a JSONL trace.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

#: default number of consecutive non-improving rounds that flags a stall
DEFAULT_STALL_WINDOW = 3


def detect_stall(
    worst_violations: Sequence[float],
    window: int = DEFAULT_STALL_WINDOW,
    rel_tolerance: float = 1e-3,
) -> Optional[int]:
    """First index at which the worst violation has been non-decreasing
    for ``window`` consecutive values.

    ``worst_violations`` is the per-failed-round worst counterexample
    violation, in round order.  A value counts as "not improved" when it
    is at least ``(1 - rel_tolerance)`` times its predecessor; non-finite
    entries break the chain.  Returns the index (into the sequence) of the
    last value of the first stalled window, or ``None``.

    >>> detect_stall([3.0, 2.0, 1.0, 0.5])
    >>> detect_stall([3.0, 1.0, 1.0, 1.2, 1.1], window=3)
    3
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    run = 1  # length of the current non-decreasing chain
    for i in range(1, len(worst_violations)):
        prev, cur = worst_violations[i - 1], worst_violations[i]
        if not (math.isfinite(prev) and math.isfinite(cur)):
            run = 1
            continue
        if cur >= prev * (1.0 - rel_tolerance):
            run += 1
            if run >= window:
                return i
        else:
            run = 1
    return None


def iteration_rows(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The ``cegis.iteration`` event payloads of a trace, in order."""
    return [e for e in events if e.get("type") == "cegis.iteration"]


def lineage_records(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Counterexample lineage from the trailing ``cegis.lineage`` event."""
    records: List[Dict[str, Any]] = []
    for e in events:
        if e.get("type") == "cegis.lineage":
            records = list(e.get("records", []))
    return records


def stall_event(events: Sequence[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The ``cegis.stall`` event, if the run emitted one."""
    for e in events:
        if e.get("type") == "cegis.stall":
            return e
    return None


def convergence_summary(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate view of a run's trace: iteration table, lineage, stall.

    This is the single entry point the report CLI uses; it degrades
    gracefully on traces recorded before these events existed (empty
    lists, ``None`` stall).
    """
    rows = iteration_rows(events)
    lineage = lineage_records(events)
    stall = stall_event(events)
    resolved = sum(1 for r in lineage if r.get("satisfied_by_final"))
    return {
        "iterations": rows,
        "lineage": lineage,
        "stall": stall,
        "n_iterations": len(rows),
        "converged": bool(rows and rows[-1].get("verified")),
        "n_counterexamples": len(lineage),
        "n_resolved": resolved,
    }
