"""The ``BENCH_service.json`` schema: service chaos-bench results.

Produced by ``benchmarks/run_bench_service.py`` — a load generator that
drives a :class:`repro.service.CertificationService` batch with
injected worker kills and cache corruption and records, per job, what
the retry/redelivery machinery actually did.  One document is one
batch::

    {
      "schema_version": 1,
      "kind": "BENCH_service",
      "scale": "chaos" | "clean",
      "generated_at": "<iso8601>",
      "git_sha": "<sha or null>",
      "platform": {...},
      "config": {workers, max_redeliveries, faults: [...]},
      "jobs": {
        "<key>": {
          "status": "success" | "dead_letter",
          "attempts": <int>,
          "redeliveries": <int>,
          "from_cache": <bool>,
          "payload_sha256": "<hex>" | null,   # identity vs serial run
          "serial_match": <bool> | null
        }, ...
      },
      "counts": {submitted, cache_hits, retries, redeliveries,
                 dead_letters, workers_respawned, ...},
      "cache": {hit_rate, evictions},
      "invariants": {all_terminal, no_corrupt_served,
                     serial_identical}
    }

``python -m repro.diagnostics.regress`` auto-detects the kind and gates
two such documents hard on **invariants** (every job terminal, zero
corrupt serves, serial identity holding wherever it held before), on
**job outcomes** (a key that succeeded in OLD must not dead-letter in
NEW), and on **cache hit rate** for repeat batches; raw retry counts
are reported but do not gate (how often chaos strikes is the fault
plan's business, surviving it is the service's).
"""

from __future__ import annotations

import json
import os
import tempfile
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from repro.telemetry import collect_git_sha, platform_info

SERVICE_SCHEMA_VERSION = 1
SERVICE_KIND = "BENCH_service"


def service_doc(
    scale: str,
    config: Dict[str, Any],
    jobs: Dict[str, Dict[str, Any]],
    counts: Dict[str, Any],
    cache: Dict[str, Any],
    invariants: Dict[str, Any],
) -> Dict[str, Any]:
    """Assemble one BENCH_service document."""
    return {
        "schema_version": SERVICE_SCHEMA_VERSION,
        "kind": SERVICE_KIND,
        "scale": scale,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": collect_git_sha(),
        "platform": platform_info(),
        "config": config,
        "jobs": jobs,
        "counts": counts,
        "cache": cache,
        "invariants": invariants,
    }


def write_service_bench(path: str, doc: Dict[str, Any]) -> Dict[str, Any]:
    """Atomically write ``doc`` (tmp+rename, like every results file)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    with os.fdopen(fd, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, default=str)
        fh.write("\n")
    os.replace(tmp, path)
    return doc


def load_service_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != SERVICE_KIND:
        raise ValueError(f"{path}: not a {SERVICE_KIND} document")
    if doc.get("schema_version") != SERVICE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version "
            f"{doc.get('schema_version')!r} "
            f"(expected {SERVICE_SCHEMA_VERSION})"
        )
    for field in ("jobs", "counts", "invariants"):
        if not isinstance(doc.get(field), dict):
            raise ValueError(f"{path}: missing/invalid {field!r}")
    return doc


def compare_service_benches(
    old: Dict[str, Any],
    new: Dict[str, Any],
    min_cache_hit_rate: Optional[float] = None,
    allow_missing: bool = False,
) -> Dict[str, List[str]]:
    """Gate two BENCH_service documents.

    Hard: invariants must hold in NEW, no per-key success→dead_letter
    flip, and the cache hit rate must not fall below OLD's (or below an
    explicit ``min_cache_hit_rate``).  Soft: retry/redelivery counts
    (chaos intensity is configuration, not behavior).
    """
    regressions: List[str] = []
    warnings: List[str] = []

    inv = new.get("invariants", {})
    if not inv.get("all_terminal", False):
        regressions.append("invariant: not every job reached a terminal state")
    if not inv.get("no_corrupt_served", False):
        regressions.append("invariant: a corrupt cache entry was served")
    old_inv = old.get("invariants", {})
    if old_inv.get("serial_identical") and not inv.get("serial_identical"):
        regressions.append(
            "invariant: payloads no longer bitwise-identical to the "
            "fault-free serial run"
        )

    for key, o in old.get("jobs", {}).items():
        n = new.get("jobs", {}).get(key)
        if n is None:
            (warnings if allow_missing else regressions).append(
                f"{key[:16]}: present in OLD but missing from NEW"
            )
            continue
        if o.get("status") == "success" and n.get("status") != "success":
            regressions.append(
                f"{key[:16]}: outcome regressed "
                f"({o.get('status')} -> {n.get('status')})"
            )

    old_rate = float(old.get("cache", {}).get("hit_rate", 0.0))
    new_rate = float(new.get("cache", {}).get("hit_rate", 0.0))
    floor = old_rate if min_cache_hit_rate is None else min_cache_hit_rate
    if new_rate + 1e-9 < floor:
        regressions.append(
            f"cache hit rate fell: {old_rate:.2%} -> {new_rate:.2%} "
            f"(floor {floor:.2%})"
        )

    o_retries = int(old.get("counts", {}).get("retries", 0))
    n_retries = int(new.get("counts", {}).get("retries", 0))
    if n_retries != o_retries:
        warnings.append(f"retries changed: {o_retries} -> {n_retries}")
    o_redeliv = int(old.get("counts", {}).get("redeliveries", 0))
    n_redeliv = int(new.get("counts", {}).get("redeliveries", 0))
    if n_redeliv != o_redeliv:
        warnings.append(
            f"redeliveries changed: {o_redeliv} -> {n_redeliv}"
        )
    return {"regressions": regressions, "warnings": warnings}


def render_service_table(old: Dict[str, Any], new: Dict[str, Any]) -> str:
    header = (
        f"{'job':<18}{'old status':<14}{'new status':<14}"
        f"{'att':>4}{'redel':>6}{'cache':>6}"
    )
    lines = [header, "-" * len(header)]
    for key in sorted(set(old.get("jobs", {})) | set(new.get("jobs", {}))):
        o = old.get("jobs", {}).get(key, {})
        n = new.get("jobs", {}).get(key, {})
        lines.append(
            f"{key[:16]:<18}{o.get('status', '-'):<14}"
            f"{n.get('status', '-'):<14}"
            f"{n.get('attempts', 0):>4}{n.get('redeliveries', 0):>6}"
            f"{str(bool(n.get('from_cache'))):>6}"
        )
    lines.append(
        f"cache hit rate: {float(old.get('cache', {}).get('hit_rate', 0)):.2%}"
        f" -> {float(new.get('cache', {}).get('hit_rate', 0)):.2%}"
    )
    return "\n".join(lines)
