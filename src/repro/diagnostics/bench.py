"""The ``BENCH_table1.json`` schema: one benchmark trajectory point.

Every Table 1 harness run can be reduced to a flat JSON document of
per-system rows — outcome, CEGIS iterations, the paper's phase timings
``T_l``/``T_c``/``T_v``/``T_e``, and the audit margins — plus provenance
(git SHA, platform, scale).  Two such documents are comparable by
``python -m repro.diagnostics.regress``, which is how the repo detects
perf/outcome regressions against a committed baseline.

Schema (version 1)::

    {
      "schema_version": 1,
      "kind": "BENCH_table1",
      "scale": "smoke" | "paper",
      "generated_at": "<iso8601>",
      "git_sha": "<sha or null>",
      "platform": {...},
      "systems": {
        "C1": {
          "outcome": "success" | "failure" | "timeout" | "error",
          "iterations": 1,
          "stalled": false,
          "d_B": 2,
          "timings": {"T_l": ..., "T_c": ..., "T_v": ..., "T_e": ...,
                      "inclusion": ...},
          "audit": {"min_gram_eigenvalue": ..., "max_residual_bound": ...,
                    "max_sdp_gap": ..., "min_grid_margin": ...} | null,
          "soundness": {"ok": ..., "conditions": ...,
                        "min_certified_margin": ...,
                        "max_slack_shift": ...} | absent,
          "error": {"kind": ..., "message": ..., ...} | absent
        }, ...
      }
    }

``timeout`` is the paper's OOT (deadline overrun ended the run cleanly);
``error`` records a typed unrecoverable failure — both carry the failure
under ``error``.  The additive fields keep the schema at version 1:
documents written by older revisions load unchanged.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Any, Dict, Optional

from repro.telemetry import collect_git_sha, platform_info

BENCH_SCHEMA_VERSION = 1
BENCH_KIND = "BENCH_table1"

#: timing keys every entry carries (paper column names + phase 0)
TIMING_KEYS = ("T_l", "T_c", "T_v", "T_e", "inclusion")

#: SNBCResult.outcome -> bench row outcome
RESULT_OUTCOMES = {
    "verified": "success",
    "not_verified": "failure",
    "timeout": "timeout",
    "error": "error",
}


def result_outcome(result: Any) -> str:
    """Bench-row outcome string for an SNBCResult (duck-typed; results
    from revisions predating the ``outcome`` field map via ``success``)."""
    outcome = getattr(result, "outcome", "")
    if outcome in RESULT_OUTCOMES:
        return RESULT_OUTCOMES[outcome]
    return "success" if result.success else "failure"


def bench_entry(
    result: Any, audit: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One ``systems`` row from an :class:`~repro.cegis.snbc.SNBCResult`
    (duck-typed) and an optional audit artifact dict."""
    timings = result.timings
    entry = {
        "outcome": result_outcome(result),
        "iterations": int(result.iterations),
        "stalled": bool(getattr(result, "stalled", False)),
        "d_B": (
            int(result.barrier.degree) if result.barrier is not None else None
        ),
        "timings": {
            "T_l": round(float(timings.learning), 6),
            "T_c": round(float(timings.counterexample), 6),
            "T_v": round(float(timings.verification), 6),
            "T_e": round(float(timings.total), 6),
            "inclusion": round(float(timings.inclusion), 6),
        },
        "audit": dict(audit["summary"]) if audit else None,
    }
    soundness = getattr(result, "soundness", None)
    if soundness is not None:
        # additive key (schema stays v1): the exact recheck verdict plus
        # the smallest exactly-certified margin across the conditions
        entry["soundness"] = soundness.summary()
    error = getattr(result, "error", None)
    if error:
        entry["error"] = dict(error)
    return entry


def error_entry(exc: BaseException) -> Dict[str, Any]:
    """A ``systems`` row for a run that raised before producing a result
    (driver-level crash, dead pool worker): ``outcome == "error"`` with
    the exception class recorded, so the table keeps its full coverage
    and the regression gate sees the failure class."""
    try:
        from repro.resilience.errors import ReproError
    except ImportError:  # pragma: no cover - resilience always ships
        ReproError = ()  # type: ignore[assignment]
    if isinstance(exc, ReproError):
        error = exc.to_dict()
    else:
        error = {"kind": type(exc).__name__, "message": str(exc)}
    return {
        "outcome": "error",
        "iterations": 0,
        "stalled": False,
        "d_B": None,
        "timings": {key: 0.0 for key in TIMING_KEYS},
        "audit": None,
        "error": error,
    }


def bench_document(
    systems: Dict[str, Dict[str, Any]], scale: str, **extra: Any
) -> Dict[str, Any]:
    """Assemble the full document around prepared ``systems`` rows."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "scale": scale,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "git_sha": collect_git_sha(),
        "platform": platform_info(),
        "systems": dict(systems),
        **extra,
    }


def write_bench(
    path: str, systems: Dict[str, Dict[str, Any]], scale: str, **extra: Any
) -> Dict[str, Any]:
    """Write a BENCH document to ``path``; returns the document."""
    doc = bench_document(systems, scale, **extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")
    return doc


def load_bench(path: str) -> Dict[str, Any]:
    """Read and schema-check a BENCH document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("kind") != BENCH_KIND:
        raise ValueError(f"{path}: not a {BENCH_KIND} document")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema_version "
            f"{doc.get('schema_version')!r} (expected {BENCH_SCHEMA_VERSION})"
        )
    if not isinstance(doc.get("systems"), dict):
        raise ValueError(f"{path}: missing 'systems' mapping")
    return doc
